"""Regenerates the ablations: hazard breakdown and sensitivity sweeps."""

from repro.experiments import ablation_hazards, ablation_sensitivity


def test_bench_ablation_hazards(benchmark, paper_run_set, save_artifact):
    rows = ablation_hazards.run(run_set=paper_run_set)
    text = ablation_hazards.render(rows)
    save_artifact("ablation_hazards", text)

    benchmark(lambda: ablation_hazards.run(run_set=paper_run_set))

    by_name = {row.benchmark: row for row in rows}
    # The paper's four no-improvement benchmarks are the ones whose loads
    # cannot be anticipated.
    for name in ("aifftr", "aiifft", "matrix"):
        assert by_name[name].take_rate < 0.2, name
    for name in ("puwmod", "aifirf", "iirflt"):
        assert by_name[name].take_rate > 0.8, name
    # And, as the paper observes, data hazards dominate the blocked cases.
    assert ablation_hazards.data_hazard_dominates(rows)


def test_bench_ablation_sensitivity(benchmark, save_artifact):
    sweeps = benchmark.pedantic(
        lambda: ablation_sensitivity.run(instructions=8000), rounds=1, iterations=1
    )
    text = ablation_sensitivity.render(sweeps)
    save_artifact("ablation_sensitivity", text)

    # Extra Stage overhead must grow with the dependent-load fraction,
    # Extra Cycle with the load fraction, and LAEC with the fraction of
    # addresses produced by the preceding instruction.
    dependence = sweeps["dependent_load_fraction"]
    assert dependence[-1].increase["extra-stage"] > dependence[0].increase["extra-stage"]
    loads = sweeps["load_fraction"]
    assert loads[-1].increase["extra-cycle"] > loads[0].increase["extra-cycle"]
    hazard = sweeps["address_from_previous_fraction"]
    assert hazard[-1].increase["laec"] > hazard[0].increase["laec"]
