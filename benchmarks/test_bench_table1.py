"""Regenerates Table I (commercial processor survey)."""

from repro.experiments import table1


def test_bench_table1(benchmark, save_artifact):
    rows = benchmark(table1.run)
    text = table1.render(rows)
    save_artifact("table1", text)
    assert len(rows) == 5
    # The qualitative point of the table: the surveyed LEON parts offer no
    # write-back DL1, which is what motivates LAEC-style schemes.
    assert all(not cpu.supports_wb_l1 for cpu in rows if "LEON" in cpu.name)
