"""Regenerates the §IV-A power/leakage analysis."""

import pytest

from repro.analysis.energy import estimate_energy
from repro.experiments import energy_report


def test_bench_energy(benchmark, paper_run_set, save_artifact):
    rows = energy_report.run(run_set=paper_run_set)
    text = energy_report.render(rows)
    save_artifact("energy_report", text)

    benchmark(lambda: estimate_energy(paper_run_set.baseline("puwmod")))

    by_policy = {row.policy: row for row in rows}
    # Leakage energy increases track execution-time increases exactly.
    for row in rows:
        assert row.leakage_increase == pytest.approx(
            row.execution_time_increase, abs=1e-9
        )
    # LAEC's dynamic-energy cost over an already-ECC-protected design
    # (Extra Stage) is below 1 % — the paper's "minimal impact" claim.
    assert (
        abs(by_policy["laec"].dynamic_increase - by_policy["extra-stage"].dynamic_increase)
        < 0.01
    )
    # And the leakage penalty ordering mirrors Figure 8.
    assert (
        by_policy["laec"].leakage_increase
        < by_policy["extra-stage"].leakage_increase
        < by_policy["extra-cycle"].leakage_increase
    )
