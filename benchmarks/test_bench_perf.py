"""Full perf-harness run with the acceptance thresholds enforced.

Marked ``perf`` so the default test run stays fast; run explicitly with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_perf.py -m perf -q

Writes the same ``BENCH_1.json`` at the repository root that
``benchmarks/run_bench.sh`` produces, so either entry point refreshes
the tracked perf numbers.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.perf import run_harness

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.mark.perf
def test_full_harness_meets_acceptance_thresholds():
    report = run_harness()
    report.write_json(str(REPO_ROOT / "BENCH_1.json"))
    by_name = {result.name: result for result in report.results}
    assert by_name["fault_campaign"].speedup >= 3.0, (
        f"fault campaign only {by_name['fault_campaign'].speedup:.2f}x"
    )
    assert by_name["kernel_policy_sweep"].speedup >= 1.5, (
        f"kernel x policy sweep only {by_name['kernel_policy_sweep'].speedup:.2f}x"
    )
    assert by_name["timing_engine"].speedup >= 1.5, (
        f"timing engine only {by_name['timing_engine'].speedup:.2f}x"
    )
