"""Batched-replay throughput benchmark — writes ``BENCH_7.json``.

ROADMAP item 1's 10x: the batched replay backend (shared golden traces,
analytical masked-fault triage, vectorised ECC decode, snapshot
suffix-resume) must make the standard sweep grid at least 10x faster
cold than BENCH_6's per-point ``sweep_cold`` — while producing
byte-identical summaries — and the ``get_many``-based warm resume must
restore at least 0.8x BENCH_5's warm rate (the PR 6 regression fix).

The grid config is BENCH_5/BENCH_6's exactly, so the points/s figures
are directly comparable across the three reports.  Run explicitly::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_batched.py -m perf -q
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.campaign import CampaignConfig, run_campaign
from repro.store import ResultStore

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

GRID = dict(
    kernels=("canrdr", "matrix"),
    policies=("no-ecc", "extra-cycle"),
    scale=0.1,
    trials=12,
    batch=6,
    seed=2019,
    targets=("dl1", "l2"),
    scenarios=("isolation", "laec-worst"),
)

BATCHED = CampaignConfig(replay_mode="batched", **GRID)
POINT = CampaignConfig(replay_mode="point", **GRID)

#: Acceptance bars, anchored to the committed baseline reports.
COLD_SPEEDUP_FLOOR = 10.0  # vs BENCH_6 sweep_cold
WARM_RATIO_FLOOR = 0.8  # vs BENCH_5 sweep_store_warm


def _baseline(report: str, name: str) -> float:
    data = json.loads((REPO_ROOT / report).read_text(encoding="utf-8"))
    for row in data["benchmarks"]:
        if row["name"] == name:
            return float(row["points_per_second"])
    raise AssertionError(f"{report} has no benchmark row {name!r}")


def _timed(label, fn):
    started = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - started
    stats = result.stats
    return result, {
        "name": label,
        "points": result.points,
        "strata": len(result.strata),
        "simulated": result.simulated,
        "store_hits": result.store_hits,
        "analytical": stats.analytical,
        "streamed": stats.streamed,
        "full": stats.full,
        "seconds": seconds,
        "points_per_second": result.points / seconds if seconds > 0 else 0.0,
    }


@pytest.mark.perf
def test_bench_batched_replay(tmp_path, write_bench_report):
    rows = []

    batched, row = _timed("sweep_cold", lambda: run_campaign(BATCHED))
    rows.append(row)

    point, point_row = _timed("sweep_cold_point", lambda: run_campaign(POINT))
    rows.append(point_row)

    # Identical physics, 10x the speed: the batched and per-point paths
    # must render byte-identical summaries on the full grid.
    assert batched.render() == point.render()
    # The replay-mode counters account for every point.
    stats = batched.stats
    assert (
        stats.analytical + stats.streamed + stats.full + stats.store_hits
        == batched.points
    )
    assert stats.analytical > 0, "triage eliminated no work on the bench grid"

    store_path = tmp_path / "bench_batched.sqlite"
    with ResultStore(store_path) as store:
        _, row = _timed(
            "sweep_store_cold",
            lambda: run_campaign(BATCHED, store=store, resume=True),
        )
        rows.append(row)
    with ResultStore(store_path) as store:
        warm, row = _timed(
            "sweep_store_warm",
            lambda: run_campaign(BATCHED, store=store, resume=True),
        )
        rows.append(row)
    assert warm.simulated == 0
    assert warm.store_hits == warm.points
    assert warm.render() == batched.render()

    by_name = {r["name"]: r for r in rows}

    bench6_cold = _baseline("BENCH_6.json", "sweep_cold")
    cold_speedup = by_name["sweep_cold"]["points_per_second"] / bench6_cold
    assert cold_speedup >= COLD_SPEEDUP_FLOOR, (
        f"batched cold sweep is only {cold_speedup:.1f}x BENCH_6 "
        f"({by_name['sweep_cold']['points_per_second']:.1f} vs "
        f"{bench6_cold:.1f} pts/s); the 10x bar is not met"
    )

    bench5_warm = _baseline("BENCH_5.json", "sweep_store_warm")
    warm_ratio = by_name["sweep_store_warm"]["points_per_second"] / bench5_warm
    assert warm_ratio >= WARM_RATIO_FLOOR, (
        f"store-warm throughput is {warm_ratio:.2f}x BENCH_5 "
        f"({by_name['sweep_store_warm']['points_per_second']:.1f} vs "
        f"{bench5_warm:.1f} pts/s); the PR 6 warm regression is back"
    )

    rows.append(
        {
            "name": "batched_vs_bench6_cold",
            "bench6_points_per_second": bench6_cold,
            "bench7_points_per_second": by_name["sweep_cold"]["points_per_second"],
            "speedup": cold_speedup,
            "floor": COLD_SPEEDUP_FLOOR,
        }
    )
    rows.append(
        {
            "name": "warm_vs_bench5",
            "bench5_points_per_second": bench5_warm,
            "bench7_points_per_second": by_name["sweep_store_warm"][
                "points_per_second"
            ],
            "ratio": warm_ratio,
            "floor": WARM_RATIO_FLOOR,
        }
    )

    write_bench_report(
        "BENCH_7.json",
        schema="repro-batched-replay-bench/1",
        config={
            "kernels": list(BATCHED.kernels),
            "policies": list(BATCHED.policies),
            "targets": list(BATCHED.targets),
            "scenarios": list(BATCHED.scenarios),
            "scale": BATCHED.scale,
            "trials_per_stratum": BATCHED.trials,
            "batch": BATCHED.batch,
            "seed": BATCHED.seed,
            "replay_mode": BATCHED.replay_mode,
        },
        rows=rows,
    )
