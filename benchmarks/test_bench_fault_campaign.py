"""Regenerates the SECDED fault-injection campaign (ablation A3)."""

from repro.experiments import fault_campaign


def test_bench_fault_campaign(benchmark, save_artifact):
    rows = benchmark.pedantic(
        lambda: fault_campaign.run(trials_per_point=3000), rounds=1, iterations=1
    )
    text = fault_campaign.render(rows)
    analytical = fault_campaign.analytical_comparison()
    save_artifact("fault_campaign", text)

    indexed = {(row.code, row.flips): row for row in rows}
    # The guarantees the paper's DL1 protection relies on.
    assert indexed[("secded", 1)].corrected_rate == 1.0
    assert indexed[("secded", 2)].detected_rate == 1.0
    assert indexed[("secded", 2)].sdc_rate == 0.0
    # Parity never corrects; Hamming SEC silently corrupts on double flips.
    assert indexed[("parity", 1)].corrected_rate == 0.0
    assert indexed[("hamming", 2)].sdc_rate > 0.5
    # Analytically, SECDED gives the lowest array failure probability.
    assert analytical["secded"]["array_failure_probability"] == min(
        entry["array_failure_probability"] for entry in analytical.values()
    )
