"""Regenerates the write-through vs write-back WCET motivation (§I/§II-A)."""

from repro.experiments import wt_vs_wb


def test_bench_wt_vs_wb(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: wt_vs_wb.run(kernels=["iirflt", "puwmod", "a2time"], scale=0.3),
        rounds=1,
        iterations=1,
    )
    text = wt_vs_wb.render(result)
    save_artifact("wt_vs_wb_wcet", text)

    # Under worst-case bus contention the write-through DL1's WCET estimate
    # inflates well beyond the write-back + LAEC configuration (the paper
    # cites up to 6x for bus contention alone on its platform).
    assert result.average_wt_inflation() > 1.3
    for kernel in result.bounds:
        wt = result.bounds[kernel]["wt-parity"]
        wb = result.bounds[kernel]["wb-laec"]
        assert wt.contention_inflation > wb.contention_inflation
