"""Regenerates Figures 2-5 and 7 (pipeline chronograms)."""

from repro.experiments import chronograms


def test_bench_chronograms(benchmark, save_artifact):
    results = benchmark(chronograms.run)
    text = chronograms.render(results)
    save_artifact("figures_2_to_7_chronograms", text)
    # Every chronogram must reproduce the consumer stall pattern the paper
    # draws: 2 Execute cycles for no-ECC/LAEC-lookahead, 3 for Extra
    # Cycle/Extra Stage/LAEC-fallback, 1 when there is no dependence.
    for name, result in results.items():
        assert result.matches_paper, name
