"""Tracing-overhead benchmark — writes ``BENCH_8.json``.

Telemetry's contract is that it is effectively free: spans, the metrics
registry and the flight recorder stay on the hot path unconditionally
(no-op hooks when no session is active, dict updates when one is), so a
fully traced campaign must run within ``MAX_OVERHEAD_SHARE`` of an
untraced one on the exact BENCH_7 grid — while rendering a
byte-identical summary (the inertness half of the contract).

Runs are interleaved untraced/traced and compared best-of to keep
machine-load noise out of the overhead figure.  Run explicitly::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_telemetry.py -m perf -q
"""

from __future__ import annotations

import time

import pytest

from repro.campaign import CampaignConfig, run_campaign
from repro.telemetry.analyze import TraceFile
from repro.telemetry.trace import Telemetry

#: The BENCH_7 grid, unchanged, so the points/s figures line up.
CONFIG = CampaignConfig(
    replay_mode="batched",
    kernels=("canrdr", "matrix"),
    policies=("no-ecc", "extra-cycle"),
    scale=0.1,
    trials=12,
    batch=6,
    seed=2019,
    targets=("dl1", "l2"),
    scenarios=("isolation", "laec-worst"),
)

REPEATS = 3
#: The tracing overhead budget: a traced sweep may cost at most this
#: share of throughput over an untraced one.
MAX_OVERHEAD_SHARE = 0.03


def _row(label, result, seconds):
    return {
        "name": label,
        "points": result.points,
        "strata": len(result.strata),
        "simulated": result.simulated,
        "repeats": REPEATS,
        "seconds": seconds,
        "points_per_second": result.points / seconds if seconds > 0 else 0.0,
    }


@pytest.mark.perf
def test_bench_telemetry_overhead(tmp_path, write_bench_report):
    trace_path = tmp_path / "bench_telemetry.trace"
    regimes = {
        "sweep_untraced": lambda: run_campaign(CONFIG),
        "sweep_traced": lambda: run_campaign(
            CONFIG, telemetry=Telemetry(trace_path, progress_interval=None)
        ),
    }

    # Interleave the regimes so drifting machine load hits both alike;
    # best-of per regime keeps one slow outlier from deciding the figure.
    best = {}
    for _ in range(REPEATS):
        for label, fn in regimes.items():
            started = time.perf_counter()
            result = fn()
            seconds = time.perf_counter() - started
            if label not in best or seconds < best[label][1]:
                best[label] = (result, seconds)

    untraced, untraced_seconds = best["sweep_untraced"]
    traced, traced_seconds = best["sweep_traced"]
    untraced_row = _row("sweep_untraced", untraced, untraced_seconds)
    traced_row = _row("sweep_traced", traced, traced_seconds)
    rows = [untraced_row, traced_row]

    # Inertness: telemetry changed nothing the campaign reports.
    assert traced.render() == untraced.render()

    # The trace file is real and complete (every point got a span).
    trace = TraceFile(trace_path)
    assert trace.validate() == []
    assert len(trace.spans_named("point")) == traced.simulated
    assert trace.metrics, "no metrics snapshot in the trace"

    overhead = (
        untraced_row["points_per_second"] / traced_row["points_per_second"]
        - 1.0
    )
    rows.append(
        {
            "name": "tracing_overhead",
            "untraced_points_per_second": untraced_row["points_per_second"],
            "traced_points_per_second": traced_row["points_per_second"],
            "overhead_share": overhead,
            "budget": MAX_OVERHEAD_SHARE,
            "trace_records": len(trace.records),
        }
    )
    assert overhead <= MAX_OVERHEAD_SHARE, (
        f"tracing costs {overhead:.1%} of sweep throughput "
        f"({traced_row['points_per_second']:.1f} vs "
        f"{untraced_row['points_per_second']:.1f} pts/s); "
        f"budget is {MAX_OVERHEAD_SHARE:.0%}"
    )

    write_bench_report(
        "BENCH_8.json",
        schema="repro-telemetry-bench/1",
        config={
            "kernels": list(CONFIG.kernels),
            "policies": list(CONFIG.policies),
            "targets": list(CONFIG.targets),
            "scenarios": list(CONFIG.scenarios),
            "scale": CONFIG.scale,
            "trials_per_stratum": CONFIG.trials,
            "batch": CONFIG.batch,
            "seed": CONFIG.seed,
            "replay_mode": CONFIG.replay_mode,
            "repeats": REPEATS,
            "max_overhead_share": MAX_OVERHEAD_SHARE,
        },
        rows=rows,
    )
