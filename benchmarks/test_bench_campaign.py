"""Campaign-engine throughput benchmark — writes ``BENCH_3.json``.

Measures the architectural fault-injection campaign in the four regimes
that matter operationally:

* **serial, cold** — every point simulated in-process;
* **sharded, cold** — points fanned out over a 2-worker process pool;
* **store, cold** — serial simulation plus a write of every point into
  a fresh SQLite result store;
* **store, warm** — the same campaign resumed against the populated
  store (pure content-hash lookups, zero simulation).

Marked ``perf`` so the default test run stays fast; run explicitly::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_campaign.py -m perf -q
"""

from __future__ import annotations

import time

import pytest

from repro.campaign import CampaignConfig, run_campaign
from repro.store import ResultStore

CONFIG = CampaignConfig(
    kernels=("canrdr", "matrix"),
    scale=0.1,
    trials=24,
    batch=8,
    seed=2019,
)


def _timed(label, fn):
    started = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - started
    return {
        "name": label,
        "points": result.points,
        "simulated": result.simulated,
        "store_hits": result.store_hits,
        "seconds": seconds,
        "points_per_second": result.points / seconds if seconds > 0 else 0.0,
    }


@pytest.mark.perf
def test_bench_campaign_throughput(tmp_path, write_bench_report):
    rows = []
    rows.append(_timed("serial_cold", lambda: run_campaign(CONFIG)))
    sharded = CampaignConfig(
        kernels=CONFIG.kernels,
        scale=CONFIG.scale,
        trials=CONFIG.trials,
        batch=CONFIG.batch,
        seed=CONFIG.seed,
        workers=2,
    )
    rows.append(_timed("sharded_cold", lambda: run_campaign(sharded)))

    store_path = tmp_path / "bench_campaign.sqlite"
    with ResultStore(store_path) as store:
        rows.append(
            _timed(
                "store_cold",
                lambda: run_campaign(CONFIG, store=store, resume=True),
            )
        )
    with ResultStore(store_path) as store:
        rows.append(
            _timed(
                "store_warm",
                lambda: run_campaign(CONFIG, store=store, resume=True),
            )
        )

    by_name = {row["name"]: row for row in rows}
    # The warm run must be a pure store sweep ...
    assert by_name["store_warm"]["simulated"] == 0
    assert by_name["store_warm"]["store_hits"] == by_name["store_warm"]["points"]
    # ... and dramatically faster than simulating.
    assert (
        by_name["store_warm"]["points_per_second"]
        >= 5.0 * by_name["store_cold"]["points_per_second"]
    ), "store hits are not cheaper than simulation"
    # Sharding must not change the sampled point count.
    assert by_name["sharded_cold"]["points"] == by_name["serial_cold"]["points"]

    write_bench_report(
        "BENCH_3.json",
        schema="repro-campaign-bench/1",
        config={
            "kernels": list(CONFIG.kernels),
            "policies": list(CONFIG.policies),
            "scale": CONFIG.scale,
            "trials_per_stratum": CONFIG.trials,
            "batch": CONFIG.batch,
            "seed": CONFIG.seed,
        },
        rows=rows,
    )
