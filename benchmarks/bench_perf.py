#!/usr/bin/env python
"""Fast-path performance harness entry point.

Times the three optimized layers (table-driven ECC codecs, fast-path
timing engine, cached/parallel experiment sweep) against the seed
implementations kept in ``repro.ecc.reference`` and
``repro.pipeline.reference_timing``, then writes the results to a
``BENCH_<n>.json`` at the repository root.  See PERFORMANCE.md for the
architecture and the JSON field reference.

Usage (from the repository root)::

    benchmarks/run_bench.sh                 # full run, writes BENCH_1.json
    PYTHONPATH=src python benchmarks/bench_perf.py --quick --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf.harness import render_report, run_harness  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_1.json"),
        help="output JSON path (default: BENCH_1.json at the repo root)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        help="fault-campaign trials per (code, multiplicity) point "
        "(default: 2000, or 200 with --quick)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="kernel scale for the timing and sweep benchmarks "
        "(default: 0.4, or 0.08/0.1 with --quick)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool workers for the sweep (default: serial; 0 = cpu count)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="best-of repeats for the codec/timing benchmarks "
        "(default: 3, or 1 with --quick)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny smoke-test configuration (seconds, not minutes); "
        "explicit --trials/--scale/--repeats still override it",
    )
    args = parser.parse_args(argv)

    if args.quick:
        trials = args.trials if args.trials is not None else 200
        repeats = args.repeats if args.repeats is not None else 1
        sweep_scale = args.scale if args.scale is not None else 0.08
        timing_scale = args.scale if args.scale is not None else 0.1
        report = run_harness(
            trials_per_point=trials,
            sweep_scale=sweep_scale,
            timing_scale=timing_scale,
            sweep_kernels=["matrix", "puwmod"],
            max_workers=args.workers,
            repeats=repeats,
        )
    else:
        report = run_harness(
            trials_per_point=args.trials if args.trials is not None else 2000,
            sweep_scale=args.scale if args.scale is not None else 0.4,
            timing_scale=args.scale if args.scale is not None else 0.4,
            max_workers=args.workers,
            repeats=args.repeats if args.repeats is not None else 3,
        )

    report.write_json(args.out)
    print(render_report(report))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
