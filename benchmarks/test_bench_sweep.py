"""Sweep-throughput benchmark — writes ``BENCH_5.json``.

Measures the multi-dimensional campaign sweep (DL1 + L2 targets ×
isolation + worst-contention scenarios) in the regimes that matter
operationally:

* **sweep, cold** — every point of the grid simulated in-process;
* **sweep, store cold** — the same grid plus batched ``put_many``
  writes of every point into a fresh SQLite result store;
* **sweep, store warm** — the grid resumed against the populated store
  (pure content-hash lookups across all dimensions, zero simulation);
* **sampler** — raw O(N) sampling rate of one stratum drawn in the
  engine's sequential batch pattern, with the draw count asserted
  linear (the pre-cursor sampler cost O(N²) draws).

Marked ``perf`` so the default test run stays fast; run explicitly::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_sweep.py -m perf -q
"""

from __future__ import annotations

import time

import pytest

from repro.campaign import (
    CampaignConfig,
    clear_sample_cursors,
    point_draw_count,
    reset_draw_count,
    run_campaign,
    sample_faults,
)
from repro.store import ResultStore

CONFIG = CampaignConfig(
    kernels=("canrdr", "matrix"),
    policies=("no-ecc", "extra-cycle"),
    scale=0.1,
    trials=12,
    batch=6,
    seed=2019,
    targets=("dl1", "l2"),
    scenarios=("isolation", "laec-worst"),
)

SAMPLER_POINTS = 5000
SAMPLER_BATCH = 20


def _timed(label, fn):
    started = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - started
    return {
        "name": label,
        "points": result.points,
        "strata": len(result.strata),
        "simulated": result.simulated,
        "store_hits": result.store_hits,
        "seconds": seconds,
        "points_per_second": result.points / seconds if seconds > 0 else 0.0,
    }


@pytest.mark.perf
def test_bench_sweep_throughput(tmp_path, write_bench_report):
    rows = []
    rows.append(_timed("sweep_cold", lambda: run_campaign(CONFIG)))

    store_path = tmp_path / "bench_sweep.sqlite"
    with ResultStore(store_path) as store:
        rows.append(
            _timed(
                "sweep_store_cold",
                lambda: run_campaign(CONFIG, store=store, resume=True),
            )
        )
    with ResultStore(store_path) as store:
        rows.append(
            _timed(
                "sweep_store_warm",
                lambda: run_campaign(CONFIG, store=store, resume=True),
            )
        )

    # Sampler: one stratum drawn in the engine's sequential batch
    # pattern must cost exactly N draws (O(N), the PR 5 fix).
    clear_sample_cursors()
    reset_draw_count()
    started = time.perf_counter()
    for start in range(0, SAMPLER_POINTS, SAMPLER_BATCH):
        sample_faults(
            "canrdr", 0.1, "laec", SAMPLER_BATCH, seed=2019, start=start
        )
    sampler_seconds = time.perf_counter() - started
    draws = point_draw_count()
    assert draws == SAMPLER_POINTS, "sampler draw count is not O(N)"
    rows.append(
        {
            "name": "sampler_sequential_batches",
            "points": SAMPLER_POINTS,
            "batch": SAMPLER_BATCH,
            "rng_draws": draws,
            "seconds": sampler_seconds,
            "points_per_second": (
                SAMPLER_POINTS / sampler_seconds if sampler_seconds > 0 else 0.0
            ),
        }
    )

    by_name = {row["name"]: row for row in rows}
    # The warm sweep must be a pure store sweep across every dimension...
    assert by_name["sweep_store_warm"]["simulated"] == 0
    assert (
        by_name["sweep_store_warm"]["store_hits"]
        == by_name["sweep_store_warm"]["points"]
    )
    # ... and dramatically faster than simulating the grid.
    assert (
        by_name["sweep_store_warm"]["points_per_second"]
        >= 5.0 * by_name["sweep_store_cold"]["points_per_second"]
    ), "store hits are not cheaper than sweep simulation"
    # The grid is the full cartesian product.
    assert by_name["sweep_cold"]["strata"] == 2 * 2 * 2 * 2

    write_bench_report(
        "BENCH_5.json",
        schema="repro-sweep-bench/1",
        config={
            "kernels": list(CONFIG.kernels),
            "policies": list(CONFIG.policies),
            "targets": list(CONFIG.targets),
            "scenarios": list(CONFIG.scenarios),
            "scale": CONFIG.scale,
            "trials_per_stratum": CONFIG.trials,
            "batch": CONFIG.batch,
            "seed": CONFIG.seed,
            "sampler_points": SAMPLER_POINTS,
            "sampler_batch": SAMPLER_BATCH,
        },
        rows=rows,
    )
