"""Regenerates Table II (per-benchmark load statistics)."""

from repro.core.policies import EccPolicyKind
from repro.experiments import table2
from repro.functional import run_program
from repro.simulation import simulate_program
from repro.workloads import build_kernel


def test_bench_table2(benchmark, paper_run_set, save_artifact):
    rows = table2.run(run_set=paper_run_set)
    text = table2.render(rows)
    save_artifact("table2", text)

    # Time a representative unit: measuring one kernel's statistics.
    def measure_one():
        program = build_kernel("puwmod", scale=0.1)
        trace = run_program(program)
        return simulate_program(program, policy=EccPolicyKind.NO_ECC, trace=trace)

    benchmark(measure_one)

    mean = table2.averages(rows)
    # Paper averages: 89 % hit loads, 60 % dependent loads, 25 % loads.
    # Our kernels are hand-written rather than compiled EEMBC binaries, so
    # the tolerance is generous; the harness asserts the *shape*.
    assert 60.0 <= mean["pct_hit_loads"] <= 100.0
    assert 30.0 <= mean["pct_dependent_loads"] <= 90.0
    assert 10.0 <= mean["pct_loads"] <= 40.0
    by_name = {row.benchmark: row for row in rows}
    # cacheb stands out with very few dependent loads (paper: 13 %).
    assert by_name["cacheb"].measured_pct_dependent_loads < 20.0
