"""Regenerates Figure 8 (execution-time increase per scheme)."""

from repro.core.policies import EccPolicyKind
from repro.experiments import figure8
from repro.simulation import simulate_kernel
from repro.workloads.table2_reference import PAPER_LAEC_NO_IMPROVEMENT


def test_bench_figure8(benchmark, paper_run_set, save_artifact):
    result = figure8.run(run_set=paper_run_set)
    text = figure8.render(result)
    save_artifact("figure8", text)

    # Time a representative unit: one kernel under the LAEC policy.
    benchmark(lambda: simulate_kernel("puwmod", policy="laec", scale=0.1))

    comparison = result.comparison
    extra_cycle = result.average_increase(EccPolicyKind.EXTRA_CYCLE)
    extra_stage = result.average_increase(EccPolicyKind.EXTRA_STAGE)
    laec = result.average_increase(EccPolicyKind.LAEC)

    # Shape of Figure 8 (paper: ~17 %, ~10 %, < 4 %).
    assert laec < extra_stage < extra_cycle
    assert laec < 0.05
    assert 0.05 < extra_stage < 0.15
    assert 0.10 < extra_cycle < 0.25

    # Headline deltas: ~6 pp better than Extra Stage, ~13 pp than Extra Cycle.
    assert 0.03 < result.laec_improvement_over_extra_stage() < 0.10
    assert 0.08 < result.laec_improvement_over_extra_cycle() < 0.20

    # Per-benchmark observations the paper calls out explicitly.
    for name in PAPER_LAEC_NO_IMPROVEMENT:
        laec_inc = comparison.increase(name, EccPolicyKind.LAEC.value)
        stage_inc = comparison.increase(name, EccPolicyKind.EXTRA_STAGE.value)
        assert abs(laec_inc - stage_inc) < 0.02, name
    assert comparison.increase("cacheb", EccPolicyKind.EXTRA_STAGE.value) < 0.04
