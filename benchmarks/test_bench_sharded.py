"""Sharded-store parallel campaign benchmark — writes ``BENCH_9.json``.

PR 9's three serial bottlenecks, priced on BENCH_7's exact grid so the
figures are directly comparable: per-worker shard stores (no
single-writer SQLite path), worker-scaled batch windows (>=2 in-flight
groups per worker), and the timeline-delta timing triage (TIMING
outcomes proven analytically instead of streaming).  Acceptance bars:

* cold sweep at 4 workers >= 2x the 1-worker throughput — asserted
  only when the host affinity mask actually grants >= 4 CPUs (the
  numbers are recorded either way);
* the analytical-triage count strictly above BENCH_7 ``sweep_cold``'s
  (the streamed residue shrinks);
* warm resume from the shard-merged store >= 0.8x BENCH_7's
  ``sweep_store_warm``;
* summaries and every per-point store payload byte-identical to the
  per-point reference backend.

Run explicitly::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_sharded.py -m perf -q
"""

from __future__ import annotations

import json
import pathlib
import sqlite3
import time

import pytest

from conftest import effective_cpus
from repro.campaign import CampaignConfig, run_campaign
from repro.store import ResultStore
from repro.store.sharding import shard_directory

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: BENCH_5/6/7's grid, verbatim: 16 strata x 12 trials = 192 points.
GRID = dict(
    kernels=("canrdr", "matrix"),
    policies=("no-ecc", "extra-cycle"),
    scale=0.1,
    trials=12,
    batch=6,
    seed=2019,
    targets=("dl1", "l2"),
    scenarios=("isolation", "laec-worst"),
)

SERIAL = CampaignConfig(replay_mode="batched", **GRID)
POOLED_1 = CampaignConfig(replay_mode="batched", workers=1, **GRID)
POOLED_4 = CampaignConfig(replay_mode="batched", workers=4, **GRID)
POINT = CampaignConfig(replay_mode="point", **GRID)

#: Acceptance bars, anchored to the committed BENCH_7 baselines.
SCALING_FLOOR = 2.0  # 4-worker vs 1-worker cold, given >= 4 CPUs
WARM_RATIO_FLOOR = 0.8  # vs BENCH_7 sweep_store_warm
SCALING_MIN_CPUS = 4


def _bench7_row(name: str) -> dict:
    data = json.loads((REPO_ROOT / "BENCH_7.json").read_text(encoding="utf-8"))
    for row in data["benchmarks"]:
        if row["name"] == name:
            return row
    raise AssertionError(f"BENCH_7.json has no benchmark row {name!r}")


def _timed(label, fn):
    started = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - started
    stats = result.stats
    return result, {
        "name": label,
        "points": result.points,
        "strata": len(result.strata),
        "simulated": result.simulated,
        "store_hits": result.store_hits,
        "analytical": stats.analytical,
        "streamed": stats.streamed,
        "full": stats.full,
        "seconds": seconds,
        "points_per_second": result.points / seconds if seconds > 0 else 0.0,
    }


def _store_rows(path):
    with sqlite3.connect(path) as connection:
        return connection.execute(
            "SELECT key, kind, spec, payload, checksum FROM results ORDER BY key"
        ).fetchall()


@pytest.mark.perf
def test_bench_sharded_campaign(tmp_path, write_bench_report):
    rows = []

    serial, row = _timed("sweep_cold_serial", lambda: run_campaign(SERIAL))
    rows.append(row)

    one_path = tmp_path / "bench_sharded_1.sqlite"
    with ResultStore(one_path) as store:
        pooled_1, row = _timed(
            "sweep_cold_1worker",
            lambda: run_campaign(POOLED_1, store=store, resume=True),
        )
        rows.append(row)
    one_pps = row["points_per_second"]

    four_path = tmp_path / "bench_sharded_4.sqlite"
    with ResultStore(four_path) as store:
        pooled_4, row = _timed(
            "sweep_cold_4workers",
            lambda: run_campaign(POOLED_4, store=store, resume=True),
        )
        rows.append(row)
    four_pps = row["points_per_second"]

    point_path = tmp_path / "bench_point.sqlite"
    with ResultStore(point_path) as store:
        point, row = _timed(
            "sweep_cold_point",
            lambda: run_campaign(POINT, store=store, resume=True),
        )
        rows.append(row)

    # Identical physics at every width: the sharded pooled runs and the
    # per-point reference backend render byte-identical summaries.
    assert serial.render() == point.render()
    assert pooled_1.render() == point.render()
    assert pooled_4.render() == point.render()

    # ...and persist byte-identical stores: every per-point payload the
    # shard-merge path wrote matches the single-writer point backend's.
    reference = _store_rows(point_path)
    assert reference, "point-backend store is empty"
    assert _store_rows(one_path) == reference
    assert _store_rows(four_path) == reference
    # A finished campaign leaves one canonical file — no shard debris.
    assert not shard_directory(one_path).exists()
    assert not shard_directory(four_path).exists()

    # The replay-mode counters still account for every point.
    stats = pooled_4.stats
    assert (
        stats.analytical + stats.streamed + stats.full + stats.store_hits
        == pooled_4.points
    )

    # Timing triage strictly shrinks BENCH_7's streamed residue.
    bench7_cold = _bench7_row("sweep_cold")
    assert stats.analytical > int(bench7_cold["analytical"]), (
        f"analytical triage covers {stats.analytical} points, no better "
        f"than BENCH_7's {bench7_cold['analytical']}"
    )

    # Warm resume straight from the shard-merged store.
    with ResultStore(four_path) as store:
        warm, row = _timed(
            "sweep_store_warm",
            lambda: run_campaign(SERIAL, store=store, resume=True),
        )
        rows.append(row)
    assert warm.simulated == 0
    assert warm.store_hits == warm.points
    assert warm.render() == point.render()

    bench7_warm = float(_bench7_row("sweep_store_warm")["points_per_second"])
    warm_ratio = row["points_per_second"] / bench7_warm
    assert warm_ratio >= WARM_RATIO_FLOOR, (
        f"warm resume from the shard-merged store is {warm_ratio:.2f}x "
        f"BENCH_7 ({row['points_per_second']:.1f} vs {bench7_warm:.1f} pts/s)"
    )

    # Worker scaling: only meaningful when the affinity mask actually
    # grants the pool >= 4 CPUs; on narrower hosts the figures are
    # recorded but the bar is not enforced.
    cpus = effective_cpus()
    scaling = four_pps / one_pps if one_pps > 0 else 0.0
    if cpus >= SCALING_MIN_CPUS:
        assert scaling >= SCALING_FLOOR, (
            f"4-worker cold sweep is only {scaling:.2f}x the 1-worker "
            f"rate ({four_pps:.1f} vs {one_pps:.1f} pts/s) on a "
            f"{cpus}-CPU host"
        )

    rows.append(
        {
            "name": "scaling_4w_vs_1w",
            "one_worker_points_per_second": one_pps,
            "four_worker_points_per_second": four_pps,
            "speedup": scaling,
            "floor": SCALING_FLOOR,
            "effective_cpus": cpus,
            "enforced": cpus >= SCALING_MIN_CPUS,
        }
    )
    rows.append(
        {
            "name": "analytical_vs_bench7",
            "bench7_analytical": bench7_cold["analytical"],
            "bench9_analytical": stats.analytical,
            "bench9_streamed": stats.streamed,
            "points": pooled_4.points,
        }
    )
    rows.append(
        {
            "name": "warm_vs_bench7",
            "bench7_points_per_second": bench7_warm,
            "bench9_points_per_second": row["points_per_second"],
            "ratio": warm_ratio,
            "floor": WARM_RATIO_FLOOR,
        }
    )

    write_bench_report(
        "BENCH_9.json",
        schema="repro-sharded-campaign-bench/1",
        config={
            "kernels": list(SERIAL.kernels),
            "policies": list(SERIAL.policies),
            "targets": list(SERIAL.targets),
            "scenarios": list(SERIAL.scenarios),
            "scale": SERIAL.scale,
            "trials_per_stratum": SERIAL.trials,
            "batch": SERIAL.batch,
            "seed": SERIAL.seed,
            "replay_mode": SERIAL.replay_mode,
            "workers": [1, 4],
        },
        rows=rows,
    )
