"""Robustness-overhead benchmark — writes ``BENCH_6.json``.

PR 6 routed every campaign through the execution supervisor and made
every store row checksummed and self-verifying. This benchmark prices
that fault-tolerance layer on the exact BENCH_5 sweep grid:

* **sweep, cold / store cold / store warm** — the BENCH_5 regimes, now
  running under the supervisor with checksummed writes;
* **robustness overhead share** — the full per-campaign cost of the
  integrity layer (checksumming every payload + the batched store
  write carrying it) measured against the store-cold sweep wall-clock,
  asserted < 5 %;
* **verify / repair scan** — full-store integrity scan rate over the
  populated sweep store.

If a ``BENCH_5.json`` from the same machine is present, the cold-sweep
throughput is compared against it with a generous guard (the two runs
may straddle machine-load changes); the strict 5 % bound is enforced on
the in-run overhead share, which is load-independent.

Marked ``perf`` so the default test run stays fast; run explicitly::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_robustness.py -m perf -q
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.campaign import CampaignConfig, run_campaign
from repro.store import ResultStore, payload_checksum

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The BENCH_5 grid, unchanged, so overheads are apples-to-apples.
CONFIG = CampaignConfig(
    kernels=("canrdr", "matrix"),
    policies=("no-ecc", "extra-cycle"),
    scale=0.1,
    trials=12,
    batch=6,
    seed=2019,
    targets=("dl1", "l2"),
    scenarios=("isolation", "laec-worst"),
)

CHECKSUM_REPEATS = 50
WRITE_REPEATS = 5
#: Checksums + the store write carrying them must stay a rounding
#: error on the campaign they protect.
MAX_OVERHEAD_SHARE = 0.05
#: Cross-run guard vs BENCH_5 cold throughput (generous: the two
#: measurements may be separated by machine-load changes).
MIN_THROUGHPUT_VS_BENCH5 = 0.5


def _timed(label, fn):
    started = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - started
    return {
        "name": label,
        "points": result.points,
        "strata": len(result.strata),
        "simulated": result.simulated,
        "store_hits": result.store_hits,
        "quarantined": result.quarantined_points,
        "seconds": seconds,
        "points_per_second": result.points / seconds if seconds > 0 else 0.0,
    }


@pytest.mark.perf
def test_bench_robustness_overhead(tmp_path, write_bench_report):
    rows = []
    rows.append(_timed("sweep_cold", lambda: run_campaign(CONFIG)))

    store_path = tmp_path / "bench_robustness.sqlite"
    with ResultStore(store_path) as store:
        rows.append(
            _timed(
                "sweep_store_cold",
                lambda: run_campaign(CONFIG, store=store, resume=True),
            )
        )
    with ResultStore(store_path) as store:
        rows.append(
            _timed(
                "sweep_store_warm",
                lambda: run_campaign(CONFIG, store=store, resume=True),
            )
        )

        # Price the checksum against the batched write it protects:
        # re-write every payload of the populated store into a scratch
        # store (the real put_many path, checksums included), then time
        # the bare checksum computation over the same payload texts.
        payloads = list(store.iter_rows())
    texts = [
        json.dumps(payload, sort_keys=True)
        for _key, payload, _kind in payloads
    ]

    write_rows = [(key, payload, "") for key, payload, _kind in payloads]
    write_samples = []
    for repeat in range(WRITE_REPEATS):
        with ResultStore(tmp_path / f"scratch{repeat}.sqlite") as scratch:
            started = time.perf_counter()
            scratch.put_many(write_rows, kind="injection")
            write_samples.append(time.perf_counter() - started)
    write_seconds = sum(write_samples) / len(write_samples)

    started = time.perf_counter()
    for _ in range(CHECKSUM_REPEATS):
        for text in texts:
            payload_checksum(text)
    checksum_seconds = (time.perf_counter() - started) / CHECKSUM_REPEATS

    # The integrity layer's whole per-campaign bill: checksum every
    # payload once plus the batched write that persists it, priced
    # against the store-cold sweep that produced those payloads.
    store_cold_seconds = next(
        row["seconds"] for row in rows if row["name"] == "sweep_store_cold"
    )
    overhead_share = (
        (write_seconds + checksum_seconds) / store_cold_seconds
        if store_cold_seconds > 0
        else 0.0
    )
    rows.append(
        {
            "name": "robustness_overhead",
            "rows": len(payloads),
            "write_seconds": write_seconds,
            "checksum_seconds": checksum_seconds,
            "checksum_share_of_write": (
                checksum_seconds / write_seconds if write_seconds > 0 else 0.0
            ),
            "overhead_share_of_sweep": overhead_share,
        }
    )
    assert overhead_share < MAX_OVERHEAD_SHARE, (
        f"checksummed store writes cost {overhead_share:.1%} of the "
        f"campaign they protect (budget {MAX_OVERHEAD_SHARE:.0%})"
    )

    # Integrity-scan rate over the populated sweep store.
    with ResultStore(store_path) as store:
        started = time.perf_counter()
        report = store.verify()
        verify_seconds = time.perf_counter() - started
        assert report.clean
        started = time.perf_counter()
        store.repair()
        repair_seconds = time.perf_counter() - started
    rows.append(
        {
            "name": "store_integrity_scan",
            "rows": report.total,
            "verify_seconds": verify_seconds,
            "repair_seconds": repair_seconds,
            "rows_per_second": (
                report.total / verify_seconds if verify_seconds > 0 else 0.0
            ),
        }
    )

    by_name = {row["name"]: row for row in rows}
    # The supervised warm sweep is still a pure store sweep...
    assert by_name["sweep_store_warm"]["simulated"] == 0
    assert (
        by_name["sweep_store_warm"]["store_hits"]
        == by_name["sweep_store_warm"]["points"]
    )
    # ... still dramatically faster than simulating ...
    assert (
        by_name["sweep_store_warm"]["points_per_second"]
        >= 5.0 * by_name["sweep_store_cold"]["points_per_second"]
    ), "store hits are not cheaper than sweep simulation under the supervisor"
    # ... and nothing was quarantined (no chaos in a benchmark run).
    assert all(row.get("quarantined", 0) == 0 for row in rows)

    # Cross-run guard vs BENCH_5, when one exists on this machine.
    bench5_path = REPO_ROOT / "BENCH_5.json"
    bench5_cold = None
    if bench5_path.exists():
        bench5 = json.loads(bench5_path.read_text(encoding="utf-8"))
        bench5_rows = {row["name"]: row for row in bench5.get("benchmarks", [])}
        bench5_cold = bench5_rows.get("sweep_cold", {}).get("points_per_second")
    if bench5_cold:
        ratio = by_name["sweep_cold"]["points_per_second"] / bench5_cold
        rows.append(
            {
                "name": "supervised_vs_bench5_cold",
                "bench5_points_per_second": bench5_cold,
                "bench6_points_per_second": by_name["sweep_cold"][
                    "points_per_second"
                ],
                "throughput_ratio": ratio,
            }
        )
        assert ratio >= MIN_THROUGHPUT_VS_BENCH5, (
            f"supervised sweep runs at {ratio:.2f}x the BENCH_5 cold "
            f"throughput (floor {MIN_THROUGHPUT_VS_BENCH5}x)"
        )

    write_bench_report(
        "BENCH_6.json",
        schema="repro-robustness-bench/1",
        config={
            "kernels": list(CONFIG.kernels),
            "policies": list(CONFIG.policies),
            "targets": list(CONFIG.targets),
            "scenarios": list(CONFIG.scenarios),
            "scale": CONFIG.scale,
            "trials_per_stratum": CONFIG.trials,
            "batch": CONFIG.batch,
            "seed": CONFIG.seed,
            "checksum_repeats": CHECKSUM_REPEATS,
            "write_repeats": WRITE_REPEATS,
            "max_overhead_share": MAX_OVERHEAD_SHARE,
        },
        rows=rows,
    )
