#!/usr/bin/env bash
# Run the fast-path perf harness and write BENCH_1.json at the repo root.
# Extra arguments are forwarded to bench_perf.py (e.g. --quick, --workers 4).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python benchmarks/bench_perf.py "$@"
