"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures: the
expensive kernel x policy simulation matrix is built once per session
(at a reduced but representative scale) and shared, the `benchmark`
fixture times a representative unit of work, and every regenerated
artefact is written to ``benchmarks/output/`` so it can be inspected and
diffed against the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

import pytest

from repro.experiments.base import DEFAULT_CAMPAIGN_SCALE
from repro.experiments.runner import ExperimentRunner

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Scale applied to every kernel's iteration counts.  The default (0.4)
#: keeps the full 16-kernel x 4-policy matrix under ~30 s while preserving
#: the steady-state behaviour (the kernels are loop-dominated, so overhead
#: percentages are stable across scales; see EXPERIMENTS.md).  Shared with
#: the ``python -m repro`` CLI so both paths regenerate identical artefacts.
BENCHMARK_SCALE = DEFAULT_CAMPAIGN_SCALE

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def paper_run_set():
    """All 16 kernels simulated under the four Figure 8 policies."""
    runner = ExperimentRunner(scale=BENCHMARK_SCALE)
    return runner.run_all()


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def save_artifact(artifact_dir):
    """Write a regenerated table/figure to benchmarks/output/<name>.txt."""

    def _save(name: str, text: str) -> pathlib.Path:
        path = artifact_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return _save


def effective_cpus() -> int:
    """CPUs this process may actually run on — the affinity mask when
    the platform exposes one (containers and CI runners routinely pin
    far fewer cores than ``os.cpu_count()`` reports), else the count."""
    getter = getattr(os, "sched_getaffinity", None)
    if getter is not None:
        try:
            return len(getter(0))
        except OSError:
            pass
    return os.cpu_count() or 1


def host_platform() -> dict:
    """Host metadata stamped into every BENCH report, so cross-run
    comparisons (BENCH_7 vs BENCH_6 floors etc.) can be sanity-checked
    against the machine that produced the baseline.  ``cpus`` is the
    *effective* core count (affinity mask); ``cpu_count`` stays the raw
    hardware count for comparison."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpus": effective_cpus(),
        "cpu_count": os.cpu_count(),
    }


@pytest.fixture()
def write_bench_report():
    """The one ``BENCH_<n>.json`` writer all perf benchmarks share.

    Every report has the same envelope — schema id, creation time, host
    platform, the benchmark's config dict, and its measurement rows —
    historically duplicated (modulo drift) in each ``test_bench_*``
    module.
    """

    def _write(filename: str, *, schema: str, config: dict, rows: list) -> pathlib.Path:
        report = {
            "schema": schema,
            "created_unix": time.time(),
            "platform": host_platform(),
            "config": dict(config),
            "benchmarks": list(rows),
        }
        path = REPO_ROOT / filename
        path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        return path

    return _write
