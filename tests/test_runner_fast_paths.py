"""The experiment runner's fast paths: trace cache and process fan-out."""

from __future__ import annotations

import pytest

from repro.experiments.runner import (
    ExperimentRunner,
    cached_kernel_trace,
    clear_kernel_trace_cache,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_kernel_trace_cache()
    yield
    clear_kernel_trace_cache()


class TestTraceCache:
    def test_cache_returns_same_objects(self):
        program_a, trace_a = cached_kernel_trace("matrix", 0.1)
        program_b, trace_b = cached_kernel_trace("matrix", 0.1)
        assert program_a is program_b
        assert trace_a is trace_b

    def test_cache_keyed_by_scale(self):
        # Different scales are distinct cache entries (kernels quantize
        # iteration counts, so lengths may coincide; identity may not).
        _, small = cached_kernel_trace("matrix", 0.1)
        _, large = cached_kernel_trace("matrix", 0.2)
        assert small is not large
        _, small_again = cached_kernel_trace("matrix", 0.1)
        assert small_again is small

    def test_runners_share_traces(self):
        first = ExperimentRunner(scale=0.1, kernels=["matrix"]).run_all()
        second = ExperimentRunner(scale=0.1, kernels=["matrix"]).run_all()
        first_trace = first.results["matrix"]["no-ecc"].trace
        second_trace = second.results["matrix"]["no-ecc"].trace
        assert first_trace is second_trace

    def test_clear_cache(self):
        _, before = cached_kernel_trace("matrix", 0.1)
        clear_kernel_trace_cache()
        _, after = cached_kernel_trace("matrix", 0.1)
        assert before is not after

    def test_lru_eviction_keeps_recently_hit_entries(self, monkeypatch):
        # Shrink the cap so eviction is cheap to provoke: three tiny
        # (kernel, scale) entries fill the cache.
        from repro.experiments import runner

        monkeypatch.setattr(runner, "KERNEL_TRACE_CACHE_MAX_ENTRIES", 3)
        cached_kernel_trace("rspeed", 0.01)  # A
        cached_kernel_trace("rspeed", 0.02)  # B
        cached_kernel_trace("rspeed", 0.03)  # C
        # Touch A: under LRU it becomes the youngest; under FIFO it
        # would still be the first to go.
        _, trace_a = cached_kernel_trace("rspeed", 0.01)
        cached_kernel_trace("rspeed", 0.04)  # D evicts B, not A
        keys = list(runner._KERNEL_CACHE)
        assert ("rspeed", 0.01) in keys
        assert ("rspeed", 0.02) not in keys
        # A must still be the cached object, not a rebuild.
        _, trace_a_again = cached_kernel_trace("rspeed", 0.01)
        assert trace_a_again is trace_a

    def test_lru_eviction_order_is_recency_not_insertion(self, monkeypatch):
        from repro.experiments import runner

        monkeypatch.setattr(runner, "KERNEL_TRACE_CACHE_MAX_ENTRIES", 3)
        scales = (0.01, 0.02, 0.03)
        for scale in scales:
            cached_kernel_trace("rspeed", scale)
        # Re-touch in reverse: recency order becomes 0.03, 0.02, 0.01.
        for scale in reversed(scales):
            cached_kernel_trace("rspeed", scale)
        cached_kernel_trace("rspeed", 0.04)
        cached_kernel_trace("rspeed", 0.05)
        keys = list(runner._KERNEL_CACHE)
        # The two least recently used (0.03 then 0.02) were evicted.
        assert ("rspeed", 0.03) not in keys
        assert ("rspeed", 0.02) not in keys
        assert ("rspeed", 0.01) in keys


class TestParallelRunner:
    KERNELS = ["cacheb", "matrix", "puwmod"]

    def test_parallel_matches_serial(self):
        serial = ExperimentRunner(scale=0.1, kernels=self.KERNELS).run_all()
        parallel = ExperimentRunner(
            scale=0.1, kernels=self.KERNELS, max_workers=2
        ).run_all()
        assert list(parallel.results) == list(serial.results)
        for name, per_policy in serial.results.items():
            assert list(parallel.results[name]) == list(per_policy)
            for policy, serial_result in per_policy.items():
                parallel_result = parallel.results[name][policy]
                assert (
                    parallel_result.stats.as_dict() == serial_result.stats.as_dict()
                ), f"{name}/{policy}"

    def test_parallel_reattaches_traces(self):
        parallel = ExperimentRunner(
            scale=0.1, kernels=self.KERNELS, max_workers=2
        ).run_all()
        for name, per_policy in parallel.results.items():
            traces = {id(result.trace) for result in per_policy.values()}
            assert len(traces) == 1, f"{name}: policies must share one trace"
            assert next(iter(per_policy.values())).trace is not None

    def test_run_all_caches_run_set(self):
        runner = ExperimentRunner(scale=0.1, kernels=["matrix"], max_workers=2)
        assert runner.run_all() is runner.run_all()
