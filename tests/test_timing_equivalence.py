"""Regression: the fast-path timing engine is cycle-identical to the seed.

Every kernel is replayed under every Figure 8 policy (plus the
write-through parity scheme) through both the optimized
:class:`~repro.pipeline.timing.TimingPipeline` and the preserved seed
engine :class:`~repro.pipeline.reference_timing.ReferenceTimingPipeline`.
Total cycles, the full stall breakdown, look-ahead statistics, hierarchy
counters and chronograms must all match — this is what guarantees that
none of the paper's reported numbers moved.
"""

from __future__ import annotations

import pytest

from repro.core.policies import EccPolicyKind, make_policy
from repro.functional.simulator import run_program
from repro.pipeline.config import CoreConfig, PipelineConfig
from repro.pipeline.reference_timing import ReferenceTimingPipeline
from repro.pipeline.timing import TimingPipeline
from repro.simulation import build_hierarchy
from repro.workloads import KERNEL_NAMES, build_kernel

POLICIES = [
    EccPolicyKind.NO_ECC,
    EccPolicyKind.EXTRA_CYCLE,
    EccPolicyKind.EXTRA_STAGE,
    EccPolicyKind.LAEC,
]

SCALE = 0.1


def _run_both(policy_kind, trace, *, chronogram_window=0, pipeline_config=None):
    policy = make_policy(policy_kind)
    core_config = CoreConfig().with_policy(policy)
    config = pipeline_config or core_config.pipeline
    if chronogram_window:
        config = config.with_chronogram(chronogram_window)
    reference = ReferenceTimingPipeline(
        policy, build_hierarchy(core_config), config
    ).run(trace)
    optimized = TimingPipeline(policy, build_hierarchy(core_config), config).run(trace)
    return reference, optimized


@pytest.fixture(scope="module")
def kernel_traces():
    traces = {}
    for name in KERNEL_NAMES:
        program = build_kernel(name, scale=SCALE)
        traces[name] = run_program(program)
    return traces


@pytest.mark.parametrize("policy_kind", POLICIES, ids=lambda kind: kind.value)
def test_engines_identical_on_all_kernels(kernel_traces, policy_kind):
    for name, trace in kernel_traces.items():
        reference, optimized = _run_both(policy_kind, trace)
        ref_stats = reference.stats.as_dict()
        fast_stats = optimized.stats.as_dict()
        assert fast_stats == ref_stats, (
            f"{name}/{policy_kind.value}: "
            f"{ {k: (ref_stats[k], fast_stats[k]) for k in ref_stats if ref_stats[k] != fast_stats[k]} }"
        )
        assert optimized.stats.stalls.as_dict() == reference.stats.stalls.as_dict()
        assert optimized.dl1_stats == reference.dl1_stats
        assert optimized.bus_transactions == reference.bus_transactions
        assert optimized.bus_contention_cycles == reference.bus_contention_cycles


def test_wt_parity_policy_identical(kernel_traces):
    for name in ("matrix", "pntrch", "ttsprk"):
        reference, optimized = _run_both(EccPolicyKind.WT_PARITY, kernel_traces[name])
        assert optimized.stats.as_dict() == reference.stats.as_dict(), name


@pytest.mark.parametrize("policy_kind", POLICIES, ids=lambda kind: kind.value)
def test_chronograms_identical(kernel_traces, policy_kind):
    trace = kernel_traces["matrix"]
    reference, optimized = _run_both(policy_kind, trace, chronogram_window=48)
    ref_entries = reference.chronogram.entries
    fast_entries = optimized.chronogram.entries
    assert len(fast_entries) == len(ref_entries)
    for ref_entry, fast_entry in zip(ref_entries, fast_entries):
        assert fast_entry.index == ref_entry.index
        assert fast_entry.label == ref_entry.label
        assert fast_entry.occupancy == ref_entry.occupancy


def test_non_default_pipeline_config_identical(kernel_traces):
    config = PipelineConfig(
        taken_branch_penalty=2,
        indirect_branch_penalty=3,
        mul_latency=4,
        div_latency=9,
        write_buffer_entries=2,
    )
    for policy_kind in (EccPolicyKind.EXTRA_STAGE, EccPolicyKind.LAEC):
        reference, optimized = _run_both(
            policy_kind, kernel_traces["ttsprk"], pipeline_config=config
        )
        assert optimized.stats.as_dict() == reference.stats.as_dict()


def test_optimized_engine_does_not_mutate_shared_write_buffer(kernel_traces):
    """Seed behaviour: run() stamped its configured capacity onto the
    shared hierarchy's write buffer.  The fast engine must not."""
    policy = make_policy(EccPolicyKind.NO_ECC)
    core_config = CoreConfig().with_policy(policy)
    hierarchy = build_hierarchy(core_config)
    hierarchy.write_buffer.capacity = 17  # sentinel
    config = PipelineConfig(write_buffer_entries=2)
    TimingPipeline(policy, hierarchy, config).run(kernel_traces["matrix"])
    assert hierarchy.write_buffer.capacity == 17
