"""Tests for instruction classification and def/use extraction."""

from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction, InstructionClass, Mnemonic, make_nop


def _single(source_line: str) -> Instruction:
    program = assemble(f"main:\n    {source_line}\n    halt\n")
    return program.instructions[0]


class TestClassification:
    def test_alu_class(self):
        assert _single("add r1, r2, r3").klass is InstructionClass.ALU
        assert _single("xor r1, 5, r3").klass is InstructionClass.ALU

    def test_memory_classes(self):
        assert _single("ld [r1], r2").klass is InstructionClass.LOAD
        assert _single("st r2, [r1]").klass is InstructionClass.STORE

    def test_control_classes(self):
        assert _single("ba main").klass is InstructionClass.BRANCH
        assert _single("call main").klass is InstructionClass.CALL
        assert _single("jmpl r31, 0, r0").klass is InstructionClass.JUMP

    def test_mul_div_classes(self):
        assert _single("smul r1, r2, r3").klass is InstructionClass.MUL
        assert _single("udiv r1, r2, r3").klass is InstructionClass.DIV

    def test_memory_access_width(self):
        assert _single("ld [r1], r2").memory_bytes == 4
        assert _single("lduh [r1], r2").memory_bytes == 2
        assert _single("ldub [r1], r2").memory_bytes == 1
        assert _single("add r1, r2, r3").memory_bytes == 0


class TestDefUse:
    def test_alu_sources_and_destination(self):
        instr = _single("add r1, r2, r3")
        assert instr.source_registers() == (1, 2)
        assert instr.destination_register() == 3

    def test_immediate_form_has_single_source(self):
        instr = _single("add r1, 9, r3")
        assert instr.source_registers() == (1,)

    def test_zero_register_excluded(self):
        instr = _single("add r0, r0, r0")
        assert instr.source_registers() == ()
        assert instr.destination_register() is None

    def test_load_address_registers(self):
        displacement = _single("ld [r4+8], r2")
        indexed = _single("ld [r4+r6], r2")
        assert displacement.address_registers() == (4,)
        assert indexed.address_registers() == (4, 6)

    def test_store_sources_include_data_register(self):
        store = _single("st r7, [r4+8]")
        assert set(store.source_registers()) == {4, 7}
        # But the *address* registers exclude the stored data.
        assert store.address_registers() == (4,)
        assert store.destination_register() is None

    def test_branch_reads_condition_codes(self):
        assert _single("bne main").reads_condition_codes
        assert not _single("ba main").reads_condition_codes

    def test_cc_setting_instructions(self):
        assert _single("subcc r1, r2, r0").sets_condition_codes
        assert not _single("sub r1, r2, r0").sets_condition_codes

    def test_non_memory_has_no_address_registers(self):
        assert _single("add r1, r2, r3").address_registers() == ()


class TestRendering:
    def test_render_alu(self):
        assert _single("add r1, r2, r3").render() == "add r1, r2, r3"

    def test_render_load_store(self):
        assert _single("ld [r1+4], r2").render() == "ld [r1+4], r2"
        assert _single("st r2, [r1]").render() == "st r2, [r1]"

    def test_render_set(self):
        assert _single("set 255, r9").render() == "set 0xff, r9"

    def test_nop_helper(self):
        nop = make_nop(address=64)
        assert nop.mnemonic is Mnemonic.NOP
        assert nop.address == 64
        assert nop.render() == "nop"
