"""Equivalence of the table-driven codecs against the reference bit loops.

The fast codecs in ``repro.ecc`` must be *bit-identical* to the seed
implementations preserved in :mod:`repro.ecc.reference`: same codewords,
same :class:`~repro.ecc.codec.DecodeResult` (data, status, syndrome,
corrected bit) for clean words, for every possible single-bit flip and
for sampled double-bit flips.  The fault campaign percentages depend on
nothing else, so these tests are what lets the experiments trust the
fast path.
"""

from __future__ import annotations

import random

import pytest

from repro.ecc import (
    FaultInjector,
    FaultModel,
    HammingSecCode,
    HsiaoSecDedCode,
    ParityCode,
)
from repro.ecc.reference import (
    REFERENCE_CODES,
    ReferenceHammingSecCode,
    ReferenceHsiaoSecDedCode,
    ReferenceParityCode,
)

PAIRS = [
    pytest.param(ParityCode, ReferenceParityCode, id="parity"),
    pytest.param(HammingSecCode, ReferenceHammingSecCode, id="hamming"),
    pytest.param(HsiaoSecDedCode, ReferenceHsiaoSecDedCode, id="secded"),
]


def sample_words(data_bits: int, count: int = 24, seed: int = 99):
    rng = random.Random(seed)
    corners = [0, 1, (1 << data_bits) - 1, 0x5555_5555 & ((1 << data_bits) - 1)]
    return corners + [rng.getrandbits(data_bits) for _ in range(count)]


@pytest.mark.parametrize("fast_cls, ref_cls", PAIRS)
class TestCodecEquivalence:
    def test_encode_identical(self, fast_cls, ref_cls):
        fast, ref = fast_cls(), ref_cls()
        for word in sample_words(fast.data_bits):
            assert fast.encode(word) == ref.encode(word)

    def test_clean_and_exhaustive_single_bit_decode_identical(self, fast_cls, ref_cls):
        fast, ref = fast_cls(), ref_cls()
        for word in sample_words(fast.data_bits, count=12):
            codeword = ref.encode(word)
            assert fast.decode(codeword) == ref.decode(codeword)
            for position in range(fast.total_bits):
                corrupted = codeword ^ (1 << position)
                assert fast.decode(corrupted) == ref.decode(corrupted), (
                    f"single-bit flip at {position} of word {word:#x}"
                )

    def test_sampled_double_bit_decode_identical(self, fast_cls, ref_cls):
        fast, ref = fast_cls(), ref_cls()
        rng = random.Random(2019)
        for word in sample_words(fast.data_bits, count=8):
            codeword = ref.encode(word)
            for _ in range(64):
                first, second = rng.sample(range(fast.total_bits), 2)
                corrupted = codeword ^ (1 << first) ^ (1 << second)
                assert fast.decode(corrupted) == ref.decode(corrupted), (
                    f"double-bit flip at ({first}, {second}) of word {word:#x}"
                )

    def test_batch_apis_match_scalar(self, fast_cls, ref_cls):
        fast, ref = fast_cls(), ref_cls()
        words = sample_words(fast.data_bits)
        codewords = fast.encode_many(words)
        assert codewords == [ref.encode(word) for word in words]
        rng = random.Random(5)
        corrupted = [
            codeword ^ (1 << rng.randrange(fast.total_bits))
            for codeword in codewords
        ]
        assert fast.decode_many(corrupted) == [ref.decode(c) for c in corrupted]
        # The reference classes inherit the generic batch implementation.
        assert ref.encode_many(words) == codewords

    def test_batch_decode_multi_bit_identical(self, fast_cls, ref_cls):
        """Randomized codeword arrays with 0–4 flips per word.

        The batched replay backend triages SECDED-correctable flips
        analytically and leans on ``decode_many`` for everything else,
        so the batch path must agree with the scalar reference codec on
        multi-bit (detect-but-uncorrectable, and for plain Hamming
        miscorrected) patterns too — not just the single-flip campaign
        common case.
        """
        fast, ref = fast_cls(), ref_cls()
        rng = random.Random(77)
        corrupted = []
        for word in sample_words(fast.data_bits, count=40, seed=7):
            codeword = ref.encode(word)
            flips = rng.randrange(5)
            for position in rng.sample(range(fast.total_bits), flips):
                codeword ^= 1 << position
            corrupted.append(codeword)
        batch = fast.decode_many(corrupted)
        assert batch == [ref.decode(c) for c in corrupted]
        # The sample must actually exercise the uncorrectable branch:
        # parity detects every odd-weight flip, SECDED every double.
        # (Hamming is excluded — double errors usually miscorrect, which
        # is exactly why the paper's caches don't use it.)
        if fast_cls is not HammingSecCode:
            from repro.ecc.codec import DecodeStatus

            statuses = {result.status for result in batch}
            assert DecodeStatus.DETECTED_UNCORRECTABLE in statuses

    def test_batch_apis_validate_range(self, fast_cls, ref_cls):
        fast = fast_cls()
        with pytest.raises(ValueError):
            fast.encode_many([0, 1 << fast.data_bits])
        with pytest.raises(ValueError):
            fast.decode_many([0, 1 << fast.total_bits])

    def test_smaller_width_equivalence(self, fast_cls, ref_cls):
        fast, ref = fast_cls(16), ref_cls(16)
        for word in sample_words(16, count=8):
            codeword = ref.encode(word)
            assert fast.encode(word) == codeword
            for position in range(fast.total_bits):
                corrupted = codeword ^ (1 << position)
                assert fast.decode(corrupted) == ref.decode(corrupted)


class TestCampaignEquivalence:
    """The seeded campaign must report identical trials on both codecs."""

    @pytest.mark.parametrize("name", sorted(REFERENCE_CODES))
    @pytest.mark.parametrize("flips", [1, 2])
    def test_campaign_records_identical(self, name, flips):
        fast = {"parity": ParityCode, "hamming": HammingSecCode,
                "secded": HsiaoSecDedCode}[name]()
        ref = REFERENCE_CODES[name]()
        model = FaultModel(multiplicity_weights={flips: 1.0})
        fast_report = FaultInjector(fast, rng=random.Random(2019)).run_campaign(
            trials=300, fault_model=model
        )
        ref_report = FaultInjector(ref, rng=random.Random(2019)).run_campaign(
            trials=300, fault_model=model
        )
        assert [
            (r.data, tuple(r.flipped_bits), r.status, r.outcome)
            for r in fast_report.records
        ] == [
            (r.data, tuple(r.flipped_bits), r.status, r.outcome)
            for r in ref_report.records
        ]


class TestRngThreading:
    """Explicit RNG instances: reproducible and parallel-safe."""

    def test_same_seed_same_report(self):
        code = HsiaoSecDedCode()
        first = FaultInjector(code, seed=7).run_campaign(trials=200)
        second = FaultInjector(code, rng=random.Random(7)).run_campaign(trials=200)
        assert [
            (r.data, tuple(r.flipped_bits), r.outcome) for r in first.records
        ] == [(r.data, tuple(r.flipped_bits), r.outcome) for r in second.records]

    def test_interleaved_injectors_are_independent(self):
        """Two injectors with private RNGs do not perturb each other —
        the property that makes per-worker campaigns safe."""
        sequential = FaultInjector(ParityCode(), seed=11).run_campaign(trials=120)

        first = FaultInjector(ParityCode(), rng=random.Random(11))
        second = FaultInjector(HsiaoSecDedCode(), rng=random.Random(11))
        interleaved_records = []
        for _ in range(4):
            interleaved_records.extend(first.run_campaign(trials=30).records)
            second.run_campaign(trials=17)  # noise on a different stream
        assert [
            (r.data, tuple(r.flipped_bits), r.outcome)
            for r in interleaved_records
        ] == [
            (r.data, tuple(r.flipped_bits), r.outcome) for r in sequential.records
        ]

    def test_global_random_state_untouched(self):
        random.seed(1234)
        expected = random.random()
        random.seed(1234)
        FaultInjector(HsiaoSecDedCode(), seed=3).run_campaign(trials=64)
        assert random.random() == expected
