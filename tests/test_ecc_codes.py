"""Tests for the parity, Hamming and Hsiao SECDED codes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc import (
    DecodeStatus,
    HammingSecCode,
    HsiaoSecDedCode,
    ParityCode,
    get_code,
)
from repro.ecc.codec import available_codes

words = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestRegistry:
    def test_registered_codes(self):
        assert {"parity", "hamming", "secded"} <= set(available_codes())

    def test_get_code(self):
        assert isinstance(get_code("secded"), HsiaoSecDedCode)
        assert isinstance(get_code("parity"), ParityCode)

    def test_unknown_code(self):
        with pytest.raises(KeyError):
            get_code("turbo")

    def test_describe_mentions_geometry(self):
        description = HsiaoSecDedCode().describe()
        assert "(39,32)" in description


class TestParity:
    def test_clean_round_trip(self):
        code = ParityCode()
        result = code.roundtrip(0x12345678)
        assert result.status is DecodeStatus.CLEAN
        assert result.data == 0x12345678

    def test_single_flip_detected(self):
        code = ParityCode()
        codeword = code.encode(0xA5A5A5A5)
        corrupted = code.flip_bits(codeword, [7])
        assert code.decode(corrupted).status is DecodeStatus.DETECTED_UNCORRECTABLE

    def test_double_flip_escapes_detection(self):
        code = ParityCode()
        codeword = code.encode(0xA5A5A5A5)
        corrupted = code.flip_bits(codeword, [3, 17])
        # Even number of flips is invisible to parity (and data is wrong).
        result = code.decode(corrupted)
        assert result.status is DecodeStatus.CLEAN
        assert result.data != 0xA5A5A5A5

    def test_odd_parity_variant(self):
        code = ParityCode(even=False)
        assert code.roundtrip(0).status is DecodeStatus.CLEAN

    @given(words)
    def test_parity_bit_matches_popcount(self, data):
        code = ParityCode()
        parity_bit = code.encode(data) >> 32
        assert parity_bit == bin(data).count("1") % 2

    def test_storage_overhead(self):
        assert ParityCode().storage_overhead == pytest.approx(1 / 32)


class TestHamming:
    def test_geometry(self):
        code = HammingSecCode()
        assert code.data_bits == 32
        assert code.check_bits == 6

    @given(words)
    @settings(max_examples=50)
    def test_clean_round_trip(self, data):
        assert HammingSecCode().roundtrip(data).status is DecodeStatus.CLEAN

    @given(words, st.integers(min_value=0, max_value=37))
    @settings(max_examples=50)
    def test_single_error_corrected(self, data, bit):
        code = HammingSecCode()
        corrupted = code.flip_bits(code.encode(data), [bit])
        result = code.decode(corrupted)
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data

    def test_double_error_is_not_reliable(self):
        # Plain Hamming SEC mis-corrects most double errors: that is the
        # documented reason the paper's DL1 uses SECDED instead.
        code = HammingSecCode()
        data = 0x0F0F0F0F
        corrupted = code.flip_bits(code.encode(data), [0, 1])
        result = code.decode(corrupted)
        assert result.data != data or result.status is not DecodeStatus.CLEAN


class TestHsiaoSecDed:
    def test_geometry_39_32(self):
        code = HsiaoSecDedCode()
        assert code.total_bits == 39
        assert code.check_bits == 7

    def test_columns_are_odd_weight_and_unique(self):
        code = HsiaoSecDedCode()
        columns = code.parity_check_columns
        assert len(set(columns)) == 32
        assert all(bin(column).count("1") % 2 == 1 for column in columns)

    @given(words)
    @settings(max_examples=50)
    def test_clean_round_trip(self, data):
        assert HsiaoSecDedCode().roundtrip(data).status is DecodeStatus.CLEAN

    @given(words, st.integers(min_value=0, max_value=38))
    @settings(max_examples=80)
    def test_every_single_error_corrected(self, data, bit):
        code = HsiaoSecDedCode()
        corrupted = code.flip_bits(code.encode(data), [bit])
        result = code.decode(corrupted)
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data

    @given(
        words,
        st.lists(
            st.integers(min_value=0, max_value=38), min_size=2, max_size=2, unique=True
        ),
    )
    @settings(max_examples=80)
    def test_every_double_error_detected_not_miscorrected(self, data, bits):
        code = HsiaoSecDedCode()
        corrupted = code.flip_bits(code.encode(data), bits)
        result = code.decode(corrupted)
        assert result.status is DecodeStatus.DETECTED_UNCORRECTABLE

    def test_exhaustive_single_and_double_for_one_word(self):
        code = HsiaoSecDedCode()
        data = 0xDEADBEEF
        codeword = code.encode(data)
        for bit in range(code.total_bits):
            assert code.decode(codeword ^ (1 << bit)).data == data
        for first in range(code.total_bits):
            for second in range(first + 1, code.total_bits):
                corrupted = codeword ^ (1 << first) ^ (1 << second)
                assert (
                    code.decode(corrupted).status
                    is DecodeStatus.DETECTED_UNCORRECTABLE
                )

    def test_out_of_range_data_rejected(self):
        with pytest.raises(ValueError):
            HsiaoSecDedCode().encode(1 << 32)

    def test_out_of_range_codeword_rejected(self):
        with pytest.raises(ValueError):
            HsiaoSecDedCode().decode(1 << 39)

    def test_flip_bits_validates_positions(self):
        code = HsiaoSecDedCode()
        with pytest.raises(ValueError):
            code.flip_bits(0, [39])
