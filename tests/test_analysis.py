"""Tests for the analysis layer: metrics, energy, WCET, timing budget, reporting."""

import pytest

from repro.analysis.energy import EnergyModel, estimate_energy
from repro.analysis.metrics import PolicyComparison, compare_policies, geometric_mean
from repro.analysis.reporting import Table, bar_chart, percentage, render_csv
from repro.analysis.timing_budget import TimingBudget
from repro.analysis.wcet import WcetAnalysis
from repro.workloads import build_kernel


class TestMetrics:
    def _comparison(self) -> PolicyComparison:
        comparison = PolicyComparison(baseline_policy="no-ecc")
        comparison.add("a", "no-ecc", 1000)
        comparison.add("a", "laec", 1040)
        comparison.add("a", "extra-stage", 1100)
        comparison.add("b", "no-ecc", 2000)
        comparison.add("b", "laec", 2020)
        comparison.add("b", "extra-stage", 2240)
        return comparison

    def test_increase_and_average(self):
        comparison = self._comparison()
        assert comparison.increase("a", "laec") == pytest.approx(0.04)
        assert comparison.average_increase("extra-stage") == pytest.approx(
            (0.10 + 0.12) / 2
        )

    def test_improvement_over(self):
        comparison = self._comparison()
        improvement = comparison.improvement_over("laec", "extra-stage")
        assert improvement == pytest.approx(((0.10 - 0.04) + (0.12 - 0.01)) / 2)

    def test_rows_include_average(self):
        rows = self._comparison().as_rows()
        assert rows[-1]["benchmark"] == "average"
        assert len(rows) == 3

    def test_geomean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_compare_policies_from_results(self, small_kernel_results):
        comparison = compare_policies(small_kernel_results)
        assert set(comparison.benchmarks()) == set(small_kernel_results)
        for benchmark in comparison.benchmarks():
            assert comparison.increase(benchmark, "laec") >= -1e-9


class TestEnergy:
    def test_leakage_tracks_execution_time(self, small_kernel_results):
        per_policy = small_kernel_results["puwmod"]
        baseline = estimate_energy(per_policy["no-ecc"])
        extra_stage = estimate_energy(per_policy["extra-stage"])
        deltas = extra_stage.relative_to(baseline)
        time_increase = (
            per_policy["extra-stage"].cycles / per_policy["no-ecc"].cycles - 1.0
        )
        assert deltas["leakage"] == pytest.approx(time_increase, abs=1e-9)

    def test_laec_dynamic_overhead_small_versus_extra_stage(self, small_kernel_results):
        # The paper's "< 1 % power impact" claim compares LAEC against the
        # other ECC-protected designs (the ECC check itself is paid by all
        # of them); the LAEC-specific additions are the adder and the two
        # register-file read ports.
        per_policy = small_kernel_results["puwmod"]
        extra_stage = estimate_energy(per_policy["extra-stage"])
        laec = estimate_energy(per_policy["laec"])
        assert laec.relative_to(extra_stage)["dynamic"] < 0.01

    def test_breakdown_components_positive(self, small_kernel_results):
        report = estimate_energy(small_kernel_results["matrix"]["laec"])
        assert report.total > 0
        assert all(value >= 0 for value in report.breakdown.values())

    def test_lookahead_energy_counts_ports_and_adder(self):
        model = EnergyModel()
        assert model.lookahead_overhead_per_load() == pytest.approx(
            2 * model.register_file_read_energy + model.adder_energy
        )


class TestTimingBudget:
    def test_adder_fits_by_default(self):
        budget = TimingBudget()
        assert budget.adder_fits_in_register_stage()
        assert budget.register_stage_slack_ns > 0

    def test_summary_keys(self):
        summary = TimingBudget().summary()
        assert {"adder_fits", "ecc_fits_in_cycle", "register_stage_slack_ns"} <= set(summary)

    def test_tight_budget_fails(self):
        budget = TimingBudget(register_file_access_ns=1.0, dl1_access_ns=1.1, adder_32bit_ns=0.5)
        assert not budget.adder_fits_in_register_stage()


class TestWcet:
    def test_wt_inflates_more_than_wb(self):
        program = build_kernel("puwmod", scale=0.1)
        analysis = WcetAnalysis(contenders=3, safety_margin=1.2)
        study = analysis.write_policy_study(program)
        wt = study["wt-parity"]
        wb = study["wb-laec"]
        assert wt.contention_inflation > wb.contention_inflation
        assert wt.wcet_estimate_cycles > wb.wcet_estimate_cycles
        # The safety margin is applied on top of the contended observation.
        assert wt.wcet_estimate_cycles == int(round(wt.observed_contention_cycles * 1.2))


class TestReporting:
    def test_table_render_and_csv(self):
        table = Table(title="demo", columns=["name", "value"])
        table.add_row(name="x", value=1.5)
        table.add_row(name="y", value=2)
        text = table.render()
        assert "demo" in text and "x" in text
        csv = render_csv(table)
        assert csv.splitlines()[0] == "name,value"
        assert len(csv.splitlines()) == 3

    def test_unknown_column_rejected(self):
        table = Table(title="demo", columns=["a"])
        with pytest.raises(KeyError):
            table.add_row(b=1)
        with pytest.raises(KeyError):
            table.column("b")

    def test_percentage_and_bar_chart(self):
        assert percentage(0.173) == "17.3%"
        chart = bar_chart({"laec": 0.04, "extra-stage": 0.10})
        assert "laec" in chart and "#" in chart
        assert bar_chart({}) == "(no data)"
