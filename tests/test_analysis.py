"""Tests for the analysis layer: metrics, energy, WCET, timing budget, reporting."""

import pytest

from repro.analysis.energy import EnergyModel, estimate_energy
from repro.analysis.metrics import PolicyComparison, compare_policies, geometric_mean
from repro.analysis.reporting import Table, bar_chart, percentage, render_csv
from repro.analysis.timing_budget import TimingBudget
from repro.analysis.wcet import WcetAnalysis
from repro.workloads import build_kernel


class TestMetrics:
    def _comparison(self) -> PolicyComparison:
        comparison = PolicyComparison(baseline_policy="no-ecc")
        comparison.add("a", "no-ecc", 1000)
        comparison.add("a", "laec", 1040)
        comparison.add("a", "extra-stage", 1100)
        comparison.add("b", "no-ecc", 2000)
        comparison.add("b", "laec", 2020)
        comparison.add("b", "extra-stage", 2240)
        return comparison

    def test_increase_and_average(self):
        comparison = self._comparison()
        assert comparison.increase("a", "laec") == pytest.approx(0.04)
        assert comparison.average_increase("extra-stage") == pytest.approx(
            (0.10 + 0.12) / 2
        )

    def test_improvement_over(self):
        comparison = self._comparison()
        improvement = comparison.improvement_over("laec", "extra-stage")
        assert improvement == pytest.approx(((0.10 - 0.04) + (0.12 - 0.01)) / 2)

    def test_rows_include_average(self):
        rows = self._comparison().as_rows()
        assert rows[-1]["benchmark"] == "average"
        assert len(rows) == 3

    def test_geomean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_compare_policies_from_results(self, small_kernel_results):
        comparison = compare_policies(small_kernel_results)
        assert set(comparison.benchmarks()) == set(small_kernel_results)
        for benchmark in comparison.benchmarks():
            assert comparison.increase(benchmark, "laec") >= -1e-9


class TestEnergy:
    def test_leakage_tracks_execution_time(self, small_kernel_results):
        per_policy = small_kernel_results["puwmod"]
        baseline = estimate_energy(per_policy["no-ecc"])
        extra_stage = estimate_energy(per_policy["extra-stage"])
        deltas = extra_stage.relative_to(baseline)
        time_increase = (
            per_policy["extra-stage"].cycles / per_policy["no-ecc"].cycles - 1.0
        )
        assert deltas["leakage"] == pytest.approx(time_increase, abs=1e-9)

    def test_laec_dynamic_overhead_small_versus_extra_stage(self, small_kernel_results):
        # The paper's "< 1 % power impact" claim compares LAEC against the
        # other ECC-protected designs (the ECC check itself is paid by all
        # of them); the LAEC-specific additions are the adder and the two
        # register-file read ports.
        per_policy = small_kernel_results["puwmod"]
        extra_stage = estimate_energy(per_policy["extra-stage"])
        laec = estimate_energy(per_policy["laec"])
        assert laec.relative_to(extra_stage)["dynamic"] < 0.01

    def test_breakdown_components_positive(self, small_kernel_results):
        report = estimate_energy(small_kernel_results["matrix"]["laec"])
        assert report.total > 0
        assert all(value >= 0 for value in report.breakdown.values())

    def test_lookahead_energy_counts_ports_and_adder(self):
        model = EnergyModel()
        assert model.lookahead_overhead_per_load() == pytest.approx(
            2 * model.register_file_read_energy + model.adder_energy
        )


class TestTimingBudget:
    def test_adder_fits_by_default(self):
        budget = TimingBudget()
        assert budget.adder_fits_in_register_stage()
        assert budget.register_stage_slack_ns > 0

    def test_summary_keys(self):
        summary = TimingBudget().summary()
        assert {"adder_fits", "ecc_fits_in_cycle", "register_stage_slack_ns"} <= set(summary)

    def test_tight_budget_fails(self):
        budget = TimingBudget(register_file_access_ns=1.0, dl1_access_ns=1.1, adder_32bit_ns=0.5)
        assert not budget.adder_fits_in_register_stage()


class TestWcet:
    def test_wt_inflates_more_than_wb(self):
        program = build_kernel("puwmod", scale=0.1)
        analysis = WcetAnalysis(contenders=3, safety_margin=1.2)
        study = analysis.write_policy_study(program)
        wt = study["wt-parity"]
        wb = study["wb-laec"]
        assert wt.contention_inflation > wb.contention_inflation
        assert wt.wcet_estimate_cycles > wb.wcet_estimate_cycles
        # The safety margin is applied on top of the contended observation.
        assert wt.wcet_estimate_cycles == int(round(wt.observed_contention_cycles * 1.2))


class TestReporting:
    def test_table_render_and_csv(self):
        table = Table(title="demo", columns=["name", "value"])
        table.add_row(name="x", value=1.5)
        table.add_row(name="y", value=2)
        text = table.render()
        assert "demo" in text and "x" in text
        csv = render_csv(table)
        assert csv.splitlines()[0] == "name,value"
        assert len(csv.splitlines()) == 3

    def test_unknown_column_rejected(self):
        table = Table(title="demo", columns=["a"])
        with pytest.raises(KeyError):
            table.add_row(b=1)
        with pytest.raises(KeyError):
            table.column("b")

    def test_percentage_and_bar_chart(self):
        assert percentage(0.173) == "17.3%"
        chart = bar_chart({"laec": 0.04, "extra-stage": 0.10})
        assert "laec" in chart and "#" in chart
        assert bar_chart({}) == "(no data)"


# ===================================================================== #
# The static analyzer (repro.analysis.lint)                             #
# ===================================================================== #

import json
import pathlib
import textwrap

from repro import __main__ as cli
from repro.analysis.lint import (
    REPORT_VERSION,
    classify,
    lint_paths,
    lint_sources,
    load_baseline,
    parse_documented_names,
    validate_report,
    write_baseline,
)
from repro.analysis.lint.rules import DocumentedNames
from repro.analysis.lint.waivers import parse_waivers

REPO = pathlib.Path(__file__).resolve().parents[1]
ERRORS_SOURCE = (REPO / "src" / "repro" / "campaign" / "errors.py").read_text(
    encoding="utf-8"
)


def run_lint(source, *, cls="core", tags=(), name="fixture.py", documented=None):
    """Lint one dedented fixture module pinned to a manifest class."""
    overrides = [(name, cls, frozenset(tags))]
    return lint_sources(
        {name: textwrap.dedent(source)},
        documented=documented,
        overrides=overrides,
    )


def fired(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


class TestManifest:
    def test_real_tree_classes(self):
        assert classify("src/repro/store/canonical.py").module_class == "serialization"
        assert classify("src/repro/campaign/errors.py").module_class == "serialization"
        assert classify("src/repro/telemetry/trace.py").module_class == "telemetry"
        assert classify("src/repro/analysis/lint/engine.py").module_class == "tool"
        assert classify("src/repro/__main__.py").module_class == "cli"
        assert classify("src/repro/campaign/engine.py").module_class == "core"

    def test_sharding_tags(self):
        verdict = classify("src/repro/store/sharding.py")
        assert verdict.has_tag("allow-pid") and verdict.has_tag("store-api")
        assert not classify("src/repro/campaign/chaos.py").has_tag("allow-pid")

    def test_overrides_win(self):
        verdict = classify("x.py", overrides=[("x.py", "bench", frozenset())])
        assert verdict.module_class == "bench"
        assert not verdict.deterministic


class TestD101WallClock:
    FIXTURE = """
        import time

        def stamp():
            return time.time()
    """

    def test_fires_in_core(self):
        assert len(fired(run_lint(self.FIXTURE), "D101")) == 1

    def test_near_miss_perf_counter(self):
        clean = self.FIXTURE.replace("time.time()", "time.perf_counter()")
        assert fired(run_lint(clean), "D101") == []

    def test_near_miss_telemetry_class(self):
        assert fired(run_lint(self.FIXTURE, cls="telemetry"), "D101") == []

    def test_import_alias_resolved(self):
        aliased = """
            from time import monotonic as mono

            def stamp():
                return mono()
        """
        assert len(fired(run_lint(aliased), "D101")) == 1


class TestD102Entropy:
    def test_global_rng_fires(self):
        report = run_lint(
            """
            import random

            def pick():
                return random.random()
            """
        )
        assert len(fired(report, "D102")) == 1

    def test_near_miss_seeded_instance(self):
        report = run_lint(
            """
            import random

            def pick(seed):
                rng = random.Random(seed)
                return rng.random()
            """
        )
        assert fired(report, "D102") == []

    def test_seedless_random_fires(self):
        report = run_lint(
            """
            import random

            def pick():
                return random.Random().random()
            """
        )
        assert len(fired(report, "D102")) == 1

    def test_builtin_hash_fires_but_int_literal_passes(self):
        report = run_lint(
            """
            def key(name):
                return hash(name)

            def fixed():
                return hash(42)
            """
        )
        findings = fired(report, "D102")
        assert len(findings) == 1 and "PYTHONHASHSEED" in findings[0].message

    def test_urandom_fires(self):
        report = run_lint(
            """
            import os

            def salt():
                return os.urandom(8)
            """
        )
        assert len(fired(report, "D102")) == 1


class TestD103UnsortedIteration:
    def test_set_iteration_fires_in_serialization(self):
        report = run_lint(
            """
            def render(keys):
                pending = set(keys)
                return [k for k in pending]
            """,
            cls="serialization",
        )
        assert len(fired(report, "D103")) == 1

    def test_near_miss_sorted(self):
        report = run_lint(
            """
            def render(keys):
                pending = set(keys)
                return [k for k in sorted(pending)]
            """,
            cls="serialization",
        )
        assert fired(report, "D103") == []

    def test_dict_view_join_fires(self):
        report = run_lint(
            """
            def render(table):
                return ",".join(table.keys())
            """,
            cls="serialization",
        )
        assert len(fired(report, "D103")) == 1

    def test_near_miss_core_class(self):
        report = run_lint(
            """
            def render(keys):
                pending = set(keys)
                return [k for k in pending]
            """
        )
        assert fired(report, "D103") == []

    def test_set_algebra_fires(self):
        report = run_lint(
            """
            def diff(a, b):
                left = set(a)
                right = set(b)
                for item in left - right:
                    yield item
            """,
            cls="serialization",
        )
        assert len(fired(report, "D103")) == 1


class TestD104Pid:
    FIXTURE = """
        import os

        def tag():
            return os.getpid()
    """

    def test_fires_in_core(self):
        assert len(fired(run_lint(self.FIXTURE), "D104")) == 1

    def test_near_miss_allow_pid_tag(self):
        report = run_lint(self.FIXTURE, cls="serialization", tags=("allow-pid",))
        assert fired(report, "D104") == []


class TestP201ReduceFidelity:
    def test_shipped_taxonomy_is_clean(self):
        report = lint_sources({"campaign/errors.py": ERRORS_SOURCE})
        assert fired(report, "P201") == []
        assert fired(report, "P202") == []

    def test_mutation_dropping_details_is_caught(self):
        # Re-introduce the PR 8 bug: __reduce__ forgets self.details.
        mutated = ERRORS_SOURCE.replace(
            "(type(self), self.message, self.details)",
            "(type(self), self.message, {})",
        )
        assert mutated != ERRORS_SOURCE
        report = lint_sources({"campaign/errors.py": mutated})
        findings = fired(report, "P201")
        assert len(findings) == 1 and "details" in findings[0].message

    def test_mutation_deleting_reduce_is_caught(self):
        mutated = ERRORS_SOURCE.replace("def __reduce__", "def _no_reduce")
        assert mutated != ERRORS_SOURCE
        report = lint_sources({"campaign/errors.py": mutated})
        findings = fired(report, "P201")
        assert findings and "default Exception.__reduce__" in findings[0].message

    def test_subclass_state_checked_against_inherited_reduce(self):
        source = ERRORS_SOURCE + textwrap.dedent(
            """
            class ExtraStateError(CampaignError):
                def __init__(self, message, **details):
                    super().__init__(message, **details)
                    self.hint = "x"
            """
        )
        report = lint_sources({"campaign/errors.py": source})
        findings = fired(report, "P201")
        assert len(findings) == 1 and "hint" in findings[0].message


class TestP202InitSignature:
    def test_incompatible_subclass_fires(self):
        source = ERRORS_SOURCE + textwrap.dedent(
            """
            class BadSignature(CampaignError):
                def __init__(self, message, code):
                    super().__init__(message, code=code)
            """
        )
        report = lint_sources({"campaign/errors.py": source})
        findings = fired(report, "P202")
        assert len(findings) == 1 and "BadSignature" in findings[0].message

    def test_near_miss_faithful_subclass(self):
        source = ERRORS_SOURCE + textwrap.dedent(
            """
            class GoodSignature(CampaignError):
                def __init__(self, message, **details):
                    super().__init__(message, **details)
            """
        )
        report = lint_sources({"campaign/errors.py": source})
        assert fired(report, "P202") == []

    def test_unrelated_exception_ignored(self):
        report = run_lint(
            """
            class LocalError(Exception):
                def __init__(self, a, b):
                    self.a = a
                    self.b = b
            """
        )
        assert fired(report, "P202") == []


class TestP203PoolClosure:
    FIXTURE = """
        from concurrent.futures import ProcessPoolExecutor

        CACHE = {}

        def job(key):
            return CACHE[key]

        def main(keys):
            with ProcessPoolExecutor(max_workers=2) as pool:
                return [pool.submit(job, key) for key in keys]
    """

    def test_unwarmed_module_state_fires(self):
        findings = fired(run_lint(self.FIXTURE), "P203")
        assert len(findings) == 1 and "CACHE" in findings[0].message

    def test_near_miss_initializer_populates(self):
        warmed = textwrap.dedent(
            """
            from concurrent.futures import ProcessPoolExecutor

            CACHE = {}

            def warm(payload):
                global CACHE
                CACHE = dict(payload)

            def job(key):
                return CACHE[key]

            def main(keys, payload):
                with ProcessPoolExecutor(
                    max_workers=2, initializer=warm, initargs=(payload,)
                ) as pool:
                    return [pool.submit(job, key) for key in keys]
            """
        )
        assert fired(run_lint(warmed), "P203") == []


class TestP204SqliteFork:
    def test_module_scope_connection_fires(self):
        report = run_lint(
            """
            import sqlite3

            CONNECTION = sqlite3.connect("store.sqlite")
            """
        )
        assert len(fired(report, "P204")) == 1

    def test_near_miss_function_scope(self):
        report = run_lint(
            """
            import sqlite3

            def open_store(path):
                return sqlite3.connect(path)
            """
        )
        assert fired(report, "P204") == []

    def test_connection_shipped_to_pool_fires(self):
        report = run_lint(
            """
            import sqlite3
            from concurrent.futures import ProcessPoolExecutor

            def job(connection):
                return connection.execute("SELECT 1").fetchone()

            def main(path):
                connection = sqlite3.connect(path)
                with ProcessPoolExecutor() as pool:
                    return pool.submit(job, connection).result()
            """
        )
        findings = fired(report, "P204")
        assert len(findings) == 1 and "cross a fork" in findings[0].message


class TestS301StoreBypass:
    FIXTURE = """
        def poke(connection, key):
            connection.execute(
                "UPDATE results SET payload = 'x' WHERE key = ?", (key,)
            )
    """

    def test_raw_write_fires(self):
        assert len(fired(run_lint(self.FIXTURE), "S301")) == 1

    def test_near_miss_store_api_tag(self):
        report = run_lint(
            self.FIXTURE, cls="serialization", tags=("store-api",)
        )
        assert fired(report, "S301") == []

    def test_near_miss_select(self):
        report = run_lint(
            """
            def peek(connection, key):
                return connection.execute(
                    "SELECT payload FROM results WHERE key = ?", (key,)
                ).fetchone()
            """
        )
        assert fired(report, "S301") == []


DOC_FIXTURE = textwrap.dedent(
    """
    # Fixture architecture

    `campaign_outside_total` is mentioned outside the section and ignored.

    ## Observability

    | metric | type | labels |
    |---|---|---|
    | `campaign_points_total` | counter | |
    | `campaign_phase_seconds` | histogram | `phase=sampling\\|merge` |

    | kind | names |
    |---|---|
    | span | `campaign`, `batch` |
    | event | `retry` |

    ## Something else

    `store_after_total` is also outside the section.
    """
)


class TestDocumentedNames:
    def test_section_scoped_parse(self):
        documented = parse_documented_names(DOC_FIXTURE, "DOC.md")
        assert documented.metrics == {
            "campaign_points_total",
            "campaign_phase_seconds",
        }
        assert documented.phases == {"sampling", "merge"}
        assert documented.spans == {"campaign", "batch"}
        assert documented.events == {"retry"}

    def test_real_doc_parses(self):
        documented = parse_documented_names(
            (REPO / "ARCHITECTURE.md").read_text(encoding="utf-8"), "ARCHITECTURE.md"
        )
        assert "store_shard_merges_total" in documented.metrics
        assert "merge" in documented.phases
        assert {"campaign", "batch", "point"} <= documented.spans
        assert "campaign-error" in documented.events


class TestS302S303NameDrift:
    def _documented(self):
        return parse_documented_names(DOC_FIXTURE, "DOC.md")

    def test_undocumented_metric_fires(self):
        report = run_lint(
            """
            from repro.telemetry import metrics as _metrics

            def count():
                _metrics.inc("campaign_bogus_total")
            """,
            documented=self._documented(),
        )
        findings = fired(report, "S302")
        assert len(findings) == 1 and "campaign_bogus_total" in findings[0].message

    def test_near_miss_documented_metric(self):
        report = run_lint(
            """
            from repro.telemetry import metrics as _metrics

            def count():
                _metrics.inc("campaign_points_total")
            """,
            documented=self._documented(),
        )
        assert fired(report, "S302") == []

    def test_constant_resolution(self):
        report = run_lint(
            """
            from repro.telemetry import metrics as _metrics

            PHASE_METRIC = "campaign_phase_seconds"

            def record(seconds):
                _metrics.observe(PHASE_METRIC, seconds)
            """,
            documented=self._documented(),
        )
        assert fired(report, "S302") == []

    def test_documented_but_never_emitted_fires(self):
        report = run_lint(
            """
            from repro.telemetry import metrics as _metrics

            def count():
                _metrics.inc("campaign_points_total")
            """,
            documented=self._documented(),
        )
        stale = fired(report, "S303")
        assert stale, "expected S303 for documented-but-unemitted names"
        assert all(f.path == "DOC.md" for f in stale)
        assert any("campaign_phase_seconds" in f.message for f in stale)

    def test_skips_without_doc(self):
        report = run_lint(
            """
            from repro.telemetry import metrics as _metrics

            def count():
                _metrics.inc("campaign_bogus_total")
            """
        )
        assert fired(report, "S302") == []
        assert fired(report, "S303") == []


class TestWaivers:
    def test_trailing_waiver_suppresses(self):
        report = run_lint(
            """
            import time

            def stamp():
                return time.time()  # repro: allow[D101] reason=console only
            """
        )
        (finding,) = fired(report, "D101")
        assert finding.waived and finding.waive_reason == "console only"
        assert report.active == []

    def test_standalone_waiver_targets_next_code_line(self):
        report = run_lint(
            """
            import time

            def stamp():
                # repro: allow[D101] reason=console only
                return time.time()
            """
        )
        (finding,) = fired(report, "D101")
        assert finding.waived

    def test_stale_waiver_fires_w401(self):
        report = run_lint(
            """
            def stamp():
                # repro: allow[D101] reason=the clock read moved away
                return 0
            """
        )
        assert len(fired(report, "W401")) == 1

    def test_unknown_rule_fires_w402(self):
        report = run_lint(
            """
            def stamp():
                return 0  # repro: allow[D999] reason=whatever
            """
        )
        findings = fired(report, "W402")
        assert len(findings) == 1 and "D999" in findings[0].message

    def test_missing_reason_fires_w402(self):
        report = run_lint(
            """
            import time

            def stamp():
                return time.time()  # repro: allow[D101]
            """
        )
        findings = fired(report, "W402")
        assert len(findings) == 1 and "reason" in findings[0].message
        # and the unwaived D101 still stands
        assert not fired(report, "D101")[0].waived

    def test_waiver_text_in_docstring_is_not_a_waiver(self):
        waivers, problems = parse_waivers(
            [
                '"""Docs: write # repro: allow[D999] reason=... to waive."""',
                "x = 1",
            ],
            "doc.py",
            ["D101"],
        )
        assert waivers == [] and problems == []

    def test_cross_module_s302_is_waivable(self):
        report = run_lint(
            """
            from repro.telemetry import metrics as _metrics

            def count():
                # repro: allow[S302] reason=experimental counter
                _metrics.inc("campaign_bogus_total")
            """,
            documented=parse_documented_names(DOC_FIXTURE, "DOC.md"),
        )
        (finding,) = fired(report, "S302")
        assert finding.waived


class TestEngineAndReport:
    def test_syntax_error_becomes_e001(self):
        report = lint_sources({"broken.py": "def f(:\n"})
        assert report.parse_errors == 1
        assert len(fired(report, "E001")) == 1

    def test_fingerprint_ignores_line_shifts(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        shifted = "import time\n\n\n\ndef f():\n    return time.time()\n"
        first = fired(lint_sources({"m.py": source}), "D101")[0]
        second = fired(lint_sources({"m.py": shifted}), "D101")[0]
        assert first.line != second.line
        assert first.fingerprint() == second.fingerprint()

    def test_baseline_round_trip(self, tmp_path):
        sources = {"m.py": "import time\n\ndef f():\n    return time.time()\n"}
        report = lint_sources(sources)
        assert report.active
        baseline = tmp_path / "baseline.json"
        assert write_baseline(report, baseline) == 1
        again = lint_sources(sources)
        for item in again.findings:
            if item.fingerprint() in load_baseline(baseline):
                item.baselined = True
        assert again.active == []

    def test_json_report_validates(self):
        report = lint_sources(
            {"m.py": "import time\n\ndef f():\n    return time.time()\n"}
        )
        payload = json.loads(report.to_json())
        assert payload["v"] == REPORT_VERSION
        assert validate_report(payload) == []

    def test_schema_rejects_drift(self):
        report = lint_sources({"m.py": "x = 1\n"})
        payload = report.to_payload()
        del payload["summary"]
        assert validate_report(payload)
        bad_rule = lint_sources(
            {"m.py": "import time\n\ndef f():\n    return time.time()\n"}
        ).to_payload()
        bad_rule["findings"][0]["rule"] = "X999"
        assert any("family" in p for p in validate_report(bad_rule))


class TestRepoGate:
    """The shipped tree lints clean: zero active findings, documented waivers."""

    def test_src_is_clean_under_strict(self):
        report = lint_paths(
            [REPO / "src" / "repro"], doc_path=REPO / "ARCHITECTURE.md"
        )
        assert report.parse_errors == 0
        assert report.active == [], "\n".join(
            f.describe() for f in report.active
        )
        assert report.waived, "expected the documented inline waivers"
        assert all(f.waive_reason for f in report.waived)


class TestLintCli:
    def test_strict_run_is_clean(self, capsys):
        assert cli.main(["lint", str(REPO / "src" / "repro"), "--strict"]) == 0
        out = capsys.readouterr().out
        assert "0 active" in out

    def test_json_output_validates(self, capsys):
        assert cli.main(["lint", str(REPO / "src" / "repro"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_report(payload) == []

    def test_strict_fails_on_finding(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        assert cli.main(["lint", str(bad), "--strict"]) == 1
        assert "D101" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert cli.main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("D101", "D103", "P201", "P204", "S301", "S303", "W401"):
            assert rule_id in out

    def test_missing_path_exits_2(self, capsys):
        assert cli.main(["lint", str(REPO / "no-such-dir")]) == 2
