"""The content-addressed result store and its simulate_spec/runner cache."""

from __future__ import annotations

import pytest

from repro.experiments import figure8, table2
from repro.experiments.runner import ExperimentRunner
from repro.scenarios import SimulationSpec
from repro.simulation import simulate_spec
from repro.store import ResultStore, cacheable, spec_hash


class TestResultStore:
    def test_put_get_contains_len(self):
        with ResultStore(":memory:") as store:
            assert len(store) == 0
            store.put("k1", {"x": 1}, kind="test")
            store.put("k2", {"y": [1, 2]}, kind="test")
            assert len(store) == 2
            assert "k1" in store and "k3" not in store
            assert store.get("k1") == {"x": 1}
            assert store.get("k3") is None
            assert store.count("test") == 2

    def test_hit_miss_accounting(self):
        with ResultStore(":memory:") as store:
            store.put("k", {"v": 1})
            store.get("k")
            store.get("missing")
            store.get("k")
            assert store.hits == 2
            assert store.misses == 1
            store.reset_counters()
            assert store.hits == store.misses == 0

    def test_overwrite_replaces(self):
        with ResultStore(":memory:") as store:
            store.put("k", {"v": 1})
            store.put("k", {"v": 2})
            assert len(store) == 1
            assert store.get("k") == {"v": 2}

    def test_put_many_matches_per_row_put(self):
        rows = [
            ("a", {"v": 1}, '{"spec":"a"}'),
            ("b", {"v": 2}, '{"spec":"b"}'),
            ("c", {"v": 3}, ""),
        ]
        with ResultStore(":memory:") as batched, ResultStore(":memory:") as serial:
            batched.put_many(rows, kind="injection")
            for key, payload, spec_json in rows:
                serial.put(key, payload, spec_json=spec_json, kind="injection")
            assert len(batched) == len(serial) == 3
            for key, payload, spec_json in rows:
                assert batched.get(key) == serial.get(key) == payload
                assert batched.spec_json(key) == serial.spec_json(key) == spec_json
            assert batched.count("injection") == 3

    def test_put_many_overwrites_and_accepts_empty(self):
        with ResultStore(":memory:") as store:
            store.put("k", {"v": 1})
            store.put_many([])  # no-op, no error
            store.put_many([("k", {"v": 2}, "")], kind="test")
            assert store.get("k") == {"v": 2}
            assert len(store) == 1

    def test_put_many_lands_whole_batch_and_commits(self):
        with ResultStore(":memory:") as store:
            before = store._connection.total_changes
            store.put_many([(f"k{i}", {"v": i}, "") for i in range(50)])
            assert store._connection.total_changes - before == 50
            assert not store._connection.in_transaction  # committed

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "store.sqlite"
        with ResultStore(path) as store:
            store.put("k", {"v": 42}, spec_json='{"demo":1}', kind="timing")
        with ResultStore(path) as store:
            assert store.get("k") == {"v": 42}
            assert store.spec_json("k") == '{"demo":1}'
            assert store.count("timing") == 1


class TestCacheability:
    def test_only_plain_kernel_specs_are_cacheable(self):
        from repro.scenarios import FaultSpec

        assert cacheable(SimulationSpec(kernel="matrix"))
        assert not cacheable(SimulationSpec())  # anonymous program
        assert not cacheable(SimulationSpec(kernel="matrix", chronogram_window=4))
        assert not cacheable(
            SimulationSpec(kernel="matrix", fault=FaultSpec(at_access=1))
        )


class TestSimulateSpecStore:
    SPEC = SimulationSpec(kernel="rspeed", scale=0.1, policy="laec")

    def test_round_trip_preserves_timing(self):
        with ResultStore(":memory:") as store:
            fresh = simulate_spec(self.SPEC, store=store)
            cached = simulate_spec(self.SPEC, store=store)
            assert not fresh.from_store
            assert cached.from_store
            assert cached.cycles == fresh.cycles
            assert cached.instructions == fresh.instructions
            assert cached.timing.stats.as_dict() == fresh.timing.stats.as_dict()
            assert cached.timing.dl1_stats == fresh.timing.dl1_stats
            assert cached.timing.bus_transactions == fresh.timing.bus_transactions
            assert cached.policy.kind == fresh.policy.kind
            assert store.hits == 1 and len(store) == 1

    def test_store_key_is_the_content_hash(self):
        with ResultStore(":memory:") as store:
            simulate_spec(self.SPEC, store=store)
            assert spec_hash(self.SPEC) in store

    def test_store_survives_processes(self, tmp_path):
        path = tmp_path / "timing.sqlite"
        with ResultStore(path) as store:
            fresh = simulate_spec(self.SPEC, store=store)
        with ResultStore(path) as store:
            cached = simulate_spec(self.SPEC, store=store)
            assert cached.from_store
            assert cached.cycles == fresh.cycles


class TestRunnerStore:
    KERNELS = ["rspeed", "tblook"]

    def test_stored_run_set_renders_identically(self):
        with ResultStore(":memory:") as store:
            first = ExperimentRunner(scale=0.1, kernels=self.KERNELS, store=store)
            text_fresh = figure8.render(figure8.run(run_set=first.run_all()))
            second = ExperimentRunner(scale=0.1, kernels=self.KERNELS, store=store)
            run_set = second.run_all()
            # Every result of the second runner came from the store.
            assert all(
                result.from_store
                for per_policy in run_set.results.values()
                for result in per_policy.values()
            )
            assert figure8.render(figure8.run(run_set=run_set)) == text_fresh
            # Trace-consuming experiments work too (traces re-attached).
            assert table2.render(table2.run(run_set=run_set))

    def test_force_bypasses_store_reads(self):
        with ResultStore(":memory:") as store:
            ExperimentRunner(scale=0.1, kernels=self.KERNELS, store=store).run_all()
            runner = ExperimentRunner(scale=0.1, kernels=self.KERNELS, store=store)
            hits_before = store.hits
            run_set = runner.run_all(force=True)
            assert store.hits == hits_before  # no store reads
            assert not any(
                result.from_store
                for per_policy in run_set.results.values()
                for result in per_policy.values()
            )

    def test_parallel_runner_restores_partial_rows(self):
        from repro.core.policies import EccPolicyKind
        from repro.experiments.runner import FIGURE8_POLICIES

        with ResultStore(":memory:") as store:
            # Warm the store with the four Figure-8 policies only.
            ExperimentRunner(scale=0.1, kernels=self.KERNELS, store=store).run_all()
            # A fifth policy must not force the stored four to recompute.
            extended = ExperimentRunner(
                scale=0.1,
                kernels=self.KERNELS,
                policies=list(FIGURE8_POLICIES) + [EccPolicyKind.WT_PARITY],
                store=store,
                max_workers=2,
            )
            run_set = extended.run_all()
            for per_policy in run_set.results.values():
                for policy in FIGURE8_POLICIES:
                    assert per_policy[policy.value].from_store
                assert not per_policy[EccPolicyKind.WT_PARITY.value].from_store

    def test_parallel_runner_uses_store(self):
        with ResultStore(":memory:") as store:
            serial = ExperimentRunner(scale=0.1, kernels=self.KERNELS, store=store)
            baseline = serial.run_all()
            parallel = ExperimentRunner(
                scale=0.1, kernels=self.KERNELS, store=store, max_workers=2
            )
            restored = parallel.run_all()
            assert list(restored.results) == list(baseline.results)
            for name, per_policy in baseline.results.items():
                for value, result in per_policy.items():
                    other = restored.results[name][value]
                    assert other.from_store
                    assert other.cycles == result.cycles
