"""Tests for the declarative scenario layer (SimulationSpec + registry)."""

import pytest

from repro.core.policies import EccPolicyKind
from repro.memory.config import MemoryHierarchyConfig, WritePolicy
from repro.pipeline.config import CoreConfig, PipelineConfig
from repro.scenarios import (
    InterferenceScenario,
    SimulationSpec,
    get_scenario,
    register_scenario,
    scenario_description,
    scenario_names,
)
from repro.simulation import simulate_kernel, simulate_program, simulate_spec
from repro.soc import NgmpSoC, TaskPlacement
from repro.workloads import build_kernel

KERNEL = "rspeed"
SCALE = 0.1


class TestSimulationSpec:
    def test_is_frozen(self):
        spec = SimulationSpec(kernel=KERNEL)
        with pytest.raises(Exception):
            spec.kernel = "matrix"

    def test_with_helpers_return_new_specs(self):
        spec = SimulationSpec(kernel=KERNEL)
        assert spec.with_policy("laec").resolved_policy().kind is EccPolicyKind.LAEC
        assert spec.with_scale(0.5).scale == 0.5
        assert spec.with_kernel("matrix").kernel == "matrix"
        assert spec.with_core(2).core_index == 2
        assert spec.with_chronogram(8).chronogram_window == 8
        # the original is untouched
        assert spec.scale == 1.0 and spec.kernel == KERNEL

    def test_interference_overrides_hierarchy_contention(self):
        scenario = InterferenceScenario("worst", 3, "worst")
        spec = SimulationSpec(kernel=KERNEL, interference=scenario)
        hierarchy = spec.effective_hierarchy()
        assert hierarchy.bus_contenders == 3
        assert hierarchy.bus_contention_mode == "worst"

    def test_no_interference_inherits_hierarchy(self):
        contended = MemoryHierarchyConfig().with_contention(2, "average")
        spec = SimulationSpec(kernel=KERNEL, hierarchy=contended)
        assert spec.effective_hierarchy() is contended

    def test_core_config_carries_chronogram_window(self):
        spec = SimulationSpec(kernel=KERNEL, chronogram_window=16)
        assert spec.core_config().pipeline.chronogram_window == 16

    def test_build_program_requires_kernel(self):
        with pytest.raises(ValueError):
            SimulationSpec().build_program()

    def test_describe_mentions_workload_and_policy(self):
        spec = SimulationSpec(kernel=KERNEL, policy="laec")
        text = spec.describe()
        assert KERNEL in text and "laec" in text


class TestFunnel:
    """All entry paths produce identical results through the spec funnel."""

    def test_simulate_kernel_equals_simulate_spec(self):
        via_facade = simulate_kernel(KERNEL, policy="laec", scale=SCALE)
        via_spec = simulate_spec(
            SimulationSpec(kernel=KERNEL, scale=SCALE, policy="laec")
        )
        assert via_facade.cycles == via_spec.cycles
        assert via_facade.stats.as_dict() == via_spec.stats.as_dict()

    def test_simulate_program_attaches_spec(self):
        program = build_kernel(KERNEL, scale=SCALE)
        result = simulate_program(program, policy="extra-stage")
        assert result.spec is not None
        assert result.spec.resolved_policy().kind is EccPolicyKind.EXTRA_STAGE

    def test_simulate_program_config_maps_into_spec(self):
        program = build_kernel(KERNEL, scale=SCALE)
        config = CoreConfig(pipeline=PipelineConfig(write_buffer_entries=2))
        result = simulate_program(program, policy="no-ecc", config=config)
        assert result.spec.pipeline.write_buffer_entries == 2

    def test_soc_run_task_funnels_through_spec(self):
        soc = NgmpSoC()
        program = build_kernel(KERNEL, scale=SCALE)
        placement = TaskPlacement(program=program, policy="laec", core_index=1)
        scenario = InterferenceScenario("worst", 3, "worst")
        result = soc.run_task(placement, scenario=scenario)
        assert result.spec is not None
        assert result.spec.core_index == 1
        assert result.spec.interference.mode == "worst"
        # and the spec is replayable: same spec, same cycles
        assert simulate_spec(result.spec, program=program).cycles == result.cycles

    def test_soc_clamps_contenders_into_spec(self):
        from repro.soc import NgmpConfig

        soc = NgmpSoC(NgmpConfig(cores=2))
        program = build_kernel(KERNEL, scale=SCALE)
        spec = soc.build_spec(
            TaskPlacement(program=program),
            scenario=InterferenceScenario("worst", 10, "worst"),
        )
        assert spec.interference.contenders == 1

    def test_wt_policy_forces_write_through_dl1(self):
        spec = SimulationSpec(kernel=KERNEL, scale=SCALE, policy="wt-parity")
        result = simulate_spec(spec)
        assert (
            result.hierarchy.config.l1d.write_policy is WritePolicy.WRITE_THROUGH
        )


class TestRegistry:
    def test_builtin_scenarios_cover_policies_and_wcet_matrix(self):
        names = scenario_names()
        for kind in EccPolicyKind:
            assert kind.value in names
        for label in ("laec", "wt-parity"):
            for suffix in ("isolation", "average", "worst"):
                assert f"{label}-{suffix}" in names

    def test_get_scenario_with_overrides(self):
        spec = get_scenario("laec-worst", kernel=KERNEL, scale=SCALE)
        assert spec.kernel == KERNEL
        assert spec.interference.mode == "worst"
        assert simulate_spec(spec).cycles > 0

    def test_worst_scenario_slower_than_isolation(self):
        worst = simulate_spec(get_scenario("laec-worst", kernel=KERNEL, scale=SCALE))
        isolation = simulate_spec(
            get_scenario("laec-isolation", kernel=KERNEL, scale=SCALE)
        )
        assert worst.cycles > isolation.cycles

    def test_policy_agnostic_interference_scenarios_registered(self):
        names = scenario_names()
        for name in ("isolation", "average", "worst"):
            assert name in names
        assert get_scenario("isolation").interference is None
        assert get_scenario("average").interference.mode == "average"
        assert get_scenario("worst").interference.mode == "worst"
        assert get_scenario("worst").interference.contenders > 0

    def test_scenario_interference_resolves_the_contention_component(self):
        from repro.scenarios import scenario_interference

        # The campaign grid consumes only the interference component;
        # "isolation" maps to None so sweep specs hash identically to
        # the historical single-dimension campaign specs.
        assert scenario_interference("isolation") is None
        worst = scenario_interference("laec-worst")
        assert worst is not None and worst.mode == "worst"
        with pytest.raises(KeyError):
            scenario_interference("no-such-scenario")

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            get_scenario("no-such-scenario")

    def test_double_registration_rejected_then_replaceable(self):
        name = "test-scenario-registration"
        register_scenario(
            name, lambda: SimulationSpec(), description="one", replace=True
        )
        with pytest.raises(ValueError):
            register_scenario(name, lambda: SimulationSpec())
        register_scenario(
            name, lambda: SimulationSpec(policy="laec"), description="two", replace=True
        )
        assert scenario_description(name) == "two"
        assert get_scenario(name).resolved_policy().kind is EccPolicyKind.LAEC
