"""Spec canonicalisation: the property the result store's keys rest on.

Every registered scenario must round-trip
``SimulationSpec -> canonical JSON -> SimulationSpec`` to an *equal*
spec with a *stable* hash; distinct specs must hash differently.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.policies import EccPolicyKind
from repro.scenarios import FaultSpec, SimulationSpec, get_scenario, scenario_names
from repro.store import (
    canonical_dict,
    canonical_json,
    spec_from_canonical,
    spec_hash,
)


@pytest.mark.parametrize("name", scenario_names())
class TestScenarioRoundTrip:
    def test_round_trip_equality(self, name):
        spec = get_scenario(name)
        rebuilt = spec_from_canonical(canonical_json(spec))
        assert rebuilt == spec

    def test_hash_stable_across_round_trip(self, name):
        spec = get_scenario(name)
        rebuilt = spec_from_canonical(canonical_json(spec))
        assert spec_hash(rebuilt) == spec_hash(spec)

    def test_hash_stable_across_encodings(self, name):
        spec = get_scenario(name)
        assert canonical_json(spec) == canonical_json(
            spec_from_canonical(canonical_dict(spec))
        )


class TestHashDiscrimination:
    def test_policy_forms_hash_identically(self):
        # A policy given as string, kind or instance is the same content.
        as_string = SimulationSpec(kernel="matrix", policy="laec")
        as_kind = SimulationSpec(kernel="matrix", policy=EccPolicyKind.LAEC)
        as_instance = SimulationSpec(
            kernel="matrix", policy=as_kind.resolved_policy()
        )
        assert spec_hash(as_string) == spec_hash(as_kind) == spec_hash(as_instance)

    def test_every_field_change_changes_the_hash(self):
        base = SimulationSpec(kernel="matrix", scale=0.3, policy="laec")
        variants = [
            dataclasses.replace(base, kernel="rspeed"),
            dataclasses.replace(base, scale=0.4),
            dataclasses.replace(base, policy="no-ecc"),
            dataclasses.replace(base, core_index=1),
            dataclasses.replace(base, chronogram_window=8),
            dataclasses.replace(base, max_instructions=1000),
            base.with_fault(FaultSpec(word_address=64, bit=3, at_access=5)),
        ]
        hashes = {spec_hash(spec) for spec in variants}
        hashes.add(spec_hash(base))
        assert len(hashes) == len(variants) + 1

    def test_fault_spec_round_trip(self):
        # Round-tripping normalises the policy to its EccPolicyKind, so
        # equality holds when the spec starts from the normal form.
        spec = SimulationSpec(
            kernel="canrdr",
            scale=0.1,
            policy=EccPolicyKind.EXTRA_CYCLE,
            fault=FaultSpec(target="l2", word_address=128, bit=37, at_access=12),
        )
        rebuilt = spec_from_canonical(canonical_json(spec))
        assert rebuilt == spec
        assert rebuilt.fault == spec.fault
        assert spec_hash(rebuilt) == spec_hash(spec)

    def test_fault_faults_differ(self):
        base = SimulationSpec(kernel="canrdr", policy="laec")
        one = base.with_fault(FaultSpec(word_address=64, bit=1, at_access=5))
        two = base.with_fault(FaultSpec(word_address=64, bit=2, at_access=5))
        assert spec_hash(one) != spec_hash(two)

    def test_l2_fault_encoding_carries_the_deviating_l2_code(self):
        # The outcome of an L2 point depends on the policy-derived L2
        # protection.  Schema v1 assumed an always-SECDED L2, so the
        # code appears in the canonical form only when it deviates from
        # that assumption: protected deployments (and all DL1 targets)
        # keep their historical keys, while no-ecc x l2 points — whose
        # semantics changed from "always corrected" to "silently
        # corrupts" — hash afresh instead of resuming stale outcomes.
        fault = FaultSpec(target="l2", word_address=64, bit=3, at_access=5)
        unprotected = SimulationSpec(kernel="canrdr", policy="no-ecc", fault=fault)
        protected = SimulationSpec(kernel="canrdr", policy="laec", fault=fault)
        dl1 = SimulationSpec(
            kernel="canrdr",
            policy="no-ecc",
            fault=dataclasses.replace(fault, target="dl1"),
        )
        assert canonical_dict(unprotected)["fault"]["l2_code"] == "raw"
        assert "l2_code" not in canonical_dict(protected)["fault"]
        assert "l2_code" not in canonical_dict(dl1)["fault"]
        # And the extra key round-trips to a stable hash.
        rebuilt = spec_from_canonical(canonical_json(unprotected))
        assert spec_hash(rebuilt) == spec_hash(unprotected)

    def test_schema_version_is_enforced(self):
        payload = canonical_dict(SimulationSpec(kernel="matrix"))
        payload["v"] = 99
        with pytest.raises(ValueError):
            spec_from_canonical(payload)
