"""Golden-output regression: the CLI path reproduces committed artefacts.

``benchmarks/output/`` holds the rendered artefacts the benchmark
harness produced.  The two cheap ones — Table I (pure data) and the
WT-vs-WB WCET study (a real simulation campaign) — are regenerated here
through the new ``python -m repro`` Experiment path and diffed
byte-for-byte, so any drift in the simulation model, the rendering code
or the CLI plumbing fails the default test suite, not just the opt-in
benchmark run.
"""

import pathlib

import pytest

from repro import __main__ as cli

GOLDEN_DIR = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "output"

#: (experiment name, artefact stem) pairs cheap enough for tier-1.
GOLDEN_CASES = [
    ("table1", "table1"),
    ("wt_vs_wb", "wt_vs_wb_wcet"),
]


@pytest.mark.parametrize("experiment,artifact", GOLDEN_CASES)
def test_cli_regenerates_golden_artifact(experiment, artifact, tmp_path):
    golden = GOLDEN_DIR / f"{artifact}.txt"
    assert golden.exists(), f"missing golden artefact {golden}"
    code = cli.main(["--run", experiment, "--out", str(tmp_path), "--quiet"])
    assert code == 0
    regenerated = tmp_path / f"{artifact}.txt"
    assert regenerated.read_text(encoding="utf-8") == golden.read_text(
        encoding="utf-8"
    ), f"{artifact} drifted from the committed golden output"
