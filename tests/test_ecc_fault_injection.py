"""Tests for the fault injector and the analytical reliability model."""

import pytest

from repro.ecc import (
    FaultInjector,
    FaultModel,
    HammingSecCode,
    HsiaoSecDedCode,
    InjectionOutcome,
    ParityCode,
    ReliabilityModel,
    word_outcome_probabilities,
)


class TestFaultInjector:
    def test_single_bit_campaign_on_secded_all_corrected(self):
        injector = FaultInjector(HsiaoSecDedCode(), seed=1)
        report = injector.run_campaign(
            trials=300, fault_model=FaultModel({1: 1.0})
        )
        assert report.total == 300
        assert report.rate(InjectionOutcome.CORRECTED) == 1.0
        assert report.rate(InjectionOutcome.SILENT_DATA_CORRUPTION) == 0.0

    def test_double_bit_campaign_on_secded_all_detected(self):
        injector = FaultInjector(HsiaoSecDedCode(), seed=2)
        report = injector.run_campaign(
            trials=300, fault_model=FaultModel({2: 1.0})
        )
        assert report.rate(InjectionOutcome.DETECTED) == 1.0

    def test_double_bit_campaign_on_hamming_has_sdc(self):
        injector = FaultInjector(HammingSecCode(), seed=3)
        report = injector.run_campaign(
            trials=300, fault_model=FaultModel({2: 1.0})
        )
        assert report.rate(InjectionOutcome.SILENT_DATA_CORRUPTION) > 0.5

    def test_parity_even_flips_are_silent(self):
        injector = FaultInjector(ParityCode(), seed=4)
        report = injector.run_campaign(
            trials=200, fault_model=FaultModel({2: 1.0})
        )
        silent = report.rate(InjectionOutcome.SILENT_DATA_CORRUPTION)
        masked = report.rate(InjectionOutcome.MASKED)
        assert silent + masked == 1.0

    def test_exhaustive_single_bit(self):
        injector = FaultInjector(HsiaoSecDedCode(), seed=5)
        report = injector.exhaustive_single_bit([0, 0xFFFFFFFF, 0x12345678])
        assert report.total == 3 * 39
        assert report.rate(InjectionOutcome.CORRECTED) == 1.0

    def test_exhaustive_double_bit(self):
        injector = FaultInjector(HsiaoSecDedCode(), seed=6)
        report = injector.exhaustive_double_bit(0xCAFED00D)
        assert report.total == 39 * 38 // 2
        assert report.rate(InjectionOutcome.DETECTED) == 1.0

    def test_injection_uses_supplied_data_words(self):
        injector = FaultInjector(HsiaoSecDedCode(), seed=7)
        report = injector.run_campaign(
            trials=5, data_source=[1, 2, 3, 4, 5], fault_model=FaultModel({1: 1.0})
        )
        assert [record.data for record in report.records] == [1, 2, 3, 4, 5]

    def test_report_by_multiplicity(self):
        injector = FaultInjector(HsiaoSecDedCode(), seed=8)
        report = injector.run_campaign(
            trials=100, fault_model=FaultModel({1: 0.5, 2: 0.5})
        )
        grouped = report.by_multiplicity()
        assert set(grouped) <= {1, 2}
        assert sum(sum(bucket.values()) for bucket in grouped.values()) == 100

    def test_fault_model_sampling_respects_weights(self):
        import random

        model = FaultModel({1: 0.0, 3: 1.0})
        assert model.sample_multiplicity(random.Random(0)) == 3


class TestReliabilityModel:
    def test_word_probabilities_sum_to_one(self):
        for code in (ParityCode(), HammingSecCode(), HsiaoSecDedCode()):
            outcomes = word_outcome_probabilities(code, 1e-4)
            assert sum(outcomes.values()) == pytest.approx(1.0, abs=1e-9)

    def test_secded_beats_parity_and_hamming(self):
        model = ReliabilityModel(words=4096, bit_upset_rate_per_hour=1e-6)
        comparison = model.compare(
            [ParityCode(), HammingSecCode(), HsiaoSecDedCode()]
        )
        secded = comparison["secded"]["array_failure_probability"]
        parity = comparison["parity"]["array_failure_probability"]
        hamming = comparison["hamming"]["array_failure_probability"]
        assert secded < hamming
        assert secded < parity

    def test_failure_scaling_with_scrub_interval(self):
        fast = ReliabilityModel(
            words=4096, bit_upset_rate_per_hour=1e-6, scrub_interval_hours=0.1
        )
        slow = ReliabilityModel(
            words=4096, bit_upset_rate_per_hour=1e-6, scrub_interval_hours=10.0
        )
        code = HsiaoSecDedCode()
        assert fast.array_failure_probability(code) < slow.array_failure_probability(code)

    def test_fit_like_rate_positive(self):
        model = ReliabilityModel(words=4096, bit_upset_rate_per_hour=1e-6)
        assert model.failures_in_time(HsiaoSecDedCode(), hours=1e9) > 0.0
