"""Campaign telemetry: metrics registry, trace spans, flight recorder.

The load-bearing property is **deterministic inertness**: with telemetry
on or off, campaign summaries and store payloads are byte-identical —
timestamps and pids live only in the trace file.  The differential tests
here pin that down, the agreement tests check that every supervisor
intervention appears exactly once in the stats line, the metrics
registry and the trace event stream, and the consumer tests drive
``python -m repro trace`` end to end.
"""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.campaign import CampaignConfig, parse_chaos, run_campaign
from repro.store import ResultStore
from repro.telemetry import analyze, console, flight, metrics, schema, trace
from repro.telemetry.trace import Telemetry

BASE = dict(
    kernels=("rspeed",),
    policies=("extra-cycle",),
    scale=0.1,
    trials=6,
    batch=3,
    seed=2019,
    retry_backoff=0.0,
)


def config(**overrides) -> CampaignConfig:
    merged = dict(BASE)
    merged.update(overrides)
    return CampaignConfig(**merged)


@pytest.fixture(autouse=True)
def _fresh_telemetry():
    """Tests never inherit (or leak) process-global telemetry state."""
    metrics.reset_registry()
    flight.reset_recorder()
    yield
    trace.deactivate()
    metrics.reset_registry()
    flight.reset_recorder()


# --------------------------------------------------------------------- #
# metrics registry                                                      #
# --------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = metrics.MetricsRegistry()
        reg.counter("jobs_total").inc()
        reg.counter("jobs_total").inc(2)
        assert reg.value("jobs_total") == 3
        with pytest.raises(ValueError):
            reg.counter("jobs_total").inc(-1)
        reg.gauge("depth").set(5)
        reg.gauge("depth").set(2)
        assert reg.value("depth") == 2
        hist = reg.histogram("latency", bounds=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(99.0)
        assert hist.count == 3
        assert hist.buckets == [1, 1, 1]

    def test_identity_is_name_plus_sorted_labels(self):
        reg = metrics.MetricsRegistry()
        reg.counter("points", {"mode": "full", "k": "a"}).inc()
        reg.counter("points", {"k": "a", "mode": "full"}).inc()
        reg.counter("points", {"mode": "analytical", "k": "a"}).inc()
        assert reg.value("points", {"mode": "full", "k": "a"}) == 2
        assert len(reg) == 2

    def test_type_conflicts_are_rejected(self):
        reg = metrics.MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_merge_payload_is_additive_for_counters_and_histograms(self):
        a, b = metrics.MetricsRegistry(), metrics.MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        ha = a.histogram("t", bounds=(1.0,))
        hb = b.histogram("t", bounds=(1.0,))
        ha.observe(0.5)
        hb.observe(2.0)
        a.merge_payload(b.to_payload())
        assert a.value("n") == 5
        merged = a.histogram("t", bounds=(1.0,))
        assert merged.count == 2 and merged.buckets == [1, 1]

    def test_merge_rejects_mismatched_bounds(self):
        a, b = metrics.MetricsRegistry(), metrics.MetricsRegistry()
        a.histogram("t", bounds=(1.0,)).observe(0.5)
        b.histogram("t", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge_payload(b.to_payload())

    def test_prometheus_rendering_is_cumulative_and_typed(self):
        reg = metrics.MetricsRegistry()
        reg.counter("points_total", {"mode": "full"}).inc(4)
        hist = reg.histogram("seconds", bounds=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = reg.render_prometheus()
        assert "# TYPE points_total counter" in text
        assert 'points_total{mode="full"} 4' in text
        assert 'seconds_bucket{le="0.1"} 1' in text
        assert 'seconds_bucket{le="1"} 2' in text
        assert 'seconds_bucket{le="+Inf"} 2' in text
        assert "seconds_count 2" in text
        # The free function renders a payload snapshot identically.
        assert metrics.render_prometheus(reg.to_payload()) == text

    def test_drain_phase_payload_resets_and_merges_back(self):
        metrics.observe_phase("triage", 0.01)
        metrics.observe_phase("triage", 0.02)
        payload = metrics.drain_phase_payload()
        assert payload and payload[0]["count"] == 2
        # Drained: a second drain ships nothing.
        assert all(p["count"] == 0 for p in metrics.drain_phase_payload())
        metrics.merge_phase_payload(payload)
        reg = metrics.registry()
        hist = reg.histogram(
            metrics.PHASE_METRIC, {"phase": "triage"}
        )
        assert hist.count == 2


# --------------------------------------------------------------------- #
# flight recorder                                                       #
# --------------------------------------------------------------------- #
class TestFlightRecorder:
    def test_ring_is_bounded_and_sequenced(self):
        recorder = flight.FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record("tick", i=i)
        assert len(recorder) == 4
        assert recorder.recorded == 10
        tail = recorder.tail_payload(2)
        assert [entry["seq"] for entry in tail] == [8, 9]

    def test_tail_payload_strips_timestamps_and_pids(self):
        recorder = flight.FlightRecorder()
        recorder.record("dispatch", index=3)
        (full,) = recorder.tail(1)
        assert "t" in full and "pid" in full
        (payload,) = recorder.tail_payload(1)
        assert payload == {"seq": 0, "kind": "dispatch", "index": 3}

    def test_process_recorder_is_per_pid_and_clearable(self):
        flight.record("a")
        assert flight.recorder().recorded == 1
        flight.recorder().clear()
        assert flight.recorder().recorded == 0
        assert flight.tail_payload() == []


# --------------------------------------------------------------------- #
# trace writer + module activation                                      #
# --------------------------------------------------------------------- #
class TestTraceWriter:
    def _records(self, path):
        with open(path, encoding="utf-8") as stream:
            return [json.loads(line) for line in stream]

    def test_spans_nest_with_parent_ids(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with trace.TraceWriter(path, config={"k": "v"}) as writer:
            root = writer.begin_span("campaign")
            child = writer.begin_span("batch", parent=root, points=3)
            writer.end_span(child, hits=1)
            writer.event("retry", index=2)
            writer.emit_metrics([])
            writer.end_span(root, status="completed")
        records = self._records(path)
        assert records[0]["event"] == "meta"
        assert records[0]["schema"] == trace.TRACE_SCHEMA
        assert records[0]["config"] == {"k": "v"}
        batch = next(r for r in records if r.get("name") == "batch")
        campaign = next(r for r in records if r.get("name") == "campaign")
        assert batch["parent"] == campaign["id"]
        assert batch["attrs"] == {"points": 3, "hits": 1}
        assert batch["t_end"] >= batch["t_start"]
        event = next(r for r in records if r["event"] == "event")
        assert event["name"] == "retry" and event["fields"] == {"index": 2}

    def test_abandoned_spans_are_flushed_as_aborted(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = trace.TraceWriter(path)
        writer.begin_span("campaign")
        writer.close()
        (span,) = [r for r in self._records(path) if r["event"] == "span"]
        assert span["attrs"]["aborted"] is True

    def test_module_hooks_are_noops_when_inactive(self, tmp_path):
        assert trace.active() is None
        assert trace.begin_span("campaign") == 0
        trace.end_span(0)
        trace.event("retry")
        trace.now()
        # Activation opens the writer; double-activation is an error.
        session = Telemetry(tmp_path / "t.jsonl")
        trace.activate(session)
        with pytest.raises(RuntimeError):
            trace.activate(Telemetry(tmp_path / "u.jsonl"))
        span = trace.begin_span("campaign")
        assert span != 0
        trace.end_span(span)
        trace.deactivate()
        assert trace.active() is None

    def test_telemetry_validates_progress_interval(self):
        with pytest.raises(ValueError):
            Telemetry(progress_interval=-1)


# --------------------------------------------------------------------- #
# schema validation                                                     #
# --------------------------------------------------------------------- #
class TestSchema:
    def test_real_trace_records_validate(self, tmp_path):
        path = tmp_path / "t.jsonl"
        run_campaign(config(), telemetry=Telemetry(path))
        with open(path, encoding="utf-8") as stream:
            for number, line in enumerate(stream, start=1):
                assert schema.validate_record(json.loads(line), number) == []

    def test_problems_are_reported(self):
        assert schema.validate_record([]) == ["record: not a JSON object"]
        assert "unknown record kind" in schema.validate_record({"event": "x"})[0]
        errors = schema.validate_record(
            {"event": "span", "name": "point", "id": 1, "parent": None,
             "t_start": 2.0, "t_end": 1.0, "pid": 1, "worker": None, "attrs": {}}
        )
        assert errors == ["record: span ends before it starts"]
        missing = schema.validate_record({"event": "event", "name": "retry"})
        assert any("missing field" in error for error in missing)
        bad_metric = schema.validate_metric(
            {"name": "x", "type": "histogram", "labels": {},
             "bounds": [1.0], "buckets": [1], "sum": 0.0, "count": 1}
        )
        assert any("len(bounds)+1" in error for error in bad_metric)


# --------------------------------------------------------------------- #
# console emitter                                                       #
# --------------------------------------------------------------------- #
class TestConsole:
    def test_quiet_suppresses_output_not_status(self):
        out, err = io.StringIO(), io.StringIO()
        emitter = console.Console(
            output_stream=out, status_stream=err, quiet=True
        )
        emitter.output("the table")
        emitter.status("[campaign] stats")
        emitter.error("[campaign] error: boom")
        assert out.getvalue() == ""
        assert "[campaign] stats" in err.getvalue()
        assert "error: boom" in err.getvalue()

    def test_set_console_swaps_and_restores(self):
        replacement = console.Console(output_stream=io.StringIO())
        previous = console.set_console(replacement)
        try:
            assert console.get_console() is replacement
        finally:
            console.set_console(previous)
        assert console.get_console() is previous

    def test_quarantine_footer_matches_render(self):
        result = run_campaign(
            config(max_retries=0), chaos=parse_chaos("fail@2")
        )
        assert result.quarantined_points == 1
        footer = console.format_quarantine_footer(result.quarantined)
        assert result.render().endswith(footer)
        assert "1 point(s) failed every attempt" in footer

    def test_stats_line_shape(self):
        result = run_campaign(config())
        line = console.format_stats_line(result, 2.0)
        assert line.startswith("[campaign] strata=1 points=6 simulated=6 ")
        assert "quarantined=0" in line and "(3.0 points/s)" in line

    def test_flight_tail_rendering(self):
        recorder = flight.FlightRecorder()
        recorder.record("retry", index=3)
        text = console.format_flight_tail(recorder.tail())
        assert "#0 retry index=3" in text
        assert console.format_flight_tail([]).endswith("(empty)")


# --------------------------------------------------------------------- #
# deterministic inertness (the tentpole's hard constraint)               #
# --------------------------------------------------------------------- #
class TestDeterministicInertness:
    def _store_rows(self, path):
        with ResultStore(path) as store:
            rows = {key: payload for key, payload, _kind in store.iter_rows()}
            quarantine = {
                key: json.loads(error)
                for key, error in store._connection.execute(
                    "SELECT key, error FROM quarantine ORDER BY key"
                )
            }
        return rows, quarantine

    def test_traced_run_is_byte_identical_to_untraced(self, tmp_path):
        cfg = config(max_retries=1)
        chaos_spec = "fail@1,fail@4:always"

        plain_store = tmp_path / "plain.sqlite"
        with ResultStore(plain_store) as store:
            plain = run_campaign(
                cfg, store=store, chaos=parse_chaos(chaos_spec)
            )
        traced_store = tmp_path / "traced.sqlite"
        with ResultStore(traced_store) as store:
            traced = run_campaign(
                cfg,
                store=store,
                chaos=parse_chaos(chaos_spec),
                telemetry=Telemetry(
                    tmp_path / "run.trace", progress_interval=0
                ),
            )
        # Summaries byte-identical (including the quarantine footer).
        assert traced.render() == plain.render()
        assert traced.quarantined_points == plain.quarantined_points == 1
        # Every store payload byte-identical, quarantine rows included —
        # flight-recorder tails carry no timestamps or pids.
        assert self._store_rows(traced_store) == self._store_rows(plain_store)
        # And the trace file itself recorded the run.
        loaded = analyze.TraceFile(tmp_path / "run.trace")
        assert loaded.validate() == []
        assert loaded.spans_named("campaign")

    def test_quarantine_payload_carries_the_flight_tail(self):
        result = run_campaign(
            config(max_retries=1), chaos=parse_chaos("fail@2:always")
        )
        assert result.quarantined_points == 1
        tail = result.quarantined[0].error["details"]["flight_recorder"]
        assert tail, "quarantined error must carry a flight-recorder tail"
        kinds = [entry["kind"] for entry in tail]
        assert "point-failure" in kinds or "point-start" in kinds
        for entry in tail:
            assert "t" not in entry and "pid" not in entry
        # JSON round-trippable: it lands in the store quarantine table.
        payload = result.quarantined[0].error
        assert json.loads(json.dumps(payload)) == payload

    def test_two_campaigns_in_one_process_quarantine_identically(self):
        # Flight sequence numbers restart per campaign, so the second
        # run's quarantine payload matches the first byte for byte.
        first = run_campaign(
            config(max_retries=0), chaos=parse_chaos("fail@2")
        )
        second = run_campaign(
            config(max_retries=0), chaos=parse_chaos("fail@2")
        )
        assert first.quarantined[0].error == second.quarantined[0].error


# --------------------------------------------------------------------- #
# stats line / metrics registry / trace events agree under chaos        #
# --------------------------------------------------------------------- #
class TestSupervisorAgreement:
    def _trace_events(self, path, name):
        loaded = analyze.TraceFile(path)
        return [e for e in loaded.events if e["name"] == name]

    def test_retry_and_quarantine_counts_agree(self, tmp_path):
        path = tmp_path / "run.trace"
        result = run_campaign(
            config(max_retries=1),
            chaos=parse_chaos("fail@1,fail@4:always"),
            telemetry=Telemetry(path),
        )
        reg = metrics.registry()
        # fail@1 fails once then succeeds on retry; fail@4:always burns
        # both attempts and is quarantined.
        assert result.stats.retries == 2
        assert reg.value("campaign_retries_total") == 2
        assert len(self._trace_events(path, "retry")) == 2
        assert result.quarantined_points == 1
        assert reg.value("campaign_points_quarantined_total") == 1
        assert len(self._trace_events(path, "quarantine")) == 1
        failures = reg.value(
            "campaign_point_failures_total", {"error": "replay-divergence"}
        )
        assert failures == 3  # one for fail@1, two for fail@4:always
        assert len(self._trace_events(path, "point-failure")) == 3
        assert result.stats.replay_failures == 3

    def test_kill_worker_appears_once_everywhere(self, tmp_path):
        path = tmp_path / "kill.trace"
        result = run_campaign(
            config(workers=2),
            chaos=parse_chaos("kill-worker@2"),
            telemetry=Telemetry(path),
        )
        reg = metrics.registry()
        assert result.stats.worker_restarts >= 1
        assert (
            reg.value("campaign_pool_restarts_total")
            == result.stats.worker_restarts
        )
        assert (
            len(self._trace_events(path, "pool-restart"))
            == result.stats.worker_restarts
        )
        assert reg.value("campaign_retries_total") == result.stats.retries
        assert not result.quarantined

    def test_timeout_appears_once_everywhere(self, tmp_path):
        path = tmp_path / "timeout.trace"
        result = run_campaign(
            config(point_timeout=1.5, max_retries=0),
            chaos=parse_chaos("timeout@2:always", hang_seconds=30.0),
            telemetry=Telemetry(path),
        )
        reg = metrics.registry()
        assert result.quarantined_points == 1
        assert result.quarantined[0].error["error"] == "point-timeout"
        assert reg.value(
            "campaign_point_failures_total", {"error": "point-timeout"}
        ) == result.stats.timeouts
        assert len(self._trace_events(path, "quarantine")) == 1
        assert reg.value("campaign_points_quarantined_total") == 1

    def test_replay_mode_counters_mirror_stats(self, tmp_path):
        result = run_campaign(config(), telemetry=Telemetry(tmp_path / "m.trace"))
        reg = metrics.registry()
        assert reg.value(
            "campaign_replay_points_total", {"mode": "analytical"}
        ) == result.stats.analytical
        assert reg.value(
            "campaign_replay_points_total", {"mode": "streamed"}
        ) == result.stats.streamed
        assert reg.value("campaign_points_simulated_total") == result.simulated
        assert reg.value("campaign_points_total") == result.points

    def test_store_counters_and_phases_are_published(self, tmp_path):
        store_path = tmp_path / "s.sqlite"
        with ResultStore(store_path) as store:
            run_campaign(config(), store=store)
        metrics.reset_registry()
        flight.reset_recorder()
        with ResultStore(store_path) as store:
            resumed = run_campaign(config(), store=store, resume=True)
        reg = metrics.registry()
        assert resumed.store_hits == BASE["trials"]
        assert reg.value("campaign_store_hits_total") == BASE["trials"]
        assert (
            reg.value("store_lookups_total", {"result": "hit"})
            == BASE["trials"]
        )
        lookup = reg.histogram("store_lookup_seconds")
        assert lookup.count >= 1
        # Fresh (non-resume) run publishes write latency + phase timings.
        metrics.reset_registry()
        with ResultStore(tmp_path / "w.sqlite") as store:
            run_campaign(config(), store=store)
        reg = metrics.registry()
        assert reg.histogram("store_write_seconds").count >= 1
        phases = {
            metric.labels[0][1]
            for metric in reg
            if metric.name == metrics.PHASE_METRIC
        }
        assert {"sampling", "store_write"} <= phases


# --------------------------------------------------------------------- #
# trace analysis + CLI consumer                                         #
# --------------------------------------------------------------------- #
class TestTraceConsumer:
    def test_failure_timeline_reconstructs_kill_worker_run(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "kill.trace"
        result = run_campaign(
            config(workers=2),
            chaos=parse_chaos("kill-worker@2"),
            telemetry=Telemetry(path),
        )
        assert result.stats.worker_restarts >= 1
        loaded = analyze.TraceFile(path)
        timeline = loaded.failure_timeline()
        names = [event["name"] for event in timeline]
        assert "pool-restart" in names and "point-failure" in names
        # Time-ordered.
        times = [event["t"] for event in timeline]
        assert times == sorted(times)
        # The CLI renders the same reconstruction.
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "failure timeline:" in out
        assert "pool-restart" in out
        assert "slowest" in out
        assert main(["trace", str(path), "--timeline"]) == 0
        assert "point-failure" in capsys.readouterr().out

    def test_cli_metrics_and_validate(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "ok.trace"
        run_campaign(config(), telemetry=Telemetry(path))
        assert main(["trace", str(path), "--validate"]) == 0
        assert "schema OK" in capsys.readouterr().out
        assert main(["trace", str(path), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE campaign_points_total counter" in out
        assert "campaign_phase_seconds_bucket" in out
        # A corrupted file fails validation with a nonzero exit.
        bad = tmp_path / "bad.trace"
        bad.write_text('{"event": "span", "name": 3}\nnot json\n')
        assert main(["trace", str(bad), "--validate"]) == 1
        assert main(["trace", str(tmp_path / "missing.trace")]) == 2

    def test_slowest_groups_ranked_by_duration(self, tmp_path):
        path = tmp_path / "two.trace"
        run_campaign(
            config(kernels=("rspeed",), policies=("extra-cycle", "no-ecc")),
            telemetry=Telemetry(path),
        )
        loaded = analyze.TraceFile(path)
        ranked = loaded.slowest_groups(10)
        assert len(ranked) == 4  # 2 policies x 2 batches
        durations = [seconds for _label, seconds, _points in ranked]
        assert durations == sorted(durations, reverse=True)
        assert all(points == 3 for _label, _seconds, points in ranked)

    def test_summary_names_workers_and_config(self, tmp_path):
        path = tmp_path / "sum.trace"
        run_campaign(
            config(),
            telemetry=Telemetry(path, config={"kernels": "rspeed"}),
        )
        text = analyze.TraceFile(path).summary()
        assert "config: kernels=rspeed" in text
        assert "status=completed" in text
        assert "failures: none" in text
        assert f"workers: 1 ({os.getpid()})" in text


# --------------------------------------------------------------------- #
# heartbeat                                                             #
# --------------------------------------------------------------------- #
class TestHeartbeat:
    def test_heartbeat_emits_at_batch_boundaries(self):
        err = io.StringIO()
        previous = console.set_console(
            console.Console(status_stream=err)
        )
        try:
            run_campaign(
                config(),
                telemetry=Telemetry(progress_interval=0),
            )
        finally:
            console.set_console(previous)
        lines = [l for l in err.getvalue().splitlines() if "progress" in l]
        assert len(lines) == 2  # one per batch (6 trials / batch 3)
        assert lines[-1].startswith("[campaign] progress 6/6 (100%)")
        assert "points/s" in lines[-1] and "retries=0" in lines[-1]

    def test_heartbeat_respects_interval(self):
        err = io.StringIO()
        previous = console.set_console(console.Console(status_stream=err))
        try:
            run_campaign(
                config(), telemetry=Telemetry(progress_interval=3600)
            )
        finally:
            console.set_console(previous)
        assert "progress" not in err.getvalue()

    def test_no_heartbeat_without_interval(self):
        err = io.StringIO()
        previous = console.set_console(console.Console(status_stream=err))
        try:
            run_campaign(config(), telemetry=None)
        finally:
            console.set_console(previous)
        assert err.getvalue() == ""
