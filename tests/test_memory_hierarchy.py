"""Tests for the bus, main memory, L2 and the per-core hierarchy façade."""

import pytest

from repro.memory.bus import Bus, ContentionModel
from repro.memory.config import CacheConfig, MemoryHierarchyConfig, WritePolicy
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.l2_cache import SharedL2Cache
from repro.memory.main_memory import MainMemory


class TestContentionModel:
    def test_no_contention(self):
        assert ContentionModel(contenders=0, mode="none").delay() == 0
        assert ContentionModel(contenders=3, mode="none").delay() == 0

    def test_worst_case_full_round(self):
        assert ContentionModel(contenders=3, slot_cycles=6, mode="worst").delay() == 18

    def test_average_half_round(self):
        assert ContentionModel(contenders=3, slot_cycles=6, mode="average").delay() == 9

    def test_unknown_mode_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown contention mode"):
            ContentionModel(contenders=1, mode="pessimal")

    def test_unknown_mode_rejected_even_without_contenders(self):
        # Regression: delay() returned 0 for any mode whenever
        # contenders <= 0, so a typo like "wrost" was silently accepted
        # on isolation configs and only exploded when contenders rose.
        with pytest.raises(ValueError, match="wrost"):
            ContentionModel(contenders=0, mode="wrost")


class TestBus:
    def test_line_vs_word_transaction(self):
        bus = Bus(request_latency=2, transfer_latency=4)
        assert bus.transaction_cycles("line") == 6
        assert bus.transaction_cycles("word") < 6

    def test_contention_added_and_recorded(self):
        bus = Bus(
            request_latency=2,
            transfer_latency=4,
            contention=ContentionModel(contenders=2, slot_cycles=5, mode="worst"),
        )
        cycles = bus.transaction_cycles("line")
        assert cycles == 6 + 10
        assert bus.stats.contention_cycles == 10
        assert bus.stats.transactions == 1

    def test_reset_statistics(self):
        bus = Bus()
        bus.transaction_cycles()
        bus.reset_statistics()
        assert bus.stats.transactions == 0


class TestMainMemoryAndL2:
    def test_row_hit_discount(self):
        memory = MainMemory(access_latency=20, row_bytes=1024, row_hit_discount=6)
        first = memory.access_cycles(0x1000)
        second = memory.access_cycles(0x1040)  # same row
        third = memory.access_cycles(0x9000)   # new row
        assert first == 20 and second == 14 and third == 20
        assert memory.stats.row_hit_rate == pytest.approx(1 / 3)

    def test_l2_hit_cheaper_than_miss(self):
        memory = MainMemory(access_latency=20)
        l2 = SharedL2Cache(
            CacheConfig(size_bytes=4096, line_bytes=32, ways=4, name="l2"),
            memory,
            hit_latency=4,
        )
        miss_cycles = l2.access_cycles(0x4000)
        hit_cycles = l2.access_cycles(0x4000)
        assert hit_cycles == 4
        assert miss_cycles > hit_cycles


class TestMemoryHierarchy:
    def _hierarchy(self, **kwargs) -> MemoryHierarchy:
        return MemoryHierarchy(MemoryHierarchyConfig(**kwargs))

    def test_load_hit_has_no_extra_latency(self):
        hierarchy = self._hierarchy()
        miss = hierarchy.load_access(0x40100000)
        hit = hierarchy.load_access(0x40100000)
        assert miss.extra_cycles > 0 and not miss.hit
        assert hit.hit and hit.extra_cycles == 0

    def test_store_drain_latency_write_back_vs_write_through(self):
        wb = self._hierarchy()
        wt = MemoryHierarchy(MemoryHierarchyConfig().with_write_through_l1d())
        # Warm the line so both stores hit in the DL1.
        wb.load_access(0x40100000)
        wt.load_access(0x40100000)
        wb_store = wb.store_access(0x40100000)
        wt_store = wt.store_access(0x40100000)
        assert wb_store.store_drain_latency == 1
        assert wt_store.store_drain_latency > wb_store.store_drain_latency

    def test_instruction_fetch_hit_is_free(self):
        hierarchy = self._hierarchy()
        assert hierarchy.instruction_fetch_cycles(0x40000000) > 0
        assert hierarchy.instruction_fetch_cycles(0x40000004) == 0

    def test_contention_raises_miss_penalty(self):
        quiet = self._hierarchy()
        noisy = MemoryHierarchy(
            MemoryHierarchyConfig().with_contention(3, "worst")
        )
        assert (
            noisy.load_access(0x40200000).extra_cycles
            > quiet.load_access(0x40200000).extra_cycles
        )

    def test_dirty_eviction_charges_writeback(self):
        config = MemoryHierarchyConfig(
            l1d=CacheConfig(size_bytes=1024, line_bytes=32, ways=2, name="dl1")
        )
        hierarchy = MemoryHierarchy(config)
        # Dirty a line, then force its eviction with two conflicting lines.
        hierarchy.store_access(0x40100000)
        hierarchy.load_access(0x40100000 + 512)
        with_writeback = hierarchy.load_access(0x40100000 + 1024)
        assert with_writeback.caused_writeback

    def test_describe_mentions_geometry(self):
        hierarchy = self._hierarchy()
        text = hierarchy.describe()
        assert "16 KiB" in text and "write-back" in text

    def test_reset_statistics(self):
        hierarchy = self._hierarchy()
        hierarchy.load_access(0x40100000)
        hierarchy.reset_statistics()
        assert hierarchy.dl1_statistics().accesses == 0

    def test_memory_round_trip_consistency(self):
        config = MemoryHierarchyConfig()
        assert config.memory_round_trip == config.l2_round_trip + config.memory_latency
