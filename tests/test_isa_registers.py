"""Tests for the register file and condition codes."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.registers import (
    ConditionCodes,
    RegisterError,
    RegisterFile,
    register_name,
    register_number,
    to_signed,
    to_unsigned,
)


class TestRegisterNaming:
    def test_plain_names(self):
        assert register_number("r0") == 0
        assert register_number("r31") == 31
        assert register_number("R7") == 7

    def test_aliases(self):
        assert register_number("sp") == 14
        assert register_number("fp") == 30
        assert register_number("lr") == 31
        assert register_number("zero") == 0

    def test_unknown_register_raises(self):
        with pytest.raises(RegisterError):
            register_number("r32")
        with pytest.raises(RegisterError):
            register_number("x5")

    def test_round_trip_names(self):
        for number in range(32):
            assert register_number(register_name(number)) == number

    def test_alias_preference(self):
        assert register_name(14, prefer_alias=True) == "sp"
        assert register_name(14) == "r14"

    def test_out_of_range_name(self):
        with pytest.raises(RegisterError):
            register_name(32)


class TestRegisterFile:
    def test_r0_is_hardwired_zero(self):
        rf = RegisterFile()
        rf.write(0, 12345)
        assert rf.read(0) == 0

    def test_write_and_read(self):
        rf = RegisterFile()
        rf.write(5, 0xDEADBEEF)
        assert rf.read(5) == 0xDEADBEEF

    def test_values_truncated_to_32_bits(self):
        rf = RegisterFile()
        rf.write(3, 1 << 40 | 7)
        assert rf.read(3) == 7

    def test_snapshot_round_trip(self):
        rf = RegisterFile()
        rf.write(1, 10)
        rf.write(2, 20)
        snapshot = rf.snapshot()
        rf.write(1, 99)
        rf.load_snapshot(snapshot)
        assert rf.read(1) == 10
        assert rf.read(2) == 20

    def test_bad_snapshot_length(self):
        rf = RegisterFile()
        with pytest.raises(RegisterError):
            rf.load_snapshot([0, 1, 2])

    def test_out_of_range_access(self):
        rf = RegisterFile()
        with pytest.raises(RegisterError):
            rf.read(40)
        with pytest.raises(RegisterError):
            rf.write(-1, 0)


class TestConditionCodes:
    def test_logical_update(self):
        cc = ConditionCodes()
        cc.update_logical(0)
        assert cc.zero and not cc.negative
        cc.update_logical(0x80000000)
        assert cc.negative and not cc.zero

    def test_arithmetic_update_flags(self):
        cc = ConditionCodes()
        cc.update_arithmetic(0, carry=True, overflow=True)
        assert cc.zero and cc.carry and cc.overflow

    def test_copy_is_independent(self):
        cc = ConditionCodes(zero=True)
        copy = cc.copy()
        copy.zero = False
        assert cc.zero


class TestSignConversions:
    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_signed_unsigned_round_trip(self, value):
        assert to_unsigned(to_signed(value)) == value

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_to_signed_range(self, value):
        assert to_signed(to_unsigned(value)) == value
