"""Fault-tolerant campaign execution: supervisor, chaos, self-healing store.

The campaign injects faults into a simulated cache hierarchy; these
tests inject faults into the campaign harness itself (via the
deterministic chaos injector) and assert the fault-tolerance layer holds:
crashed workers respawn, hung points are quarantined, torn store rows
are detected and healed, and every interrupted run resumes to a
byte-identical summary.
"""

from __future__ import annotations

import json
import os
import signal
import sqlite3
import subprocess
import sys

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignError,
    CampaignInterrupted,
    ChaosDirective,
    ChaosPlan,
    PointTimeout,
    QuarantinedPoint,
    ReplayDivergence,
    StoreCorruption,
    WorkerCrash,
    corrupt_store_row,
    parse_chaos,
    run_campaign,
)
from repro.campaign.errors import wrap_point_error
from repro.store import ResultStore, payload_checksum, with_lock_retry

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

#: A tiny, fast campaign every harness test reuses (rspeed is the
#: smallest kernel; retry_backoff=0 keeps retries instant).
BASE = dict(
    kernels=("rspeed",),
    policies=("extra-cycle",),
    scale=0.1,
    trials=6,
    batch=3,
    seed=2019,
    retry_backoff=0.0,
)


def config(**overrides) -> CampaignConfig:
    merged = dict(BASE)
    merged.update(overrides)
    return CampaignConfig(**merged)


# --------------------------------------------------------------------- #
# the error taxonomy                                                    #
# --------------------------------------------------------------------- #
class TestErrorTaxonomy:
    def test_kinds_are_stable_and_structured(self):
        cases = [
            (PointTimeout("too slow", timeout_seconds=1.0), "point-timeout"),
            (WorkerCrash("died"), "worker-crash"),
            (ReplayDivergence("raised"), "replay-divergence"),
            (StoreCorruption("torn"), "store-corruption"),
            (CampaignInterrupted("sigint"), "interrupted"),
        ]
        for error, kind in cases:
            assert error.kind == kind
            payload = error.payload()
            assert payload["error"] == kind
            assert payload["message"]
            assert isinstance(payload["details"], dict)
            assert str(error).startswith(kind + ":")
            # Payloads must be JSON round-trippable (they land in the
            # store's quarantine table).
            assert json.loads(json.dumps(payload)) == payload

    def test_wrap_point_error_normalises_foreign_exceptions(self):
        wrapped = wrap_point_error(ValueError("boom"), point_index=7)
        assert isinstance(wrapped, ReplayDivergence)
        assert wrapped.details["exception"] == "ValueError"
        assert wrapped.details["point_index"] == 7
        # Taxonomy errors pass through, details extended.
        original = PointTimeout("slow")
        assert wrap_point_error(original, point_index=3) is original
        assert original.details["point_index"] == 3

    def test_quarantined_point_report_line_is_deterministic(self):
        point = QuarantinedPoint(
            index=12,
            kernel="rspeed",
            policy="no-ecc",
            target="dl1",
            scenario="isolation",
            scale=0.1,
            attempts=3,
            error=PointTimeout("exceeded the 0.5s watchdog").payload(),
        )
        line = point.describe()
        assert "point 12 rspeed x no-ecc" in line
        assert "point-timeout" in line
        assert point.describe() == line


# --------------------------------------------------------------------- #
# the chaos injector                                                    #
# --------------------------------------------------------------------- #
class TestChaosPlan:
    def test_parse_round_trips(self):
        plan = parse_chaos("kill-worker@5, timeout@7:always ,fail@0")
        assert plan.spec() == "kill-worker@5,timeout@7:always,fail@0"
        assert plan.directives[1].always

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_chaos("explode@3")
        with pytest.raises(ValueError):
            parse_chaos("kill-worker@x")
        with pytest.raises(ValueError):
            ChaosDirective(kind="kill-worker", index=-1)

    def test_one_shot_directives_fire_exactly_once(self):
        plan = parse_chaos("fail@4")
        assert plan.directive_for(3, worker=True) is None
        first = plan.directive_for(4, worker=True)
        assert first is not None and first.kind == "fail"
        # Consumed: the retry of point 4 sees no directive.
        assert plan.directive_for(4, worker=True) is None

    def test_always_directives_keep_firing(self):
        plan = parse_chaos("fail@4:always")
        for _ in range(3):
            assert plan.directive_for(4, worker=True) is not None

    def test_worker_and_supervisor_kinds_are_disjoint(self):
        plan = parse_chaos("kill-main@2,fail@2")
        assert plan.directive_for(2, worker=True).kind == "fail"
        assert plan.directive_for(2, worker=False).kind == "kill-main"
        assert plan.directive_for(2, worker=False) is None

    def test_corrupt_store_row_is_checksum_detectable(self, tmp_path):
        path = tmp_path / "chaos.sqlite"
        with ResultStore(path) as store:
            store.put("a", {"value": 123})
            store.put("b", {"value": 456})
        key = corrupt_store_row(path, 0)
        with ResultStore(path) as store:
            report = store.verify()
            assert report.corrupt == [key]
            # The corrupted payload is still valid JSON: only the
            # checksum can tell it is lying.
            row = store._connection.execute(
                "SELECT payload FROM results WHERE key = ?", (key,)
            ).fetchone()
            json.loads(row[0])


# --------------------------------------------------------------------- #
# the self-healing store                                                #
# --------------------------------------------------------------------- #
class TestStoreIntegrity:
    def test_rows_are_checksummed_on_write(self, tmp_path):
        with ResultStore(tmp_path / "s.sqlite") as store:
            store.put("one", {"v": 1})
            store.put_many([("two", {"v": 2}, ""), ("three", {"v": 3}, "")])
            for key, payload_text, checksum in store._connection.execute(
                "SELECT key, payload, checksum FROM results"
            ):
                assert checksum == payload_checksum(payload_text), key

    def test_get_drops_corrupted_rows_and_reports_miss(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with ResultStore(path) as store:
            store.put("k", {"v": 1})
        key = corrupt_store_row(path, 0)
        with ResultStore(path) as store:
            assert store.get(key) is None
            assert store.misses == 1 and store.hits == 0
            assert store.corrupt_dropped == 1
            assert key not in store  # dropped, so resume re-simulates

    def test_get_drops_torn_unparseable_rows(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with ResultStore(path) as store:
            store.put("k", {"v": 1})
            # A torn write: payload truncated mid-JSON, checksum stale.
            store._connection.execute(
                "UPDATE results SET payload = '{\"v\": ' WHERE key = 'k'"
            )
            store._connection.commit()
            assert store.get("k") is None
            assert store.corrupt_dropped == 1

    def test_verify_is_read_only_and_repair_heals(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with ResultStore(path) as store:
            for i in range(4):
                store.put(f"k{i}", {"v": i})
        corrupted = corrupt_store_row(path, 2)
        with ResultStore(path) as store:
            report = store.verify()
            assert report.total == 4 and report.intact == 3
            assert report.corrupt == [corrupted] and not report.clean
            assert len(store) == 4  # verify never modifies
            healed = store.repair()
            assert healed.dropped == [corrupted]
            assert len(store) == 3
            assert store.verify().clean

    def test_v1_store_migrates_in_place_and_repair_backfills(self, tmp_path):
        path = tmp_path / "v1.sqlite"
        # Write a faithful v1 layout: no checksum column, no meta table.
        connection = sqlite3.connect(str(path))
        connection.executescript(
            """
            CREATE TABLE results (
                key TEXT PRIMARY KEY,
                kind TEXT NOT NULL DEFAULT '',
                spec TEXT NOT NULL DEFAULT '',
                payload TEXT NOT NULL
            );
            INSERT INTO results (key, kind, payload)
            VALUES ('legacy', 'injection', '{"outcome": "masked"}');
            """
        )
        connection.commit()
        connection.close()
        with ResultStore(path) as store:
            assert store.schema_version == 2
            # Legacy rows read fine (JSON-validated, not checksummed)...
            assert store.get("legacy") == {"outcome": "masked"}
            report = store.verify()
            assert report.legacy == ["legacy"] and report.clean
            # ... and repair backfills their checksums.
            healed = store.repair()
            assert healed.backfilled == ["legacy"]
            assert store.verify().legacy == []

    def test_newer_schema_is_refused_not_guessed(self, tmp_path):
        path = tmp_path / "future.sqlite"
        with ResultStore(path) as store:
            store.put("k", {"v": 1})
        connection = sqlite3.connect(str(path))
        connection.execute(
            "UPDATE store_meta SET value = '99' WHERE key = 'schema_version'"
        )
        connection.commit()
        connection.close()
        with pytest.raises(StoreCorruption) as excinfo:
            ResultStore(path)
        assert excinfo.value.details["found_version"] == 99

    def test_lock_retry_backs_off_then_succeeds(self):
        sleeps = []
        attempts = []

        def flaky():
            attempts.append(True)
            if len(attempts) < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        assert (
            with_lock_retry(flaky, base_delay=0.01, sleep=sleeps.append) == "ok"
        )
        assert sleeps == [0.01, 0.02]  # exponential backoff

    def test_lock_retry_gives_up_and_ignores_other_errors(self):
        def always_locked():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError):
            with_lock_retry(always_locked, retries=2, sleep=lambda _t: None)

        def broken():
            raise sqlite3.OperationalError("no such table: results")

        sleeps = []
        with pytest.raises(sqlite3.OperationalError):
            with_lock_retry(broken, sleep=sleeps.append)
        assert sleeps == []  # non-lock errors never retry

    def test_quarantine_table_round_trips(self, tmp_path):
        path = tmp_path / "q.sqlite"
        error = PointTimeout("slow", timeout_seconds=0.5).payload()
        with ResultStore(path) as store:
            store.quarantine_put("poison", error, spec_json='{"spec": 1}')
            assert store.quarantine_count() == 1
            assert store.quarantine_get("poison") == error
        with ResultStore(path) as store:  # survives reopen
            assert store.quarantine_count() == 1
            store.quarantine_clear("poison")
            assert store.quarantine_count() == 0


class TestStoreLifecycle:
    def test_close_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        store.put("k", {"v": 1})
        store.close()
        store.close()  # second close must be a no-op, not an error
        assert store.closed

    def test_context_manager_closes_on_exception(self, tmp_path):
        with pytest.raises(RuntimeError):
            with ResultStore(tmp_path / "s.sqlite") as store:
                raise RuntimeError("campaign blew up")
        assert store.closed
        store.close()  # and teardown may close again safely

    def test_no_wal_handle_leaks_after_failed_campaign(self, tmp_path):
        path = tmp_path / "s.sqlite"
        store = ResultStore(path)
        with pytest.raises(CampaignError):
            run_campaign(
                config(max_retries=0, quarantine=False),
                store=store,
                chaos=parse_chaos("fail@1:always"),
            )
        store.close()
        # The WAL is released: a fresh writer needs no recovery dance.
        with ResultStore(path) as fresh:
            fresh.put("k", {"v": 1})
            assert fresh.get("k") == {"v": 1}


# --------------------------------------------------------------------- #
# the execution supervisor                                              #
# --------------------------------------------------------------------- #
class TestSupervisor:
    def test_transient_failure_is_retried_to_the_identical_summary(self):
        clean = run_campaign(config())
        chaotic = run_campaign(config(), chaos=parse_chaos("fail@2"))
        assert chaotic.render() == clean.render()
        assert chaotic.stats.retries == 1
        assert chaotic.stats.replay_failures == 1
        assert not chaotic.quarantined

    def test_poison_point_is_quarantined_and_reported(self):
        result = run_campaign(
            config(max_retries=1), chaos=parse_chaos("fail@2:always")
        )
        assert result.quarantined_points == 1
        point = result.quarantined[0]
        assert point.index == 2
        assert point.attempts == 2  # initial try + 1 retry
        assert point.error["error"] == "replay-divergence"
        # The stratum excludes it from trials and every rate.
        assert result.strata[0].trials == BASE["trials"] - 1
        assert result.strata[0].quarantined == 1
        text = result.render()
        assert "Quarantined: 1 point(s)" in text
        assert "replay-divergence" in text

    def test_no_quarantine_fails_fast(self):
        with pytest.raises(ReplayDivergence):
            run_campaign(
                config(max_retries=0, quarantine=False),
                chaos=parse_chaos("fail@2:always"),
            )

    def test_quarantine_is_recorded_in_the_store_and_resume_heals(self, tmp_path):
        path = tmp_path / "c.sqlite"
        with ResultStore(path) as store:
            poisoned = run_campaign(
                config(max_retries=0),
                store=store,
                resume=True,
                chaos=parse_chaos("fail@2:always"),
            )
            assert poisoned.quarantined_points == 1
            assert store.quarantine_count() == 1
            assert poisoned.quarantined[0].key not in store
        # A later resume (the fault was transient/chaos) re-simulates
        # exactly the poison point and matches the uninterrupted run.
        with ResultStore(path) as store:
            resumed = run_campaign(config(), store=store, resume=True)
            assert resumed.simulated == 1
            assert resumed.store_hits == BASE["trials"] - 1
        assert resumed.render() == run_campaign(config()).render()

    def test_worker_death_respawns_pool_and_completes(self):
        clean = run_campaign(config(workers=2))
        crashed = run_campaign(
            config(workers=2), chaos=parse_chaos("kill-worker@2")
        )
        assert crashed.render() == clean.render()
        assert crashed.stats.worker_restarts >= 1
        assert crashed.stats.worker_crashes >= 1
        assert not crashed.quarantined

    def test_hung_point_trips_the_watchdog_and_quarantines(self):
        result = run_campaign(
            config(point_timeout=1.5, max_retries=0),
            chaos=parse_chaos("timeout@2:always", hang_seconds=30.0),
        )
        assert result.quarantined_points == 1
        assert result.quarantined[0].error["error"] == "point-timeout"
        assert result.stats.timeouts >= 1
        assert result.points == BASE["trials"] - 1

    def test_serial_campaign_with_timeout_still_enforces_it(self):
        # No --workers: the watchdog transparently uses a 1-worker pool.
        clean = run_campaign(config())
        timed = run_campaign(config(point_timeout=60.0))
        assert timed.render() == clean.render()

    def test_supervised_sharded_run_matches_serial(self):
        serial = run_campaign(config())
        sharded = run_campaign(config(workers=2, point_timeout=60.0))
        assert sharded.render() == serial.render()

    def test_graceful_interrupt_checkpoints_at_a_batch_boundary(self, tmp_path):
        path = tmp_path / "int.sqlite"
        with ResultStore(path) as store:
            with pytest.raises(CampaignInterrupted) as excinfo:
                run_campaign(
                    config(),
                    store=store,
                    resume=True,
                    chaos=parse_chaos("sigint@4"),
                )
            assert excinfo.value.details["signal"] == "SIGINT"
            # The in-flight batch was flushed before raising: the store
            # holds a whole number of batches covering point 4.
            assert len(store) == 6
        with ResultStore(path) as store:
            resumed = run_campaign(config(), store=store, resume=True)
            assert resumed.simulated == 0  # nothing was lost
        assert resumed.render() == run_campaign(config()).render()

    def test_config_validates_supervisor_knobs(self):
        with pytest.raises(ValueError):
            config(point_timeout=0.0)
        with pytest.raises(ValueError):
            config(max_retries=-1)
        with pytest.raises(ValueError):
            config(retry_backoff=-0.1)


def _cli(args, store, tmp_path, *, chaos=None, out=None, extra=()):
    command = [
        sys.executable,
        "-m",
        "repro",
        "campaign",
        "--kernels",
        "rspeed",
        "--policies",
        "extra-cycle,no-ecc",
        "--trials",
        "4",
        "--batch",
        "2",
        "--scale",
        "0.1",
        "--retry-backoff",
        "0",
        "--store",
        str(store),
        "--resume",
        "--quiet",
        *extra,
    ]
    if chaos is not None:
        command += ["--chaos", chaos]
    if out is not None:
        command += ["--out", str(out)]
    environment = dict(os.environ)
    environment["PYTHONPATH"] = REPO_SRC + os.pathsep + environment.get(
        "PYTHONPATH", ""
    )
    # No pipes: a SIGKILLed campaign can leave orphaned pool workers
    # holding inherited stdout/stderr, which would deadlock a capturing
    # parent. Run in its own session and reap the whole group after.
    process = subprocess.Popen(
        command + list(args),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=environment,
        cwd=str(tmp_path),
        start_new_session=True,
    )
    try:
        return process.wait(timeout=240)
    finally:
        try:
            os.killpg(process.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass


class TestKillAnywhereResume:
    """SIGKILL a campaign mid-grid; resume must be byte-identical."""

    @pytest.mark.parametrize("workers", [None, 2], ids=["serial", "sharded"])
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path, workers):
        extra = () if workers is None else ("--workers", str(workers))
        store = tmp_path / "kill.sqlite"
        killed = _cli([], store, tmp_path, chaos="kill-main@5", extra=extra)
        assert killed == -signal.SIGKILL
        # Some points made it to the store, not all (died mid-grid).
        with ResultStore(store) as opened:
            checkpointed = len(opened)
        assert 0 < checkpointed < 8
        out = tmp_path / "resumed.txt"
        resumed = _cli([], store, tmp_path, out=out, extra=extra)
        assert resumed == 0
        fresh = run_campaign(
            CampaignConfig(
                kernels=("rspeed",),
                policies=("extra-cycle", "no-ecc"),
                scale=0.1,
                trials=4,
                batch=2,
                seed=2019,
            )
        )
        assert out.read_text(encoding="utf-8") == fresh.render() + "\n"


# --------------------------------------------------------------------- #
# CLI plumbing                                                          #
# --------------------------------------------------------------------- #
class TestRobustnessCli:
    def test_campaign_reports_quarantined_points(self, tmp_path, capsys):
        from repro import __main__ as cli

        code = cli.main(
            [
                "campaign",
                "--kernels",
                "rspeed",
                "--policies",
                "extra-cycle",
                "--trials",
                "4",
                "--scale",
                "0.1",
                "--retry-backoff",
                "0",
                "--max-retries",
                "0",
                "--chaos",
                "fail@1:always",
            ]
        )
        assert code == 0  # quarantine means the campaign still completes
        captured = capsys.readouterr()
        assert "quarantined=1" in captured.err
        assert "Quarantined: 1 point(s)" in captured.out

    def test_internal_failure_exits_nonzero_with_one_line(self, monkeypatch, capsys):
        from repro import __main__ as cli

        def explode(*_args, **_kwargs):
            raise RuntimeError("simulator caught fire")

        monkeypatch.setattr("repro.campaign.run_campaign", explode)
        code = cli.main(
            ["campaign", "--kernels", "rspeed", "--trials", "2", "--scale", "0.1"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "[campaign] error: internal: RuntimeError" in err
        assert "Traceback" not in err

    def test_fail_fast_exits_with_structured_taxonomy_error(self, capsys):
        from repro import __main__ as cli

        code = cli.main(
            [
                "campaign",
                "--kernels",
                "rspeed",
                "--policies",
                "extra-cycle",
                "--trials",
                "4",
                "--scale",
                "0.1",
                "--retry-backoff",
                "0",
                "--max-retries",
                "0",
                "--no-quarantine",
                "--chaos",
                "fail@1:always",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "[campaign] error: replay-divergence" in err
        assert "Traceback" not in err

    def test_bad_chaos_spec_is_a_usage_error(self, capsys):
        from repro import __main__ as cli

        assert cli.main(["campaign", "--chaos", "explode@1"]) == 2
        assert "chaos" in capsys.readouterr().err

    def test_store_subcommand_verify_corrupt_repair(self, tmp_path, capsys):
        from repro import __main__ as cli

        path = tmp_path / "cli.sqlite"
        with ResultStore(path) as store:
            for i in range(3):
                store.put(f"k{i}", {"v": i})
        assert cli.main(["store", str(path), "--verify"]) == 0
        assert cli.main(["store", str(path), "--corrupt-row", "1"]) == 0
        assert cli.main(["store", str(path), "--verify"]) == 1
        out = capsys.readouterr().out
        assert "1 corrupt" in out
        assert cli.main(["store", str(path), "--repair"]) == 0
        assert cli.main(["store", str(path), "--verify"]) == 0

    def test_store_subcommand_missing_file(self, tmp_path, capsys):
        from repro import __main__ as cli

        assert cli.main(["store", str(tmp_path / "nope.sqlite")]) == 2


# --------------------------------------------------------------------- #
# the acceptance scenario, end to end                                   #
# --------------------------------------------------------------------- #
class TestAcceptance:
    def test_chaos_campaign_quarantines_heals_and_resumes_identically(
        self, tmp_path
    ):
        """ISSUE 6 acceptance: one worker killed mid-shard, one point
        forced to time out, one store row corrupted — the campaign
        completes with the poison point quarantined; verify() finds the
        corrupt row; repair() + resume restores a summary byte-identical
        to the uninterrupted run."""
        grid = dict(
            kernels=("rspeed",),
            policies=("extra-cycle", "no-ecc"),
            scale=0.1,
            trials=4,
            batch=2,
            seed=2019,
            retry_backoff=0.0,
        )
        fresh = run_campaign(CampaignConfig(**grid))
        path = tmp_path / "acceptance.sqlite"
        chaos = parse_chaos(
            "kill-worker@1,timeout@5:always", hang_seconds=30.0
        )
        with ResultStore(path) as store:
            chaotic = run_campaign(
                CampaignConfig(
                    **grid, workers=2, point_timeout=2.0, max_retries=1
                ),
                store=store,
                resume=True,
                chaos=chaos,
            )
            # The killed worker was respawned and its shard retried...
            assert chaotic.stats.worker_restarts >= 1
            # ... and the hung point was quarantined, not fatal.
            assert chaotic.quarantined_points == 1
            assert chaotic.quarantined[0].error["error"] == "point-timeout"
            assert chaotic.points == fresh.points - 1
            assert "Quarantined: 1 point(s)" in chaotic.render()
            assert store.quarantine_count() == 1
        # Corrupt a finished row behind the store's back.
        corrupted_key = corrupt_store_row(path, 2)
        with ResultStore(path) as store:
            report = store.verify()
            assert report.corrupt == [corrupted_key]
            healed = store.repair()
            assert healed.dropped == [corrupted_key]
        # Resume without chaos: exactly the quarantined point and the
        # dropped row are re-simulated; the summary is byte-identical.
        with ResultStore(path) as store:
            resumed = run_campaign(
                CampaignConfig(**grid), store=store, resume=True
            )
            assert resumed.simulated == 2
            assert resumed.quarantined_points == 0
        assert resumed.render() == fresh.render()
