"""Tests for the set-associative cache, replacement policies and write buffer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc import HsiaoSecDedCode
from repro.memory.cache import SetAssociativeCache
from repro.memory.config import CacheConfig, ReplacementPolicy, WritePolicy
from repro.memory.replacement import FifoState, LruState, RandomState
from repro.memory.write_buffer import WriteBuffer


def _small_cache(**overrides) -> SetAssociativeCache:
    defaults = dict(size_bytes=1024, line_bytes=32, ways=2, name="test")
    defaults.update(overrides)
    return SetAssociativeCache(CacheConfig(**defaults))


class TestGeometry:
    def test_sets_and_lines(self):
        config = CacheConfig(size_bytes=16 * 1024, line_bytes=32, ways=4)
        assert config.sets == 128
        assert config.lines == 512

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=32, ways=4)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, line_bytes=24, ways=2)

    def test_address_split_round_trip(self):
        cache = _small_cache()
        tag, set_index, offset = cache.split_address(0x40100124)
        assert offset == 0x4
        reconstructed = cache._rebuild_address(tag, set_index) + offset
        assert reconstructed == 0x40100124


class TestHitMiss:
    def test_first_access_misses_then_hits(self):
        cache = _small_cache()
        assert cache.access(0x1000).miss
        assert cache.access(0x1000).hit
        assert cache.access(0x101C).hit  # same 32-byte line

    def test_lru_eviction_within_set(self):
        cache = _small_cache()  # 2-way, 16 sets, 32B lines -> set stride 512
        a, b, c = 0x0, 0x200, 0x400  # all map to set 0
        cache.access(a)
        cache.access(b)
        cache.access(a)          # a is now most recently used
        result = cache.access(c)  # evicts b
        assert result.miss
        assert cache.probe(a)
        assert not cache.probe(b)

    def test_write_back_marks_dirty_and_writes_back(self):
        cache = _small_cache(write_policy=WritePolicy.WRITE_BACK)
        cache.access(0x0, is_write=True)
        assert cache.dirty_line_count() == 1
        cache.access(0x200)
        result = cache.access(0x400)  # evicts the dirty line at 0x0
        assert result.writeback
        assert result.writeback_address == 0x0

    def test_write_through_never_dirty(self):
        cache = _small_cache(write_policy=WritePolicy.WRITE_THROUGH)
        cache.access(0x0, is_write=True)
        assert cache.dirty_line_count() == 0

    def test_write_no_allocate(self):
        cache = _small_cache(write_allocate=False)
        result = cache.access(0x3000, is_write=True)
        assert result.miss and not result.allocated
        assert not cache.probe(0x3000)

    def test_invalidate_all(self):
        cache = _small_cache()
        cache.access(0x0)
        cache.invalidate_all()
        assert cache.valid_line_count() == 0

    def test_statistics(self):
        cache = _small_cache()
        cache.access(0x0)
        cache.access(0x0)
        cache.access(0x40, is_write=True)
        stats = cache.stats
        assert stats.accesses == 3
        assert stats.read_hits == 1 and stats.read_misses == 1
        assert stats.write_misses == 1
        assert 0 < stats.hit_rate < 1

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1, max_size=200))
    @settings(max_examples=25)
    def test_second_access_to_same_line_always_hits(self, addresses):
        cache = SetAssociativeCache(
            CacheConfig(size_bytes=16 * 1024, line_bytes=32, ways=4)
        )
        for address in addresses:
            cache.access(address)
            assert cache.access(address).hit


class TestEccShadow:
    def test_store_load_round_trip(self):
        cache = _small_cache()
        cache.ecc_code = HsiaoSecDedCode()
        cache.ecc_store_word(0x100, 0xDEADBEEF)
        result = cache.ecc_load_word(0x100)
        assert result is not None and result.data == 0xDEADBEEF

    def test_flip_and_correct(self):
        cache = SetAssociativeCache(
            CacheConfig(size_bytes=1024, line_bytes=32, ways=2),
            ecc_code=HsiaoSecDedCode(),
        )
        cache.ecc_store_word(0x40, 0x12345678)
        assert cache.ecc_flip_bit(0x40, 5)
        result = cache.ecc_load_word(0x40)
        assert result.corrected and result.data == 0x12345678

    def test_without_code_is_noop(self):
        cache = _small_cache()
        cache.ecc_store_word(0x40, 1)
        assert cache.ecc_load_word(0x40) is None
        assert not cache.ecc_flip_bit(0x40, 0)


class TestReplacementStates:
    def test_lru_prefers_invalid_ways(self):
        state = LruState(4)
        assert state.victim([True, False, True, True]) == 1

    def test_lru_order(self):
        state = LruState(2)
        state.fill(0)
        state.fill(1)
        state.touch(0)
        assert state.victim([True, True]) == 1

    def test_fifo_ignores_touches(self):
        state = FifoState(2)
        state.fill(0)
        state.fill(1)
        state.touch(0)
        assert state.victim([True, True]) == 0

    def test_random_is_deterministic_per_seed(self):
        a = RandomState(4, seed=3)
        b = RandomState(4, seed=3)
        valid = [True] * 4
        assert [a.victim(valid) for _ in range(10)] == [
            b.victim(valid) for _ in range(10)
        ]

    def test_replacement_policy_selection(self):
        for policy in ReplacementPolicy:
            cache = _small_cache(replacement=policy)
            cache.access(0x0)
            assert cache.access(0x0).hit


class TestWriteBuffer:
    def test_empty_buffer_reports_empty(self):
        buffer = WriteBuffer(capacity=2)
        assert buffer.empty_at(10)
        assert buffer.drain_complete_time(10) == 10

    def test_entries_drain_over_time(self):
        buffer = WriteBuffer(capacity=4)
        buffer.push(10, drain_latency=5)
        assert not buffer.empty_at(12)
        assert buffer.empty_at(16)

    def test_sequential_drain(self):
        buffer = WriteBuffer(capacity=4)
        buffer.push(10, drain_latency=5)
        buffer.push(10, drain_latency=5)
        # The second entry starts after the first finishes.
        assert buffer.drain_complete_time(10) == 20

    def test_full_buffer_back_pressure(self):
        buffer = WriteBuffer(capacity=1)
        buffer.push(10, drain_latency=8)
        stalled_until = buffer.push(11, drain_latency=8)
        assert stalled_until == 18
        assert buffer.stats.full_stalls == 1
        assert buffer.stats.full_stall_cycles == 7

    def test_statistics_and_reset(self):
        buffer = WriteBuffer(capacity=2)
        buffer.push(0, 1)
        buffer.record_load_wait(3)
        assert buffer.stats.stores_buffered == 1
        assert buffer.stats.load_drain_stall_cycles == 3
        buffer.reset()
        assert buffer.stats.stores_buffered == 0
