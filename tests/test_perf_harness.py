"""Smoke tests for the perf harness (tiny configurations).

The full harness run lives behind the ``perf`` pytest marker
(``benchmarks/test_bench_perf.py``); these tests only prove the harness
machinery works: benchmarks run, implementations agree, and the emitted
JSON has the documented shape.
"""

from __future__ import annotations

import json

from repro.perf import bench_fault_campaign, bench_timing_engine, run_harness
from repro.perf.harness import SCHEMA, render_report


def test_fault_campaign_bench_agrees_and_reports(tmp_path):
    result = bench_fault_campaign(trials_per_point=60, repeats=1)
    assert result.baseline_seconds > 0
    assert result.optimized_seconds > 0
    assert result.speedup > 0
    assert result.meta["trials_per_point"] == 60


def test_timing_engine_bench_agrees(tmp_path):
    result = bench_timing_engine(kernel="puwmod", scale=0.05, repeats=1)
    assert result.meta["dynamic_instructions"] > 0
    assert result.meta["cycles"] > 0


def test_run_harness_writes_schema_json(tmp_path):
    report = run_harness(
        trials_per_point=60,
        sweep_scale=0.05,
        timing_kernel="puwmod",
        timing_scale=0.05,
        sweep_kernels=["puwmod", "matrix"],
        repeats=1,
    )
    out = tmp_path / "BENCH_test.json"
    report.write_json(str(out))
    payload = json.loads(out.read_text())
    assert payload["schema"] == SCHEMA
    assert payload["platform"]["python"]
    names = [bench["name"] for bench in payload["benchmarks"]]
    assert names == ["fault_campaign", "timing_engine", "kernel_policy_sweep"]
    for bench in payload["benchmarks"]:
        assert bench["baseline_seconds"] > 0
        assert bench["optimized_seconds"] > 0
        assert bench["speedup"] == bench["baseline_seconds"] / bench["optimized_seconds"]
    rendered = render_report(report)
    assert "fault_campaign" in rendered and "speedup" in rendered
