"""Interference monotonicity: isolation <= average <= worst, everywhere.

For every kernel x policy combination the analytic interference
scenarios must order the observed cycle counts: adding (more
pessimistic) bus contention can never speed a task up.  This is the
property that makes the ``worst`` scenario a sound measurement-based
WCET bound for the round-robin arbiter — and the co-simulation tests
(`test_cosim.py`) additionally pin the observed multicore behaviour
inside the same envelope.
"""

import pytest

from repro.core.policies import EccPolicyKind
from repro.experiments.runner import cached_kernel_trace
from repro.soc import NgmpSoC, TaskPlacement
from repro.workloads import KERNEL_NAMES

SCALE = 0.05

ALL_POLICIES = (
    EccPolicyKind.NO_ECC,
    EccPolicyKind.EXTRA_CYCLE,
    EccPolicyKind.EXTRA_STAGE,
    EccPolicyKind.LAEC,
    EccPolicyKind.WT_PARITY,
)


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_scenario_cycles_are_monotonic(kernel):
    soc = NgmpSoC()
    program, trace = cached_kernel_trace(kernel, SCALE)
    for policy in ALL_POLICIES:
        placement = TaskPlacement(program=program, policy=policy)
        bounds = soc.wcet_estimate(placement, trace=trace)
        assert (
            bounds["isolation"] <= bounds["average"] <= bounds["worst"]
        ), (kernel, policy)
        # contention must actually bite for the pessimistic scenarios on
        # any kernel that touches the bus at all
        assert bounds["worst"] >= bounds["isolation"]
