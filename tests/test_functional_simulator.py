"""Tests for the functional (architectural) simulator."""

import pytest

from repro.functional.memory import FlatMemory, MemoryAccessError
from repro.functional.simulator import (
    ExecutionLimitExceeded,
    FunctionalSimulator,
    run_program,
)
from repro.isa.assembler import assemble


def _run(source: str, **kwargs):
    return run_program(assemble(source), **kwargs)


class TestFlatMemory:
    def test_default_zero(self):
        memory = FlatMemory()
        assert memory.read_word(0x1000) == 0

    def test_word_round_trip(self):
        memory = FlatMemory()
        memory.write_word(0x2000, 0xCAFEBABE)
        assert memory.read_word(0x2000) == 0xCAFEBABE

    def test_little_endian_layout(self):
        memory = FlatMemory()
        memory.write_word(0x100, 0x11223344)
        assert memory.read_byte(0x100) == 0x44
        assert memory.read_byte(0x103) == 0x11

    def test_misaligned_access_rejected(self):
        memory = FlatMemory()
        with pytest.raises(MemoryAccessError):
            memory.read(0x101, 4)
        with pytest.raises(MemoryAccessError):
            memory.write(0x102, 1, 4)

    def test_halfword_and_byte(self):
        memory = FlatMemory()
        memory.write(0x200, 0xBEEF, 2)
        memory.write(0x204, 0xAB, 1)
        assert memory.read(0x200, 2) == 0xBEEF
        assert memory.read(0x204, 1) == 0xAB


class TestArithmetic:
    def test_add_sub_results(self):
        trace = _run(
            """
            main:
                set 40, r1
                add r1, 2, r2
                sub r2, 7, r3
                halt
            """
        )
        assert trace[1].value == 42
        assert trace[2].value == 35

    def test_condition_codes_drive_branches(self):
        trace = _run(
            """
            main:
                set 3, r1
            loop:
                subcc r1, 1, r1
                bg loop
                halt
            """
        )
        # 3 iterations of (subcc, bg) plus set and halt.
        assert len(trace) == 1 + 3 * 2 + 1
        taken = [d for d in trace if d.instruction.is_branch and d.branch_taken]
        assert len(taken) == 2

    def test_signed_comparison_branches(self):
        trace = _run(
            """
            main:
                set 5, r1
                set 9, r2
                cmp r1, r2
                bl smaller
                set 0, r3
                halt
            smaller:
                set 1, r3
                halt
            """
        )
        assert trace[-2].value == 1  # the "set 1, r3" before halt

    def test_multiplication_and_shifts(self):
        trace = _run(
            """
            main:
                set 6, r1
                set -3, r2
                smul r1, r2, r3
                sll r1, 4, r4
                sra r2, 1, r5
                srl r2, 28, r6
                halt
            """
        )
        values = {d.instruction.rd: d.value for d in trace if d.instruction.rd}
        assert values[3] == (-18) & 0xFFFFFFFF
        assert values[4] == 96
        assert values[5] == (-2) & 0xFFFFFFFF
        assert values[6] == 0xF

    def test_division_by_zero_is_defined(self):
        trace = _run(
            """
            main:
                set 10, r1
                udiv r1, r0, r2
                halt
            """
        )
        assert trace[1].value == 0xFFFFFFFF


class TestMemoryInstructions:
    def test_load_store_round_trip(self):
        trace = _run(
            """
            .data
            cell:
                .word 0
            .text
            main:
                set cell, r1
                set 123, r2
                st r2, [r1]
                ld [r1], r3
                halt
            """
        )
        load = trace[3]
        assert load.is_load and load.value == 123

    def test_byte_and_half_access_with_sign_extension(self):
        trace = _run(
            """
            .data
            bytes:
                .byte 0xF0, 0x7F
            halves:
                .half 0x8000
            .text
            main:
                set bytes, r1
                ldub [r1], r2
                ldsb [r1], r3
                set halves, r4
                ldsh [r4], r5
                lduh [r4], r6
                halt
            """
        )
        values = {d.instruction.rd: d.value for d in trace if d.is_load}
        assert values[2] == 0xF0
        assert values[3] == 0xFFFFFFF0
        assert values[5] == 0xFFFF8000
        assert values[6] == 0x8000

    def test_effective_addresses_recorded(self):
        trace = _run(
            """
            .data
            arr:
                .word 1, 2, 3, 4
            .text
            main:
                set arr, r1
                ld [r1+8], r2
                halt
            """
        )
        load = trace[1]
        assert load.address == trace[0].value + 8
        assert load.size == 4


class TestControlFlow:
    def test_call_and_return(self):
        trace = _run(
            """
            main:
                call helper
                set 7, r2
                halt
            helper:
                set 5, r1
                ret
            """
        )
        executed = [d.instruction.render() for d in trace]
        assert "set 0x5, r1" in executed
        assert executed[-2] == "set 0x7, r2"

    def test_execution_limit(self):
        with pytest.raises(ExecutionLimitExceeded):
            _run("main:\n    ba main\n", max_instructions=100)

    def test_stack_pointer_initialised(self):
        program = assemble("main:\n    halt\n")
        simulator = FunctionalSimulator(program)
        assert simulator.registers.read(14) == program.stack_top


class TestTraceStatistics:
    def test_counts(self, tiny_trace):
        assert tiny_trace.dynamic_count == len(tiny_trace.instructions)
        assert tiny_trace.load_count == 8
        assert tiny_trace.store_count == 8
        assert 0 < tiny_trace.load_fraction < 1
        assert len(tiny_trace.memory_addresses()) == 16
        assert tiny_trace.halted
