"""Tests for the kernel registry, kernel programs and the synthetic generator."""

import pytest

from repro.functional import run_program
from repro.isa.instructions import InstructionClass
from repro.workloads import (
    KERNEL_NAMES,
    PAPER_TABLE2,
    SyntheticStreamConfig,
    SyntheticWorkloadGenerator,
    build_kernel,
    kernel_source,
    kernel_specs,
)


EXPECTED_NAMES = {
    "a2time", "aifftr", "aifirf", "aiifft", "basefp", "bitmnp", "cacheb",
    "canrdr", "idctrn", "iirflt", "matrix", "pntrch", "puwmod", "rspeed",
    "tblook", "ttsprk",
}


class TestRegistry:
    def test_all_sixteen_eembc_names_present(self):
        assert set(KERNEL_NAMES) == EXPECTED_NAMES
        assert len(KERNEL_NAMES) == 16

    def test_specs_align_with_paper_table2(self):
        assert set(PAPER_TABLE2) == EXPECTED_NAMES

    def test_laec_unfriendly_flags(self):
        unfriendly = {spec.name for spec in kernel_specs() if spec.laec_unfriendly}
        assert unfriendly == {"aifftr", "aiifft", "bitmnp", "matrix"}

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            build_kernel("quicksort")

    def test_kernel_source_is_assembly_text(self):
        source = kernel_source("matrix", scale=0.1)
        assert ".text" in source and "ld [" in source


@pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
def test_every_kernel_assembles_and_halts(name):
    program = build_kernel(name, scale=0.05)
    assert program.static_instruction_count() > 10
    trace = run_program(program, max_instructions=400_000)
    assert trace.halted
    assert trace.dynamic_count > 50
    # Every kernel must exercise loads, stores, ALU work and branches.
    assert trace.load_count > 0
    assert trace.store_count > 0
    assert trace.count_class(InstructionClass.BRANCH) > 0


def test_scale_changes_dynamic_length():
    short = run_program(build_kernel("puwmod", scale=0.05))
    long = run_program(build_kernel("puwmod", scale=0.3))
    assert long.dynamic_count > short.dynamic_count


def test_kernels_are_deterministic():
    a = run_program(build_kernel("tblook", scale=0.05))
    b = run_program(build_kernel("tblook", scale=0.05))
    assert a.dynamic_count == b.dynamic_count
    assert a.memory_addresses() == b.memory_addresses()


class TestSyntheticGenerator:
    def _trace(self, **overrides):
        config = SyntheticStreamConfig(instructions=4000, seed=7, **overrides)
        return SyntheticWorkloadGenerator(config).generate()

    def test_length_close_to_requested(self):
        trace = self._trace()
        assert abs(trace.dynamic_count - 4000) <= 2

    def test_load_fraction_close_to_target(self):
        trace = self._trace(load_fraction=0.3)
        assert trace.load_fraction == pytest.approx(0.3, abs=0.07)

    def test_dependent_fraction_controllable(self):
        from repro.core.hazards import is_dependent_load

        low = self._trace(dependent_load_fraction=0.1)
        high = self._trace(dependent_load_fraction=0.9)

        def dependent_share(trace):
            loads = [d.index for d in trace if d.is_load]
            if not loads:
                return 0.0
            flagged = sum(
                1 for i in loads if is_dependent_load(trace.instructions, i)
            )
            return flagged / len(loads)

        assert dependent_share(high) > dependent_share(low) + 0.4

    def test_from_table2_row(self):
        row = PAPER_TABLE2["puwmod"]
        config = SyntheticStreamConfig.from_table2_row(row, instructions=2000)
        assert config.load_fraction == pytest.approx(row.pct_loads / 100)
        assert config.load_hit_rate == pytest.approx(row.pct_hit_loads / 100)
        trace = SyntheticWorkloadGenerator(config).generate()
        assert trace.dynamic_count >= 2000

    def test_deterministic_given_seed(self):
        a = self._trace()
        b = self._trace()
        assert a.memory_addresses() == b.memory_addresses()
