"""Architectural fault-injection campaign: hooks, replay, engine, resume."""

from __future__ import annotations

import pytest

from repro.campaign import (
    ArchOutcome,
    CampaignConfig,
    run_campaign,
    run_injection,
    sample_faults,
    simulate_faulty_spec,
)
from repro.ecc import HsiaoSecDedCode, get_code
from repro.memory.cache import SetAssociativeCache
from repro.memory.config import CacheConfig
from repro.memory.l2_cache import SharedL2Cache
from repro.memory.main_memory import MainMemory
from repro.scenarios import FaultSpec, SimulationSpec
from repro.store import ResultStore


# --------------------------------------------------------------------- #
# injection hooks in the cache model                                    #
# --------------------------------------------------------------------- #
class TestCacheInjectionHooks:
    def _cache(self):
        return SetAssociativeCache(
            CacheConfig(size_bytes=1024, line_bytes=32, ways=2, name="dl1"),
            ecc_code=HsiaoSecDedCode(),
        )

    def test_fault_triggers_at_the_armed_ordinal(self):
        cache = self._cache()
        cache.ecc_store_word(0x40, 0x1234)
        cache.access(0x40)  # make the line resident
        armed = cache.arm_fault(0x40, bit=3, at_access=2)
        cache.access(0x40)
        assert not armed.triggered
        cache.access(0x40)
        assert armed.triggered and armed.resident and armed.flipped
        decoded = cache.ecc_load_word(0x40)
        assert decoded.corrected
        assert decoded.data == 0x1234

    def test_fault_on_non_resident_word_corrupts_nothing(self):
        cache = self._cache()
        cache.access(0x40)
        armed = cache.arm_fault(0x2000, bit=0, at_access=1)
        cache.access(0x80)
        assert armed.triggered
        assert not armed.resident and not armed.flipped

    def test_bit_range_is_validated(self):
        cache = self._cache()
        with pytest.raises(ValueError):
            cache.arm_fault(0x40, bit=39, at_access=1)

    def test_access_reports_clean_evictions(self):
        config = CacheConfig(size_bytes=64, line_bytes=32, ways=1, name="tiny")
        cache = SetAssociativeCache(config)
        cache.access(0x0)
        result = cache.access(0x80)  # same set, evicts the clean 0x0 line
        assert result.evicted_address == 0x0
        assert not result.writeback

    def test_l2_hook_delegates_and_corrects(self):
        l2 = SharedL2Cache(
            CacheConfig(size_bytes=2048, line_bytes=32, ways=2, name="l2"),
            MainMemory(access_latency=10),
            ecc_code=get_code("secded"),
        )
        l2.cache.ecc_store_word(0x100, 0xBEEF)
        l2.access_cycles(0x100)
        armed = l2.arm_fault(0x100, bit=7, at_access=1)
        l2.access_cycles(0x100)
        assert armed.triggered and armed.flipped
        assert l2.armed_fault() is armed
        decoded = l2.cache.ecc_load_word(0x100)
        assert decoded.corrected and decoded.data == 0xBEEF


# --------------------------------------------------------------------- #
# architectural replay                                                  #
# --------------------------------------------------------------------- #
def _load_after_store_point(kernel: str, scale: float):
    """A fault point aimed at a word that is stored then loaded again."""
    from repro.experiments.runner import cached_kernel_trace

    _, trace = cached_kernel_trace(kernel, scale)
    stored = set()
    ordinal = 0
    for dyn in trace.instructions:
        if dyn.address is None:
            continue
        ordinal += 1
        word = dyn.address & ~0x3
        if dyn.is_store:
            stored.add(word)
        elif word in stored and dyn.size == 4:
            return word, ordinal
    raise AssertionError(f"{kernel} has no load-after-store pattern")


class TestArchitecturalReplay:
    KERNEL = "canrdr"
    SCALE = 0.1

    def _spec(self, policy, bit=3):
        word, at_access = _load_after_store_point(self.KERNEL, self.SCALE)
        return SimulationSpec(
            kernel=self.KERNEL,
            scale=self.SCALE,
            policy=policy,
            fault=FaultSpec(word_address=word, bit=bit, at_access=at_access),
        )

    def test_unprotected_write_back_suffers_sdc(self):
        result = run_injection(self._spec("no-ecc"))
        assert result.triggered and result.resident and result.dirty_at_injection
        assert result.outcome is ArchOutcome.SILENT_DATA_CORRUPTION

    @pytest.mark.parametrize("policy", ["extra-cycle", "extra-stage", "laec"])
    def test_secded_corrects_the_dirty_flip(self, policy):
        result = run_injection(self._spec(policy))
        assert result.outcome is ArchOutcome.CORRECTED
        assert "load_corrected" in result.events
        assert not result.diverged

    def test_wt_parity_detects_and_refetches(self):
        result = run_injection(self._spec("wt-parity"))
        # Write-through keeps a clean L2 copy: detection is recoverable.
        assert result.outcome is ArchOutcome.DETECTED
        assert "load_detected_refetch" in result.events
        assert not result.dirty_at_injection

    def test_check_bit_flip_under_parity_is_detected_not_sdc(self):
        # Bit 32 is the parity bit itself: flips there never corrupt data.
        result = run_injection(self._spec("wt-parity", bit=32))
        assert result.outcome in (ArchOutcome.DETECTED, ArchOutcome.MASKED)

    def test_store_after_l2_injection_supersedes_the_stale_codeword(self):
        # Regression: a pending L2 flip captured the *old* word's
        # codeword; overwriting the backing word (write-through store or
        # dirty writeback) must drop it, or a later refill would
        # "correct" back to the stale pre-store value.
        from repro.campaign.replay import Dl1ContentModel, dl1_code_for_policy
        from repro.core.policies import make_policy
        from repro.functional.memory import FlatMemory
        from repro.memory.config import MemoryHierarchyConfig

        policy = make_policy("wt-parity")
        hierarchy = MemoryHierarchyConfig().with_write_through_l1d()
        backing = FlatMemory()
        backing.write(0x1000, 0x11111111, 4)
        model = Dl1ContentModel(hierarchy, dl1_code_for_policy(policy), backing)
        assert model.load(0x1000, 4) == 0x11111111  # line resident
        model.inject_l2_fault(0x1000, bit=5)
        model.store(0x1000, 0x22222222, 4)  # write-through supersedes
        # Evict the line so the next load refills from backing.
        line_bytes = hierarchy.l1d.line_bytes
        for way in range(hierarchy.l1d.ways + 1):
            model.load(0x1000 + way * hierarchy.l1d.sets * line_bytes, 4)
        assert model.load(0x1000, 4) == 0x22222222

    @pytest.mark.parametrize("policy", ["extra-cycle", "extra-stage", "laec"])
    def test_l2_target_under_protected_deployment_is_always_corrected(self, policy):
        word, at_access = _load_after_store_point(self.KERNEL, self.SCALE)
        spec = SimulationSpec(
            kernel=self.KERNEL,
            scale=self.SCALE,
            policy=policy,
            fault=FaultSpec(
                target="l2", word_address=word, bit=2, at_access=at_access
            ),
        )
        result = run_injection(spec)
        # Protected deployments pair their DL1 scheme with a SECDED L2:
        # a single flip is healed on the next read (or never observed).
        assert result.outcome in (ArchOutcome.CORRECTED, ArchOutcome.MASKED)
        assert result.outcome is not ArchOutcome.SILENT_DATA_CORRUPTION

    def test_l2_code_follows_the_deployment(self):
        from repro.campaign.replay import RawWordCode, l2_code_for_policy
        from repro.core.policies import make_policy

        assert isinstance(l2_code_for_policy(make_policy("no-ecc")), RawWordCode)
        for policy in ("extra-cycle", "extra-stage", "laec", "wt-parity"):
            assert l2_code_for_policy(make_policy(policy)).name == "secded"

    def test_l2_flip_in_unprotected_baseline_can_silently_corrupt(self):
        # The no-ecc baseline is the fully unprotected hierarchy: its L2
        # stores bare words, so a flip observed by a later refill
        # propagates exactly like a DL1 flip.  Sample the stratum the
        # sweep grid would run and require at least one SDC.
        outcomes = set()
        for fault in sample_faults(
            self.KERNEL, self.SCALE, "no-ecc", 12, seed=2019, target="l2"
        ):
            spec = SimulationSpec(
                kernel=self.KERNEL, scale=self.SCALE, policy="no-ecc", fault=fault
            )
            outcomes.add(run_injection(spec).outcome)
        assert ArchOutcome.SILENT_DATA_CORRUPTION in outcomes

    def test_corrupted_jump_target_crashes_detectably(self):
        # A flipped high bit of a loaded function pointer sends the
        # indirect jump outside the text segment: the machine traps, the
        # outcome is DETECTED (never silent), and the partial dynamic
        # stream is what gets reported/timed.
        from repro.functional.simulator import run_program
        from repro.isa.assembler import assemble
        from repro.simulation import simulate_spec

        program = assemble(
            """
.data
ptr:
    .word 0

.text
main:
    set target, r5
    set ptr, r1
    st r5, [r1]
    ld [r1], r2
    ld [r1], r2
    jmpl r2, 0, r7
    halt
target:
    halt
""",
            name="jump_via_ptr",
        )
        trace = run_program(program)
        ptr_word = next(d.address for d in trace.instructions if d.is_store) & ~0x3
        # Inject before the *third* DL1 access (the second load of ptr).
        spec = SimulationSpec(
            policy="no-ecc",
            fault=FaultSpec(word_address=ptr_word, bit=30, at_access=3),
        )
        injection = run_injection(spec, program=program, trace=trace)
        assert "crash" in injection.events
        assert injection.outcome is ArchOutcome.DETECTED
        assert 0 < injection.faulty_instructions < len(trace)
        result = simulate_spec(spec, program=program, trace=trace)
        assert result.instructions == injection.faulty_instructions

    def test_fault_after_program_end_is_masked(self):
        spec = SimulationSpec(
            kernel=self.KERNEL,
            scale=self.SCALE,
            policy="no-ecc",
            fault=FaultSpec(word_address=0, bit=0, at_access=10_000_000),
        )
        result = run_injection(spec)
        assert not result.triggered
        assert result.outcome is ArchOutcome.MASKED

    def test_simulate_spec_routes_fault_specs(self):
        from repro.simulation import simulate_spec

        spec = self._spec("extra-cycle")
        result = simulate_spec(spec)
        assert result.injection is not None
        assert result.injection.outcome is ArchOutcome.CORRECTED
        assert result.spec is spec
        assert result.cycles > 0
        # A non-diverging fault times the golden stream.
        clean = simulate_spec(spec.with_fault(None))
        assert result.cycles == clean.cycles

    def test_divergent_fault_times_the_faulty_stream(self):
        from repro.simulation import simulate_spec

        spec = self._spec("no-ecc")
        result = simulate_spec(spec)
        assert result.injection.outcome is ArchOutcome.SILENT_DATA_CORRUPTION
        assert result.injection.diverged
        assert result.cycles > 0


# --------------------------------------------------------------------- #
# sampling                                                              #
# --------------------------------------------------------------------- #
class TestSampling:
    def test_prefix_determinism(self):
        whole = sample_faults("rspeed", 0.1, "laec", 10, seed=2019)
        head = sample_faults("rspeed", 0.1, "laec", 4, seed=2019)
        tail = sample_faults("rspeed", 0.1, "laec", 6, seed=2019, start=4)
        assert head + tail == whole

    def test_seed_and_stratum_independence(self):
        a = sample_faults("rspeed", 0.1, "laec", 8, seed=2019)
        b = sample_faults("rspeed", 0.1, "laec", 8, seed=7)
        c = sample_faults("rspeed", 0.1, "no-ecc", 8, seed=2019)
        assert a != b
        assert [p.at_access for p in a] != [p.at_access for p in c] or a != c

    def test_bits_respect_the_policy_codeword_width(self):
        parity = sample_faults("rspeed", 0.1, "wt-parity", 50, seed=1)
        raw = sample_faults("rspeed", 0.1, "no-ecc", 50, seed=1)
        assert all(p.bit < 33 for p in parity)
        assert all(p.bit < 32 for p in raw)

    def test_any_window_is_byte_identical_even_out_of_order(self):
        from repro.campaign import clear_sample_cursors

        clear_sample_cursors()
        whole = sample_faults("rspeed", 0.1, "laec", 12, seed=2019)
        # Windows requested out of order (each may rewind the cursor).
        for start, count in ((6, 3), (0, 5), (9, 3), (3, 4), (0, 12)):
            window = sample_faults(
                "rspeed", 0.1, "laec", count, seed=2019, start=start
            )
            assert window == whole[start : start + count], (start, count)

    def test_sequential_batches_cost_linear_rng_draws(self):
        # Regression: sample_faults used to regenerate each stratum's
        # sequence from index 0 on every batch, costing O(N^2) draws for
        # an N-trial stratum.  The per-stratum cursor must keep the
        # engine's sequential batch pattern at exactly N draws.
        from repro.campaign import (
            clear_sample_cursors,
            point_draw_count,
            reset_draw_count,
        )

        clear_sample_cursors()
        reset_draw_count()
        total, batch = 48, 8
        collected = []
        for start in range(0, total, batch):
            collected += sample_faults(
                "rspeed", 0.1, "extra-cycle", batch, seed=2019, start=start
            )
        assert len(collected) == total
        assert point_draw_count() == total  # O(N), not O(N^2)
        clear_sample_cursors()
        assert collected == sample_faults(
            "rspeed", 0.1, "extra-cycle", total, seed=2019
        )

    def test_l2_points_cover_the_working_set_with_l2_bit_widths(self):
        from repro.campaign import kernel_fault_space

        space = kernel_fault_space("rspeed", 0.1)
        secded = sample_faults("rspeed", 0.1, "laec", 64, seed=1, target="l2")
        raw = sample_faults("rspeed", 0.1, "no-ecc", 64, seed=1, target="l2")
        assert all(p.target == "l2" for p in secded + raw)
        # Protected deployments store 39-bit SECDED codewords in the L2;
        # the unprotected baseline stores bare 32-bit words.
        assert all(p.bit < 39 for p in secded)
        assert any(p.bit >= 32 for p in secded)
        assert all(p.bit < 32 for p in raw)
        # The L2 population is the whole working set, not just the words
        # touched before the injection ordinal.
        assert {p.word_address for p in secded} <= set(space.first_touch)

    def test_stratum_identity_extends_only_for_non_default_dimensions(self):
        from repro.campaign import stratum_identity

        # Default dimensions keep the historical identity, so existing
        # DL1-only campaigns reproduce byte-identically.
        assert stratum_identity(2019, "rspeed", "laec") == "campaign:2019:rspeed:laec"
        assert (
            stratum_identity(2019, "rspeed", "laec", target="dl1", scenario="isolation")
            == "campaign:2019:rspeed:laec"
        )
        assert "target=l2" in stratum_identity(2019, "rspeed", "laec", target="l2")
        assert "scenario=worst" in stratum_identity(
            2019, "rspeed", "laec", scenario="worst"
        )

    def test_target_and_scenario_strata_draw_independent_streams(self):
        dl1 = sample_faults("rspeed", 0.1, "no-ecc", 10, seed=2019)
        l2 = sample_faults("rspeed", 0.1, "no-ecc", 10, seed=2019, target="l2")
        contended = sample_faults(
            "rspeed", 0.1, "no-ecc", 10, seed=2019, scenario="laec-worst"
        )
        assert [p.at_access for p in dl1] != [p.at_access for p in l2]
        assert [p.at_access for p in dl1] != [p.at_access for p in contended]

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            sample_faults("rspeed", 0.1, "laec", 4, seed=1, target="dram")


# --------------------------------------------------------------------- #
# the campaign engine                                                   #
# --------------------------------------------------------------------- #
class TestCampaignEngine:
    CONFIG = CampaignConfig(
        kernels=("canrdr", "matrix"),
        scale=0.1,
        trials=16,
        batch=8,
        seed=2019,
    )

    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign(self.CONFIG)

    def test_codec_level_ordering_is_reproduced(self, result):
        """The paper's reliability argument, end to end (acceptance)."""
        for kernel in self.CONFIG.kernels:
            for policy in ("extra-cycle", "extra-stage", "laec"):
                stratum = result.stratum(kernel, policy)
                # SECDED corrects every sampled single flip that matters:
                # zero SDC, zero timing deviation.
                assert stratum.counts["sdc"] == 0, (kernel, policy)
                assert stratum.counts["timing"] == 0, (kernel, policy)
                assert stratum.counts["detected"] == 0, (kernel, policy)
        totals = result.policy_totals()
        # The unprotected write-back DL1 shows real silent corruption.
        assert totals["no-ecc"]["sdc"] > 0
        assert totals["no-ecc"]["corrected"] == 0
        # Ordering: no-ecc SDC rate strictly above every SECDED policy.
        for policy in ("extra-cycle", "extra-stage", "laec"):
            assert totals["no-ecc"]["sdc"] > totals[policy]["sdc"] == 0
            assert totals[policy]["corrected"] > 0

    def test_empirical_rates_agree_with_the_analytical_model(self, result):
        from repro.campaign import analytical_reference

        reference = analytical_reference(self.CONFIG.policies)
        for stratum in result.strata:
            analytic_sdc = reference[stratum.policy]["codec_sdc_bound"]
            low, high = stratum.interval("sdc")
            # The codec-level SDC bound must be consistent with the
            # architectural interval: for correcting codes the analytic
            # 0.0 must lie inside it; for the unprotected array the
            # empirical rate can only sit below the bound.
            if analytic_sdc == 0.0:
                assert low == 0.0, stratum
            else:
                assert stratum.rate("sdc") <= analytic_sdc

    def test_summary_mentions_every_stratum(self, result):
        text = result.render()
        for kernel in self.CONFIG.kernels:
            assert kernel in text
        for policy in self.CONFIG.policies:
            assert policy in text

    def test_early_stopping_on_tight_intervals(self):
        config = CampaignConfig(
            kernels=("rspeed",),
            policies=("extra-cycle",),
            scale=0.1,
            trials=60,
            batch=10,
            ci_target=0.5,  # huge target: stops after the first batch
            seed=2019,
        )
        result = run_campaign(config)
        stratum = result.strata[0]
        assert stratum.early_stopped
        assert stratum.trials == 10

    def test_sharded_campaign_matches_serial(self):
        config = CampaignConfig(
            kernels=("rspeed",), scale=0.1, trials=8, batch=4, seed=2019
        )
        serial = run_campaign(config)
        sharded = run_campaign(
            CampaignConfig(
                kernels=("rspeed",), scale=0.1, trials=8, batch=4, seed=2019, workers=2
            )
        )
        assert sharded.render() == serial.render()


class TestSweepGrid:
    """The multi-dimensional sweep: targets x scenarios x scales."""

    CONFIG = CampaignConfig(
        kernels=("canrdr",),
        policies=("no-ecc", "extra-cycle"),
        scale=0.1,
        trials=12,
        batch=6,
        seed=2019,
        targets=("dl1", "l2"),
        scenarios=("isolation", "laec-worst"),
    )

    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign(self.CONFIG)

    def test_grid_enumerates_every_stratum_in_order(self, result):
        coordinates = [
            (s.kernel, s.policy, s.target, s.scenario, s.scale)
            for s in result.strata
        ]
        assert coordinates == list(self.CONFIG.strata())
        assert len(coordinates) == 1 * 2 * 2 * 2 * 1

    def test_l2_reliability_ordering(self, result):
        # The acceptance property: SECDED L2 strata show zero SDC while
        # the unprotected baseline's L2 strata show real silent
        # corruption.
        for scenario in self.CONFIG.scenarios:
            secded = result.stratum(
                "canrdr", "extra-cycle", target="l2", scenario=scenario
            )
            assert secded.counts["sdc"] == 0, scenario
        totals = result.target_totals()
        assert totals[("l2", "no-ecc")]["sdc"] > 0
        assert totals[("l2", "extra-cycle")]["sdc"] == 0
        assert totals[("l2", "extra-cycle")]["corrected"] > 0

    def test_marginals_are_consistent(self, result):
        policy = result.policy_totals()
        by_target = result.target_totals()
        by_scenario = result.scenario_totals()
        for value in self.CONFIG.policies:
            for key in ("trials", "sdc", "corrected", "masked"):
                assert policy[value][key] == sum(
                    bucket[key]
                    for (target, p), bucket in by_target.items()
                    if p == value
                )
                assert policy[value][key] == sum(
                    bucket[key]
                    for (scenario, p), bucket in by_scenario.items()
                    if p == value
                )

    def test_render_shows_sweep_columns_only_when_swept(self, result):
        text = result.render()
        for header in ("target", "scenario", "l2", "laec-worst"):
            assert header in text
        plain = run_campaign(
            CampaignConfig(
                kernels=("rspeed",), policies=("no-ecc",), scale=0.1, trials=2, batch=2
            )
        ).render()
        assert "target" not in plain
        assert "scenario" not in plain

    def test_scenario_dimension_reaches_the_spec(self):
        from repro.scenarios import get_scenario

        interference = CampaignConfig.scenario_interference("laec-worst")
        assert interference == get_scenario("laec-worst").interference
        assert CampaignConfig.scenario_interference("isolation") is None

    def test_scale_axis_sweeps_multiple_scales(self):
        config = CampaignConfig(
            kernels=("rspeed",),
            policies=("no-ecc",),
            scale=0.1,
            scales=(0.1, 0.2),
            trials=2,
            batch=2,
            seed=2019,
        )
        result = run_campaign(config)
        assert [s.scale for s in result.strata] == [0.1, 0.2]
        text = result.render()
        assert "scale" in text and "0.2" in text

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(kernels=("rspeed",), targets=("dram",))
        with pytest.raises(ValueError):
            CampaignConfig(kernels=("rspeed",), scenarios=("no-such-scenario",))
        with pytest.raises(ValueError):
            CampaignConfig(kernels=("rspeed",), scales=(0.0,))
        with pytest.raises(ValueError):
            CampaignConfig(kernels=("rspeed",), targets=())

    def test_sweep_resumes_across_all_dimensions(self, tmp_path):
        path = tmp_path / "sweep.sqlite"
        half = CampaignConfig(
            kernels=self.CONFIG.kernels,
            policies=self.CONFIG.policies,
            scale=self.CONFIG.scale,
            trials=6,
            batch=6,
            seed=self.CONFIG.seed,
            targets=self.CONFIG.targets,
            scenarios=self.CONFIG.scenarios,
        )
        with ResultStore(path) as store:
            partial = run_campaign(half, store=store, resume=True)
            assert partial.simulated == partial.points == 48
        with ResultStore(path) as store:
            resumed = run_campaign(self.CONFIG, store=store, resume=True)
            assert resumed.store_hits == 48
            assert resumed.simulated == resumed.points - 48
            # Unified accounting: the campaign's counters mirror the
            # store's for exactly the lookups this campaign performed.
            assert resumed.store_misses == resumed.simulated
            assert store.hits == resumed.store_hits
            assert store.misses == resumed.store_misses
        fresh = run_campaign(self.CONFIG)
        assert resumed.render() == fresh.render()


class TestCampaignResume:
    CONFIG = CampaignConfig(
        kernels=("rspeed",),
        policies=("no-ecc", "extra-cycle"),
        scale=0.1,
        trials=10,
        batch=5,
        seed=2019,
    )

    def test_resume_simulates_only_missing_points(self, tmp_path):
        path = tmp_path / "campaign.sqlite"
        # "Kill the campaign midway": run only half the trials.
        half = CampaignConfig(
            kernels=self.CONFIG.kernels,
            policies=self.CONFIG.policies,
            scale=self.CONFIG.scale,
            trials=5,
            batch=5,
            seed=self.CONFIG.seed,
        )
        with ResultStore(path) as store:
            partial = run_campaign(half, store=store, resume=True)
            assert partial.simulated == 10 and partial.store_hits == 0
            # Unified accounting: every resume lookup that missed was
            # simulated, and the campaign's counters mirror the store's.
            assert partial.store_misses == partial.simulated == store.misses
            assert store.hits == partial.store_hits == 0
        # Resume with the full trial budget: only the missing half runs.
        with ResultStore(path) as store:
            resumed = run_campaign(self.CONFIG, store=store, resume=True)
            assert resumed.store_hits == 10
            assert resumed.simulated == 10
            assert resumed.store_misses == resumed.simulated
            assert store.hits == resumed.store_hits
            assert store.misses == resumed.store_misses
            assert resumed.store_hits + resumed.simulated == resumed.points
            assert len(store) == 20
        # And the summary is byte-identical to a fresh, uninterrupted run.
        fresh = run_campaign(self.CONFIG)
        assert resumed.render() == fresh.render()

    def test_full_resume_simulates_nothing(self, tmp_path):
        path = tmp_path / "campaign.sqlite"
        with ResultStore(path) as store:
            run_campaign(self.CONFIG, store=store, resume=True)
        with ResultStore(path) as store:
            again = run_campaign(self.CONFIG, store=store, resume=True)
            assert again.simulated == 0
            assert again.store_hits == 20

    def test_without_resume_points_are_recomputed(self, tmp_path):
        path = tmp_path / "campaign.sqlite"
        with ResultStore(path) as store:
            run_campaign(self.CONFIG, store=store, resume=True)
            first_hits = store.hits
            first_misses = store.misses
            rerun = run_campaign(self.CONFIG, store=store, resume=False)
            assert rerun.simulated == 20
            assert store.hits == first_hits  # no reads without --resume
            # No lookups means no hit/miss accounting on either side:
            # the campaign's counters stay in lockstep with the store's.
            assert store.misses == first_misses
            assert rerun.store_hits == rerun.store_misses == 0


# --------------------------------------------------------------------- #
# CLI plumbing                                                          #
# --------------------------------------------------------------------- #
class TestCampaignCli:
    def test_campaign_subcommand_with_store_and_resume(self, tmp_path, capsys):
        from repro import __main__ as cli

        store = tmp_path / "cli.sqlite"
        out = tmp_path / "summary.txt"
        code = cli.main(
            [
                "campaign",
                "--kernels",
                "rspeed",
                "--policies",
                "extra-cycle",
                "--trials",
                "4",
                "--scale",
                "0.1",
                "--store",
                str(store),
                "--out",
                str(out),
            ]
        )
        assert code == 0
        first = capsys.readouterr()
        assert "simulated=4" in first.err
        assert out.read_text(encoding="utf-8").startswith(
            "Architectural fault-injection campaign"
        )
        code = cli.main(
            [
                "campaign",
                "--kernels",
                "rspeed",
                "--policies",
                "extra-cycle",
                "--trials",
                "4",
                "--scale",
                "0.1",
                "--store",
                str(store),
                "--resume",
                "--quiet",
            ]
        )
        assert code == 0
        second = capsys.readouterr()
        assert "simulated=0" in second.err
        assert "store-hits=4" in second.err

    def test_l2_target_sweep_through_the_cli(self, tmp_path, capsys):
        # End-to-end L2 injection: FAULT_TARGETS has always advertised
        # "l2"; the CLI must actually sample and replay it.
        from repro import __main__ as cli

        out = tmp_path / "l2_summary.txt"
        code = cli.main(
            [
                "campaign",
                "--kernels",
                "rspeed",
                "--policies",
                "no-ecc,extra-cycle",
                "--targets",
                "dl1,l2",
                "--scenarios",
                "isolation,worst",
                "--trials",
                "2",
                "--batch",
                "2",
                "--scale",
                "0.1",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "simulated=16" in captured.err  # 1 kernel x 2 x 2 x 2 x 2
        text = out.read_text(encoding="utf-8")
        assert "target" in text and "l2" in text
        assert "scenario" in text and "worst" in text

    def test_unknown_target_is_a_clean_cli_error(self, capsys):
        from repro import __main__ as cli

        assert cli.main(["campaign", "--targets", "dram"]) == 2
        assert "fault target" in capsys.readouterr().err

    def test_sweep_summary_experiment_is_registered(self):
        from repro.experiments import get_experiment

        experiment = get_experiment("sweep_summary")
        assert experiment.artifact == "sweep_summary"

    def test_resume_without_store_is_an_error(self, capsys):
        from repro import __main__ as cli

        assert cli.main(["campaign", "--resume"]) == 2

    def test_unknown_policy_is_a_clean_error(self, capsys):
        from repro import __main__ as cli

        assert cli.main(["campaign", "--policies", "bogus"]) == 2

    def test_campaign_summary_experiment_is_registered(self):
        from repro.experiments import get_experiment

        experiment = get_experiment("campaign_summary")
        assert experiment.artifact == "campaign_summary"
