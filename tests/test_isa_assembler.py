"""Tests for the two-pass assembler and the program container."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import InstructionClass, Mnemonic
from repro.isa.program import DATA_BASE, TEXT_BASE


def test_basic_instruction_encoding():
    program = assemble(
        """
        .text
        main:
            add r1, r2, r3
            sub r4, 10, r5
            nop
            halt
        """
    )
    instructions = program.instructions
    assert len(instructions) == 4
    assert instructions[0].mnemonic is Mnemonic.ADD
    assert (instructions[0].rs1, instructions[0].rs2, instructions[0].rd) == (1, 2, 3)
    assert not instructions[0].uses_imm
    assert instructions[1].uses_imm and instructions[1].imm == 10
    assert instructions[2].klass is InstructionClass.NOP


def test_addresses_are_sequential_words():
    program = assemble("main:\n    nop\n    nop\n    halt\n")
    addresses = [i.address for i in program.instructions]
    assert addresses == [TEXT_BASE, TEXT_BASE + 4, TEXT_BASE + 8]


def test_memory_operand_forms():
    program = assemble(
        """
        main:
            ld [r1], r2
            ld [r1+8], r3
            ld [r1-4], r4
            ld [r1+r5], r6
            st r2, [r7+12]
            halt
        """
    )
    load_plain, load_disp, load_neg, load_indexed, store = program.instructions[:5]
    assert load_plain.imm == 0 and load_plain.uses_imm
    assert load_disp.imm == 8
    assert load_neg.imm == -4
    assert not load_indexed.uses_imm and load_indexed.rs2 == 5
    assert store.rd == 2 and store.rs1 == 7 and store.imm == 12


def test_labels_and_branch_displacement():
    program = assemble(
        """
        main:
            set 3, r1
        loop:
            subcc r1, 1, r1
            bg loop
            halt
        """
    )
    branch = program.instructions[2]
    assert branch.target_label == "loop"
    # Branch at TEXT_BASE+8, loop label at TEXT_BASE+4.
    assert branch.imm == -4
    assert program.symbol("loop") == TEXT_BASE + 4


def test_data_directives_and_symbols():
    program = assemble(
        """
        .data
        table:
            .word 1, 2, 3
        bytes:
            .byte 4, 5
        halves:
            .half 6
        gap:
            .space 8
        aligned:
            .align 4
            .word 7
        .text
        main:
            halt
        """
    )
    assert program.symbol("table") == DATA_BASE
    assert program.symbol("bytes") == DATA_BASE + 12
    assert program.symbol("halves") == DATA_BASE + 14
    assert program.data.read_word(DATA_BASE) == 1
    assert program.data.read_word(DATA_BASE + 8) == 3
    # aligned word lands on the next 4-byte boundary after 14 + 2 + 8 = 24.
    assert program.data.read_word(program.symbol("aligned")) == 7


def test_set_resolves_symbols():
    program = assemble(
        """
        .data
        buffer:
            .word 0
        .text
        main:
            set buffer, r1
            halt
        """
    )
    assert program.instructions[0].imm == DATA_BASE


def test_pseudo_instructions_expand():
    program = assemble(
        """
        main:
            mov 5, r1
            cmp r1, 3
            inc r1
            dec r1
            clr r2
            ret
            halt
        """
    )
    mnemonics = [i.mnemonic for i in program.instructions]
    assert mnemonics[0] is Mnemonic.OR
    assert mnemonics[1] is Mnemonic.SUBCC and program.instructions[1].rd == 0
    assert mnemonics[2] is Mnemonic.ADD
    assert mnemonics[3] is Mnemonic.SUB
    assert mnemonics[5] is Mnemonic.JMPL


def test_call_writes_link_register():
    program = assemble(
        """
        main:
            call helper
            halt
        helper:
            ret
        """
    )
    call = program.instructions[0]
    assert call.klass is InstructionClass.CALL
    assert call.rd == 31


def test_entry_defaults_to_main():
    program = assemble(
        """
        helper:
            nop
        main:
            halt
        """
    )
    assert program.entry == TEXT_BASE + 4


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("a:\n    nop\na:\n    halt\n")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblerError):
        assemble("main:\n    frobnicate r1, r2, r3\n")


def test_data_directive_in_text_rejected():
    with pytest.raises(AssemblerError):
        assemble(".text\n    .word 5\n")


def test_unknown_symbol_rejected():
    with pytest.raises(AssemblerError):
        assemble("main:\n    set missing_symbol, r1\n    halt\n")


def test_disassembly_round_trip_text():
    source = """
    main:
        set 100, r1
        ld [r1+4], r2
        add r2, 1, r2
        st r2, [r1+4]
        ba main
    """
    program = assemble(source)
    listing = program.disassemble()
    assert "ld [r1+4], r2" in listing
    assert "main:" in listing


def test_comments_are_ignored():
    program = assemble(
        """
        main:            ; entry point
            nop          # a comment
            halt         ! another comment style
        """
    )
    assert len(program.instructions) == 2
