"""Differential equivalence of the batched replay backend.

``run_injection_batch`` must be *payload byte-identical* to the classic
per-point ``run_injection`` over full grids — the analytical triage, the
snapshot suffix-resume and the classic fallback are three routes to one
answer, never three answers.  These tests pin that equivalence over:

* the lean pre-decoded golden pass vs the functional simulator;
* exhaustive synthetic grids engineered to hit every triage branch
  (crash, hang, subword read-modify-write, sign extension, protected
  policies with corrected / detected / writeback events);
* sampled real-kernel strata across policies and both fault targets;
* the campaign engine in ``batched`` vs ``point`` mode, including the
  replay-mode counters, store-warm resume and chaos injection.
"""

from __future__ import annotations

import itertools

import pytest

from repro.campaign import (
    CampaignConfig,
    parse_chaos,
    replay_group_key,
    run_campaign,
    run_injection,
    run_injection_batch,
    sample_fault_groups,
    sample_faults,
)
from repro.functional.simulator import FunctionalSimulator, run_program
from repro.isa.assembler import assemble
from repro.scenarios.spec import FaultSpec, SimulationSpec
from repro.store import ResultStore

# --------------------------------------------------------------------- #
# synthetic programs: each one corners a different triage branch        #
# --------------------------------------------------------------------- #

#: Corrupted function pointer -> indirect jump -> crash (DETECTED).
CRASH_PROGRAM = """
.data
ptr:
    .word 0
.text
main:
    set target, r5
    set ptr, r1
    st r5, [r1]
    ld [r1], r2
    ld [r1], r2
    jmpl r2, 0, r7
    halt
target:
    halt
"""

#: Loop bound read from memory -> a flipped high bit hangs (DETECTED).
HANG_PROGRAM = """
.data
count:
    .word 3
.text
main:
    set count, r1
    ld [r1], r2
loop:
    subcc r2, 1, r2
    bne loop
    halt
"""

#: Subword read-modify-write traffic: byte/half stores merge into a
#: word the fault may already have corrupted; sign/zero extension on
#: the reads makes partial corruption architecturally visible.
SUBWORD_PROGRAM = """
.data
buf:
    .word 0x8180F07F
    .word 0
.text
main:
    set buf, r1
    ldsb [r1], r2
    stb r2, [r1 + 4]
    ldsh [r1 + 2], r3
    sth r3, [r1 + 6]
    ldub [r1 + 1], r4
    st r4, [r1 + 4]
    ld [r1], r5
    halt
"""

#: Same traffic, plus a dirty word that must be written back at the
#: end of the run (exercises writeback_corrected / END_FLUSH triage).
WRITEBACK_PROGRAM = """
.data
src:
    .word 0x13579BDF
dst:
    .word 0
.text
main:
    set src, r1
    set dst, r2
    ld [r1], r3
    st r3, [r2]
    ld [r1], r4
    st r4, [r2]
    halt
"""


def _words_of(trace):
    return sorted({d.address & ~3 for d in trace.instructions if d.address is not None})


def _mem_ops(trace):
    return sum(1 for d in trace.instructions if d.address is not None)


def _grid(program_text, name, policies, *, bits, targets=("dl1", "l2")):
    """Exhaustive (policy x target x word x bit x access) spec grid."""
    program = assemble(program_text, name=name)
    trace = run_program(program)
    words = _words_of(trace)
    ops = _mem_ops(trace)
    specs = []
    for policy, target in itertools.product(policies, targets):
        for wa in words:
            for bit in bits:
                for at_access in range(1, ops + 2):
                    specs.append(
                        SimulationSpec(
                            policy=policy,
                            fault=FaultSpec(
                                target=target,
                                word_address=wa,
                                bit=bit,
                                at_access=at_access,
                            ),
                        )
                    )
    return program, trace, specs


def _assert_equivalent(program, trace, specs):
    batch = run_injection_batch(specs, program=program)
    assert len(batch) == len(specs)
    for spec, batched in zip(specs, batch):
        classic = run_injection(spec, program=program, trace=trace)
        assert batched.payload() == classic.payload(), (
            f"batched != classic for {spec.fault} under {spec.policy}"
        )


# --------------------------------------------------------------------- #
# lean golden pass                                                      #
# --------------------------------------------------------------------- #
class TestLeanGoldenPass:
    @pytest.mark.parametrize("kernel", ["rspeed", "canrdr"])
    def test_matches_functional_simulator(self, kernel):
        from repro.campaign.lean_sim import golden_pass, memories_equal
        from repro.workloads import build_kernel

        program = build_kernel(kernel, scale=0.05)
        golden = golden_pass(program)
        trace = run_program(program)
        assert golden.instructions == len(trace)
        assert golden.pcs == [d.pc for d in trace.instructions]
        assert golden.total_ops == _mem_ops(trace)

        simulator = FunctionalSimulator(program)
        simulator.run()
        final = {}
        for page_number, data in simulator.memory._pages.items():
            base = page_number << 12
            for offset in range(0, len(data), 4):
                word = int.from_bytes(data[offset : offset + 4], "little")
                if word:
                    final[base + offset] = word
        assert memories_equal(golden.mem_final, final)

    def test_store_history_reconstructs_values_over_time(self):
        from repro.campaign.lean_sim import golden_pass

        program = assemble(WRITEBACK_PROGRAM, name="wb_hist")
        golden = golden_pass(program)
        trace = run_program(program)
        dst = next(d.address for d in trace.instructions if d.is_store) & ~3
        # Before the first store the word is its initial value; after
        # the last memory op it is the stored value.
        assert golden.value_at(dst, 1) == 0
        assert golden.value_at(dst, golden.total_ops + 1) == 0x13579BDF


# --------------------------------------------------------------------- #
# differential grids                                                    #
# --------------------------------------------------------------------- #
class TestSyntheticGridEquivalence:
    BITS = (0, 7, 13, 31, 33, 38)  # data low/mid/high + check-bit region

    def test_crash_grid(self):
        program, trace, specs = _grid(
            CRASH_PROGRAM, "crash_prog", ("no-ecc", "extra-cycle"), bits=self.BITS
        )
        _assert_equivalent(program, trace, specs)

    def test_hang_grid(self):
        program, trace, specs = _grid(
            HANG_PROGRAM, "hang_prog", ("no-ecc",), bits=(28, 29, 30, 31)
        )
        _assert_equivalent(program, trace, specs)

    def test_subword_rmw_grid(self):
        program, trace, specs = _grid(
            SUBWORD_PROGRAM, "subword_prog", ("no-ecc", "laec"), bits=self.BITS
        )
        _assert_equivalent(program, trace, specs)

    def test_protected_policies_grid(self):
        program, trace, specs = _grid(
            WRITEBACK_PROGRAM,
            "wb_prog",
            ("extra-cycle", "wt-parity"),
            bits=self.BITS,
        )
        _assert_equivalent(program, trace, specs)
        # The protected grid must actually exercise the analytical
        # corrected/detected walks, not just fall through to execution.
        batch = run_injection_batch(specs, program=program)
        events = {event for result in batch for event in result.events}
        assert "load_corrected" in events
        modes = {result.replay_mode for result in batch}
        assert "analytical" in modes

    def test_replay_mode_marker_stays_out_of_payload(self):
        program, _trace, specs = _grid(
            WRITEBACK_PROGRAM, "wb_prog2", ("no-ecc",), bits=(0,)
        )
        for result in run_injection_batch(specs, program=program):
            assert result.replay_mode in ("analytical", "streamed", "full")
            assert "replay_mode" not in result.payload()


class TestKernelGridEquivalence:
    def test_sampled_strata_across_policies_and_targets(self):
        kernel, scale = "rspeed", 0.1
        specs = []
        for policy in ("no-ecc", "extra-cycle", "wt-parity", "laec"):
            for target in ("dl1", "l2"):
                for fault in sample_faults(
                    kernel, scale, policy, 6, seed=2019, target=target
                ):
                    specs.append(
                        SimulationSpec(
                            kernel=kernel, scale=scale, policy=policy, fault=fault
                        )
                    )
        batch = run_injection_batch(specs)
        assert len(batch) == len(specs)
        for spec, batched in zip(specs, batch):
            assert batched.payload() == run_injection(spec).payload()


# --------------------------------------------------------------------- #
# group-ordered emission                                                #
# --------------------------------------------------------------------- #
class TestGroupedSampling:
    def test_groups_are_ordered_and_byte_identical_to_per_stratum(self):
        strata = [
            ("rspeed", 0.1, "no-ecc", "dl1", "isolation"),
            ("rspeed", 0.1, "laec", "dl1", "isolation"),
            ("rspeed", 0.1, "no-ecc", "l2", "isolation"),
        ]
        groups = sample_fault_groups(strata, 5, seed=2019)
        assert list(groups) == [
            replay_group_key("rspeed", 0.1),
            replay_group_key("rspeed", 0.1, target="l2"),
        ]
        dl1_group = groups[replay_group_key("rspeed", 0.1)]
        # Both DL1 policies share one group (one golden run serves both).
        assert [policy for policy, _fault in dl1_group] == ["no-ecc"] * 5 + [
            "laec"
        ] * 5
        assert [fault for policy, fault in dl1_group if policy == "no-ecc"] == (
            sample_faults("rspeed", 0.1, "no-ecc", 5, seed=2019)
        )


# --------------------------------------------------------------------- #
# the campaign engine in batched mode                                   #
# --------------------------------------------------------------------- #
BASE = dict(
    kernels=("rspeed",),
    policies=("no-ecc", "extra-cycle"),
    scale=0.1,
    trials=8,
    batch=4,
    seed=2019,
    targets=("dl1", "l2"),
    retry_backoff=0.0,
)


def config(**overrides) -> CampaignConfig:
    merged = dict(BASE)
    merged.update(overrides)
    return CampaignConfig(**merged)


class TestBatchedCampaign:
    def test_batched_and_point_summaries_are_byte_identical(self):
        batched = run_campaign(config(replay_mode="batched"))
        point = run_campaign(config(replay_mode="point"))
        assert batched.render() == point.render()

    def test_mode_counters_sum_to_total_points(self):
        result = run_campaign(config())
        stats = result.stats
        assert (
            stats.analytical + stats.streamed + stats.full + stats.store_hits
            == result.points
        )
        # The triage pass must actually eliminate work, and the no-ecc
        # SDC points must actually stream through suffix-resume.
        assert stats.analytical > 0
        assert stats.streamed > 0
        assert stats.store_hits == 0

    def test_point_mode_counts_everything_as_full(self):
        result = run_campaign(config(replay_mode="point"))
        stats = result.stats
        assert stats.analytical == stats.streamed == 0
        assert stats.full == result.simulated == result.points

    def test_warm_resume_counts_store_hits(self, tmp_path):
        with ResultStore(tmp_path / "warm.sqlite") as store:
            cold = run_campaign(config(), store=store, resume=True)
            warm = run_campaign(config(), store=store, resume=True)
        assert warm.simulated == 0
        assert warm.stats.store_hits == warm.points == cold.points
        assert (
            warm.stats.analytical + warm.stats.streamed + warm.stats.full == 0
        )
        assert warm.render() == cold.render()

    def test_invalid_replay_mode_is_rejected(self):
        with pytest.raises(ValueError):
            config(replay_mode="warp")


class TestChaosUnderBatching:
    def test_worker_kill_under_batching_matches_clean_run(self):
        clean = run_campaign(config(workers=2))
        crashed = run_campaign(
            config(workers=2), chaos=parse_chaos("kill-worker@2")
        )
        assert crashed.render() == clean.render()
        assert crashed.stats.worker_restarts >= 1
        assert not crashed.quarantined
        # Counters still account for every point.
        stats = crashed.stats
        assert (
            stats.analytical + stats.streamed + stats.full + stats.store_hits
            == crashed.points
        )

    def test_chaos_resume_is_byte_identical(self, tmp_path):
        with ResultStore(tmp_path / "chaos.sqlite") as store:
            crashed = run_campaign(
                config(workers=2),
                store=store,
                resume=True,
                chaos=parse_chaos("kill-worker@2"),
            )
            resumed = run_campaign(config(workers=2), store=store, resume=True)
        assert resumed.simulated == 0
        assert resumed.render() == crashed.render()

    def test_transient_fail_is_retried_through_the_point_path(self):
        clean = run_campaign(config())
        chaotic = run_campaign(config(), chaos=parse_chaos("fail@2"))
        assert chaotic.render() == clean.render()
        assert chaotic.stats.retries == 1
        # The chaos-targeted point executed via the per-point path.
        assert chaotic.stats.full >= 1


# --------------------------------------------------------------------- #
# batched store lookups                                                 #
# --------------------------------------------------------------------- #
class TestGetMany:
    def test_matches_per_key_get_including_accounting(self, tmp_path):
        with ResultStore(tmp_path / "a.sqlite") as store:
            for index in range(7):
                store.put(f"k{index}", {"v": index})
            keys = [f"k{index}" for index in range(10)]
            batched = store.get_many(keys)
            assert store.hits == 7
            assert store.misses == 3
        with ResultStore(tmp_path / "a.sqlite") as store:
            scalar = {}
            for key in keys:
                payload = store.get(key)
                if payload is not None:
                    scalar[key] = payload
            assert batched == scalar
            assert store.hits == 7
            assert store.misses == 3

    def test_drops_corrupt_rows_like_get(self, tmp_path):
        from repro.campaign import corrupt_store_row

        path = tmp_path / "b.sqlite"
        with ResultStore(path) as store:
            for index in range(4):
                store.put(f"k{index}", {"v": index})
        corrupted = corrupt_store_row(path, 0)
        with ResultStore(path) as store:
            found = store.get_many([f"k{index}" for index in range(4)])
            assert corrupted not in found
            assert len(found) == 3
            assert store.corrupt_dropped == 1
            assert store.misses == 1
            # The corrupt row was deleted, not just skipped: a re-read
            # is a plain miss that a resume would re-simulate.
            assert store.get(corrupted) is None
