"""Differential equivalence of the batched replay backend.

``run_injection_batch`` must be *payload byte-identical* to the classic
per-point ``run_injection`` over full grids — the analytical triage, the
snapshot suffix-resume and the classic fallback are three routes to one
answer, never three answers.  These tests pin that equivalence over:

* the lean pre-decoded golden pass vs the functional simulator;
* exhaustive synthetic grids engineered to hit every triage branch
  (crash, hang, subword read-modify-write, sign extension, protected
  policies with corrected / detected / writeback events);
* sampled real-kernel strata across policies and both fault targets;
* the campaign engine in ``batched`` vs ``point`` mode, including the
  replay-mode counters, store-warm resume and chaos injection.
"""

from __future__ import annotations

import itertools

import pytest

from repro.campaign import (
    CampaignConfig,
    parse_chaos,
    replay_group_key,
    run_campaign,
    run_injection,
    run_injection_batch,
    sample_fault_groups,
    sample_faults,
)
from repro.functional.simulator import FunctionalSimulator, run_program
from repro.isa.assembler import assemble
from repro.scenarios.spec import FaultSpec, SimulationSpec
from repro.store import ResultStore

# --------------------------------------------------------------------- #
# synthetic programs: each one corners a different triage branch        #
# --------------------------------------------------------------------- #

#: Corrupted function pointer -> indirect jump -> crash (DETECTED).
CRASH_PROGRAM = """
.data
ptr:
    .word 0
.text
main:
    set target, r5
    set ptr, r1
    st r5, [r1]
    ld [r1], r2
    ld [r1], r2
    jmpl r2, 0, r7
    halt
target:
    halt
"""

#: Loop bound read from memory -> a flipped high bit hangs (DETECTED).
HANG_PROGRAM = """
.data
count:
    .word 3
.text
main:
    set count, r1
    ld [r1], r2
loop:
    subcc r2, 1, r2
    bne loop
    halt
"""

#: Subword read-modify-write traffic: byte/half stores merge into a
#: word the fault may already have corrupted; sign/zero extension on
#: the reads makes partial corruption architecturally visible.
SUBWORD_PROGRAM = """
.data
buf:
    .word 0x8180F07F
    .word 0
.text
main:
    set buf, r1
    ldsb [r1], r2
    stb r2, [r1 + 4]
    ldsh [r1 + 2], r3
    sth r3, [r1 + 6]
    ldub [r1 + 1], r4
    st r4, [r1 + 4]
    ld [r1], r5
    halt
"""

#: Same traffic, plus a dirty word that must be written back at the
#: end of the run (exercises writeback_corrected / END_FLUSH triage).
WRITEBACK_PROGRAM = """
.data
src:
    .word 0x13579BDF
dst:
    .word 0
.text
main:
    set src, r1
    set dst, r2
    ld [r1], r3
    st r3, [r2]
    ld [r1], r4
    st r4, [r2]
    halt
"""


def _words_of(trace):
    return sorted({d.address & ~3 for d in trace.instructions if d.address is not None})


def _mem_ops(trace):
    return sum(1 for d in trace.instructions if d.address is not None)


def _grid(program_text, name, policies, *, bits, targets=("dl1", "l2")):
    """Exhaustive (policy x target x word x bit x access) spec grid."""
    program = assemble(program_text, name=name)
    trace = run_program(program)
    words = _words_of(trace)
    ops = _mem_ops(trace)
    specs = []
    for policy, target in itertools.product(policies, targets):
        for wa in words:
            for bit in bits:
                for at_access in range(1, ops + 2):
                    specs.append(
                        SimulationSpec(
                            policy=policy,
                            fault=FaultSpec(
                                target=target,
                                word_address=wa,
                                bit=bit,
                                at_access=at_access,
                            ),
                        )
                    )
    return program, trace, specs


def _assert_equivalent(program, trace, specs):
    batch = run_injection_batch(specs, program=program)
    assert len(batch) == len(specs)
    for spec, batched in zip(specs, batch):
        classic = run_injection(spec, program=program, trace=trace)
        assert batched.payload() == classic.payload(), (
            f"batched != classic for {spec.fault} under {spec.policy}"
        )


# --------------------------------------------------------------------- #
# lean golden pass                                                      #
# --------------------------------------------------------------------- #
class TestLeanGoldenPass:
    @pytest.mark.parametrize("kernel", ["rspeed", "canrdr"])
    def test_matches_functional_simulator(self, kernel):
        from repro.campaign.lean_sim import golden_pass, memories_equal
        from repro.workloads import build_kernel

        program = build_kernel(kernel, scale=0.05)
        golden = golden_pass(program)
        trace = run_program(program)
        assert golden.instructions == len(trace)
        assert golden.pcs == [d.pc for d in trace.instructions]
        assert golden.total_ops == _mem_ops(trace)

        simulator = FunctionalSimulator(program)
        simulator.run()
        final = {}
        for page_number, data in simulator.memory._pages.items():
            base = page_number << 12
            for offset in range(0, len(data), 4):
                word = int.from_bytes(data[offset : offset + 4], "little")
                if word:
                    final[base + offset] = word
        assert memories_equal(golden.mem_final, final)

    def test_store_history_reconstructs_values_over_time(self):
        from repro.campaign.lean_sim import golden_pass

        program = assemble(WRITEBACK_PROGRAM, name="wb_hist")
        golden = golden_pass(program)
        trace = run_program(program)
        dst = next(d.address for d in trace.instructions if d.is_store) & ~3
        # Before the first store the word is its initial value; after
        # the last memory op it is the stored value.
        assert golden.value_at(dst, 1) == 0
        assert golden.value_at(dst, golden.total_ops + 1) == 0x13579BDF


# --------------------------------------------------------------------- #
# differential grids                                                    #
# --------------------------------------------------------------------- #
class TestSyntheticGridEquivalence:
    BITS = (0, 7, 13, 31, 33, 38)  # data low/mid/high + check-bit region

    def test_crash_grid(self):
        program, trace, specs = _grid(
            CRASH_PROGRAM, "crash_prog", ("no-ecc", "extra-cycle"), bits=self.BITS
        )
        _assert_equivalent(program, trace, specs)

    def test_hang_grid(self):
        program, trace, specs = _grid(
            HANG_PROGRAM, "hang_prog", ("no-ecc",), bits=(28, 29, 30, 31)
        )
        _assert_equivalent(program, trace, specs)

    def test_subword_rmw_grid(self):
        program, trace, specs = _grid(
            SUBWORD_PROGRAM, "subword_prog", ("no-ecc", "laec"), bits=self.BITS
        )
        _assert_equivalent(program, trace, specs)

    def test_protected_policies_grid(self):
        program, trace, specs = _grid(
            WRITEBACK_PROGRAM,
            "wb_prog",
            ("extra-cycle", "wt-parity"),
            bits=self.BITS,
        )
        _assert_equivalent(program, trace, specs)
        # The protected grid must actually exercise the analytical
        # corrected/detected walks, not just fall through to execution.
        batch = run_injection_batch(specs, program=program)
        events = {event for result in batch for event in result.events}
        assert "load_corrected" in events
        modes = {result.replay_mode for result in batch}
        assert "analytical" in modes

    def test_replay_mode_marker_stays_out_of_payload(self):
        program, _trace, specs = _grid(
            WRITEBACK_PROGRAM, "wb_prog2", ("no-ecc",), bits=(0,)
        )
        for result in run_injection_batch(specs, program=program):
            assert result.replay_mode in ("analytical", "streamed", "full")
            assert "replay_mode" not in result.payload()


# --------------------------------------------------------------------- #
# timeline-delta (divergent) walk: synthetic deviation grids            #
# --------------------------------------------------------------------- #

#: Visible corrupted load whose taint dies immediately: the walk proves
#: `masked` (diverged, stream-identical) without streaming.
DEAD_LOAD_PROGRAM = """
.data
val:
    .word 0x11111111
.text
main:
    set val, r1
    ld [r1], r2
    set 0, r2
    ld [r1], r2
    set 0, r2
    halt
"""

#: Tainted value propagates through an ALU op into a store of another
#: word and is never healed: the walk proves `sdc` analytically.
TAINT_STORE_PROGRAM = """
.data
src:
    .word 0x22222222
dst:
    .word 0
.text
main:
    set src, r1
    set dst, r2
    ld [r1], r3
    add r3, 1, r3
    st r3, [r2]
    halt
"""

#: A corrupted flag flips `be` so the faulty run *executes* the NOP run
#: the golden run branches over: provable TIMING, +3 instructions.
TIMING_EXTRA_NOP_PROGRAM = """
.data
flag:
    .word 0
.text
main:
    set flag, r1
    ld [r1], r2
    ld [r1], r2
    subcc r2, 0, r9
    be join
    nop
    nop
    nop
join:
    set 0, r2
    halt
"""

#: The mirror image: the faulty run *skips* the NOP run the golden run
#: falls through: provable TIMING, -2 instructions.
TIMING_SKIP_NOP_PROGRAM = """
.data
flag:
    .word 1
.text
main:
    set flag, r1
    ld [r1], r2
    ld [r1], r2
    subcc r2, 0, r9
    be join
    nop
    nop
join:
    set 0, r2
    halt
"""

#: The corrupted flag flips a branch whose fall-through arm does real
#: work: the walk must bail and the point streams through resume_faulty.
UNPROVABLE_BRANCH_PROGRAM = """
.data
cond:
    .word 0
out:
    .word 0
.text
main:
    set cond, r1
    set out, r4
    ld [r1], r2
    subcc r2, 0, r9
    be done
    set 1, r3
    st r3, [r4]
done:
    halt
"""

#: The corrupted value becomes a load address: the access stream itself
#: is unprovable, so the walk must bail and the point streams.
TAINTED_ADDRESS_PROGRAM = """
.data
idx:
    .word 0
tbl:
    .word 0x10
    .word 0x20
.text
main:
    set idx, r1
    ld [r1], r2
    sll r2, 2, r2
    set tbl, r3
    ld [r3+r2], r4
    set 0, r4
    set 0, r2
    halt
"""


class TestTimelineDeltaWalk:
    """Every provable / unprovable deviation case of `_walk_divergent`,
    pinned byte-identical to the classic per-point path."""

    def _run(self, program_text, name, *, policies=("no-ecc",), bits=(0, 7, 31)):
        program, trace, specs = _grid(program_text, name, policies, bits=bits)
        _assert_equivalent(program, trace, specs)
        return specs, run_injection_batch(specs, program=program)

    def test_dead_taint_proves_masked_without_streaming(self):
        _specs, batch = self._run(DEAD_LOAD_PROGRAM, "dead_load")
        assert all(result.replay_mode == "analytical" for result in batch)
        assert any(
            result.diverged and result.outcome.value == "masked"
            for result in batch
        )

    def test_taint_chain_into_store_proves_sdc(self):
        _specs, batch = self._run(TAINT_STORE_PROGRAM, "taint_store")
        proved = [
            result
            for result in batch
            if result.replay_mode == "analytical"
            and result.diverged
            and result.outcome.value == "sdc"
        ]
        assert proved, "no analytically proved SDC point in the grid"
        for result in proved:
            assert result.faulty_instructions == result.golden_instructions

    def test_nop_reconvergence_proves_timing_with_extra_instructions(self):
        _specs, batch = self._run(TIMING_EXTRA_NOP_PROGRAM, "timing_extra")
        timings = [r for r in batch if r.outcome.value == "timing"]
        assert timings, "no timing outcome in the extra-NOP grid"
        for result in timings:
            assert result.replay_mode == "analytical"
            assert result.diverged
            assert (
                result.faulty_instructions == result.golden_instructions + 3
            )

    def test_nop_reconvergence_proves_timing_with_skipped_instructions(self):
        _specs, batch = self._run(TIMING_SKIP_NOP_PROGRAM, "timing_skip")
        timings = [r for r in batch if r.outcome.value == "timing"]
        assert timings, "no timing outcome in the skip-NOP grid"
        for result in timings:
            assert result.replay_mode == "analytical"
            assert result.diverged
            assert (
                result.faulty_instructions == result.golden_instructions - 2
            )

    def test_divergent_branch_arms_still_stream(self):
        _specs, batch = self._run(UNPROVABLE_BRANCH_PROGRAM, "unprovable_br")
        assert any(result.replay_mode == "streamed" for result in batch)

    def test_tainted_address_still_streams(self):
        _specs, batch = self._run(TAINTED_ADDRESS_PROGRAM, "tainted_addr")
        assert any(result.replay_mode == "streamed" for result in batch)

    def test_budget_exhaustion_falls_back_to_streaming(self, monkeypatch):
        from repro.campaign import triage

        monkeypatch.setattr(triage, "TIMING_WALK_BUDGET", 2)
        _specs, batch = self._run(TAINT_STORE_PROGRAM, "budget_stream")
        assert any(result.replay_mode == "streamed" for result in batch)
        assert not any(
            result.diverged and result.replay_mode == "analytical"
            for result in batch
        )


class TestKernelGridEquivalence:
    def test_sampled_strata_across_policies_and_targets(self):
        kernel, scale = "rspeed", 0.1
        specs = []
        for policy in ("no-ecc", "extra-cycle", "wt-parity", "laec"):
            for target in ("dl1", "l2"):
                for fault in sample_faults(
                    kernel, scale, policy, 6, seed=2019, target=target
                ):
                    specs.append(
                        SimulationSpec(
                            kernel=kernel, scale=scale, policy=policy, fault=fault
                        )
                    )
        batch = run_injection_batch(specs)
        assert len(batch) == len(specs)
        for spec, batched in zip(specs, batch):
            assert batched.payload() == run_injection(spec).payload()


# --------------------------------------------------------------------- #
# group-ordered emission                                                #
# --------------------------------------------------------------------- #
class TestGroupedSampling:
    def test_groups_are_ordered_and_byte_identical_to_per_stratum(self):
        strata = [
            ("rspeed", 0.1, "no-ecc", "dl1", "isolation"),
            ("rspeed", 0.1, "laec", "dl1", "isolation"),
            ("rspeed", 0.1, "no-ecc", "l2", "isolation"),
        ]
        groups = sample_fault_groups(strata, 5, seed=2019)
        assert list(groups) == [
            replay_group_key("rspeed", 0.1),
            replay_group_key("rspeed", 0.1, target="l2"),
        ]
        dl1_group = groups[replay_group_key("rspeed", 0.1)]
        # Both DL1 policies share one group (one golden run serves both).
        assert [policy for policy, _fault in dl1_group] == ["no-ecc"] * 5 + [
            "laec"
        ] * 5
        assert [fault for policy, fault in dl1_group if policy == "no-ecc"] == (
            sample_faults("rspeed", 0.1, "no-ecc", 5, seed=2019)
        )


# --------------------------------------------------------------------- #
# the campaign engine in batched mode                                   #
# --------------------------------------------------------------------- #
BASE = dict(
    kernels=("rspeed",),
    policies=("no-ecc", "extra-cycle"),
    scale=0.1,
    trials=8,
    batch=4,
    seed=2019,
    targets=("dl1", "l2"),
    retry_backoff=0.0,
)


def config(**overrides) -> CampaignConfig:
    merged = dict(BASE)
    merged.update(overrides)
    return CampaignConfig(**merged)


class TestBatchedCampaign:
    def test_batched_and_point_summaries_are_byte_identical(self):
        batched = run_campaign(config(replay_mode="batched"))
        point = run_campaign(config(replay_mode="point"))
        assert batched.render() == point.render()

    def test_mode_counters_sum_to_total_points(self):
        result = run_campaign(config())
        stats = result.stats
        assert (
            stats.analytical + stats.streamed + stats.full + stats.store_hits
            == result.points
        )
        # The triage pass must actually eliminate work.
        assert stats.analytical > 0
        assert stats.store_hits == 0

    def test_timing_walk_disabled_streams_byte_identically(self, monkeypatch):
        """With the timeline-delta walk disabled every load-visible
        corruption streams through suffix-resume; the summary must not
        change, only the analytical/streamed split."""
        from repro.campaign import triage

        walked = run_campaign(config())
        monkeypatch.setattr(triage, "TIMING_WALK_BUDGET", 0)
        streamed = run_campaign(config())
        assert streamed.render() == walked.render()
        assert streamed.stats.streamed > 0
        assert walked.stats.streamed < streamed.stats.streamed
        assert (
            streamed.stats.analytical + streamed.stats.streamed
            + streamed.stats.full + streamed.stats.store_hits
            == streamed.points
        )

    def test_point_mode_counts_everything_as_full(self):
        result = run_campaign(config(replay_mode="point"))
        stats = result.stats
        assert stats.analytical == stats.streamed == 0
        assert stats.full == result.simulated == result.points

    def test_warm_resume_counts_store_hits(self, tmp_path):
        with ResultStore(tmp_path / "warm.sqlite") as store:
            cold = run_campaign(config(), store=store, resume=True)
            warm = run_campaign(config(), store=store, resume=True)
        assert warm.simulated == 0
        assert warm.stats.store_hits == warm.points == cold.points
        assert (
            warm.stats.analytical + warm.stats.streamed + warm.stats.full == 0
        )
        assert warm.render() == cold.render()

    def test_invalid_replay_mode_is_rejected(self):
        with pytest.raises(ValueError):
            config(replay_mode="warp")


class TestChaosUnderBatching:
    def test_worker_kill_under_batching_matches_clean_run(self):
        clean = run_campaign(config(workers=2))
        crashed = run_campaign(
            config(workers=2), chaos=parse_chaos("kill-worker@2")
        )
        assert crashed.render() == clean.render()
        assert crashed.stats.worker_restarts >= 1
        assert not crashed.quarantined
        # Counters still account for every point.
        stats = crashed.stats
        assert (
            stats.analytical + stats.streamed + stats.full + stats.store_hits
            == crashed.points
        )

    def test_chaos_resume_is_byte_identical(self, tmp_path):
        with ResultStore(tmp_path / "chaos.sqlite") as store:
            crashed = run_campaign(
                config(workers=2),
                store=store,
                resume=True,
                chaos=parse_chaos("kill-worker@2"),
            )
            resumed = run_campaign(config(workers=2), store=store, resume=True)
        assert resumed.simulated == 0
        assert resumed.render() == crashed.render()

    def test_transient_fail_is_retried_through_the_point_path(self):
        clean = run_campaign(config())
        chaotic = run_campaign(config(), chaos=parse_chaos("fail@2"))
        assert chaotic.render() == clean.render()
        assert chaotic.stats.retries == 1
        # The chaos-targeted point executed via the per-point path.
        assert chaotic.stats.full >= 1


# --------------------------------------------------------------------- #
# batched store lookups                                                 #
# --------------------------------------------------------------------- #
class TestGetMany:
    def test_matches_per_key_get_including_accounting(self, tmp_path):
        with ResultStore(tmp_path / "a.sqlite") as store:
            for index in range(7):
                store.put(f"k{index}", {"v": index})
            keys = [f"k{index}" for index in range(10)]
            batched = store.get_many(keys)
            assert store.hits == 7
            assert store.misses == 3
        with ResultStore(tmp_path / "a.sqlite") as store:
            scalar = {}
            for key in keys:
                payload = store.get(key)
                if payload is not None:
                    scalar[key] = payload
            assert batched == scalar
            assert store.hits == 7
            assert store.misses == 3

    def test_drops_corrupt_rows_like_get(self, tmp_path):
        from repro.campaign import corrupt_store_row

        path = tmp_path / "b.sqlite"
        with ResultStore(path) as store:
            for index in range(4):
                store.put(f"k{index}", {"v": index})
        corrupted = corrupt_store_row(path, 0)
        with ResultStore(path) as store:
            found = store.get_many([f"k{index}" for index in range(4)])
            assert corrupted not in found
            assert len(found) == 3
            assert store.corrupt_dropped == 1
            assert store.misses == 1
            # The corrupt row was deleted, not just skipped: a re-read
            # is a plain miss that a resume would re-simulate.
            assert store.get(corrupted) is None
