"""Shared fixtures for the test suite.

Kernel simulations are comparatively slow (tens of thousands of dynamic
instructions), so fixtures that need them use small scales and are
session-scoped to be computed once.
"""

from __future__ import annotations

import pytest

from repro.functional import run_program
from repro.isa.assembler import assemble
from repro.simulation import simulate_program
from repro.workloads import build_kernel


#: A tiny program exercising loads, stores, ALU ops and a loop.
TINY_LOOP_SOURCE = """
.data
numbers:
    .word 5, 7, 11, 13, 17, 19, 23, 29
total:
    .word 0

.text
main:
    set numbers, r1
    set total, r5
    set 0, r10
    set 8, r24
loop:
    ld [r1], r11
    add r10, r11, r10
    st r10, [r5]
    add r1, 4, r1
    subcc r24, 1, r24
    bg loop
    halt
"""


@pytest.fixture(scope="session")
def tiny_program():
    return assemble(TINY_LOOP_SOURCE, name="tiny-loop")


@pytest.fixture(scope="session")
def tiny_trace(tiny_program):
    return run_program(tiny_program)


@pytest.fixture(scope="session")
def small_kernel_results():
    """matrix + puwmod at a small scale under all four Figure 8 policies."""
    results = {}
    for name in ("matrix", "puwmod"):
        program = build_kernel(name, scale=0.15)
        trace = run_program(program)
        per_policy = {}
        for policy in ("no-ecc", "extra-cycle", "extra-stage", "laec"):
            per_policy[policy] = simulate_program(program, policy=policy, trace=trace)
        results[name] = per_policy
    return results
