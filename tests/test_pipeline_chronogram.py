"""Tests for chronogram recording/rendering and the statistics container."""

from repro.core.lookahead import LookaheadStatistics
from repro.pipeline.chronogram import Chronogram, ChronogramEntry
from repro.pipeline.stages import Stage
from repro.pipeline.statistics import PipelineStatistics, StallBreakdown
from repro.simulation import simulate_program


class TestChronogramContainer:
    def _entry(self, index=0):
        entry = ChronogramEntry(index=index, label=f"instr{index}")
        entry.record(Stage.FETCH, 1 + index, 1 + index)
        entry.record(Stage.DECODE, 2 + index, 2 + index)
        entry.record(Stage.EXECUTE, 4 + index, 5 + index)
        return entry

    def test_entry_bounds_and_lookup(self):
        entry = self._entry()
        assert entry.first_cycle == 1
        assert entry.last_cycle == 5
        assert entry.stage_at(4) is Stage.EXECUTE
        assert entry.stage_at(3) is None
        assert entry.cycles_in(Stage.EXECUTE) == 2
        assert entry.cycles_in(Stage.MEMORY) == 0

    def test_render_contains_stages_and_labels(self):
        chronogram = Chronogram(entries=[self._entry(0), self._entry(1)])
        text = chronogram.render()
        assert "instr0" in text and "instr1" in text
        assert "Exe" in text and "F" in text

    def test_window_filters_by_index(self):
        chronogram = Chronogram(entries=[self._entry(i) for i in range(5)])
        window = chronogram.window(1, 3)
        assert len(window) == 3
        assert window[0].index == 1

    def test_empty_render(self):
        assert "empty" in Chronogram().render()

    def test_recording_window_limits_entries(self, tiny_program, tiny_trace):
        result = simulate_program(
            tiny_program, policy="extra-stage", trace=tiny_trace, chronogram_window=6
        )
        assert len(result.chronogram) == 6
        # The ECC stage must show up for the recorded load hits (if any hit
        # in the first six instructions the warm-up may still be cold, so
        # just assert rendering works and stages are consistent).
        assert result.chronogram.render()


class TestStatisticsContainer:
    def test_derived_metrics(self):
        stats = PipelineStatistics(
            instructions=1000,
            cycles=1300,
            loads=250,
            load_hits=220,
            load_misses=30,
            dependent_loads=150,
        )
        assert stats.cpi == 1.3
        assert stats.ipc == 1000 / 1300
        assert stats.load_fraction == 0.25
        assert stats.load_hit_rate == 0.88
        assert stats.dependent_load_fraction == 0.6

    def test_table2_row_percentages(self):
        stats = PipelineStatistics(
            instructions=100, cycles=100, loads=25, load_hits=20, dependent_loads=15
        )
        row = stats.table2_row()
        assert row["pct_loads"] == 25.0
        assert row["pct_hit_loads"] == 80.0
        assert row["pct_dependent_loads"] == 60.0

    def test_empty_statistics_do_not_divide_by_zero(self):
        stats = PipelineStatistics()
        assert stats.cpi == 0.0
        assert stats.load_hit_rate == 0.0
        assert stats.dependent_load_fraction == 0.0

    def test_as_dict_includes_stalls_and_lookahead(self):
        stats = PipelineStatistics(
            instructions=10,
            cycles=20,
            stalls=StallBreakdown(load_use_wait=3),
            lookahead=LookaheadStatistics(loads_seen=4, lookaheads_taken=2),
        )
        data = stats.as_dict()
        assert data["stall_load_use_wait"] == 3
        assert data["lookahead_take_rate"] == 0.5

    def test_stall_breakdown_total(self):
        breakdown = StallBreakdown(load_use_wait=2, dl1_miss=5, branch_redirect=1)
        assert breakdown.total() == 8
