"""Tests for the experiment drivers (small scales to stay fast)."""

import pytest

from repro.core.policies import EccPolicyKind
from repro.experiments import (
    ablation_hazards,
    ablation_sensitivity,
    chronograms,
    energy_report,
    fault_campaign,
    figure8,
    table1,
    table2,
    wt_vs_wb,
)
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def small_run_set():
    """Three representative kernels at small scale under the four policies."""
    runner = ExperimentRunner(scale=0.12, kernels=["puwmod", "matrix", "cacheb"])
    return runner.run_all()


class TestTable1:
    def test_rows_and_rendering(self):
        rows = table1.run()
        assert len(rows) == 5
        leons = [r for r in rows if "LEON" in r.name]
        assert all(not cpu.supports_wb_l1 for cpu in leons)
        text = table1.render(rows)
        assert "Cortex R5" in text and "150MHz" in text


class TestTable2:
    def test_measured_statistics_in_plausible_ranges(self, small_run_set):
        rows = table2.run(run_set=small_run_set)
        assert {row.benchmark for row in rows} == {"puwmod", "matrix", "cacheb"}
        for row in rows:
            assert 0 < row.measured_pct_loads < 60
            assert 0 <= row.measured_pct_dependent_loads <= 100
            assert 0 < row.measured_pct_hit_loads <= 100
            assert row.paper_pct_loads is not None
        text = table2.render(rows)
        assert "average" in text

    def test_cacheb_has_few_dependent_loads(self, small_run_set):
        rows = {row.benchmark: row for row in table2.run(run_set=small_run_set)}
        assert rows["cacheb"].measured_pct_dependent_loads < 25
        assert rows["puwmod"].measured_pct_dependent_loads > 40


class TestFigure8:
    def test_policy_ordering_and_rendering(self, small_run_set):
        result = figure8.run(run_set=small_run_set)
        laec = result.average_increase(EccPolicyKind.LAEC)
        extra_stage = result.average_increase(EccPolicyKind.EXTRA_STAGE)
        extra_cycle = result.average_increase(EccPolicyKind.EXTRA_CYCLE)
        assert 0 <= laec <= extra_stage <= extra_cycle
        assert result.laec_improvement_over_extra_stage() >= 0
        text = figure8.render(result)
        assert "Figure 8" in text and "laec" in text


class TestChronograms:
    def test_all_figures_match_paper(self):
        results = chronograms.run()
        assert set(results) == {
            "figure2", "figure3", "figure4", "figure5", "figure7a", "figure7b",
        }
        for name, result in results.items():
            assert result.matches_paper, name
        text = chronograms.render(results)
        assert "Exe" in text and "figure7a" in text


class TestEnergyReport:
    def test_leakage_tracks_runtime(self, small_run_set):
        rows = energy_report.run(run_set=small_run_set)
        by_policy = {row.policy: row for row in rows}
        for row in rows:
            assert row.leakage_increase == pytest.approx(
                row.execution_time_increase, abs=1e-9
            )
        # LAEC's extra hardware adds almost nothing on top of what any
        # ECC-protected design (here Extra Stage) already pays.
        assert by_policy["laec"].dynamic_increase == pytest.approx(
            by_policy["extra-stage"].dynamic_increase, abs=0.01
        )
        assert "Energy study" in energy_report.render(rows)


class TestWtVsWb:
    def test_wt_wcet_inflation(self):
        result = wt_vs_wb.run(kernels=["puwmod"], scale=0.1)
        assert result.average_wt_inflation() > 1.0
        text = wt_vs_wb.render(result)
        assert "WCET" in text


class TestAblations:
    def test_hazard_breakdown(self, small_run_set):
        rows = ablation_hazards.run(run_set=small_run_set)
        by_name = {row.benchmark: row for row in rows}
        # matrix's loads have their addresses produced right before them.
        assert by_name["matrix"].take_rate < 0.2
        assert by_name["puwmod"].take_rate > 0.8
        assert ablation_hazards.data_hazard_dominates(rows)
        assert "Ablation A1" in ablation_hazards.render(rows)

    def test_sensitivity_sweep_monotonic_in_dependence(self):
        points = ablation_sensitivity.sweep(
            "dependent_load_fraction", (0.1, 0.9), instructions=4000
        )
        extra_stage = [p.increase["extra-stage"] for p in points]
        assert extra_stage[1] > extra_stage[0]
        text = ablation_sensitivity.render({"dependent_load_fraction": points})
        assert "dependent_load_fraction" in text

    def test_fault_campaign_guarantees(self):
        rows = fault_campaign.run(trials_per_point=300)
        indexed = {(row.code, row.flips): row for row in rows}
        assert indexed[("secded", 1)].corrected_rate == 1.0
        assert indexed[("secded", 2)].detected_rate == 1.0
        assert indexed[("secded", 2)].sdc_rate == 0.0
        assert indexed[("hamming", 2)].sdc_rate > 0.5
        assert indexed[("parity", 1)].detected_rate == 1.0
        analytical = fault_campaign.analytical_comparison()
        assert analytical["secded"]["array_failure_probability"] < analytical[
            "parity"
        ]["array_failure_probability"]
        assert "SECDED" in fault_campaign.render(rows)
