"""Tests for the ECC deployment policies and the look-ahead unit."""

import pytest

from repro.core.hazards import (
    address_produced_by_predecessor,
    consumer_distance,
    is_dependent_load,
)
from repro.core.lookahead import LookaheadUnit
from repro.core.policies import (
    DataReadyStage,
    EccPolicyKind,
    ExtraCacheCyclePolicy,
    ExtraStagePolicy,
    LaecPolicy,
    NoEccPolicy,
    WriteThroughParityPolicy,
    all_policies,
    figure8_policies,
    make_policy,
)
from repro.functional import run_program
from repro.isa.assembler import assemble
from repro.memory.config import WritePolicy


class TestPolicyDefinitions:
    def test_pipeline_depths(self):
        assert NoEccPolicy().pipeline_depth == 7
        assert ExtraCacheCyclePolicy().pipeline_depth == 7
        assert ExtraStagePolicy().pipeline_depth == 8
        assert LaecPolicy().pipeline_depth == 8

    def test_write_policies(self):
        assert NoEccPolicy().dl1_write_policy is WritePolicy.WRITE_BACK
        assert WriteThroughParityPolicy().dl1_write_policy is WritePolicy.WRITE_THROUGH
        assert LaecPolicy().is_write_back

    def test_memory_stage_cycles(self):
        assert ExtraCacheCyclePolicy().memory_stage_cycles(is_load=True, hit=True) == 2
        assert ExtraCacheCyclePolicy().memory_stage_cycles(is_load=True, hit=False) == 1
        assert ExtraCacheCyclePolicy().memory_stage_cycles(is_load=False, hit=True) == 1
        assert LaecPolicy().memory_stage_cycles(is_load=True, hit=True) == 1

    def test_data_ready_stage(self):
        assert NoEccPolicy().load_hit_data_ready_stage(False) is DataReadyStage.MEMORY
        assert ExtraStagePolicy().load_hit_data_ready_stage(False) is DataReadyStage.ECC
        assert LaecPolicy().load_hit_data_ready_stage(True) is DataReadyStage.MEMORY
        assert LaecPolicy().load_hit_data_ready_stage(False) is DataReadyStage.ECC

    def test_correction_capability_matches_write_policy_requirement(self):
        # Only correction-capable schemes may keep dirty data in the DL1.
        for policy in all_policies():
            if policy.is_write_back and policy.detects_errors:
                assert policy.corrects_errors

    def test_make_policy_aliases(self):
        assert make_policy("laec").kind is EccPolicyKind.LAEC
        assert make_policy("extra_stage").kind is EccPolicyKind.EXTRA_STAGE
        assert make_policy("baseline").kind is EccPolicyKind.NO_ECC
        assert make_policy(EccPolicyKind.EXTRA_CYCLE).kind is EccPolicyKind.EXTRA_CYCLE
        laec = LaecPolicy()
        assert make_policy(laec) is laec

    def test_make_policy_unknown(self):
        with pytest.raises(ValueError):
            make_policy("secded-everywhere")

    def test_figure8_policy_set(self):
        kinds = [p.kind for p in figure8_policies()]
        assert kinds == [
            EccPolicyKind.NO_ECC,
            EccPolicyKind.EXTRA_CYCLE,
            EccPolicyKind.EXTRA_STAGE,
            EccPolicyKind.LAEC,
        ]

    def test_describe_strings(self):
        assert "look-ahead" in LaecPolicy().describe()
        assert "7-stage" in NoEccPolicy().describe()


def _trace(source: str):
    return run_program(assemble(source)).instructions


class TestHazardPredicates:
    def test_consumer_distance_one_and_two(self):
        stream = _trace(
            """
            .data
            v: .word 1, 2
            .text
            main:
                set v, r1
                ld [r1], r2
                add r2, 1, r3
                ld [r1+4], r4
                nop
                add r4, 1, r5
                halt
            """
        )
        assert consumer_distance(stream, 1) == 1
        assert consumer_distance(stream, 3) == 2
        assert is_dependent_load(stream, 1)

    def test_no_consumer_within_window(self):
        stream = _trace(
            """
            .data
            v: .word 1
            .text
            main:
                set v, r1
                ld [r1], r2
                nop
                nop
                add r2, 1, r3
                halt
            """
        )
        assert consumer_distance(stream, 1) is None

    def test_overwrite_cancels_dependence(self):
        stream = _trace(
            """
            .data
            v: .word 1
            .text
            main:
                set v, r1
                ld [r1], r2
                set 9, r2
                add r2, 1, r3
                halt
            """
        )
        assert consumer_distance(stream, 1) is None

    def test_address_produced_by_predecessor(self):
        stream = _trace(
            """
            .data
            v: .word 1, 2
            .text
            main:
                set v, r4
                add r4, 4, r1
                ld [r1], r2
                halt
            """
        )
        load = stream[2]
        assert address_produced_by_predecessor(load, stream[1])
        assert not address_produced_by_predecessor(load, stream[0])
        assert not address_produced_by_predecessor(load, None)


class TestLookaheadUnit:
    def _load_and_predecessors(self):
        stream = _trace(
            """
            .data
            v: .word 1, 2, 3
            .text
            main:
                set v, r1
                add r1, 4, r1
                ld [r1], r2
                ld [r1+4], r3
                add r3, 1, r4
                halt
            """
        )
        return stream

    def test_data_hazard_blocks(self):
        stream = self._load_and_predecessors()
        unit = LookaheadUnit()
        decision = unit.evaluate(stream[2], stream[1])
        assert decision.blocked and decision.data_hazard

    def test_resource_hazard_blocks(self):
        stream = self._load_and_predecessors()
        unit = LookaheadUnit()
        decision = unit.evaluate(stream[3], stream[2], predecessor_lookahead=False)
        assert decision.blocked and decision.resource_hazard

    def test_anticipated_predecessor_load_is_no_resource_hazard(self):
        stream = self._load_and_predecessors()
        unit = LookaheadUnit()
        decision = unit.evaluate(stream[3], stream[2], predecessor_lookahead=True)
        assert decision.taken

    def test_late_operands_block(self):
        stream = self._load_and_predecessors()
        unit = LookaheadUnit()
        decision = unit.evaluate(
            stream[3], stream[2], predecessor_lookahead=True, address_operands_ready=False
        )
        assert decision.blocked and decision.operands_late

    def test_first_instruction_can_be_anticipated(self):
        stream = self._load_and_predecessors()
        unit = LookaheadUnit()
        assert unit.evaluate(stream[2], None).taken

    def test_statistics_accumulate(self):
        stream = self._load_and_predecessors()
        unit = LookaheadUnit()
        unit.evaluate(stream[2], stream[1])
        unit.evaluate(stream[3], stream[2], predecessor_lookahead=True)
        stats = unit.stats
        assert stats.loads_seen == 2
        assert stats.lookaheads_taken == 1
        assert stats.blocked_data_hazard == 1
        assert 0.0 < stats.take_rate < 1.0
        unit.reset()
        assert unit.stats.loads_seen == 0

    def test_non_load_rejected(self):
        stream = self._load_and_predecessors()
        unit = LookaheadUnit()
        with pytest.raises(ValueError):
            unit.evaluate(stream[0], None)
