"""Sharded result stores: per-worker shard files and their merge.

The sharded persistence path must be invisible in every observable:
summaries, per-point payload bytes, resume behaviour and crash
recovery all have to match the single-writer store exactly.  These
tests pin the merge primitives (idempotent, order-independent,
checksum-filtered, incremental), the engine integration (pooled
batched campaigns persist through shards, merge at flush boundaries
and clean up after themselves) and the chaos paths (killed workers and
a killed campaign process leave shards a later run folds in losslessly).
"""

from __future__ import annotations

import json
import os
import sqlite3
import subprocess
import sys

import pytest

from repro.campaign import CampaignConfig, parse_chaos, run_campaign
from repro.store import (
    ResultStore,
    list_shards,
    merge_shards,
    shard_directory,
    shard_path,
    shard_writer,
)
from repro.store.sharding import ShardMerger, close_shard_writers

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)

BASE = dict(
    kernels=("rspeed",),
    policies=("extra-cycle", "no-ecc"),
    scale=0.1,
    trials=6,
    batch=3,
    seed=2019,
    retry_backoff=0.0,
)


def config(**overrides) -> CampaignConfig:
    merged = dict(BASE)
    merged.update(overrides)
    return CampaignConfig(**merged)


def store_rows(path):
    """Every result row's full bytes, in key order."""
    connection = sqlite3.connect(str(path))
    try:
        return connection.execute(
            "SELECT key, kind, spec, payload, checksum FROM results "
            "ORDER BY key"
        ).fetchall()
    finally:
        connection.close()


@pytest.fixture(autouse=True)
def _fresh_writers():
    yield
    close_shard_writers()


# --------------------------------------------------------------------- #
# merge primitives                                                      #
# --------------------------------------------------------------------- #
class TestMergePrimitives:
    def test_shard_layout_is_per_pid_under_the_canonical_path(self, tmp_path):
        canonical = tmp_path / "c.sqlite"
        assert shard_directory(canonical).name == "c.sqlite.shards"
        assert shard_path(canonical, worker_id=42).name == "shard-42.sqlite"
        writer = shard_writer(canonical)
        assert writer.path.endswith(f"shard-{os.getpid()}.sqlite")
        assert shard_writer(canonical) is writer  # cached per process

    def test_merge_rows_is_idempotent_and_keeps_the_first_payload(self, tmp_path):
        with ResultStore(tmp_path / "c.sqlite") as store:
            rows = [("k", "injection", "spec", '{"a": 1}', "")]
            assert store.merge_rows(rows) == 1
            assert store.merge_rows(rows) == 0  # INSERT OR IGNORE
            assert store.merge_rows(
                [("k", "injection", "spec", '{"a": 2}', "")]
            ) == 0
            assert store.get("k") == {"a": 1}

    def test_merge_is_order_independent(self, tmp_path):
        for order, name in ((("a", "b"), "ab"), (("b", "a"), "ba")):
            with ResultStore(tmp_path / f"{name}.sqlite") as store:
                shards = []
                for tag in order:
                    with ResultStore(tmp_path / f"{name}-{tag}.db") as shard:
                        shard.put(f"k{tag}", {"v": tag}, kind="injection")
                        shard.put("common", {"v": "first"}, kind="injection")
                        shards.append(shard.path)
                merge_shards(store, shards)
        assert [row[:4] for row in store_rows(tmp_path / "ab.sqlite")] == [
            row[:4] for row in store_rows(tmp_path / "ba.sqlite")
        ]

    def test_merger_is_incremental_via_high_water_marks(self, tmp_path):
        canonical = ResultStore(tmp_path / "c.sqlite")
        writer = shard_writer(canonical.path)
        merger = ShardMerger(canonical)
        writer.put_many([("k1", {"n": 1}, ""), ("k2", {"n": 2}, "")], kind="x")
        assert merger.merge() == 2
        assert merger.merge() == 0  # nothing new appended
        writer.put("k3", {"n": 3}, kind="x")
        assert merger.merge() == 1  # only the appended row is scanned
        assert len(canonical) == 3
        canonical.close()

    def test_torn_shard_rows_are_skipped_not_merged(self, tmp_path):
        canonical = ResultStore(tmp_path / "c.sqlite")
        writer = shard_writer(canonical.path)
        writer.put("good", {"ok": True}, kind="x")
        writer.put("torn", {"ok": False}, kind="x")
        connection = sqlite3.connect(writer.path)
        connection.execute(
            "UPDATE results SET payload = '{\"ok\": \"tampered\"}' "
            "WHERE key = 'torn'"
        )
        connection.commit()
        connection.close()
        merger = ShardMerger(canonical)
        assert merger.merge() == 1
        assert merger.corrupt_skipped == 1
        assert "torn" not in canonical
        assert canonical.get("good") == {"ok": True}
        canonical.close()

    def test_discard_removes_fully_merged_shards(self, tmp_path):
        canonical = ResultStore(tmp_path / "c.sqlite")
        writer = shard_writer(canonical.path)
        writer.put("k", {"v": 1}, kind="x")
        close_shard_writers()
        merger = ShardMerger(canonical)
        merger.merge()
        assert merger.discard_shards() == 1
        assert list_shards(canonical.path) == []
        assert not shard_directory(canonical.path).exists()
        canonical.close()

    def test_memory_store_never_shards(self):
        with ResultStore(":memory:") as store:
            merger = ShardMerger(store)
            assert not merger.active
            assert merger.merge() == 0
            assert merger.discard_shards() == 0


# --------------------------------------------------------------------- #
# engine integration: byte-identity of the sharded path                 #
# --------------------------------------------------------------------- #
class TestShardedCampaignEquivalence:
    def test_pooled_sharded_store_matches_serial_byte_for_byte(self, tmp_path):
        """The tentpole differential: same summary, same store bytes —
        every per-point payload row — with and without sharding."""
        serial_path = tmp_path / "serial.sqlite"
        pooled_path = tmp_path / "pooled.sqlite"
        with ResultStore(serial_path) as store:
            serial = run_campaign(config(), store=store)
        with ResultStore(pooled_path) as store:
            pooled = run_campaign(config(workers=2), store=store)
        assert pooled.render() == serial.render()
        assert store_rows(pooled_path) == store_rows(serial_path)
        # The sharded run cleaned up after itself: no shard directory,
        # no WAL side-files (close checkpoints them away).
        assert not shard_directory(pooled_path).exists()
        assert not (tmp_path / "pooled.sqlite-wal").exists()
        assert not (tmp_path / "pooled.sqlite-shm").exists()

    def test_sharded_store_resumes_warm(self, tmp_path):
        path = tmp_path / "warm.sqlite"
        with ResultStore(path) as store:
            cold = run_campaign(config(workers=2), store=store)
        with ResultStore(path) as store:
            warm = run_campaign(config(workers=2), store=store, resume=True)
        assert warm.simulated == 0
        assert warm.store_hits == cold.points
        assert warm.render() == cold.render()

    def test_orphan_shards_are_recovered_before_resume(self, tmp_path):
        """Rows stranded in a shard by a killed run are folded in at
        campaign start, so resume sees them as ordinary store hits."""
        donor_path = tmp_path / "donor.sqlite"
        with ResultStore(donor_path) as store:
            full = run_campaign(config(), store=store)
        donor_rows = store_rows(donor_path)
        assert len(donor_rows) == full.points
        # A fresh canonical store with every row stranded in one shard.
        victim_path = tmp_path / "victim.sqlite"
        ResultStore(victim_path).close()
        orphan = shard_path(victim_path, worker_id=99999)
        orphan.parent.mkdir(parents=True)
        with ResultStore(orphan) as shard:
            shard.merge_rows(donor_rows)
        with ResultStore(victim_path) as store:
            resumed = run_campaign(config(), store=store, resume=True)
        assert resumed.simulated == 0
        assert resumed.store_hits == full.points
        assert resumed.render() == full.render()
        assert store_rows(victim_path) == donor_rows
        assert not shard_directory(victim_path).exists()

    def test_memory_store_campaign_takes_the_single_writer_path(self):
        with ResultStore(":memory:") as store:
            result = run_campaign(config(workers=2), store=store)
            assert len(store) == result.points


# --------------------------------------------------------------------- #
# chaos: worker death and campaign death around the merge               #
# --------------------------------------------------------------------- #
class TestShardedChaosResume:
    def test_killed_worker_mid_campaign_still_converges(self, tmp_path):
        clean = run_campaign(config())
        path = tmp_path / "chaos.sqlite"
        with ResultStore(path) as store:
            crashed = run_campaign(
                config(workers=2),
                store=store,
                chaos=parse_chaos("kill-worker@2"),
            )
        assert crashed.render() == clean.render()
        assert crashed.stats.worker_restarts >= 1
        assert len(store_rows(path)) == clean.points
        assert not shard_directory(path).exists()

    def test_kill_worker_then_resume_is_byte_identical(self, tmp_path):
        first_path = tmp_path / "first.sqlite"
        with ResultStore(first_path) as store:
            run_campaign(
                config(workers=2),
                store=store,
                chaos=parse_chaos("kill-worker@1"),
            )
        with ResultStore(first_path) as store:
            resumed = run_campaign(config(workers=2), store=store, resume=True)
        assert resumed.simulated == 0
        reference_path = tmp_path / "reference.sqlite"
        with ResultStore(reference_path) as store:
            reference = run_campaign(config(), store=store)
        assert resumed.render() == reference.render()
        assert store_rows(first_path) == store_rows(reference_path)


# --------------------------------------------------------------------- #
# CLI                                                                   #
# --------------------------------------------------------------------- #
class TestMergeCli:
    def _run(self, *args):
        environment = dict(os.environ)
        environment["PYTHONPATH"] = REPO_SRC + os.pathsep + environment.get(
            "PYTHONPATH", ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro", "store", *map(str, args)],
            capture_output=True,
            text=True,
            env=environment,
            timeout=120,
        )

    def test_store_merge_subcommand_folds_and_is_idempotent(self, tmp_path):
        canonical = tmp_path / "c.sqlite"
        shards = []
        for index in range(2):
            with ResultStore(tmp_path / f"shard-{index}.db") as shard:
                shard.put(f"k{index}", {"n": index}, kind="injection")
                shard.put("shared", {"n": "same"}, kind="injection")
                shards.append(shard.path)
        first = self._run(canonical, "--merge", *shards)
        assert first.returncode == 0, first.stderr
        assert "merged 3 row(s) from 2 shard(s)" in first.stdout
        again = self._run(canonical, "--merge", *shards)
        assert again.returncode == 0
        assert "merged 0 row(s) from 2 shard(s)" in again.stdout
        with ResultStore(canonical) as store:
            assert len(store) == 3
            assert json.loads(json.dumps(store.get("shared"))) == {"n": "same"}

    def test_store_merge_missing_shard_is_a_clean_error(self, tmp_path):
        result = self._run(tmp_path / "c.sqlite", "--merge", tmp_path / "no.db")
        assert result.returncode == 2
        assert "no shard at" in result.stderr
