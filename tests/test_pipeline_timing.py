"""Tests for the cycle-accurate timing pipeline.

The load-use / ECC-stall behaviour encoded here is the paper's Figures
2-5 and 7: the number of Execute cycles of a dependent consumer under
each policy is the observable that distinguishes the schemes.
"""

import pytest

from repro.core.policies import EccPolicyKind
from repro.functional import run_program
from repro.isa.assembler import assemble
from repro.pipeline.config import CoreConfig, PipelineConfig
from repro.pipeline.stages import Stage, stages_for_policy
from repro.simulation import simulate_policies, simulate_program


def _simulate(source: str, policy, **kwargs):
    program = assemble(source, name="timing-test")
    return simulate_program(program, policy=policy, **kwargs)


#: Warm loop harness: the second iteration of the loop body is in steady
#: state (instruction and data lines warm), index of its first
#: instruction is 5 + body + 2.
def _loop(body: str, *, setup: str = "") -> str:
    return f"""
.data
values:
    .word 10, 20, 30, 40, 50, 60, 70, 80
.text
main:
    set values, r1
    set 8, r2
    set 3, r4
    {setup if setup else 'set 0, r6'}
    set 2, r20
loop:
{body}
    subcc r20, 1, r20
    bg loop
    halt
"""


def _consumer_execute_cycles(source: str, policy, consumer_offset: int, body_length: int):
    program = assemble(source)
    window = 5 + body_length + 2 + body_length
    result = simulate_program(program, policy=policy, chronogram_window=window)
    index = 5 + body_length + 2 + consumer_offset
    entry = next(e for e in result.chronogram.entries if e.index == index)
    return entry.cycles_in(Stage.EXECUTE)


DEPENDENT_BODY = """    ld [r1+r2], r3
    add r3, r4, r5"""

INDEPENDENT_BODY = """    ld [r1+r2], r3
    add r4, r4, r5"""

DISTANCE2_BODY = """    ld [r1+r2], r3
    add r4, r4, r6
    add r3, r4, r5"""

HAZARD_BODY = """    add r1, r6, r7
    ld [r7+r2], r3
    add r3, r4, r5"""


class TestLoadUseTiming:
    """Consumer Execute-stage occupancy per policy (paper Figures 2-5, 7)."""

    def test_no_ecc_distance1_one_stall(self):
        assert _consumer_execute_cycles(
            _loop(DEPENDENT_BODY), EccPolicyKind.NO_ECC, 1, 2
        ) == 2

    def test_extra_cycle_distance1_two_stalls(self):
        assert _consumer_execute_cycles(
            _loop(DEPENDENT_BODY), EccPolicyKind.EXTRA_CYCLE, 1, 2
        ) == 3

    def test_extra_stage_distance1_two_stalls(self):
        assert _consumer_execute_cycles(
            _loop(DEPENDENT_BODY), EccPolicyKind.EXTRA_STAGE, 1, 2
        ) == 3

    def test_laec_lookahead_distance1_one_stall(self):
        assert _consumer_execute_cycles(
            _loop(DEPENDENT_BODY), EccPolicyKind.LAEC, 1, 2
        ) == 2

    def test_extra_stage_independent_consumer_no_stall(self):
        assert _consumer_execute_cycles(
            _loop(INDEPENDENT_BODY), EccPolicyKind.EXTRA_STAGE, 1, 2
        ) == 1

    def test_extra_stage_distance2_one_stall(self):
        assert _consumer_execute_cycles(
            _loop(DISTANCE2_BODY), EccPolicyKind.EXTRA_STAGE, 2, 3
        ) == 2

    def test_no_ecc_distance2_no_stall(self):
        assert _consumer_execute_cycles(
            _loop(DISTANCE2_BODY), EccPolicyKind.NO_ECC, 2, 3
        ) == 1

    def test_laec_distance2_no_stall(self):
        assert _consumer_execute_cycles(
            _loop(DISTANCE2_BODY), EccPolicyKind.LAEC, 2, 3
        ) == 1

    def test_laec_data_hazard_falls_back_to_extra_stage(self):
        # The address register r7 is produced immediately before the load.
        laec = _consumer_execute_cycles(
            _loop(HAZARD_BODY, setup="set 0, r6"), EccPolicyKind.LAEC, 2, 3
        )
        extra_stage = _consumer_execute_cycles(
            _loop(HAZARD_BODY, setup="set 0, r6"), EccPolicyKind.EXTRA_STAGE, 2, 3
        )
        assert laec == extra_stage == 3


class TestOrderingAndTotals:
    def test_cycles_positive_and_cpi_consistent(self, tiny_program, tiny_trace):
        result = simulate_program(tiny_program, policy="no-ecc", trace=tiny_trace)
        assert result.cycles > result.instructions
        assert result.cpi == pytest.approx(result.cycles / result.instructions)

    def test_policy_ordering_no_ecc_fastest(self, tiny_program):
        results = simulate_policies(
            tiny_program, ["no-ecc", "extra-cycle", "extra-stage", "laec"]
        )
        assert results["no-ecc"].cycles <= results["laec"].cycles
        assert results["laec"].cycles <= results["extra-stage"].cycles
        # The 8th pipeline stage adds one drain cycle, so allow a tiny
        # constant offset when comparing Extra Stage against Extra Cycle.
        assert results["extra-stage"].cycles <= results["extra-cycle"].cycles + 2

    def test_identical_trace_reused(self, tiny_program, tiny_trace):
        a = simulate_program(tiny_program, policy="laec", trace=tiny_trace)
        b = simulate_program(tiny_program, policy="laec", trace=tiny_trace)
        assert a.cycles == b.cycles  # deterministic

    def test_stats_count_classes(self, tiny_program, tiny_trace):
        result = simulate_program(tiny_program, policy="no-ecc", trace=tiny_trace)
        stats = result.stats
        assert stats.loads == 8 and stats.stores == 8
        assert stats.instructions == len(tiny_trace)
        assert stats.load_hits + stats.load_misses == stats.loads
        assert stats.taken_branches == 7

    def test_stall_breakdown_nonnegative(self, tiny_program, tiny_trace):
        result = simulate_program(tiny_program, policy="extra-stage", trace=tiny_trace)
        breakdown = result.stats.stalls.as_dict()
        assert all(value >= 0 for value in breakdown.values())
        assert result.stats.stalls.total() == sum(breakdown.values())


class TestStructuralEffects:
    def test_extra_cycle_structural_penalty_without_dependence(self):
        """Even with no dependent consumer, Extra Cycle slows down code with
        many load hits because the Memory stage is busy two cycles."""
        source = _loop(
            """    ld [r1], r3
    add r4, r4, r5
    add r4, r4, r6
    ld [r1+4], r7
    add r4, r4, r8
    add r4, r4, r9"""
        )
        program = assemble(source)
        base = simulate_program(program, policy="no-ecc").cycles
        extra_cycle = simulate_program(program, policy="extra-cycle").cycles
        extra_stage = simulate_program(program, policy="extra-stage").cycles
        assert extra_cycle > base
        # The pipelined ECC stage costs nothing beyond the one extra drain
        # cycle of the deeper pipeline.
        assert extra_stage - base <= 1

    def test_write_buffer_backpressure(self):
        # A burst of stores larger than the write buffer stalls the pipeline.
        burst = "\n".join(f"    st r4, [r1+{4 * i}]" for i in range(8))
        source = _loop(burst)
        small = simulate_program(
            assemble(source),
            policy="no-ecc",
            config=CoreConfig(pipeline=PipelineConfig(write_buffer_entries=1)),
        )
        large = simulate_program(
            assemble(source),
            policy="no-ecc",
            config=CoreConfig(pipeline=PipelineConfig(write_buffer_entries=8)),
        )
        assert small.cycles >= large.cycles

    def test_mul_latency_configurable(self, tiny_program):
        slow = simulate_program(
            tiny_program,
            policy="no-ecc",
            config=CoreConfig(pipeline=PipelineConfig(mul_latency=8)),
        )
        fast = simulate_program(
            tiny_program,
            policy="no-ecc",
            config=CoreConfig(pipeline=PipelineConfig(mul_latency=1)),
        )
        # The tiny loop has no multiplications, so latency must not matter.
        assert slow.cycles == fast.cycles

    def test_stage_lists(self):
        from repro.core.policies import ExtraStagePolicy, NoEccPolicy

        assert Stage.ECC not in stages_for_policy(NoEccPolicy())
        assert Stage.ECC in stages_for_policy(ExtraStagePolicy())

    def test_invalid_pipeline_config_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(taken_branch_penalty=-1)
        with pytest.raises(ValueError):
            PipelineConfig(mul_latency=0)
        with pytest.raises(ValueError):
            PipelineConfig(write_buffer_entries=0)
