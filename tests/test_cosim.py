"""Tests for the cycle-level multicore co-simulation.

The load-bearing claims:

* the stepping engine is cycle-identical to the fast-path engine when no
  arbiter is attached (same schedule, same stall accounting);
* a single-task co-simulation equals the isolation run exactly;
* with N tasks sharing the bus, every task's observed cycles fall inside
  ``[isolation, worst-analytic]`` — the bound construction the paper's
  WCET methodology relies on — on **all 16 kernels**;
* mixed per-core policies and heterogeneous programs work;
* the truly shared L2 adds storage interference on top of the bus waits.
"""

import pytest

from repro.core.policies import EccPolicyKind
from repro.experiments.runner import FIGURE8_POLICIES, cached_kernel_trace
from repro.memory.bus import RoundRobinArbiter
from repro.pipeline.timing import TimingPipeline
from repro.simulation import build_hierarchy, simulate_spec
from repro.scenarios import SimulationSpec
from repro.soc import NgmpConfig, NgmpSoC, TaskPlacement
from repro.workloads import KERNEL_NAMES, build_kernel

SCALE = 0.05


def _drive(generator):
    """Exhaust a step_instructions generator, returning its result."""
    while True:
        try:
            next(generator)
        except StopIteration as stop:
            return stop.value


class TestSteppingEngineEquivalence:
    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_step_matches_run_on_every_kernel_and_policy(self, kernel):
        program, trace = cached_kernel_trace(kernel, SCALE)
        for policy in FIGURE8_POLICIES:
            spec = SimulationSpec(kernel=kernel, scale=SCALE, policy=policy)
            core_config = spec.core_config()
            resolved = spec.resolved_policy()

            fast = TimingPipeline(
                resolved, build_hierarchy(core_config), core_config.pipeline
            ).run(trace)
            stepped = _drive(
                TimingPipeline(
                    resolved, build_hierarchy(core_config), core_config.pipeline
                ).step_instructions(trace)
            )
            assert stepped.cycles == fast.cycles, (kernel, policy)
            assert stepped.stats.as_dict() == fast.stats.as_dict(), (kernel, policy)

    def test_step_matches_run_under_wt_parity(self):
        kernel = "puwmod"
        program, trace = cached_kernel_trace(kernel, SCALE)
        spec = SimulationSpec(
            kernel=kernel, scale=SCALE, policy=EccPolicyKind.WT_PARITY
        )
        core_config = spec.core_config()
        resolved = spec.resolved_policy()
        fast = TimingPipeline(
            resolved, build_hierarchy(core_config), core_config.pipeline
        ).run(trace)
        stepped = _drive(
            TimingPipeline(
                resolved, build_hierarchy(core_config), core_config.pipeline
            ).step_instructions(trace)
        )
        assert stepped.cycles == fast.cycles
        assert stepped.stats.as_dict() == fast.stats.as_dict()


class TestArbiter:
    def test_wait_is_clamped_to_one_round(self):
        arbiter = RoundRobinArbiter(masters=4, slot_cycles=6)
        assert arbiter.max_wait == 18
        # saturate the bus far into the future
        arbiter.acquire(0, 0, 100)
        wait = arbiter.acquire(1, 0, 6)
        assert wait == 18
        assert arbiter.stats.capped_waits == 1

    def test_idle_bus_grants_immediately(self):
        arbiter = RoundRobinArbiter(masters=4, slot_cycles=6)
        assert arbiter.acquire(2, 10, 6) == 0
        assert arbiter.busy_until == 16

    def test_single_master_never_waits(self):
        arbiter = RoundRobinArbiter(masters=1, slot_cycles=6)
        arbiter.acquire(0, 0, 50)
        assert arbiter.acquire(0, 0, 6) == 0

    def test_reset(self):
        arbiter = RoundRobinArbiter(masters=2)
        arbiter.acquire(0, 0, 6)
        arbiter.reset()
        assert arbiter.busy_until == 0
        assert arbiter.stats.grants == 0

    def test_simultaneous_requests_are_granted_in_call_order(self):
        # Pins the grant-order semantics: first-come-first-served in
        # acquire() call order (the lockstep scheduler steps cores in a
        # fixed order, so same-cycle requests arrive in core order),
        # with each wait clamped to one round of the other masters.
        # Master identity does not reorder grants.
        arbiter = RoundRobinArbiter(masters=4, slot_cycles=6)
        waits = [arbiter.acquire(master, 0, 6) for master in (3, 1, 2, 0)]
        assert waits == [0, 6, 12, 18]
        assert arbiter.stats.capped_waits == 0
        # A fifth same-cycle request would exceed one round: clamped.
        assert arbiter.acquire(3, 0, 6) == arbiter.max_wait
        assert arbiter.stats.capped_waits == 1

    def test_arbiter_keeps_no_grant_history_state(self):
        # The FCFS-with-clamp policy needs no last-granted-master state;
        # the attribute was write-only and has been removed.
        arbiter = RoundRobinArbiter(masters=2)
        arbiter.acquire(1, 0, 6)
        assert not hasattr(arbiter, "last_master")


class TestCoSimulation:
    def test_single_task_equals_isolation(self):
        soc = NgmpSoC()
        program = build_kernel("rspeed", scale=SCALE)
        placement = TaskPlacement(program=program, policy="laec")
        isolation = soc.run_task(placement).cycles
        cosim = soc.co_simulate([placement])
        assert cosim.cycles(0) == isolation
        assert cosim.makespan == isolation

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_cosim_bounded_by_analytic_scenarios(self, kernel):
        """isolation <= co-simulated <= worst analytic, on every kernel."""
        soc = NgmpSoC()
        program, trace = cached_kernel_trace(kernel, SCALE)
        placements = [
            TaskPlacement(program=program, core_index=core, policy="laec")
            for core in range(4)
        ]
        bounds = soc.wcet_estimate(
            TaskPlacement(program=program, policy="laec"), contenders=3, trace=trace
        )
        cosim = soc.co_simulate(placements, traces={core: trace for core in range(4)})
        for outcome in cosim.outcomes:
            assert bounds["isolation"] <= outcome.cycles <= bounds["worst"], (
                kernel,
                outcome.core_index,
            )
        # with four cores loading one bus, somebody must actually wait
        assert cosim.arbiter_stats.wait_cycles > 0

    def test_mixed_policies_and_heterogeneous_programs(self):
        soc = NgmpSoC()
        mix = [
            ("rspeed", EccPolicyKind.LAEC),
            ("puwmod", EccPolicyKind.NO_ECC),
            ("tblook", EccPolicyKind.EXTRA_STAGE),
            ("canrdr", EccPolicyKind.WT_PARITY),
        ]
        placements = [
            TaskPlacement(
                program=build_kernel(name, scale=SCALE), core_index=i, policy=policy
            )
            for i, (name, policy) in enumerate(mix)
        ]
        cosim = soc.co_simulate(placements)
        assert [o.program_name for o in cosim.outcomes] == [m[0] for m in mix]
        for placement, outcome in zip(placements, cosim.outcomes):
            bounds = soc.wcet_estimate(
                TaskPlacement(program=placement.program, policy=placement.policy),
                contenders=3,
            )
            assert bounds["isolation"] <= outcome.cycles <= bounds["worst"], (
                outcome.program_name
            )

    def test_shared_l2_attributes_traffic_and_slows_no_core_below_isolation(self):
        soc = NgmpSoC()
        program = build_kernel("cacheb", scale=SCALE)
        placements = [
            TaskPlacement(program=program, core_index=core, policy="no-ecc")
            for core in range(4)
        ]
        isolation = soc.run_task(
            TaskPlacement(program=program, policy="no-ecc")
        ).cycles
        shared = soc.co_simulate(placements, shared_l2=True)
        assert shared.shared_l2
        assert set(shared.l2_accesses_by_core) == {0, 1, 2, 3}
        for outcome in shared.outcomes:
            assert outcome.cycles >= isolation

    def test_shared_l2_adds_storage_misses_over_isolation(self):
        """Sharing L2 content can only add misses to each task's stream.

        With LRU, interleaving other cores' (disjoint) lines into a set
        never increases a task's hits — the inclusion property — so each
        core's shared-mode miss count must be at least its isolation
        miss count.  (Total *cycles* are not so ordered: a contender's
        miss can absorb a dirty-writeback charge the task would
        otherwise pay itself, which is why the sound analytic bound is
        constructed for the partitioned configuration.)
        """
        soc = NgmpSoC()
        program = build_kernel("cacheb", scale=SCALE)
        isolation = soc.run_task(TaskPlacement(program=program, policy="no-ecc"))
        isolation_l2_misses = isolation.hierarchy.l2.stats.misses
        placements = [
            TaskPlacement(program=program, core_index=core, policy="no-ecc")
            for core in range(4)
        ]
        shared = soc.co_simulate(placements, shared_l2=True)
        for core in range(4):
            assert shared.l2_misses_by_core[core] >= isolation_l2_misses

    def test_validation_errors(self):
        soc = NgmpSoC()
        program = build_kernel("rspeed", scale=SCALE)
        with pytest.raises(ValueError):
            soc.co_simulate([])
        with pytest.raises(ValueError):
            soc.co_simulate(
                [TaskPlacement(program=program, core_index=0) for _ in range(2)]
            )
        with pytest.raises(ValueError):
            soc.co_simulate([TaskPlacement(program=program, core_index=9)])
        with pytest.raises(ValueError):
            soc.co_simulate(
                [TaskPlacement(program=program, core_index=i) for i in range(5)]
            )

    def test_nondefault_slot_cycles_keeps_bounds(self):
        """bus_slot_cycles is one source of truth for both models.

        With a longer round-robin slot the analytic contention model and
        the co-simulation arbiter must both use it, or the worst-case
        envelope silently breaks.
        """
        from repro.memory.config import MemoryHierarchyConfig

        hierarchy = MemoryHierarchyConfig(bus_slot_cycles=12)
        soc = NgmpSoC(NgmpConfig(hierarchy=hierarchy))
        assert soc.config.bus_slot_cycles == 12
        program = build_kernel("rspeed", scale=SCALE)
        placements = [
            TaskPlacement(program=program, core_index=core, policy="laec")
            for core in range(4)
        ]
        bounds = soc.wcet_estimate(
            TaskPlacement(program=program, policy="laec"), contenders=3
        )
        cosim = soc.co_simulate(placements)
        for outcome in cosim.outcomes:
            assert bounds["isolation"] <= outcome.cycles <= bounds["worst"]
        # the longer slot makes the analytic round strictly costlier than
        # the default-slot bound
        default_bounds = NgmpSoC().wcet_estimate(
            TaskPlacement(program=program, policy="laec"), contenders=3
        )
        assert bounds["worst"] > default_bounds["worst"]

    def test_cosim_chronogram_window_records_entries(self):
        """step_instructions honours the chronogram window like run()."""
        from repro.pipeline.config import PipelineConfig

        soc = NgmpSoC(NgmpConfig(pipeline=PipelineConfig(chronogram_window=12)))
        program = build_kernel("rspeed", scale=SCALE)
        cosim = soc.co_simulate([TaskPlacement(program=program, policy="laec")])
        entries = cosim.outcomes[0].timing.chronogram.entries
        assert len(entries) == 12
        single = soc.run_task(TaskPlacement(program=program, policy="laec"))
        assert single.chronogram.entries[0].occupancy == entries[0].occupancy

    def test_two_core_soc(self):
        soc = NgmpSoC(NgmpConfig(cores=2))
        program = build_kernel("rspeed", scale=SCALE)
        placements = [
            TaskPlacement(program=program, core_index=core, policy="laec")
            for core in range(2)
        ]
        bounds = soc.wcet_estimate(
            TaskPlacement(program=program, policy="laec"), contenders=1
        )
        cosim = soc.co_simulate(placements)
        for outcome in cosim.outcomes:
            assert bounds["isolation"] <= outcome.cycles <= bounds["worst"]
