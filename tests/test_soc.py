"""Tests for the NGMP SoC model and interference scenarios."""

import pytest

from repro.core.policies import EccPolicyKind
from repro.soc import InterferenceScenario, NgmpConfig, NgmpSoC, TaskPlacement, contention_modes
from repro.workloads import build_kernel


@pytest.fixture(scope="module")
def small_program():
    return build_kernel("rspeed", scale=0.1)


class TestScenarios:
    def test_default_modes(self):
        scenarios = contention_modes(contenders=3)
        assert [s.mode for s in scenarios] == ["none", "average", "worst"]
        assert all("core" in s.describe() or "isolation" in s.describe() for s in scenarios)


class TestSoC:
    def test_describe(self):
        soc = NgmpSoC()
        text = soc.describe()
        assert "4 in-order cores" in text and "L2" in text

    def test_invalid_core_index(self, small_program):
        soc = NgmpSoC()
        with pytest.raises(ValueError):
            soc.run_task(TaskPlacement(program=small_program, core_index=7))

    def test_contention_slows_down_execution(self, small_program):
        soc = NgmpSoC()
        placement = TaskPlacement(program=small_program, policy=EccPolicyKind.LAEC)
        isolated = soc.run_task(placement)
        contended = soc.run_task(
            placement, scenario=InterferenceScenario("worst", 3, "worst")
        )
        assert contended.cycles > isolated.cycles

    def test_wcet_estimate_ordering(self, small_program):
        soc = NgmpSoC(NgmpConfig())
        placement = TaskPlacement(program=small_program, policy=EccPolicyKind.NO_ECC)
        bounds = soc.wcet_estimate(placement)
        assert bounds["isolation"] <= bounds["average"] <= bounds["worst"]

    def test_write_policy_comparison_shape(self, small_program):
        soc = NgmpSoC()
        comparison = soc.compare_write_policies(small_program, contenders=3)
        assert set(comparison) == {"wt-parity", "wb-laec", "wb-no-ecc"}
        # Under worst-case contention the WT configuration suffers the most
        # relative slowdown (every store is a bus transaction).
        def inflation(label):
            return comparison[label]["worst"] / comparison[label]["isolation"]

        assert inflation("wt-parity") > inflation("wb-laec")

    def test_contenders_clamped_to_core_count(self, small_program):
        soc = NgmpSoC(NgmpConfig(cores=2))
        placement = TaskPlacement(program=small_program)
        result = soc.run_task(
            placement, scenario=InterferenceScenario("worst", 10, "worst")
        )
        assert result.cycles > 0
