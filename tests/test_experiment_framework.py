"""Tests for the Experiment framework, registry, CLI and trace-cache cap."""

import pathlib

import pytest

from repro import __main__ as cli
from repro.experiments import (
    ExperimentContext,
    all_experiments,
    clear_kernel_trace_cache,
    experiment_names,
    get_experiment,
)
from repro.experiments import runner as runner_module
from repro.experiments.base import Experiment, register
from repro.experiments.runner import (
    KERNEL_TRACE_CACHE_MAX_ENTRIES,
    cached_kernel_trace,
    kernel_trace_cache_size,
)

EXPECTED_EXPERIMENTS = {
    "table1",
    "table2",
    "figure8",
    "chronograms",
    "energy_report",
    "wt_vs_wb",
    "ablation_hazards",
    "ablation_sensitivity",
    "fault_campaign",
    "campaign_summary",
    "sweep_summary",
}

EXPECTED_ARTIFACTS = {
    "table1",
    "table2",
    "figure8",
    "figures_2_to_7_chronograms",
    "energy_report",
    "wt_vs_wb_wcet",
    "ablation_hazards",
    "ablation_sensitivity",
    "fault_campaign",
    "campaign_summary",
    "sweep_summary",
}


class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        assert set(experiment_names()) == EXPECTED_EXPERIMENTS
        assert {e.artifact for e in all_experiments()} == EXPECTED_ARTIFACTS

    def test_every_experiment_is_described(self):
        for experiment in all_experiments():
            assert experiment.description

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            get_experiment("no-such-experiment")

    def test_register_rejects_anonymous_and_duplicate(self):
        with pytest.raises(ValueError):

            @register
            class Anonymous(Experiment):
                def build(self, context):
                    return None

                def render(self, result):
                    return ""

        with pytest.raises(ValueError):

            @register
            class Duplicate(Experiment):
                name = "table1"
                description = "duplicate"

                def build(self, context):
                    return None

                def render(self, result):
                    return ""


class TestExecution:
    def test_table1_executes_and_writes_artifact(self, tmp_path):
        output = get_experiment("table1").execute()
        assert output.artifact == "table1"
        assert "Table I" in output.text
        path = output.write(tmp_path)
        assert path == tmp_path / "table1.txt"
        assert path.read_text(encoding="utf-8") == output.text + "\n"

    def test_context_shares_one_run_set(self):
        context = ExperimentContext(scale=0.1)
        first = context.run_set()
        second = context.run_set()
        assert first is second

    def test_run_set_consumers_share_the_context_matrix(self):
        context = ExperimentContext(scale=0.12)
        # monkeypatch-free check: both experiments must reuse the same
        # KernelRunSet object through the context
        run_set = context.run_set()
        table2_result = get_experiment("table2").build(context)
        assert context.run_set() is run_set
        assert len(table2_result) == len(run_set.benchmarks())


class TestCli:
    def test_list(self, capsys):
        assert cli.main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_EXPERIMENTS:
            assert name in out

    def test_list_scenarios(self, capsys):
        assert cli.main(["--list-scenarios"]) == 0
        assert "laec-worst" in capsys.readouterr().out

    def test_no_action_is_an_error(self, capsys):
        assert cli.main([]) == 2

    def test_unknown_experiment_is_an_error(self, capsys):
        assert cli.main(["--run", "nope"]) == 2

    def test_run_writes_artifact(self, tmp_path, capsys):
        assert cli.main(["--run", "table1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "table1.txt").exists()
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_quiet_suppresses_stdout_table(self, tmp_path, capsys):
        assert cli.main(["--run", "table1", "--out", str(tmp_path), "--quiet"]) == 0
        assert "Table I" not in capsys.readouterr().out


class TestKernelTraceCacheCap:
    def test_cache_is_bounded_and_evicts_oldest(self):
        clear_kernel_trace_cache()
        try:
            original = runner_module.KERNEL_TRACE_CACHE_MAX_ENTRIES
            runner_module.KERNEL_TRACE_CACHE_MAX_ENTRIES = 3
            for scale in (0.01, 0.02, 0.03, 0.04):
                cached_kernel_trace("rspeed", scale)
            assert kernel_trace_cache_size() == 3
            # oldest entry (0.01) was evicted, newest still present
            assert ("rspeed", 0.01) not in runner_module._KERNEL_CACHE
            assert ("rspeed", 0.04) in runner_module._KERNEL_CACHE
        finally:
            runner_module.KERNEL_TRACE_CACHE_MAX_ENTRIES = original
            clear_kernel_trace_cache()

    def test_clear_is_public_api(self):
        import repro.experiments as experiments

        assert "clear_kernel_trace_cache" in experiments.__all__
        cached_kernel_trace("rspeed", 0.01)
        clear_kernel_trace_cache()
        assert kernel_trace_cache_size() == 0

    def test_default_cap_fits_full_campaign(self):
        assert KERNEL_TRACE_CACHE_MAX_ENTRIES >= 16
