#!/usr/bin/env python
"""Checkpoint / resume an architectural fault-injection campaign.

Runs half of a campaign against a persistent result store, pretends the
process died, then re-runs the full campaign with ``resume``: only the
missing points are simulated, the finished ones are content-hash lookups,
and the final summary is byte-identical to an uninterrupted run.

Run from the repository root::

    PYTHONPATH=src python examples/fault_campaign_resume.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.campaign import CampaignConfig, run_campaign
from repro.store import ResultStore

KERNELS = ("canrdr", "rspeed")
POLICIES = ("no-ecc", "extra-cycle", "laec")
SCALE = 0.1
SEED = 2019


def config(trials: int) -> CampaignConfig:
    return CampaignConfig(
        kernels=KERNELS,
        policies=POLICIES,
        scale=SCALE,
        trials=trials,
        batch=6,
        seed=SEED,
    )


def main() -> None:
    store_path = Path(tempfile.mkdtemp(prefix="repro-campaign-")) / "campaign.sqlite"
    print(f"store: {store_path}\n")

    # --- phase 1: the campaign is "killed" after half its budget ------- #
    with ResultStore(store_path) as store:
        partial = run_campaign(config(trials=12), store=store, resume=True)
        print(
            f"phase 1 (interrupted): simulated {partial.simulated} points, "
            f"{len(store)} checkpointed"
        )

    # --- phase 2: resume with the full budget -------------------------- #
    with ResultStore(store_path) as store:
        resumed = run_campaign(config(trials=24), store=store, resume=True)
        print(
            f"phase 2 (resumed):     simulated {resumed.simulated} new points, "
            f"reused {resumed.store_hits} from the store\n"
        )

    # --- the summary is exactly what one uninterrupted run produces ---- #
    fresh = run_campaign(config(trials=24))
    assert resumed.render() == fresh.render(), "resume changed the results!"
    print(resumed.render())
    print("\nresumed summary == fresh summary: OK")


if __name__ == "__main__":
    main()
