"""Example: why write-back DL1 caches (and hence LAEC) matter for WCET.

Run with::

    python examples/wcet_contention.py

The script runs a store-intensive control kernel on the 4-core NGMP-like
SoC model under three interference scenarios (isolation, average and
worst-case round-robin bus contention) for three DL1 configurations:

* write-through + parity (the classic LEON configuration),
* write-back + LAEC (the paper's proposal),
* write-back without any protection (ideal lower bound).

It reproduces the motivation of the paper's introduction: once the other
cores load the shared bus, the write-through configuration's WCET
estimate inflates dramatically because every store becomes a bus
transaction, while the LAEC-protected write-back DL1 stays close to the
unprotected design.
"""

from __future__ import annotations

from repro.analysis.reporting import Table
from repro.analysis.wcet import WcetAnalysis
from repro.workloads import build_kernel

KERNEL = "iirflt"


def main() -> None:
    program = build_kernel(KERNEL, scale=0.4)
    analysis = WcetAnalysis(contenders=3, safety_margin=1.2)
    study = analysis.write_policy_study(program)

    table = Table(
        title=(
            f"{KERNEL}: execution-time bounds on the NGMP-like SoC "
            "(3 contending cores)"
        ),
        columns=[
            "DL1 configuration",
            "isolation cycles",
            "worst-contention cycles",
            "WCET estimate",
            "inflation vs isolation",
        ],
    )
    for label, bound in study.items():
        table.add_row(
            **{
                "DL1 configuration": label,
                "isolation cycles": bound.observed_isolation_cycles,
                "worst-contention cycles": bound.observed_contention_cycles,
                "WCET estimate": bound.wcet_estimate_cycles,
                "inflation vs isolation": bound.contention_inflation,
            }
        )
    print(table.render())

    wt = study["wt-parity"]
    wb = study["wb-laec"]
    ratio = wt.wcet_estimate_cycles / wb.wcet_estimate_cycles
    print()
    print(
        f"WCET estimate of WT+parity is {ratio:.2f}x the WB+LAEC one for this kernel;\n"
        "the paper cites factors up to 6x for bus contention alone, which is what\n"
        "pushes safety-critical multicores towards write-back DL1 caches and makes\n"
        "low-latency DL1 error correction (LAEC) necessary."
    )


if __name__ == "__main__":
    main()
