"""Regenerate every table and figure of the paper in one run.

Run with::

    python examples/paper_reproduction.py [scale]

``scale`` (default 0.4) multiplies the iteration counts of the 16
EEMBC-Automotive-like kernels; 1.0 matches the sizes used for the
numbers recorded in EXPERIMENTS.md and takes a few minutes in pure
Python.  The same artefacts are produced by the pytest benchmark harness
(``pytest benchmarks/ --benchmark-only``), which additionally asserts
the paper's headline claims.
"""

from __future__ import annotations

import sys

from repro.experiments import (
    ablation_hazards,
    chronograms,
    energy_report,
    fault_campaign,
    figure8,
    table1,
    table2,
    wt_vs_wb,
)
from repro.experiments.runner import ExperimentRunner


def main(scale: float = 0.4) -> None:
    separator = "\n" + "=" * 78 + "\n"

    print(separator)
    print(table1.render())

    print(separator)
    print("Simulating the 16 kernels under the 4 policies "
          f"(scale={scale}); this is the slow part...")
    runner = ExperimentRunner(scale=scale)
    run_set = runner.run_all()

    print(separator)
    print(table2.render(table2.run(run_set=run_set)))

    print(separator)
    print(figure8.render(figure8.run(run_set=run_set)))

    print(separator)
    print(chronograms.render(chronograms.run()))

    print(separator)
    print(energy_report.render(energy_report.run(run_set=run_set)))

    print(separator)
    print(ablation_hazards.render(ablation_hazards.run(run_set=run_set)))

    print(separator)
    print(wt_vs_wb.render(wt_vs_wb.run(scale=min(scale, 0.3))))

    print(separator)
    print(fault_campaign.render(fault_campaign.run(trials_per_point=2000)))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.4)
