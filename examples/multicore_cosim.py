"""Cycle-level multicore co-simulation versus the analytic WCET bounds.

Places four tasks (mixed ECC policies) on the NGMP, co-simulates them in
lockstep against the shared round-robin bus arbiter, and shows that each
task's observed cycles fall between its isolation run and the worst-case
analytic bound — then repeats the run with a truly shared L2 to expose
the storage interference that way-partitioning removes.

Run with:  PYTHONPATH=src python examples/multicore_cosim.py
"""

from repro.soc import NgmpSoC, TaskPlacement
from repro.workloads import build_kernel

SCALE = 0.2
MIX = [
    ("rspeed", "laec"),
    ("puwmod", "no-ecc"),
    ("tblook", "extra-stage"),
    ("cacheb", "laec"),
]


def main() -> None:
    soc = NgmpSoC()
    print(soc.describe())
    print()

    placements = [
        TaskPlacement(program=build_kernel(name, scale=SCALE), core_index=i, policy=policy)
        for i, (name, policy) in enumerate(MIX)
    ]

    cosim = soc.co_simulate(placements)
    print(f"{'core':>4}  {'task':8} {'policy':12} {'isolation':>9} "
          f"{'co-sim':>7} {'worst':>7}")
    for placement, outcome in zip(placements, cosim.outcomes):
        bounds = soc.wcet_estimate(
            TaskPlacement(program=placement.program, policy=placement.policy),
            contenders=len(placements) - 1,
        )
        assert bounds["isolation"] <= outcome.cycles <= bounds["worst"]
        print(
            f"{outcome.core_index:>4}  {outcome.program_name:8} "
            f"{outcome.policy.kind.value:12} {bounds['isolation']:>9} "
            f"{outcome.cycles:>7} {bounds['worst']:>7}"
        )
    stats = cosim.arbiter_stats
    print(
        f"\nbus arbiter: {stats.grants} grants, "
        f"{stats.wait_cycles} wait cycles "
        f"(avg {stats.average_wait:.2f}/transaction)"
    )

    shared = soc.co_simulate(placements, shared_l2=True)
    print(
        f"\npartitioned-L2 makespan: {cosim.makespan} cycles; "
        f"truly shared L2: {shared.makespan} cycles "
        f"(storage interference: {shared.makespan - cosim.makespan:+d})"
    )
    print(f"shared-L2 misses by core: {shared.l2_misses_by_core}")


if __name__ == "__main__":
    main()
