"""Quickstart: simulate one kernel under every DL1 ECC scheme.

Run with::

    python examples/quickstart.py

The script assembles the ``puwmod`` EEMBC-Automotive-like kernel, runs it
through the cycle-accurate LEON4/NGMP-class pipeline model under the four
Figure 8 policies, and prints the execution-time increase of each scheme
over the unprotected baseline — the core result of the LAEC paper.
"""

from __future__ import annotations

from repro import simulate_kernel
from repro.analysis.reporting import Table

KERNEL = "puwmod"
POLICIES = ("no-ecc", "extra-cycle", "extra-stage", "laec")


def main() -> None:
    results = {
        policy: simulate_kernel(KERNEL, policy=policy, scale=0.5)
        for policy in POLICIES
    }
    baseline = results["no-ecc"]

    table = Table(
        title=f"{KERNEL}: DL1 ECC schemes on the NGMP-like core",
        columns=["policy", "cycles", "CPI", "exec-time increase %"],
    )
    for policy, result in results.items():
        table.add_row(
            policy=result.policy.display_name,
            cycles=result.cycles,
            CPI=result.cpi,
            **{
                "exec-time increase %": 100.0
                * result.execution_time_increase_over(baseline)
            },
        )
    print(table.render())

    laec = results["laec"]
    lookahead = laec.stats.lookahead
    print()
    print(f"DL1 hit rate of loads    : {laec.stats.load_hit_rate:.1%}")
    print(f"loads with nearby user   : {laec.stats.dependent_load_fraction:.1%}")
    print(f"LAEC anticipation rate   : {lookahead.take_rate:.1%}")
    print(
        "blocked by data hazards  : "
        f"{lookahead.blocked_data_hazard + lookahead.blocked_operands_late}"
    )
    print(f"blocked by resource haz. : {lookahead.blocked_resource_hazard}")


if __name__ == "__main__":
    main()
