"""Example: protecting cache contents with parity, Hamming and SECDED.

Run with::

    python examples/ecc_protected_cache.py

The script stores words from a real kernel run into a DL1 model equipped
with an ECC shadow array, injects single- and double-bit soft errors and
shows how each code behaves — the reliability argument that makes the
paper's write-back DL1 viable in a safety-critical system.
"""

from __future__ import annotations

import random

from repro.analysis.reporting import Table
from repro.ecc import (
    FaultInjector,
    FaultModel,
    HammingSecCode,
    HsiaoSecDedCode,
    InjectionOutcome,
    ParityCode,
    ReliabilityModel,
)
from repro.ecc.codec import DecodeStatus
from repro.functional import run_program
from repro.memory.cache import SetAssociativeCache
from repro.memory.config import CacheConfig
from repro.workloads import build_kernel


def cache_level_demo() -> None:
    """Store kernel data into an ECC-protected DL1 and corrupt one bit."""
    print("=== SECDED-protected DL1 (16 KiB, 4-way, 32 B lines) ===")
    cache = SetAssociativeCache(
        CacheConfig(size_bytes=16 * 1024, line_bytes=32, ways=4, name="dl1"),
        ecc_code=HsiaoSecDedCode(),
    )
    trace = run_program(build_kernel("iirflt", scale=0.1))
    stores = [dyn for dyn in trace if dyn.is_store][:64]
    for dyn in stores:
        cache.access(dyn.address, is_write=True)
        cache.ecc_store_word(dyn.address, dyn.value)
    print(f"stored {len(stores)} dirty words from the iirflt kernel")

    rng = random.Random(42)
    victim = rng.choice(cache.ecc_resident_words())
    cache.ecc_flip_bit(victim, rng.randrange(39))
    result = cache.ecc_load_word(victim)
    print(
        f"flipped one bit at {victim:#010x}: status={result.status.value}, "
        f"data restored={result.status is DecodeStatus.CORRECTED}"
    )
    print()


def code_comparison_demo() -> None:
    """Compare the three codes under single and double bit flips."""
    print("=== Injection outcomes per code (10k trials each) ===")
    table = Table(
        title="outcome rates",
        columns=["code", "flips", "corrected %", "detected %", "silent corruption %"],
    )
    for code in (ParityCode(), HammingSecCode(), HsiaoSecDedCode()):
        injector = FaultInjector(code, seed=7)
        for flips in (1, 2):
            report = injector.run_campaign(
                trials=10_000, fault_model=FaultModel({flips: 1.0})
            )
            table.add_row(
                code=code.name,
                flips=flips,
                **{
                    "corrected %": 100 * report.rate(InjectionOutcome.CORRECTED),
                    "detected %": 100 * report.rate(InjectionOutcome.DETECTED),
                    "silent corruption %": 100
                    * report.rate(InjectionOutcome.SILENT_DATA_CORRUPTION),
                },
            )
    print(table.render(float_format="{:.1f}"))
    print()


def array_reliability_demo() -> None:
    """Array-level failure probabilities for a 16 KiB DL1."""
    print("=== Analytical array failure probability (16 KiB DL1) ===")
    model = ReliabilityModel(
        words=16 * 1024 // 4, bit_upset_rate_per_hour=1e-8, scrub_interval_hours=1.0
    )
    for code in (ParityCode(), HammingSecCode(), HsiaoSecDedCode()):
        probability = model.array_failure_probability(code)
        print(f"  {code.name:8s} unsafe-failure probability per hour: {probability:.3e}")
    print(
        "\nOnly SECDED keeps dirty write-back data safe: parity cannot restore the\n"
        "only copy, and Hamming SEC silently mis-corrects double errors."
    )


if __name__ == "__main__":
    cache_level_demo()
    code_comparison_demo()
    array_reliability_demo()
