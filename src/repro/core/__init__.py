"""The paper's contribution: ECC deployment policies for the DL1.

Four deployment schemes are modelled (Section II-B and III of the paper):

* :class:`~repro.core.policies.NoEccPolicy` — ideal unprotected
  write-back DL1 (the baseline every overhead is measured against).
* :class:`~repro.core.policies.WriteThroughParityPolicy` — the classic
  LEON-style configuration: write-through DL1 with a parity bit,
  SECDED only in the L2.
* :class:`~repro.core.policies.ExtraCacheCyclePolicy` — the Memory stage
  spans two cycles on DL1 load hits so the SECDED check fits.
* :class:`~repro.core.policies.ExtraStagePolicy` — a dedicated ECC
  pipeline stage is appended after Memory.
* :class:`~repro.core.policies.LaecPolicy` — the paper's Look-Ahead
  Error Correction: address generation, DL1 access and ECC check are
  anticipated by one cycle whenever the
  :class:`~repro.core.lookahead.LookaheadUnit` finds no data or resource
  hazard with the immediately preceding instruction.
"""

from repro.core.hazards import (
    consumer_distance,
    is_dependent_load,
    produces_any_register,
)
from repro.core.lookahead import LookaheadDecision, LookaheadStatistics, LookaheadUnit
from repro.core.policies import (
    EccPolicy,
    EccPolicyKind,
    ExtraCacheCyclePolicy,
    ExtraStagePolicy,
    LaecPolicy,
    NoEccPolicy,
    WriteThroughParityPolicy,
    make_policy,
)

__all__ = [
    "EccPolicy",
    "EccPolicyKind",
    "ExtraCacheCyclePolicy",
    "ExtraStagePolicy",
    "LaecPolicy",
    "LookaheadDecision",
    "LookaheadStatistics",
    "LookaheadUnit",
    "NoEccPolicy",
    "WriteThroughParityPolicy",
    "consumer_distance",
    "is_dependent_load",
    "make_policy",
    "produces_any_register",
]
