"""Dependence helpers shared by the look-ahead unit and the statistics.

These predicates operate on the *dynamic* instruction stream produced by
the functional simulator, which is exactly the information the hardware
would derive from the decoded instructions in flight.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.functional.simulator import DynInstruction


def produces_any_register(
    producer: DynInstruction, registers: Iterable[int]
) -> bool:
    """True if ``producer`` writes any of ``registers``."""
    destination = producer.destination_register
    if destination is None:
        return False
    return destination in set(registers)


def consumer_distance(
    stream: Sequence[DynInstruction],
    load_position: int,
    *,
    max_distance: int = 2,
) -> Optional[int]:
    """Distance (1-based) to the first consumer of a load's destination.

    Scans at most ``max_distance`` dynamically following instructions, as
    the paper does for its "% of dep. loads" metric (Table II): only
    consumers at distance 1 or 2 can be stalled by the ECC stage, because
    from distance 3 onward the checked value is available anyway.
    Returns ``None`` when no consumer exists within the window or the
    load writes no register.
    """
    load = stream[load_position]
    destination = load.destination_register
    if destination is None:
        return None
    for distance in range(1, max_distance + 1):
        position = load_position + distance
        if position >= len(stream):
            return None
        follower = stream[position]
        if destination in follower.source_registers:
            return distance
        if follower.destination_register == destination:
            # The register is overwritten before being read: later readers
            # observe the new producer, not our load.
            return None
    return None


def is_dependent_load(
    stream: Sequence[DynInstruction],
    load_position: int,
    *,
    max_distance: int = 2,
) -> bool:
    """True if the load at ``load_position`` has a consumer within the window."""
    return consumer_distance(stream, load_position, max_distance=max_distance) is not None


def address_produced_by_predecessor(
    load: DynInstruction, predecessor: Optional[DynInstruction]
) -> bool:
    """True if the immediate predecessor generates one of the load's
    address registers — the *data hazard* that blocks LAEC anticipation."""
    if predecessor is None:
        return False
    return produces_any_register(predecessor, load.address_registers)
