"""The LAEC look-ahead unit.

Section III-A of the paper: a DL1 load can be anticipated by one cycle —
address add in the Register-Access stage, DL1 access in Execute, ECC
check in Memory — when **both** of the following hold with respect to the
immediately preceding instruction:

1. *No resource hazard*: the preceding instruction is not itself a
   non-anticipated load, because that load would occupy the single DL1
   read port (its Memory stage) in the same cycle the anticipated load
   wants to access the DL1 (its Execute stage).
2. *No data hazard*: the preceding instruction does not produce any of
   the registers used to form the load's effective address, because the
   anticipated address add needs those registers one cycle earlier than
   a normal execution would.

The unit never speculates: when either hazard is present the load simply
executes like the Extra Stage scheme, so no flush/recovery hardware is
needed — which is the whole point for simple safety-critical cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.hazards import address_produced_by_predecessor
from repro.functional.simulator import DynInstruction


@dataclass(frozen=True)
class LookaheadDecision:
    """Outcome of evaluating one load for anticipation."""

    taken: bool
    data_hazard: bool = False
    resource_hazard: bool = False
    operands_late: bool = False

    @property
    def blocked(self) -> bool:
        return not self.taken


@dataclass
class LookaheadStatistics:
    """Counters describing how often anticipation succeeded and why not."""

    loads_seen: int = 0
    lookaheads_taken: int = 0
    blocked_data_hazard: int = 0
    blocked_resource_hazard: int = 0
    blocked_operands_late: int = 0

    @property
    def blocked_total(self) -> int:
        return self.loads_seen - self.lookaheads_taken

    @property
    def take_rate(self) -> float:
        return self.lookaheads_taken / self.loads_seen if self.loads_seen else 0.0

    def record(self, decision: LookaheadDecision) -> None:
        self.loads_seen += 1
        if decision.taken:
            self.lookaheads_taken += 1
            return
        if decision.data_hazard:
            self.blocked_data_hazard += 1
        if decision.resource_hazard:
            self.blocked_resource_hazard += 1
        if decision.operands_late:
            self.blocked_operands_late += 1

    def as_dict(self):
        return {
            "loads_seen": self.loads_seen,
            "lookaheads_taken": self.lookaheads_taken,
            "take_rate": self.take_rate,
            "blocked_data_hazard": self.blocked_data_hazard,
            "blocked_resource_hazard": self.blocked_resource_hazard,
            "blocked_operands_late": self.blocked_operands_late,
        }


class LookaheadUnit:
    """Evaluates the two LAEC anticipation conditions for each load."""

    def __init__(self) -> None:
        self.stats = LookaheadStatistics()

    def evaluate(
        self,
        load: DynInstruction,
        predecessor: Optional[DynInstruction],
        *,
        predecessor_lookahead: bool = False,
        address_operands_ready: bool = True,
    ) -> LookaheadDecision:
        """Decide whether ``load`` can be anticipated.

        ``predecessor`` is the dynamically preceding instruction (``None``
        for the first instruction of the stream).
        ``predecessor_lookahead`` tells whether that predecessor was a
        load that *was itself anticipated* — in that case it uses the DL1
        port in its own Execute stage, one cycle before ours, so there is
        no port conflict (this is the "non-predicted load" wording of the
        paper).
        ``address_operands_ready`` lets the timing model veto anticipation
        when an *older* producer (distance >= 2, e.g. a previous load
        delayed by its own ECC check) has not delivered the address
        register early enough for the anticipated address add.
        """
        if not load.is_load:
            raise ValueError("look-ahead is only evaluated for load instructions")
        data_hazard = address_produced_by_predecessor(load, predecessor)
        resource_hazard = bool(
            predecessor is not None
            and predecessor.is_load
            and not predecessor_lookahead
        )
        operands_late = not address_operands_ready
        taken = not (data_hazard or resource_hazard or operands_late)
        decision = LookaheadDecision(
            taken=taken,
            data_hazard=data_hazard,
            resource_hazard=resource_hazard,
            operands_late=operands_late,
        )
        self.stats.record(decision)
        return decision

    def reset(self) -> None:
        self.stats = LookaheadStatistics()
