"""ECC deployment policies for the DL1 cache.

A *policy* captures everything the timing pipeline must know about how a
particular ECC deployment changes instruction timing:

* whether the pipeline grows an extra ECC stage (8 stages instead of 7);
* how many cycles the Memory stage is occupied by a DL1 load hit;
* in which stage the loaded (and checked) value becomes available to
  dependent instructions;
* which DL1 write policy the scheme requires (the paper's point is that
  only correction-capable schemes can afford write-back);
* whether the LAEC look-ahead unit is active.

The concrete numbers implement Section II-B/III of the paper and are
summarised in DESIGN.md §5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from repro.memory.config import WritePolicy


class EccPolicyKind(enum.Enum):
    """The five DL1 protection schemes modelled in this reproduction."""

    NO_ECC = "no-ecc"
    WT_PARITY = "wt-parity"
    EXTRA_CYCLE = "extra-cycle"
    EXTRA_STAGE = "extra-stage"
    LAEC = "laec"


class DataReadyStage(enum.Enum):
    """Pipeline stage at whose end a load hit's checked data is available."""

    MEMORY = "M"
    ECC = "ECC"


@dataclass(frozen=True)
class EccPolicy:
    """Base policy; concrete schemes are thin configurations of this."""

    kind: EccPolicyKind
    #: Human-readable name used in reports and figures.
    display_name: str
    #: True when the pipeline has a dedicated ECC stage after Memory.
    has_ecc_stage: bool
    #: DL1 write policy required/assumed by the scheme.
    dl1_write_policy: WritePolicy
    #: Cycles the Memory stage is occupied by a DL1 *load hit*.
    load_hit_memory_cycles: int
    #: Whether the LAEC look-ahead unit is present.
    supports_lookahead: bool
    #: Whether the DL1 can correct errors locally (needed for dirty data).
    corrects_errors: bool
    #: Whether the DL1 detects errors at all.
    detects_errors: bool
    #: ECC code name stored in the DL1 ("secded", "parity" or None).
    dl1_code_name: Optional[str]

    # ------------------------------------------------------------------ #
    # timing contract used by the pipeline                               #
    # ------------------------------------------------------------------ #
    def load_hit_data_ready_stage(self, lookahead_taken: bool) -> DataReadyStage:
        """Stage at whose end a dependent instruction may consume the data."""
        if not self.has_ecc_stage:
            return DataReadyStage.MEMORY
        if self.supports_lookahead and lookahead_taken:
            # Anticipated loads finish their ECC check in the Memory stage.
            return DataReadyStage.MEMORY
        return DataReadyStage.ECC

    def memory_stage_cycles(self, *, is_load: bool, hit: bool) -> int:
        """Cycles the Memory stage is occupied by this access."""
        if is_load and hit:
            return self.load_hit_memory_cycles
        return 1

    @property
    def is_write_back(self) -> bool:
        return self.dl1_write_policy is WritePolicy.WRITE_BACK

    @property
    def pipeline_depth(self) -> int:
        """Number of pipeline stages (7 baseline, 8 with the ECC stage)."""
        return 8 if self.has_ecc_stage else 7

    def describe(self) -> str:
        parts = [
            self.display_name,
            f"{self.pipeline_depth}-stage pipeline",
            self.dl1_write_policy.value + " DL1",
        ]
        if self.dl1_code_name:
            parts.append(f"DL1 code: {self.dl1_code_name}")
        if self.supports_lookahead:
            parts.append("look-ahead enabled")
        return ", ".join(parts)


def NoEccPolicy() -> EccPolicy:
    """Ideal unprotected write-back DL1 — the baseline of Figure 8."""
    return EccPolicy(
        kind=EccPolicyKind.NO_ECC,
        display_name="No-ECC (ideal)",
        has_ecc_stage=False,
        dl1_write_policy=WritePolicy.WRITE_BACK,
        load_hit_memory_cycles=1,
        supports_lookahead=False,
        corrects_errors=False,
        detects_errors=False,
        dl1_code_name=None,
    )


def WriteThroughParityPolicy() -> EccPolicy:
    """LEON3/LEON4-style DL1: write-through with a parity bit.

    Load timing matches the baseline (parity is checked in parallel and
    a detected error simply triggers a refetch of the clean L2 copy),
    but every store must be pushed to the L2 over the shared bus, which
    is what degrades (guaranteed) performance in multicores.
    """
    return EccPolicy(
        kind=EccPolicyKind.WT_PARITY,
        display_name="Write-through + parity",
        has_ecc_stage=False,
        dl1_write_policy=WritePolicy.WRITE_THROUGH,
        load_hit_memory_cycles=1,
        supports_lookahead=False,
        corrects_errors=False,
        detects_errors=True,
        dl1_code_name="parity",
    )


def ExtraCacheCyclePolicy() -> EccPolicy:
    """SECDED checked within a two-cycle Memory stage (Section II-B.2/III-C)."""
    return EccPolicy(
        kind=EccPolicyKind.EXTRA_CYCLE,
        display_name="Extra Cache Cycle",
        has_ecc_stage=False,
        dl1_write_policy=WritePolicy.WRITE_BACK,
        load_hit_memory_cycles=2,
        supports_lookahead=False,
        corrects_errors=True,
        detects_errors=True,
        dl1_code_name="secded",
    )


def ExtraStagePolicy() -> EccPolicy:
    """SECDED checked in a dedicated pipeline stage after Memory (III-D)."""
    return EccPolicy(
        kind=EccPolicyKind.EXTRA_STAGE,
        display_name="Extra Stage",
        has_ecc_stage=True,
        dl1_write_policy=WritePolicy.WRITE_BACK,
        load_hit_memory_cycles=1,
        supports_lookahead=False,
        corrects_errors=True,
        detects_errors=True,
        dl1_code_name="secded",
    )


def LaecPolicy() -> EccPolicy:
    """The paper's Look-Ahead Error Correction scheme (Section III-E)."""
    return EccPolicy(
        kind=EccPolicyKind.LAEC,
        display_name="LAEC",
        has_ecc_stage=True,
        dl1_write_policy=WritePolicy.WRITE_BACK,
        load_hit_memory_cycles=1,
        supports_lookahead=True,
        corrects_errors=True,
        detects_errors=True,
        dl1_code_name="secded",
    )


_FACTORIES = {
    EccPolicyKind.NO_ECC: NoEccPolicy,
    EccPolicyKind.WT_PARITY: WriteThroughParityPolicy,
    EccPolicyKind.EXTRA_CYCLE: ExtraCacheCyclePolicy,
    EccPolicyKind.EXTRA_STAGE: ExtraStagePolicy,
    EccPolicyKind.LAEC: LaecPolicy,
}

_ALIASES = {
    "noecc": EccPolicyKind.NO_ECC,
    "no-ecc": EccPolicyKind.NO_ECC,
    "no_ecc": EccPolicyKind.NO_ECC,
    "baseline": EccPolicyKind.NO_ECC,
    "wt": EccPolicyKind.WT_PARITY,
    "wt-parity": EccPolicyKind.WT_PARITY,
    "wt_parity": EccPolicyKind.WT_PARITY,
    "parity": EccPolicyKind.WT_PARITY,
    "extra-cycle": EccPolicyKind.EXTRA_CYCLE,
    "extra_cycle": EccPolicyKind.EXTRA_CYCLE,
    "extracycle": EccPolicyKind.EXTRA_CYCLE,
    "extra-stage": EccPolicyKind.EXTRA_STAGE,
    "extra_stage": EccPolicyKind.EXTRA_STAGE,
    "extrastage": EccPolicyKind.EXTRA_STAGE,
    "laec": EccPolicyKind.LAEC,
}


def make_policy(kind: Union[str, EccPolicyKind, EccPolicy]) -> EccPolicy:
    """Build a policy from a kind, a name string, or pass through a policy."""
    if isinstance(kind, EccPolicy):
        return kind
    if isinstance(kind, EccPolicyKind):
        return _FACTORIES[kind]()
    key = str(kind).strip().lower()
    if key in _ALIASES:
        return _FACTORIES[_ALIASES[key]]()
    raise ValueError(
        f"unknown ECC policy {kind!r}; expected one of {sorted(_ALIASES)}"
    )


def all_policies():
    """One instance of every policy, in the order the paper discusses them."""
    return [
        NoEccPolicy(),
        WriteThroughParityPolicy(),
        ExtraCacheCyclePolicy(),
        ExtraStagePolicy(),
        LaecPolicy(),
    ]


def figure8_policies():
    """The policies compared in Figure 8 of the paper (no-ECC is the base)."""
    return [
        NoEccPolicy(),
        ExtraCacheCyclePolicy(),
        ExtraStagePolicy(),
        LaecPolicy(),
    ]
