"""Tiny bounded-LRU helpers shared by the per-process caches.

Three hot caches use the same policy — the kernel-trace cache
(:mod:`repro.experiments.runner`), the fault-sampling space cache
(:mod:`repro.campaign.sampling`) and the golden-memory cache
(:mod:`repro.campaign.replay`): a plain insertion-ordered ``dict`` where
a hit re-inserts the entry (making it the youngest) and an insert evicts
from the front until under the cap.  Keeping them plain dicts (rather
than a cache class) preserves direct introspection in tests; these two
functions keep the eviction policy identical everywhere.
"""

from __future__ import annotations

from typing import Dict, Optional, TypeVar

K = TypeVar("K")
V = TypeVar("V")


def lru_get(cache: Dict[K, V], key: K) -> Optional[V]:
    """Fetch ``key``, promoting it to most-recently-used on a hit."""
    value = cache.get(key)
    if value is not None:
        del cache[key]
        cache[key] = value
    return value


def lru_put(cache: Dict[K, V], key: K, value: V, max_entries: int) -> None:
    """Insert ``key``, evicting least-recently-used entries beyond the cap."""
    while len(cache) >= max_entries:
        cache.pop(next(iter(cache)))
    cache[key] = value
