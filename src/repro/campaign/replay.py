"""Architectural fault-injection replay.

This is the subsystem that lets a soft error land in a *live* cache line
during a real kernel run — the missing link between the codec-level
campaigns in :mod:`repro.ecc.fault_injection` (isolated codewords, no
cache, no program) and the paper's actual claim, which is architectural:
SECDED makes dirty data in the DL1 safe because every corrupted word is
corrected *before* it can propagate to the register file, the L2 or
memory.

One injection run works in three layers:

1. **Content model** (:class:`Dl1ContentModel`): a
   :class:`~repro.memory.cache.SetAssociativeCache` (the same class the
   timing hierarchy uses, with its ECC shadow array as the data array)
   plus a backing :class:`~repro.functional.memory.FlatMemory` standing
   in for L2 + DRAM.  Every load/store goes through the array: fills
   copy encoded words in, dirty evictions decode words on their way out
   (this is where corruption reaches the lower levels), loads decode
   through the policy's DL1 code, detected-uncorrectable errors refetch
   the clean below-L1 copy when one exists.  The armed
   :class:`~repro.scenarios.spec.FaultSpec` flips one stored bit via the
   injection hooks in :mod:`repro.memory.cache`.

2. **Golden-stream fast path**: the golden functional trace already
   knows every architecturally correct load value, so the replay first
   just streams the trace's memory operations through the content model
   and compares what a load *observes* against the golden value.  While
   they agree the rest of the machine state cannot have diverged, so no
   re-execution is needed — the vast majority of sampled faults
   (masked, corrected, detected-and-refetched) finish here at memory-op
   speed.

3. **Divergent re-execution**: the first load that returns a corrupted
   value invalidates the golden stream, so the run is re-executed from
   scratch on a :class:`FunctionalSimulator` whose memory *is* the
   content model.  Wrong values then propagate exactly as they would in
   hardware — through registers, branches, stores, even into crashes —
   and the run is classified by diffing the final memory image and the
   dynamic instruction stream against the golden run.

Outcome taxonomy (:class:`ArchOutcome`): ``masked`` (no architectural
effect), ``corrected`` (the DL1/L2 code repaired the flip), ``detected``
(the system was informed: uncorrectable-but-refetchable error, a
detected dirty corruption, a crash or a hang), ``sdc`` (silent data
corruption: the final memory image differs with no error indication) and
``timing`` (same final state, different dynamic path — a pure
execution-time deviation).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.caching import lru_get, lru_put
from repro.core.policies import EccPolicy, EccPolicyKind
from repro.ecc.codec import DecodeResult, DecodeStatus, EccCode, get_code
from repro.functional.memory import FlatMemory, MemoryAccessError
from repro.functional.simulator import (
    FunctionalSimulator,
    FunctionalTrace,
    SimulationFault,
    run_program,
)
from repro.isa.program import Program
from repro.memory.cache import SetAssociativeCache
from repro.memory.config import MemoryHierarchyConfig, WritePolicy
from repro.scenarios.spec import FaultSpec, SimulationSpec
from repro.telemetry.metrics import observe_phase, phase_timer


class RawWordCode(EccCode):
    """Identity "code" for the unprotected DL1 (no-ecc policy).

    32 data bits, zero check bits: every flip silently changes the data
    and the decoder never notices — exactly the behaviour the baseline
    write-back DL1 exhibits.
    """

    name = "raw"
    data_bits = 32
    check_bits = 0

    def encode(self, data: int) -> int:
        return data & 0xFFFFFFFF

    def decode(self, codeword: int) -> DecodeResult:
        return DecodeResult(data=codeword & 0xFFFFFFFF, status=DecodeStatus.CLEAN)

    # Batch fast paths: identity in, CLEAN out — no per-word dispatch.
    def encode_many(self, words) -> List[int]:
        return [word & 0xFFFFFFFF for word in words]

    def decode_many(self, codewords) -> List[DecodeResult]:
        clean = DecodeStatus.CLEAN
        return [
            DecodeResult(data=codeword & 0xFFFFFFFF, status=clean)
            for codeword in codewords
        ]


def dl1_code_for_policy(policy: EccPolicy) -> EccCode:
    """The code stored in the DL1 data array under ``policy``."""
    if policy.dl1_code_name is None:
        return RawWordCode()
    return get_code(policy.dl1_code_name)


def l2_code_for_policy(policy: EccPolicy) -> EccCode:
    """The code protecting the L2 data array under ``policy``.

    Every protected deployment of the paper pairs its DL1 scheme with a
    SECDED L2 (the baseline platform's L2 protection, Section II-A).
    The ``no-ecc`` deployment is the fully unprotected hierarchy Figure
    8 uses as its ideal baseline, so its L2 stores bare words and an L2
    flip silently corrupts data exactly like a DL1 flip does.
    """
    if policy.kind is EccPolicyKind.NO_ECC:
        return RawWordCode()
    return get_code("secded")


class ArchOutcome(enum.Enum):
    """Architectural classification of one injected fault."""

    MASKED = "masked"
    CORRECTED = "corrected"
    DETECTED = "detected"
    SILENT_DATA_CORRUPTION = "sdc"
    TIMING_DEVIATION = "timing"


#: Events that mean "the system was informed of an uncorrectable problem".
_DETECTED_EVENTS = frozenset(
    {
        "load_detected_refetch",
        "load_detected_dirty",
        "writeback_detected_dirty",
        "l2_detected",
        "crash",
        "hang",
    }
)
#: Events that mean "an error was transparently repaired".
_CORRECTED_EVENTS = frozenset(
    {"load_corrected", "writeback_corrected", "l2_corrected"}
)


@dataclass
class ArchInjectionResult:
    """Everything one architectural injection produced."""

    spec: SimulationSpec
    outcome: ArchOutcome
    #: Whether the armed fault fired before the run ended.
    triggered: bool
    #: Whether the flip landed in a valid resident line (live data).
    resident: bool
    #: Whether that line was dirty at the moment of injection.
    dirty_at_injection: bool
    #: Whether the run needed a full functional re-execution.
    diverged: bool
    #: Decode/propagation events, in occurrence order.
    events: Tuple[str, ...] = ()
    #: Dynamic instruction counts (golden vs faulty; equal when the run
    #: never diverged).
    golden_instructions: int = 0
    faulty_instructions: int = 0
    #: The divergent dynamic stream (kept only when ``keep_trace`` was
    #: requested; never serialised into store payloads).
    faulty_trace: Optional[FunctionalTrace] = field(default=None, repr=False)
    #: How the result was produced (``point``/``analytical``/``streamed``/
    #: ``full``) — execution metadata for throughput accounting, never
    #: serialised into store payloads (payload byte-identity across
    #: replay modes is an acceptance criterion).
    replay_mode: str = field(default="point", repr=False, compare=False)

    # ------------------------------------------------------------------ #
    def payload(self) -> Dict[str, object]:
        """JSON-serialisable form for the result store."""
        return {
            "outcome": self.outcome.value,
            "triggered": self.triggered,
            "resident": self.resident,
            "dirty_at_injection": self.dirty_at_injection,
            "diverged": self.diverged,
            "events": list(self.events),
            "golden_instructions": self.golden_instructions,
            "faulty_instructions": self.faulty_instructions,
        }

    @classmethod
    def from_payload(
        cls, spec: SimulationSpec, payload: Dict[str, object]
    ) -> "ArchInjectionResult":
        return cls(
            spec=spec,
            outcome=ArchOutcome(payload["outcome"]),
            triggered=bool(payload["triggered"]),
            resident=bool(payload["resident"]),
            dirty_at_injection=bool(payload["dirty_at_injection"]),
            diverged=bool(payload["diverged"]),
            events=tuple(payload.get("events", ())),
            golden_instructions=int(payload.get("golden_instructions", 0)),
            faulty_instructions=int(payload.get("faulty_instructions", 0)),
        )


# ---------------------------------------------------------------------- #
# the DL1 content model                                                  #
# ---------------------------------------------------------------------- #
class Dl1ContentModel:
    """Data-carrying DL1 + below-L1 backing store for one core.

    The tag/valid/dirty machinery is the real
    :class:`SetAssociativeCache`; its ECC shadow array holds the encoded
    word contents of every resident line.  ``backing`` models everything
    below the DL1 (L2 + memory) at architectural granularity.
    """

    def __init__(
        self,
        hierarchy: MemoryHierarchyConfig,
        code: EccCode,
        backing: FlatMemory,
        *,
        l2_code: Optional[EccCode] = None,
    ) -> None:
        self.cache = SetAssociativeCache(hierarchy.l1d, ecc_code=code)
        self.code = code
        self.backing = backing
        self.write_through = hierarchy.l1d.write_policy is WritePolicy.WRITE_THROUGH
        self.line_bytes = hierarchy.l1d.line_bytes
        self.events: List[str] = []
        # L2-targeted fault state: word address -> corrupted codeword of
        # the L2's code.  Under a SECDED L2 (every protected deployment)
        # the flip is healed (and recorded) the next time the word is
        # read; under the unprotected baseline it silently corrupts the
        # word like a DL1 flip would.
        self._l2_corrupt: Dict[int, int] = {}
        self._l2_code: Optional[EccCode] = l2_code

    # -- L2-targeted faults --------------------------------------------- #
    def inject_l2_fault(self, word_address: int, bit: int) -> bool:
        """Flip one bit of the L2 codeword of a below-L1 word."""
        if self._l2_code is None:
            self._l2_code = get_code("secded")
        bit %= self._l2_code.total_bits
        word_address &= ~0x3
        codeword = self._l2_code.encode(self.backing.read(word_address, 4))
        self._l2_corrupt[word_address] = codeword ^ (1 << bit)
        return True

    def _backing_word(self, word_address: int) -> int:
        corrupted = self._l2_corrupt.pop(word_address, None)
        if corrupted is not None:
            result = self._l2_code.decode(corrupted)
            if result.status is DecodeStatus.CORRECTED:
                self.events.append("l2_corrected")
            elif result.status is DecodeStatus.DETECTED_UNCORRECTABLE:
                self.events.append("l2_detected")
            self.backing.write(word_address, result.data, 4)
            return result.data
        return self.backing.read(word_address, 4)

    def _write_backing(self, word_address: int, word: int) -> None:
        """Write one word below the DL1, superseding any pending L2 flip.

        A store into the L2 array rewrites the word's codeword, so a
        not-yet-observed injected flip of the *old* codeword must not
        survive the overwrite (it would otherwise resurrect stale data
        on the next read).
        """
        self._l2_corrupt.pop(word_address, None)
        self.backing.write(word_address, word, 4)

    # -- line movement --------------------------------------------------- #
    def _fill_line(self, line_address: int) -> None:
        for word_address in range(line_address, line_address + self.line_bytes, 4):
            self.cache.ecc_store_word(word_address, self._backing_word(word_address))

    def _evict_line(self, line_address: int, *, dirty: bool) -> None:
        for word_address in range(line_address, line_address + self.line_bytes, 4):
            codeword = self.cache.ecc_take_word(word_address)
            if codeword is None or not dirty:
                # Clean evictions just discard the array contents; any
                # corruption in them dies with the line.
                continue
            result = self.code.decode(codeword)
            if result.status is DecodeStatus.CORRECTED:
                self.events.append("writeback_corrected")
            elif result.status is DecodeStatus.DETECTED_UNCORRECTABLE:
                # The dirty copy is the only copy: the controller sees
                # the error but cannot restore the data (the paper's
                # argument against detection-only codes on dirty data).
                self.events.append("writeback_detected_dirty")
            self._write_backing(word_address, result.data)

    def _access(self, address: int, *, is_write: bool):
        result = self.cache.access(address, is_write=is_write)
        if result.allocated and not result.hit:
            if result.evicted_address is not None:
                self._evict_line(result.evicted_address, dirty=result.writeback)
            self._fill_line(self.cache.line_address(address))
        return result

    # -- word read through the decoder ----------------------------------- #
    def _read_word_checked(self, word_address: int) -> int:
        codeword = self.cache.ecc_load_raw(word_address)
        if codeword is None:
            return self._backing_word(word_address)
        result = self.code.decode(codeword)
        if result.status is DecodeStatus.CLEAN:
            return result.data
        if result.status is DecodeStatus.CORRECTED:
            self.events.append("load_corrected")
            # Scrub: write the corrected word back into the array.
            self.cache.ecc_store_word(word_address, result.data)
            return result.data
        # Detected but uncorrectable.
        if not self.cache.line_is_dirty(word_address):
            # A clean copy exists below — refetch it (the WT+parity
            # recovery path; also correct for clean lines under WB).
            clean = self._backing_word(word_address)
            self.cache.ecc_store_word(word_address, clean)
            self.events.append("load_detected_refetch")
            return clean
        self.events.append("load_detected_dirty")
        return result.data

    # -- architectural interface ----------------------------------------- #
    def load(self, address: int, size: int) -> int:
        word_address = address & ~0x3
        self._access(address, is_write=False)
        word = self._read_word_checked(word_address)
        if size == 4:
            return word
        shift = (address & 0x3) * 8
        return (word >> shift) & ((1 << (8 * size)) - 1)

    def store(self, address: int, value: int, size: int) -> None:
        word_address = address & ~0x3
        result = self._access(address, is_write=True)
        resident = result.hit or result.allocated
        if size == 4:
            word = value & 0xFFFFFFFF
        else:
            # Sub-word store: read-modify-write through the ECC logic,
            # exactly like a hardware RMW sequence (the decode can
            # correct — or expose — an error sitting in the word).
            if resident:
                current = self._read_word_checked(word_address)
            else:
                current = self._backing_word(word_address)
            shift = (address & 0x3) * 8
            mask = ((1 << (8 * size)) - 1) << shift
            word = (current & ~mask) | ((value << shift) & mask)
        if resident:
            self.cache.ecc_store_word(word_address, word)
        if self.write_through:
            self._write_backing(word_address, word)

    def flush(self) -> None:
        """Write back every dirty line (end-of-run architectural drain)."""
        for line_address in self.cache.dirty_line_addresses():
            self._evict_line(line_address, dirty=True)


class _ReplayMemory:
    """FlatMemory-compatible facade routing accesses through the DL1 model."""

    def __init__(self, model: Dl1ContentModel) -> None:
        self._model = model

    def read(self, address: int, size: int) -> int:
        if size not in (1, 2, 4) or address % size:
            raise MemoryAccessError(f"misaligned {size}-byte read at {address:#x}")
        return self._model.load(address, size)

    def write(self, address: int, value: int, size: int) -> None:
        if size not in (1, 2, 4) or address % size:
            raise MemoryAccessError(f"misaligned {size}-byte write at {address:#x}")
        self._model.store(address, value, size)

    def load_bytes(self, base: int, payload) -> None:
        # Program data is loaded below the caches (it is the initial
        # memory image, not a run-time store stream).
        self._model.backing.load_bytes(base, payload)


# ---------------------------------------------------------------------- #
# golden references (per-process caches)                                 #
# ---------------------------------------------------------------------- #
#: (kernel, scale) -> final architectural memory image of the clean run.
_GOLDEN_MEMORY_CACHE: Dict[Tuple[str, float], FlatMemory] = {}
_GOLDEN_MEMORY_CACHE_MAX = 8


def _golden_final_memory(
    program: Program,
    *,
    kernel: Optional[str],
    scale: float,
    max_instructions: int,
) -> FlatMemory:
    key = (kernel, scale) if kernel is not None else None
    if key is not None:
        cached = lru_get(_GOLDEN_MEMORY_CACHE, key)
        if cached is not None:
            return cached
    with phase_timer("golden"):
        simulator = FunctionalSimulator(program, max_instructions=max_instructions)
        simulator.run()
    if key is not None:
        lru_put(_GOLDEN_MEMORY_CACHE, key, simulator.memory, _GOLDEN_MEMORY_CACHE_MAX)
    return simulator.memory


def _build_model(spec: SimulationSpec, program: Program) -> Dl1ContentModel:
    policy = spec.resolved_policy()
    hierarchy = spec.core_config().resolved_hierarchy_config()
    backing = FlatMemory()
    backing.load_bytes(program.data.base, program.data.data)
    return Dl1ContentModel(
        hierarchy,
        dl1_code_for_policy(policy),
        backing,
        l2_code=l2_code_for_policy(policy),
    )


def _arm(model: Dl1ContentModel, fault: FaultSpec) -> None:
    if fault.target == "dl1":
        bit = fault.bit % model.code.total_bits
        model.cache.arm_fault(fault.word_address, bit, fault.at_access)


# ---------------------------------------------------------------------- #
# the two replay phases                                                  #
# ---------------------------------------------------------------------- #
def _stream_replay(
    trace: FunctionalTrace, model: Dl1ContentModel, fault: FaultSpec
) -> Optional[int]:
    """Stream golden memory ops through the model.

    Returns the dynamic index of the first load observing a corrupted
    value (divergence), or ``None`` if the whole stream went through
    with every load agreeing with the golden run.
    """
    l2_pending = fault.target == "l2"
    op_ordinal = 0
    for dyn in trace.instructions:
        address = dyn.address
        if address is None:
            continue
        op_ordinal += 1
        if l2_pending and op_ordinal == fault.at_access:
            model.inject_l2_fault(fault.word_address, fault.bit)
            l2_pending = False
        size = dyn.size
        if dyn.is_store:
            model.store(address, dyn.value, size)
            continue
        observed = model.load(address, size)
        golden = dyn.value & ((1 << (8 * size)) - 1)
        if observed != golden:
            return dyn.index
    return None


def _full_replay(
    spec: SimulationSpec, program: Program, fault: FaultSpec, golden_length: int
) -> Tuple[Dl1ContentModel, FunctionalTrace, List[str]]:
    """Re-execute the program with the DL1 model as its memory.

    The returned trace is partial (and an event records why) when the
    corrupted execution crashed or ran away.
    """
    model = _build_model(spec, program)
    _arm(model, fault)
    if fault.target == "l2":
        # Count DL1 accesses ourselves to fire the below-L1 flip at the
        # same ordinal the stream phase would have used.
        memory = _L2FaultReplayMemory(model, fault)
    else:
        memory = _ReplayMemory(model)
    # A corrupted run that executes 4x the golden instruction count is a
    # hang for classification purposes — no kernel legitimately grows
    # that much from one flipped data word.
    limit = min(spec.max_instructions, 4 * golden_length + 10_000)
    simulator = FunctionalSimulator(program, max_instructions=limit)
    simulator.memory = memory
    extra_events: List[str] = []
    # Step manually (rather than simulator.run()) so a crash or hang
    # still leaves the partial dynamic stream: classification and timing
    # then reflect what the corrupted machine actually executed.
    trace = FunctionalTrace(program_name=program.name)
    try:
        while not simulator.halted:
            trace.instructions.append(simulator.step())
            if len(trace.instructions) > limit:
                extra_events.append("hang")
                break
        else:
            trace.halted = True
    except (SimulationFault, MemoryAccessError):
        extra_events.append("crash")
    return model, trace, extra_events


class _L2FaultReplayMemory(_ReplayMemory):
    """Replay memory that fires an L2-targeted flip at a DL1-access ordinal."""

    def __init__(self, model: Dl1ContentModel, fault: FaultSpec) -> None:
        super().__init__(model)
        self._fault = fault
        self._ordinal = 0
        self._pending = True

    def _tick(self) -> None:
        self._ordinal += 1
        if self._pending and self._ordinal == self._fault.at_access:
            self._model.inject_l2_fault(self._fault.word_address, self._fault.bit)
            self._pending = False

    def read(self, address: int, size: int) -> int:
        self._tick()
        return super().read(address, size)

    def write(self, address: int, value: int, size: int) -> None:
        self._tick()
        super().write(address, value, size)


# ---------------------------------------------------------------------- #
# classification                                                         #
# ---------------------------------------------------------------------- #
def _classify(
    *,
    triggered: bool,
    live: bool,
    events: List[str],
    diverged: bool,
    stream_match: bool,
    state_match: bool,
) -> ArchOutcome:
    if not triggered or not live:
        return ArchOutcome.MASKED
    informed = any(event in _DETECTED_EVENTS for event in events)
    if "crash" in events or "hang" in events:
        return ArchOutcome.DETECTED
    if not state_match:
        return ArchOutcome.DETECTED if informed else ArchOutcome.SILENT_DATA_CORRUPTION
    if informed:
        return ArchOutcome.DETECTED
    if any(event in _CORRECTED_EVENTS for event in events):
        return ArchOutcome.CORRECTED
    if diverged and not stream_match:
        return ArchOutcome.TIMING_DEVIATION
    return ArchOutcome.MASKED


def _streams_match(golden: FunctionalTrace, faulty: FunctionalTrace) -> bool:
    if len(golden) != len(faulty):
        return False
    for gold, bad in zip(golden.instructions, faulty.instructions):
        if gold.pc != bad.pc:
            return False
    return True


# ---------------------------------------------------------------------- #
# entry points                                                           #
# ---------------------------------------------------------------------- #
def run_injection(
    spec: SimulationSpec,
    *,
    program: Optional[Program] = None,
    trace: Optional[FunctionalTrace] = None,
    keep_trace: bool = False,
) -> ArchInjectionResult:
    """Execute one architecturally-classified fault injection.

    ``spec.fault`` must be set.  ``program``/``trace`` may be supplied to
    reuse the golden artefacts; otherwise the named kernel is built via
    the shared per-process kernel-trace cache.
    """
    fault = spec.fault
    if fault is None:
        raise ValueError("run_injection needs a spec with a FaultSpec armed")
    if program is None:
        if spec.kernel is None:
            raise ValueError("faulty specs without a kernel need an explicit program=")
        from repro.experiments.runner import cached_kernel_trace

        program, trace = cached_kernel_trace(spec.kernel, spec.scale)
    elif trace is None:
        trace = run_program(program, max_instructions=spec.max_instructions)

    golden_memory = _golden_final_memory(
        program,
        kernel=spec.kernel,
        scale=spec.scale,
        max_instructions=spec.max_instructions,
    )

    model = _build_model(spec, program)
    _arm(model, fault)
    diverged_at = _stream_replay(trace, model, fault)

    faulty_trace: Optional[FunctionalTrace] = None
    extra_events: List[str] = []
    if diverged_at is None:
        model.flush()
        stream_match = True
        faulty_instructions = len(trace)
    else:
        model, faulty_trace, extra_events = _full_replay(
            spec, program, fault, len(trace)
        )
        model.flush()
        stream_match = not extra_events and _streams_match(trace, faulty_trace)
        faulty_instructions = len(faulty_trace)
    state_match = model.backing.same_contents(golden_memory)

    events = list(model.events) + extra_events
    if fault.target == "dl1":
        armed = model.cache.armed_fault()
        triggered = bool(armed is not None and armed.triggered)
        live = bool(armed is not None and armed.flipped)
        dirty = bool(armed is not None and armed.dirty)
    else:
        # The below-L1 store always holds the word, so an L2 flip that
        # fired always landed on live data.
        triggered = _l2_fault_fired(trace, fault)
        live = triggered
        dirty = False

    outcome = _classify(
        triggered=triggered,
        live=live,
        events=events,
        diverged=diverged_at is not None,
        stream_match=stream_match,
        state_match=state_match,
    )
    return ArchInjectionResult(
        spec=spec,
        outcome=outcome,
        triggered=triggered,
        resident=live,
        dirty_at_injection=dirty,
        diverged=diverged_at is not None,
        events=tuple(events),
        golden_instructions=len(trace),
        faulty_instructions=faulty_instructions,
        faulty_trace=faulty_trace if keep_trace else None,
    )


def _l2_fault_fired(trace: FunctionalTrace, fault: FaultSpec) -> bool:
    """Whether the run reaches the L2 fault's injection ordinal at all."""
    ops = sum(1 for dyn in trace.instructions if dyn.address is not None)
    return ops >= fault.at_access


# ---------------------------------------------------------------------- #
# batched replay backend                                                 #
# ---------------------------------------------------------------------- #
#: (kernel, scale) -> lean golden run shared by every fault in a group.
_LEAN_GOLDEN_CACHE: Dict[Tuple[str, float], "GoldenRun"] = {}
_LEAN_GOLDEN_CACHE_MAX = 8


def lean_golden_for_kernel(kernel: str, scale: float) -> "GoldenRun":
    """Build (or fetch) the lean golden artefacts of one kernel.

    The batched path's replacement for ``cached_kernel_trace`` +
    ``_golden_final_memory``: one pre-decoded execution records the PC
    stream, memory-op stream, store history, snapshots and final image —
    everything triage and suffix-resume consume — without ever
    materialising per-instruction trace objects.
    """
    from repro.campaign.lean_sim import golden_pass

    key = (kernel, scale)
    cached = lru_get(_LEAN_GOLDEN_CACHE, key)
    if cached is None:
        from repro.workloads import build_kernel

        with phase_timer("golden"):
            cached = golden_pass(build_kernel(kernel, scale=scale))
        lru_put(_LEAN_GOLDEN_CACHE, key, cached, _LEAN_GOLDEN_CACHE_MAX)
    return cached


def warm_lean_golden(kernels, scales) -> None:
    """Preload golden artefacts (process-pool initializer hook).

    Best-effort: a kernel that fails to warm simply warms lazily on its
    first job — an initializer exception would poison the whole pool.
    """
    for kernel in kernels:
        for scale in scales:
            try:
                lean_golden_for_kernel(kernel, scale)
            except Exception:  # noqa: BLE001 - warming must never kill a worker
                continue


def _analytic_result(
    spec: SimulationSpec, verdict, golden_instructions: int
) -> ArchInjectionResult:
    return ArchInjectionResult(
        spec=spec,
        outcome=ArchOutcome(verdict.outcome),
        triggered=verdict.triggered,
        resident=verdict.resident,
        dirty_at_injection=verdict.dirty_at_injection,
        diverged=verdict.diverged,
        events=tuple(verdict.events),
        golden_instructions=golden_instructions,
        faulty_instructions=golden_instructions + verdict.instruction_delta,
        replay_mode="analytical",
    )


def _run_residue(
    spec: SimulationSpec, golden, geometry, plan
) -> ArchInjectionResult:
    """Execute one diverging fault via snapshot suffix-resume."""
    from repro.campaign.lean_sim import (
        memories_equal,
        replay_set_state,
        resume_faulty,
    )

    fault = spec.fault
    wa = fault.word_address & ~0x3
    set_state = replay_set_state(
        golden,
        set_index=(wa >> geometry.line_bits) & geometry.set_mask,
        line_bits=geometry.line_bits,
        set_mask=geometry.set_mask,
        ways=geometry.ways,
        write_allocate=geometry.write_allocate,
        write_back=geometry.write_back,
        until_op=plan.divergence_op,
    )
    golden_len = golden.instructions
    limit = min(spec.max_instructions, 4 * golden_len + 10_000)
    run = resume_faulty(
        golden,
        divergence_instr=plan.divergence_instr,
        fault_wa=wa,
        cache_xor=plan.cache_xor,
        backing_value=plan.backing_value,
        resident=plan.resident_before,
        set_state=set_state,
        line_bits=geometry.line_bits,
        set_mask=geometry.set_mask,
        limit=limit,
    )
    state_match = memories_equal(run.final_mem, golden.mem_final)
    is_l2 = fault.target == "l2"
    outcome = _classify(
        triggered=True,
        live=True,
        events=run.extra_events,
        diverged=True,
        stream_match=run.stream_matches_golden,
        state_match=state_match,
    )
    return ArchInjectionResult(
        spec=spec,
        outcome=outcome,
        triggered=True,
        resident=True,
        dirty_at_injection=False if is_l2 else plan.dirty_at_injection,
        diverged=True,
        events=tuple(run.extra_events),
        golden_instructions=golden_len,
        faulty_instructions=run.faulty_instructions,
        replay_mode="streamed",
    )


def run_injection_batch(
    specs,
    *,
    program: Optional[Program] = None,
) -> List[ArchInjectionResult]:
    """Classify a batch of fault injections against shared golden state.

    The batch is grouped by (kernel, scale); each group derives its
    golden artefacts (lean golden run, per-word cache timelines) once.
    An analytical triage pass then classifies every dead-on-arrival or
    code-healed flip with zero re-execution, batching the corrupted
    codeword decodes through the vectorised
    :meth:`~repro.ecc.codec.EccCode.decode_many`; only faults whose
    corruption becomes load-visible are executed, via snapshot
    suffix-resume.  Points outside the proven triage tree fall back to
    the classic per-point :func:`run_injection`, so the batch entry
    point is safe for *any* spec mix.

    Results come back in input order with payloads byte-identical to
    the per-point path (differentially tested over full grids).
    """
    from repro.campaign import triage as _triage
    from repro.campaign.lean_sim import golden_pass
    from repro.campaign.timeline import build_timelines

    specs = list(specs)
    results: List[Optional[ArchInjectionResult]] = [None] * len(specs)

    groups: Dict[Tuple[Optional[str], float], List[int]] = {}
    for index, spec in enumerate(specs):
        if spec.fault is None:
            raise ValueError("run_injection_batch needs specs with faults armed")
        groups.setdefault((spec.kernel, spec.scale), []).append(index)

    shared_golden = None
    if program is not None:
        shared_golden = golden_pass(
            program, max_instructions=min(s.max_instructions for s in specs)
        )

    for (kernel, scale), indices in groups.items():
        if shared_golden is not None:
            golden = shared_golden
        elif kernel is None:
            raise ValueError(
                "faulty specs without a kernel need an explicit program="
            )
        else:
            golden = lean_golden_for_kernel(kernel, scale)
        golden_len = golden.instructions
        triage_started = time.perf_counter()

        # Pass 1: resolve each point's geometry/code, collect the words
        # every timeline walk must watch.
        contexts: List[Optional[tuple]] = []
        fallback: List[int] = []
        geometry_words: Dict[object, set] = {}
        for index in indices:
            spec = specs[index]
            fault = spec.fault
            policy = spec.resolved_policy()
            hierarchy = spec.core_config().resolved_hierarchy_config()
            geometry = _triage.geometry_for(hierarchy.l1d)
            if geometry is None or hierarchy.l1d.line_bytes < 4:
                fallback.append(index)
                contexts.append(None)
                continue
            wa = fault.word_address & ~0x3
            code = (
                dl1_code_for_policy(policy)
                if fault.target == "dl1"
                else l2_code_for_policy(policy)
            )
            geometry_words.setdefault(geometry, set()).add(wa)
            contexts.append((index, spec, fault, geometry, wa, code))

        timelines = {
            geometry: build_timelines(golden, geometry, words)
            for geometry, words in geometry_words.items()
        }

        # Pass 2: derive every corrupted codeword, batched per code.
        by_code: Dict[str, tuple] = {}
        point_decode_slot: Dict[int, Tuple[str, int]] = {}
        golden_values: Dict[int, int] = {}
        for context in contexts:
            if context is None:
                continue
            index, spec, fault, geometry, wa, code = context
            events = timelines[geometry][wa]
            if fault.target == "dl1":
                a_eff = max(1, fault.at_access)
                value = golden.value_at(wa, a_eff)
            else:
                _, _, _, last_sync = _triage._state_before(
                    events, max(1, fault.at_access),
                    write_back=geometry.write_back,
                )
                if geometry.write_back:
                    value = _triage._golden_backing(golden, wa, last_sync)
                else:
                    value = golden.value_at(wa, max(1, fault.at_access))
            golden_values[index] = value
            bit = fault.bit % code.total_bits
            entry = by_code.setdefault(code.name, (code, [], []))
            entry[1].append(index)
            point_decode_slot[index] = (code.name, len(entry[1]) - 1)
            entry[2].append(value)

        decode_results: Dict[int, DecodeResult] = {}
        for code_name, (code, code_indices, values) in by_code.items():
            codewords = code.encode_many(values)
            flipped = [
                codeword ^ (1 << (specs[i].fault.bit % code.total_bits))
                for codeword, i in zip(codewords, code_indices)
            ]
            for i, decoded in zip(code_indices, code.decode_many(flipped)):
                decode_results[i] = decoded
        observe_phase("triage", time.perf_counter() - triage_started)

        # Pass 3: triage; execute only the residue.
        for context in contexts:
            if context is None:
                continue
            index, spec, fault, geometry, wa, code = context
            events = timelines[geometry][wa]
            if fault.target == "dl1":
                verdict = _triage.triage_dl1(
                    golden, geometry, wa, fault.at_access, events,
                    decode_results[index], golden_values[index],
                )
            else:
                verdict = _triage.triage_l2(
                    golden, geometry, wa, fault.at_access, events,
                    decode_results[index], golden_values[index],
                )
            if verdict is None:
                fallback.append(index)
            elif isinstance(verdict, _triage.ResiduePlan):
                with phase_timer("residue"):
                    results[index] = _run_residue(spec, golden, geometry, verdict)
            else:
                results[index] = _analytic_result(spec, verdict, golden_len)

        for index in fallback:
            result = run_injection(specs[index], program=program)
            result.replay_mode = "full"
            results[index] = result

    return [result for result in results if result is not None]


def simulate_faulty_spec(
    spec: SimulationSpec,
    *,
    program: Optional[Program] = None,
    trace: Optional[FunctionalTrace] = None,
):
    """Full :func:`repro.simulation.simulate_spec` semantics for fault specs.

    Runs the architectural injection, then times the *actual* dynamic
    stream the faulty machine executed (the golden one when the fault
    never diverted execution), so the returned
    :class:`~repro.simulation.SimulationResult` carries both the usual
    timing result and the injection classification (``result.injection``).
    """
    from repro.simulation import simulate_spec

    if program is None and spec.kernel is not None:
        from repro.experiments.runner import cached_kernel_trace

        program, trace = cached_kernel_trace(spec.kernel, spec.scale)
    injection = run_injection(spec, program=program, trace=trace, keep_trace=True)
    timed_trace = injection.faulty_trace if injection.faulty_trace is not None else trace
    result = simulate_spec(spec.with_fault(None), program=program, trace=timed_trace)
    result.spec = spec
    result.injection = injection
    return result
