"""Architectural fault-injection campaign engine.

This package turns the codec-level fault experiments into what the paper
actually argues about: soft errors landing in *live* DL1/L2 lines during
real kernel runs, observed end to end — masking, correction, detection,
propagation into the memory image (SDC) and pure timing deviations.

* :mod:`repro.campaign.replay` — one injection: arm a
  :class:`~repro.scenarios.spec.FaultSpec` in the cache arrays, replay
  the kernel, classify architecturally against the golden run.
* :mod:`repro.campaign.sampling` — deterministic stratified sampling of
  (injection cycle × cache word × bit) points per stratum of the sweep
  grid (kernel × policy × target × scenario × scale), with an O(N)
  per-stratum sample cursor.
* :mod:`repro.campaign.engine` — the campaign driver: declarative
  multi-dimensional sweeps (DL1/L2 targets, named interference
  scenarios, scales), batching, Wilson confidence intervals with early
  stopping, process-pool sharding, per-dimension marginals, and
  checkpoint/resume through the content-addressed
  :class:`~repro.store.ResultStore`.
* :mod:`repro.campaign.stats` — Wilson score intervals.
* :mod:`repro.campaign.errors` — the failure taxonomy (``PointTimeout``,
  ``WorkerCrash``, ``ReplayDivergence``, ``StoreCorruption``,
  ``CampaignInterrupted``) the execution supervisor quarantines poison
  points under.
* :mod:`repro.campaign.chaos` — deterministic harness-fault injection
  (kill a worker at point N, hang a point past the watchdog, corrupt a
  store row) that makes the fault-tolerance layer testable end to end.

Typical use::

    from repro.campaign import CampaignConfig, run_campaign
    from repro.store import ResultStore

    config = CampaignConfig(kernels=("matrix", "pntrch"), trials=120)
    with ResultStore("campaign.sqlite") as store:
        result = run_campaign(config, store=store, resume=True)
    print(result.render())
"""

from repro.campaign.chaos import (
    ChaosDirective,
    ChaosPlan,
    corrupt_store_row,
    parse_chaos,
)
from repro.campaign.engine import (
    FIGURE8_POLICY_VALUES,
    OUTCOME_KEYS,
    CampaignConfig,
    CampaignResult,
    StratumSummary,
    analytical_reference,
    run_campaign,
)
from repro.campaign.errors import (
    CampaignError,
    CampaignInterrupted,
    PointTimeout,
    QuarantinedPoint,
    ReplayDivergence,
    StoreCorruption,
    SupervisorStats,
    WorkerCrash,
)
from repro.campaign.replay import (
    ArchInjectionResult,
    ArchOutcome,
    Dl1ContentModel,
    RawWordCode,
    dl1_code_for_policy,
    l2_code_for_policy,
    run_injection,
    run_injection_batch,
    simulate_faulty_spec,
    warm_lean_golden,
)
from repro.campaign.sampling import (
    DEFAULT_TARGET,
    ISOLATION_SCENARIO,
    KernelFaultSpace,
    clear_sample_cursors,
    kernel_fault_space,
    point_draw_count,
    replay_group_key,
    reset_draw_count,
    sample_fault_groups,
    sample_faults,
    stratum_identity,
    target_codeword_bits,
)
from repro.campaign.stats import wilson_half_width, wilson_interval

__all__ = [
    "DEFAULT_TARGET",
    "FIGURE8_POLICY_VALUES",
    "ISOLATION_SCENARIO",
    "OUTCOME_KEYS",
    "ArchInjectionResult",
    "ArchOutcome",
    "CampaignConfig",
    "CampaignError",
    "CampaignInterrupted",
    "CampaignResult",
    "ChaosDirective",
    "ChaosPlan",
    "Dl1ContentModel",
    "KernelFaultSpace",
    "PointTimeout",
    "QuarantinedPoint",
    "RawWordCode",
    "ReplayDivergence",
    "StoreCorruption",
    "StratumSummary",
    "SupervisorStats",
    "WorkerCrash",
    "corrupt_store_row",
    "parse_chaos",
    "analytical_reference",
    "clear_sample_cursors",
    "dl1_code_for_policy",
    "kernel_fault_space",
    "l2_code_for_policy",
    "point_draw_count",
    "reset_draw_count",
    "run_campaign",
    "run_injection",
    "run_injection_batch",
    "replay_group_key",
    "sample_fault_groups",
    "sample_faults",
    "stratum_identity",
    "target_codeword_bits",
    "simulate_faulty_spec",
    "warm_lean_golden",
    "wilson_half_width",
    "wilson_interval",
]
