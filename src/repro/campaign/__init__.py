"""Architectural fault-injection campaign engine.

This package turns the codec-level fault experiments into what the paper
actually argues about: soft errors landing in *live* DL1/L2 lines during
real kernel runs, observed end to end — masking, correction, detection,
propagation into the memory image (SDC) and pure timing deviations.

* :mod:`repro.campaign.replay` — one injection: arm a
  :class:`~repro.scenarios.spec.FaultSpec` in the cache arrays, replay
  the kernel, classify architecturally against the golden run.
* :mod:`repro.campaign.sampling` — deterministic stratified sampling of
  (injection cycle × cache word × bit) points per kernel × policy.
* :mod:`repro.campaign.engine` — the campaign driver: batching, Wilson
  confidence intervals with early stopping, process-pool sharding, and
  checkpoint/resume through the content-addressed
  :class:`~repro.store.ResultStore`.
* :mod:`repro.campaign.stats` — Wilson score intervals.

Typical use::

    from repro.campaign import CampaignConfig, run_campaign
    from repro.store import ResultStore

    config = CampaignConfig(kernels=("matrix", "pntrch"), trials=120)
    with ResultStore("campaign.sqlite") as store:
        result = run_campaign(config, store=store, resume=True)
    print(result.render())
"""

from repro.campaign.engine import (
    FIGURE8_POLICY_VALUES,
    OUTCOME_KEYS,
    CampaignConfig,
    CampaignResult,
    StratumSummary,
    analytical_reference,
    run_campaign,
)
from repro.campaign.replay import (
    ArchInjectionResult,
    ArchOutcome,
    Dl1ContentModel,
    RawWordCode,
    dl1_code_for_policy,
    run_injection,
    simulate_faulty_spec,
)
from repro.campaign.sampling import (
    KernelFaultSpace,
    kernel_fault_space,
    sample_faults,
)
from repro.campaign.stats import wilson_half_width, wilson_interval

__all__ = [
    "FIGURE8_POLICY_VALUES",
    "OUTCOME_KEYS",
    "ArchInjectionResult",
    "ArchOutcome",
    "CampaignConfig",
    "CampaignResult",
    "Dl1ContentModel",
    "KernelFaultSpace",
    "RawWordCode",
    "StratumSummary",
    "analytical_reference",
    "dl1_code_for_policy",
    "kernel_fault_space",
    "run_campaign",
    "run_injection",
    "sample_faults",
    "simulate_faulty_spec",
    "wilson_half_width",
    "wilson_interval",
]
