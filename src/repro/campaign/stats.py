"""Statistical helpers for sampled fault-injection campaigns.

A campaign estimates per-stratum outcome *rates* (SDC, corrected, ...)
from a finite sample, so every reported rate carries a Wilson score
interval — the standard small-sample binomial interval, well behaved at
rates of exactly 0 or 1 (which the SECDED strata hit by design).
"""

from __future__ import annotations

import math
from typing import Tuple

#: Two-sided z value for a 95 % interval, the campaign default.
DEFAULT_Z = 1.96


def wilson_interval(successes: int, trials: int, *, z: float = DEFAULT_Z) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)``; ``(0.0, 1.0)`` when ``trials`` is zero (no
    information).  Monotone in ``successes`` and always within [0, 1].
    """
    if trials <= 0:
        return (0.0, 1.0)
    if successes < 0 or successes > trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
    n = float(trials)
    p = successes / n
    z2 = z * z
    denominator = 1.0 + z2 / n
    centre = p + z2 / (2.0 * n)
    margin = z * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
    low = (centre - margin) / denominator
    high = (centre + margin) / denominator
    return (max(0.0, low), min(1.0, high))


def wilson_half_width(successes: int, trials: int, *, z: float = DEFAULT_Z) -> float:
    """Half the width of the Wilson interval (the early-stopping metric)."""
    low, high = wilson_interval(successes, trials, z=z)
    return (high - low) / 2.0
