"""Metadata-only cache timeline walks for the batched replay backend.

The key invariant the batched path exploits: the DL1's tag / dirty /
replacement state depends only on the *address stream*, never on data
values — and the address stream of a faulty run equals the golden one
right up to its divergence point.  So one metadata-only walk of the
golden memory-op stream (no data, no ECC, no register file) yields, for
every word a batch of faults targets, the exact sequence of events that
decides the fault's fate: when the word's line is filled (reads the
backing store), evicted clean (corruption discarded) or dirty
(corruption written back), when the word itself is loaded (corruption
becomes architecturally visible) or stored (corruption overwritten),
and what the end-of-run flush does to it.

One walk covers *all* faulted words of a batch simultaneously — the
cost is one pass over the op stream per (kernel, scale, write-policy)
group, a few milliseconds, shared by hundreds of fault points.

The same invariant carries the timeline-delta walk
(:func:`repro.campaign.triage._walk_divergent`): as long as that walk
proves the faulty PC stream equal to the golden one (or equal modulo a
pure-NOP reconvergence), these per-word event timelines remain valid
*past* the first corrupted-value load, so the faulted word's
cache/backing masks can keep evolving analytically instead of streaming
the point through ``resume_faulty``.

The per-set metadata model is :class:`~repro.campaign.lean_sim.OneSetModel`,
the same replica of ``SetAssociativeCache`` set behaviour the faulty
resume path uses, so the two stay in lock-step by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.campaign.lean_sim import GoldenRun, OneSetModel

# Event kinds, ordered as appended while processing one op:
# evictions precede fills precede the data access itself (mirroring
# Dl1ContentModel._access -> load/store ordering).
EV_EVICT_CLEAN = 0
EV_EVICT_DIRTY = 1
EV_FILL = 2  #: payload a = 1 when the allocating access is a WB store
EV_LINE_STORE = 3  #: store to a *sibling* word of the same line
EV_LOAD = 4  #: payload a = size, b = bit shift
EV_STORE = 5  #: payload a = size, b = bit shift
EV_END_FLUSH = 6  #: resident + dirty at end of run: flushed (writeback)
EV_END_DISCARD = 7  #: resident + clean at end of run: discarded

#: One event: (op ordinal, kind, a, b).  Ordinals are 1-based; the
#: end-of-run events use ordinal ``total_ops + 1``.
Event = Tuple[int, int, int, int]

#: Structural event kinds: cache-metadata traffic (fills / evictions /
#: sibling-word stores) as opposed to data accesses of the word itself.
#: The timeline-delta walk consumes these between interpreted ops.
STRUCTURAL_EVENTS = frozenset(
    {EV_EVICT_CLEAN, EV_EVICT_DIRTY, EV_FILL, EV_LINE_STORE}
)


def subword_mask(size: int, shift: int) -> int:
    """32-bit mask of the bytes a ``size``-byte access at bit ``shift``
    touches inside its word (the whole word for ``size == 4``)."""
    return (((1 << (8 * size)) - 1) << shift) & 0xFFFFFFFF


@dataclass(frozen=True)
class CacheGeometry:
    """The DL1 shape + write policy one timeline walk models."""

    line_bits: int
    set_bits: int
    ways: int
    write_back: bool
    write_allocate: bool = True

    @property
    def set_mask(self) -> int:
        return (1 << self.set_bits) - 1

    @property
    def line_mask(self) -> int:
        return ~((1 << self.line_bits) - 1)


def build_timelines(
    golden: GoldenRun,
    geometry: CacheGeometry,
    words: Iterable[int],
) -> Dict[int, List[Event]]:
    """Per-word event timelines over the golden op stream.

    ``words`` are the word addresses the batch's faults target; the
    returned dict maps each to its ordered event list.
    """
    line_bits = geometry.line_bits
    set_mask = geometry.set_mask
    line_mask = geometry.line_mask
    write_back = geometry.write_back

    timelines: Dict[int, List[Event]] = {wa: [] for wa in words}
    lines: Dict[int, List[int]] = {}
    for wa in timelines:
        lines.setdefault(wa & line_mask, []).append(wa)

    sets: Dict[int, OneSetModel] = {}
    op_wa = golden.op_wa
    op_store = golden.op_store
    op_size = golden.op_size
    op_shift = golden.op_shift
    lines_get = lines.get

    for position in range(len(op_wa)):
        wa = op_wa[position]
        is_store = op_store[position]
        line_address = wa & line_mask
        set_index = (wa >> line_bits) & set_mask
        model = sets.get(set_index)
        if model is None:
            model = OneSetModel(
                geometry.ways,
                write_allocate=geometry.write_allocate,
                write_back=write_back,
            )
            sets[set_index] = model
        evicted_line, evicted_dirty, filled = model.access(line_address, is_store)
        ordinal = position + 1
        if evicted_line is not None:
            watched = lines_get(evicted_line)
            if watched:
                kind = EV_EVICT_DIRTY if evicted_dirty else EV_EVICT_CLEAN
                for watched_wa in watched:
                    timelines[watched_wa].append((ordinal, kind, 0, 0))
        if filled:
            watched = lines_get(line_address)
            if watched:
                dirty0 = 1 if (is_store and write_back) else 0
                for watched_wa in watched:
                    timelines[watched_wa].append((ordinal, EV_FILL, dirty0, 0))
        if is_store:
            watched = lines_get(line_address)
            if watched:
                for watched_wa in watched:
                    if watched_wa == wa:
                        timelines[wa].append(
                            (ordinal, EV_STORE, op_size[position], op_shift[position])
                        )
                    elif write_back:
                        timelines[watched_wa].append((ordinal, EV_LINE_STORE, 0, 0))
        elif wa in timelines:
            timelines[wa].append(
                (ordinal, EV_LOAD, op_size[position], op_shift[position])
            )

    # End-of-run flush: every line still resident either writes back
    # (dirty) or is discarded (clean).
    end_ordinal = len(op_wa) + 1
    for line_address, watched in lines.items():
        set_index = (line_address >> line_bits) & set_mask
        model = sets.get(set_index)
        if model is None or not model.resident(line_address):
            continue
        kind = EV_END_FLUSH if model.line_dirty(line_address) else EV_END_DISCARD
        for watched_wa in watched:
            timelines[watched_wa].append((end_ordinal, kind, 0, 0))
    return timelines
