"""Analytical fault triage for the batched replay backend.

Given the golden artefacts of one (kernel, scale) group — the lean
golden run and the per-word cache event timelines — this module
classifies most fault points with *zero* re-execution:

* a flip that fires while the word's line is not resident corrupts no
  live data → ``masked``;
* a SECDED-protected flip is healed (and recorded) by whichever decode
  touches it first: a load or sub-word RMW store (``load_corrected``),
  a dirty writeback (``writeback_corrected``) — or dies silently under
  a full-word overwrite / clean eviction → ``corrected`` / ``masked``;
* a parity-protected flip under write-through is refetched on first
  read (``load_detected_refetch``) or silently discarded → ``detected``
  / ``masked``;
* an unprotected (raw) flip is walked as an XOR mask through the
  word's event stream — overwrites shrink it, dirty writebacks push it
  into the backing store, clean evictions discard it, fills re-import
  it — until it either dies (``masked``), survives to the final image
  unread (``sdc``), or becomes visible to a load;
* an L2-targeted flip is superseded by the first backing write, healed
  by the first backing read under a SECDED L2 (``l2_corrected``), or —
  under the unprotected baseline — enters the DL1 on first fill and
  joins the same raw mask walk.

Only the last bullet's endpoint — a load that actually observes a
corrupted value — needs execution; those points come back as
:class:`ResiduePlan`\\ s and are re-run from the nearest golden snapshot
by :func:`repro.campaign.lean_sim.resume_faulty`.

Any situation outside the proven decision tree (non-LRU replacement,
detected-uncorrectable on a write-back policy, raw words under
write-through…) returns ``None`` → the caller falls back to the classic
per-point :func:`repro.campaign.replay.run_injection`, so correctness
never depends on triage coverage.

The equivalence of every branch against the executed path is pinned by
the full-grid differential tests in ``tests/test_batched_replay.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.lean_sim import GoldenRun
from repro.campaign.timeline import (
    EV_END_DISCARD,
    EV_END_FLUSH,
    EV_EVICT_CLEAN,
    EV_EVICT_DIRTY,
    EV_FILL,
    EV_LINE_STORE,
    EV_LOAD,
    EV_STORE,
    CacheGeometry,
    Event,
)
from repro.ecc.codec import DecodeResult, DecodeStatus
from repro.memory.config import CacheConfig, ReplacementPolicy, WritePolicy


@dataclass
class AnalyticOutcome:
    """A point fully classified from the golden artefacts."""

    outcome: str  #: ArchOutcome value string
    triggered: bool
    resident: bool
    dirty_at_injection: bool
    events: Tuple[str, ...] = ()


@dataclass
class ResiduePlan:
    """A point whose corruption becomes load-visible: needs execution.

    Carries the exact machine state at the divergence point so
    :func:`~repro.campaign.lean_sim.resume_faulty` can resume from the
    nearest golden snapshot instead of re-running from scratch.
    """

    divergence_op: int  #: 1-based ordinal of the first corrupted load
    divergence_instr: int  #: retired-instruction index of that load
    cache_xor: int  #: XOR of the faulted word's cache copy vs golden
    backing_value: int  #: absolute below-DL1 value of the word
    resident_before: bool  #: line resident right before the diverging op
    dirty_at_injection: bool  #: payload flag (state when the flip landed)


#: Triage verdicts: fully classified, needs execution, or out of the
#: proven tree (``None`` → classic per-point fallback).
Verdict = Optional[Union[AnalyticOutcome, ResiduePlan]]


def geometry_for(config: CacheConfig) -> Optional[CacheGeometry]:
    """Timeline/resume geometry for a DL1 config; None if unsupported."""
    if config.replacement is not ReplacementPolicy.LRU:
        return None
    return CacheGeometry(
        line_bits=config.line_bytes.bit_length() - 1,
        set_bits=config.sets.bit_length() - 1,
        ways=config.ways,
        write_back=config.write_policy is WritePolicy.WRITE_BACK,
        write_allocate=config.write_allocate,
    )


# --------------------------------------------------------------------- #
# residency / dirty state at the injection point                        #
# --------------------------------------------------------------------- #
def _state_before(
    events: Sequence[Event], ordinal: int, *, write_back: bool = True
) -> Tuple[int, bool, bool, Optional[int]]:
    """(scan position, resident, dirty, last backing-sync ordinal) right
    before op ``ordinal`` — i.e. after every event with ordinal < it."""
    resident = False
    dirty = False
    last_sync: Optional[int] = None
    position = 0
    for position, (ord_, kind, a, _b) in enumerate(events):
        if ord_ >= ordinal:
            return position, resident, dirty, last_sync
        if kind == EV_FILL:
            resident = True
            dirty = bool(a)
        elif kind in (EV_EVICT_CLEAN, EV_EVICT_DIRTY):
            if kind == EV_EVICT_DIRTY:
                last_sync = ord_
            resident = False
            dirty = False
        elif kind in (EV_STORE, EV_LINE_STORE):
            if write_back:
                dirty = True  # write-through stores never dirty a line
    return len(events), resident, dirty, last_sync


def _golden_backing(
    golden: GoldenRun, wa: int, last_sync: Optional[int]
) -> int:
    """Golden run's below-DL1 value of ``wa`` after its last writeback."""
    if last_sync is None:
        return golden.mem_init.get(wa, 0)
    return golden.value_at(wa, last_sync)


# --------------------------------------------------------------------- #
# protected-code walks (single decode heals or discards the flip)       #
# --------------------------------------------------------------------- #
def _walk_corrected(
    events: Sequence[Event], start: int
) -> Tuple[str, Tuple[str, ...]]:
    """SECDED-style flip: first decode of the word heals it."""
    for ord_, kind, a, _b in events[start:]:
        if kind == EV_LOAD:
            return "corrected", ("load_corrected",)
        if kind == EV_STORE:
            if a == 4:
                return "masked", ()  # full overwrite, never decoded
            return "corrected", ("load_corrected",)  # RMW decode
        if kind in (EV_EVICT_DIRTY, EV_END_FLUSH):
            return "corrected", ("writeback_corrected",)
        if kind in (EV_EVICT_CLEAN, EV_END_DISCARD):
            return "masked", ()
    return "masked", ()


def _walk_detected_wt(
    events: Sequence[Event], start: int
) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """Parity flip under write-through: first read refetches clean data."""
    for ord_, kind, a, _b in events[start:]:
        if kind == EV_LOAD:
            return "detected", ("load_detected_refetch",)
        if kind == EV_STORE:
            if a == 4:
                return "masked", ()
            return "detected", ("load_detected_refetch",)  # RMW decode
        if kind == EV_EVICT_CLEAN or kind == EV_END_DISCARD:
            return "masked", ()
        if kind in (EV_EVICT_DIRTY, EV_END_FLUSH, EV_LINE_STORE):
            return None  # dirty line under WT: outside the proven tree
    return "masked", ()


# --------------------------------------------------------------------- #
# raw (unprotected) mask walk                                           #
# --------------------------------------------------------------------- #
def _walk_raw(
    golden: GoldenRun,
    wa: int,
    events: Sequence[Event],
    start: int,
    *,
    cache_mask: int,
    backing_mask: int,
    resident: bool,
    last_sync: Optional[int],
    dirty_at_injection: bool,
) -> Verdict:
    """Track an unprotected corruption as XOR masks on the word's two
    copies (cache / backing) through its event stream.

    The decode of a raw word is the identity, so nothing is ever healed
    or reported: the mask shrinks under stores, moves to the backing
    store on dirty writebacks, dies on clean evictions and full
    overwrites, re-enters on fills — until a load reads corrupted bits
    (→ :class:`ResiduePlan`) or the run ends (→ ``sdc`` / ``masked``).
    """
    resident_at_fill_ord: Optional[int] = None
    for ord_, kind, a, b in events[start:]:
        if not cache_mask and not backing_mask:
            return AnalyticOutcome(
                outcome="masked",
                triggered=True,
                resident=True,
                dirty_at_injection=dirty_at_injection,
            )
        if kind == EV_LOAD:
            load_mask = ((1 << (8 * a)) - 1) << b
            if resident and cache_mask & load_mask:
                return ResiduePlan(
                    divergence_op=ord_,
                    divergence_instr=golden.op_instr[ord_ - 1],
                    cache_xor=cache_mask,
                    backing_value=_golden_backing(golden, wa, last_sync)
                    ^ backing_mask,
                    resident_before=resident_at_fill_ord != ord_,
                    dirty_at_injection=dirty_at_injection,
                )
        elif kind == EV_STORE:
            if a == 4:
                cache_mask = 0
            else:
                cache_mask &= ~(((1 << (8 * a)) - 1) << b)
        elif kind == EV_EVICT_DIRTY:
            backing_mask = cache_mask
            last_sync = ord_
            resident = False
            cache_mask = 0
        elif kind == EV_EVICT_CLEAN:
            resident = False
            cache_mask = 0
        elif kind == EV_FILL:
            resident = True
            resident_at_fill_ord = ord_
            cache_mask = backing_mask
        elif kind == EV_END_FLUSH:
            backing_mask = cache_mask
        elif kind == EV_END_DISCARD:
            pass
        # EV_LINE_STORE only tracks dirtiness; the eviction events
        # already carry the resulting kind.
    if backing_mask:
        # Survived to the final architectural image without ever being
        # read: silent data corruption, with no error event and no
        # divergence (the classic path reaches the same verdict with
        # `state_match=False, events=[], diverged=False`).
        return AnalyticOutcome(
            outcome="sdc",
            triggered=True,
            resident=True,
            dirty_at_injection=dirty_at_injection,
        )
    return AnalyticOutcome(
        outcome="masked",
        triggered=True,
        resident=True,
        dirty_at_injection=dirty_at_injection,
    )


# --------------------------------------------------------------------- #
# per-target triage                                                     #
# --------------------------------------------------------------------- #
def triage_dl1(
    golden: GoldenRun,
    geometry: CacheGeometry,
    wa: int,
    at_access: int,
    events: Sequence[Event],
    decode: DecodeResult,
    golden_value: int,
) -> Verdict:
    """Classify one DL1-targeted flip; ``decode`` is the (batched)
    decode of the corrupted codeword, ``golden_value`` the word's
    golden value when the flip landed."""
    total_ops = golden.total_ops
    a_eff = max(1, at_access)
    if total_ops < a_eff:
        return AnalyticOutcome(
            outcome="masked", triggered=False, resident=False,
            dirty_at_injection=False,
        )
    start, resident, dirty, last_sync = _state_before(
        events, a_eff, write_back=geometry.write_back
    )
    if not resident:
        return AnalyticOutcome(
            outcome="masked", triggered=True, resident=False,
            dirty_at_injection=False,
        )
    if decode.status is DecodeStatus.CORRECTED:
        outcome, evs = _walk_corrected(events, start)
        return AnalyticOutcome(
            outcome=outcome, triggered=True, resident=True,
            dirty_at_injection=dirty, events=evs,
        )
    if decode.status is DecodeStatus.DETECTED_UNCORRECTABLE:
        if geometry.write_back or dirty:
            return None  # detected on dirty data: classic path decides
        walked = _walk_detected_wt(events, start)
        if walked is None:
            return None
        outcome, evs = walked
        return AnalyticOutcome(
            outcome=outcome, triggered=True, resident=True,
            dirty_at_injection=dirty, events=evs,
        )
    # CLEAN decode: a raw, unprotected word.
    if not geometry.write_back:
        return None  # raw words under write-through: unproven combination
    mask = (decode.data ^ golden_value) & 0xFFFFFFFF
    if mask == 0:
        return None  # a "flip" the decode cannot see: defer to classic
    return _walk_raw(
        golden, wa, events, start,
        cache_mask=mask, backing_mask=0, resident=True,
        last_sync=last_sync, dirty_at_injection=dirty,
    )


def triage_l2(
    golden: GoldenRun,
    geometry: CacheGeometry,
    wa: int,
    at_access: int,
    events: Sequence[Event],
    decode: DecodeResult,
    golden_backing_value: int,
) -> Verdict:
    """Classify one L2-targeted flip.

    ``decode`` is the L2 code's decode of the corrupted codeword that
    :meth:`Dl1ContentModel.inject_l2_fault` would have planted (encoded
    from ``golden_backing_value``, the backing copy at injection time).
    """
    total_ops = golden.total_ops
    # The classic path's `triggered` is `total_ops >= at_access` even in
    # the degenerate at_access < 1 case where the injection hook never
    # fires; replicate both the flag and the no-corruption behaviour.
    triggered = total_ops >= at_access
    if not triggered or at_access < 1:
        return AnalyticOutcome(
            outcome="masked", triggered=triggered, resident=triggered,
            dirty_at_injection=False,
        )
    position, resident, _dirty, last_sync = _state_before(
        events, at_access, write_back=geometry.write_back
    )
    write_back = geometry.write_back
    for index in range(position, len(events)):
        ord_, kind, a, _b = events[index]
        is_bwrite = (
            kind in (EV_EVICT_DIRTY, EV_END_FLUSH)
            or (not write_back and kind == EV_STORE)
        )
        if is_bwrite:
            # A backing write supersedes the not-yet-read corrupt
            # codeword; nothing was ever observed.
            return AnalyticOutcome(
                outcome="masked", triggered=True, resident=True,
                dirty_at_injection=False,
            )
        if kind == EV_FILL:
            # First backing read: the corrupt codeword is decoded.
            if decode.status is DecodeStatus.CORRECTED:
                return AnalyticOutcome(
                    outcome="corrected", triggered=True, resident=True,
                    dirty_at_injection=False, events=("l2_corrected",),
                )
            if decode.status is DecodeStatus.CLEAN:
                if not write_back:
                    return None
                mask = (decode.data ^ golden_backing_value) & 0xFFFFFFFF
                if mask == 0:
                    return None
                # The corrupt word is now both in the backing store and
                # in the freshly filled line: join the raw mask walk at
                # this fill (which re-processes the fill event itself).
                verdict = _walk_raw(
                    golden, wa, events, index,
                    cache_mask=0, backing_mask=mask, resident=False,
                    last_sync=last_sync, dirty_at_injection=False,
                )
                if isinstance(verdict, AnalyticOutcome):
                    verdict.resident = True  # L2 flips always hit live data
                return verdict
            return None  # detected-uncorrectable L2 read: classic decides
    # The corrupt codeword is never read nor overwritten: it stays in
    # the L2 array, the architectural backing image is untouched.
    return AnalyticOutcome(
        outcome="masked", triggered=True, resident=True,
        dirty_at_injection=False,
    )
