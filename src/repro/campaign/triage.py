"""Analytical fault triage for the batched replay backend.

Given the golden artefacts of one (kernel, scale) group — the lean
golden run and the per-word cache event timelines — this module
classifies most fault points with *zero* re-execution:

* a flip that fires while the word's line is not resident corrupts no
  live data → ``masked``;
* a SECDED-protected flip is healed (and recorded) by whichever decode
  touches it first: a load or sub-word RMW store (``load_corrected``),
  a dirty writeback (``writeback_corrected``) — or dies silently under
  a full-word overwrite / clean eviction → ``corrected`` / ``masked``;
* a parity-protected flip under write-through is refetched on first
  read (``load_detected_refetch``) or silently discarded → ``detected``
  / ``masked``;
* an unprotected (raw) flip is walked as an XOR mask through the
  word's event stream — overwrites shrink it, dirty writebacks push it
  into the backing store, clean evictions discard it, fills re-import
  it — until it either dies (``masked``), survives to the final image
  unread (``sdc``), or becomes visible to a load;
* an L2-targeted flip is superseded by the first backing write, healed
  by the first backing read under a SECDED L2 (``l2_corrected``), or —
  under the unprotected baseline — enters the DL1 on first fill and
  joins the same raw mask walk.

Only the last bullet's endpoint — a load that actually observes a
corrupted value — needs execution; those points come back as
:class:`ResiduePlan`\\ s and are re-run from the nearest golden snapshot
by :func:`repro.campaign.lean_sim.resume_faulty`.

Any situation outside the proven decision tree (non-LRU replacement,
detected-uncorrectable on a write-back policy, raw words under
write-through…) returns ``None`` → the caller falls back to the classic
per-point :func:`repro.campaign.replay.run_injection`, so correctness
never depends on triage coverage.

The equivalence of every branch against the executed path is pinned by
the full-grid differential tests in ``tests/test_batched_replay.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.lean_sim import (
    _M32,
    _OP_CALL,
    _OP_HALT,
    _OP_JUMP,
    _OP_LOAD,
    _OP_NOP,
    _OP_STORE,
    GoldenRun,
    _alu_eval,
    _branch_taken,
    golden_state_at,
)
from repro.campaign.timeline import (
    EV_END_DISCARD,
    EV_END_FLUSH,
    EV_EVICT_CLEAN,
    EV_EVICT_DIRTY,
    EV_FILL,
    EV_LINE_STORE,
    EV_LOAD,
    EV_STORE,
    CacheGeometry,
    Event,
    subword_mask,
)
from repro.ecc.codec import DecodeResult, DecodeStatus
from repro.isa.instructions import INSTRUCTION_BYTES
from repro.memory.config import CacheConfig, ReplacementPolicy, WritePolicy


@dataclass
class AnalyticOutcome:
    """A point fully classified from the golden artefacts."""

    outcome: str  #: ArchOutcome value string
    triggered: bool
    resident: bool
    dirty_at_injection: bool
    events: Tuple[str, ...] = ()
    #: True when a load *did* observe corrupted bits but the
    #: timeline-delta walk still proved the outcome without streaming.
    diverged: bool = False
    #: Faulty-minus-golden retired-instruction count; nonzero only for
    #: walk-proved stream deviations (NOP-reconvergent branch flips).
    instruction_delta: int = 0


@dataclass
class ResiduePlan:
    """A point whose corruption becomes load-visible: needs execution.

    Carries the exact machine state at the divergence point so
    :func:`~repro.campaign.lean_sim.resume_faulty` can resume from the
    nearest golden snapshot instead of re-running from scratch.
    """

    divergence_op: int  #: 1-based ordinal of the first corrupted load
    divergence_instr: int  #: retired-instruction index of that load
    cache_xor: int  #: XOR of the faulted word's cache copy vs golden
    backing_value: int  #: absolute below-DL1 value of the word
    resident_before: bool  #: line resident right before the diverging op
    dirty_at_injection: bool  #: payload flag (state when the flip landed)


#: Triage verdicts: fully classified, needs execution, or out of the
#: proven tree (``None`` → classic per-point fallback).
Verdict = Optional[Union[AnalyticOutcome, ResiduePlan]]


def geometry_for(config: CacheConfig) -> Optional[CacheGeometry]:
    """Timeline/resume geometry for a DL1 config; None if unsupported."""
    if config.replacement is not ReplacementPolicy.LRU:
        return None
    return CacheGeometry(
        line_bits=config.line_bytes.bit_length() - 1,
        set_bits=config.sets.bit_length() - 1,
        ways=config.ways,
        write_back=config.write_policy is WritePolicy.WRITE_BACK,
        write_allocate=config.write_allocate,
    )


# --------------------------------------------------------------------- #
# residency / dirty state at the injection point                        #
# --------------------------------------------------------------------- #
def _state_before(
    events: Sequence[Event], ordinal: int, *, write_back: bool = True
) -> Tuple[int, bool, bool, Optional[int]]:
    """(scan position, resident, dirty, last backing-sync ordinal) right
    before op ``ordinal`` — i.e. after every event with ordinal < it."""
    resident = False
    dirty = False
    last_sync: Optional[int] = None
    position = 0
    for position, (ord_, kind, a, _b) in enumerate(events):
        if ord_ >= ordinal:
            return position, resident, dirty, last_sync
        if kind == EV_FILL:
            resident = True
            dirty = bool(a)
        elif kind in (EV_EVICT_CLEAN, EV_EVICT_DIRTY):
            if kind == EV_EVICT_DIRTY:
                last_sync = ord_
            resident = False
            dirty = False
        elif kind in (EV_STORE, EV_LINE_STORE):
            if write_back:
                dirty = True  # write-through stores never dirty a line
    return len(events), resident, dirty, last_sync


def _golden_backing(
    golden: GoldenRun, wa: int, last_sync: Optional[int]
) -> int:
    """Golden run's below-DL1 value of ``wa`` after its last writeback."""
    if last_sync is None:
        return golden.mem_init.get(wa, 0)
    return golden.value_at(wa, last_sync)


# --------------------------------------------------------------------- #
# protected-code walks (single decode heals or discards the flip)       #
# --------------------------------------------------------------------- #
def _walk_corrected(
    events: Sequence[Event], start: int
) -> Tuple[str, Tuple[str, ...]]:
    """SECDED-style flip: first decode of the word heals it."""
    for ord_, kind, a, _b in events[start:]:
        if kind == EV_LOAD:
            return "corrected", ("load_corrected",)
        if kind == EV_STORE:
            if a == 4:
                return "masked", ()  # full overwrite, never decoded
            return "corrected", ("load_corrected",)  # RMW decode
        if kind in (EV_EVICT_DIRTY, EV_END_FLUSH):
            return "corrected", ("writeback_corrected",)
        if kind in (EV_EVICT_CLEAN, EV_END_DISCARD):
            return "masked", ()
    return "masked", ()


def _walk_detected_wt(
    events: Sequence[Event], start: int
) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """Parity flip under write-through: first read refetches clean data."""
    for ord_, kind, a, _b in events[start:]:
        if kind == EV_LOAD:
            return "detected", ("load_detected_refetch",)
        if kind == EV_STORE:
            if a == 4:
                return "masked", ()
            return "detected", ("load_detected_refetch",)  # RMW decode
        if kind == EV_EVICT_CLEAN or kind == EV_END_DISCARD:
            return "masked", ()
        if kind in (EV_EVICT_DIRTY, EV_END_FLUSH, EV_LINE_STORE):
            return None  # dirty line under WT: outside the proven tree
    return "masked", ()


# --------------------------------------------------------------------- #
# timeline-delta walk: prove load-visible corruptions without streaming #
# --------------------------------------------------------------------- #
#: Retired-instruction budget of one timeline-delta walk.  A walk that
#: would exceed it bails to the streamed residue path, so the budget
#: trades analytical coverage against worst-case walk cost; 0 disables
#: the walk entirely (every load-visible corruption streams).
TIMING_WALK_BUDGET = 100_000

#: Longest straight NOP run the reconvergence scan follows when a
#: corrupted condition code flips a branch.
_NOP_RECONVERGENCE_LIMIT = 64


def _nop_reconvergence(table, from_pc: int, to_pc: int) -> Optional[int]:
    """Number of straight fall-through NOPs leading from ``from_pc`` to
    ``to_pc``, or None when the path is not a short pure-NOP run."""
    count = 0
    pc = from_pc
    while count < _NOP_RECONVERGENCE_LIMIT:
        t = table.get(pc)
        if t is None or t[0] != _OP_NOP:
            return None
        pc = t[8]  # fall-through
        count += 1
        if pc == to_pc:
            return count
    return None


def _walk_divergent(
    golden: GoldenRun,
    wa: int,
    events: Sequence[Event],
    event_index: int,
    *,
    cache_mask: int,
    backing_mask: int,
    dirty_at_injection: bool,
    budget: Optional[int] = None,
) -> Optional[AnalyticOutcome]:
    """Prove a load-visible corruption's outcome without streaming it.

    Interprets the *golden* instruction stream from the diverging load
    onward (control flow taken from the recorded PC stream, data state
    re-seeded from the nearest snapshot) while tracking, exactly:

    * the faulty value of every tainted register — the golden value is
      in the interpreted register file, so every ALU op with tainted
      operands is evaluated once per machine and taints that die
      (``faulty == golden``) are dropped immediately;
    * the XOR delta of every word a tainted value was stored to
      (sub-word merges included), which later loads re-taint from;
    * the faulted word's cache/backing masks, continuing the raw-mask
      event walk — tainted stores *merge into* the cache mask instead of
      clearing it;
    * the faulty condition codes, only while they differ from golden.

    The faulty PC stream provably equals the golden one as long as no
    tainted value reaches an address computation, an indirect jump or a
    flipped branch.  The one provable deviation is a flipped branch
    whose divergent arm is a straight NOP run that reconverges with the
    other arm: the known fixed-penalty case, contributing a pure
    retired-instruction delta (→ ``timing`` when the final state
    matches).  Everything else returns None and the point streams
    through :func:`~repro.campaign.lean_sim.resume_faulty`; correctness
    never depends on walk coverage.
    """
    budget = TIMING_WALK_BUDGET if budget is None else budget
    if budget <= 0:
        return None
    ord0 = events[event_index][0]
    table = golden.table
    pcs = golden.pcs
    golden_len = len(pcs)
    i = golden.op_instr[ord0 - 1]
    regs, mem = golden_state_at(golden, i)
    mget = mem.get
    taint: Dict[int, int] = {}
    cc_f: Optional[Tuple[bool, bool, bool, bool]] = None
    delta: Dict[int, int] = {}
    k = ord0 - 1  # completed memory-op ordinal
    ei = event_index
    n_events = len(events)
    instr_delta = 0
    stream_diverged = False

    def pump() -> None:
        """Consume the faulted word's structural events up to op ``k``
        (the data access events at ``k`` are handled by the op itself)."""
        nonlocal ei, cache_mask, backing_mask
        while ei < n_events:
            e_ord, e_kind = events[ei][0], events[ei][1]
            if e_ord > k or (e_ord == k and e_kind in (EV_LOAD, EV_STORE)):
                return
            if e_kind == EV_FILL:
                cache_mask = backing_mask
            elif e_kind == EV_EVICT_DIRTY:
                backing_mask = cache_mask
                cache_mask = 0
            elif e_kind == EV_EVICT_CLEAN:
                cache_mask = 0
            # EV_LINE_STORE only tracks dirtiness; the eviction events
            # already carry the resulting kind.
            ei += 1

    while i < golden_len:
        if budget <= 0:
            return None
        budget -= 1
        pc = pcs[i]
        op, rd, rs1, rs2, imm, imm_u, uses_imm, size, fall, target, sx = table[pc]
        if op < 18:
            a_g = regs[rs1]
            b_g = imm_u if uses_imm else regs[rs2]
            r_g, flags_g = _alu_eval(op, a_g, b_g, imm_u)
            if rs1 in taint or (not uses_imm and rs2 in taint):
                r_f, flags_f = _alu_eval(
                    op,
                    taint.get(rs1, a_g),
                    b_g if uses_imm else taint.get(rs2, b_g),
                    imm_u,
                )
            else:
                r_f, flags_f = r_g, flags_g
            if flags_g is not None:
                cc_f = flags_f if flags_f != flags_g else None
            if rd:
                regs[rd] = r_g
                if r_f != r_g:
                    taint[rd] = r_f
                else:
                    taint.pop(rd, None)
        elif op == _OP_LOAD:
            if rs1 in taint or (not uses_imm and rs2 in taint):
                return None  # tainted address: access stream unprovable
            address = (regs[rs1] + (imm if uses_imm else regs[rs2])) & _M32
            word_address = address & ~0x3
            k += 1
            pump()
            word = mget(word_address, 0)
            if word_address == wa:
                ei += 1  # consume this op's EV_LOAD entry
                xor = cache_mask
            else:
                xor = delta.get(word_address, 0)
            if size == 4:
                raw_g = word
                raw_f = word ^ xor
            else:
                shift = (address & 0x3) * 8
                sub = 0xFF if size == 1 else 0xFFFF
                raw_g = (word >> shift) & sub
                raw_f = ((word ^ xor) >> shift) & sub
                if sx == 1:
                    if raw_g & 0x80:
                        raw_g |= 0xFFFFFF00
                    if raw_f & 0x80:
                        raw_f |= 0xFFFFFF00
                elif sx == 2:
                    if raw_g & 0x8000:
                        raw_g |= 0xFFFF0000
                    if raw_f & 0x8000:
                        raw_f |= 0xFFFF0000
            if rd:
                regs[rd] = raw_g
                if raw_f != raw_g:
                    taint[rd] = raw_f
                else:
                    taint.pop(rd, None)
        elif op == _OP_STORE:
            if rs1 in taint or (not uses_imm and rs2 in taint):
                return None  # tainted address: access stream unprovable
            address = (regs[rs1] + (imm if uses_imm else regs[rs2])) & _M32
            word_address = address & ~0x3
            k += 1
            pump()
            shift = (address & 0x3) * 8
            smask = subword_mask(size, shift)
            value_g = regs[rd]
            value_f = taint.get(rd, value_g)
            prev = mget(word_address, 0)
            mem[word_address] = (prev & ~smask) | ((value_g << shift) & smask)
            xor_bits = ((value_f ^ value_g) << shift) & smask
            if word_address == wa:
                ei += 1  # consume this op's EV_STORE entry
                cache_mask = (cache_mask & ~smask) | xor_bits
            else:
                d = (delta.get(word_address, 0) & ~smask) | xor_bits
                if d:
                    delta[word_address] = d
                else:
                    delta.pop(word_address, None)
        elif op < 36:  # branches
            if cc_f is not None and i + 1 < golden_len:
                f_next = target if _branch_taken(op, *cc_f) else fall
                g_next = pcs[i + 1]
                if f_next != g_next:
                    # The corrupted flags flipped this branch.  Provable
                    # only when the divergent arm is a straight NOP run
                    # reconverging with the golden arm.
                    extra = _nop_reconvergence(table, f_next, g_next)
                    if extra is not None:
                        # Faulty falls through `extra` NOPs golden skips.
                        instr_delta += extra
                        stream_diverged = True
                    else:
                        count = 0
                        j = i + 1
                        while (
                            j < golden_len
                            and count < _NOP_RECONVERGENCE_LIMIT
                            and table[pcs[j]][0] == _OP_NOP
                        ):
                            j += 1
                            count += 1
                        if count and j < golden_len and pcs[j] == f_next:
                            # Faulty skips `count` NOPs golden executes.
                            instr_delta -= count
                            stream_diverged = True
                        else:
                            return None  # divergent arms: unprovable
        elif op == _OP_CALL:
            if rd:
                regs[rd] = pc + INSTRUCTION_BYTES
                taint.pop(rd, None)
        elif op == _OP_JUMP:
            if rs1 in taint:
                return None  # tainted indirect target: unprovable
            if rd:
                regs[rd] = pc + INSTRUCTION_BYTES
                taint.pop(rd, None)
        elif op == _OP_HALT:
            break
        # _OP_NOP: no effect
        i += 1
        if (
            not taint
            and cc_f is None
            and not delta
            and not cache_mask
            and not backing_mask
        ):
            # Every corruption channel is dead: the rest of the run is
            # bit-identical to golden.
            return AnalyticOutcome(
                outcome="timing" if stream_diverged else "masked",
                triggered=True,
                resident=True,
                dirty_at_injection=dirty_at_injection,
                diverged=True,
                instruction_delta=instr_delta,
            )

    # Drain the remaining events: the end-of-run flush decides where the
    # faulted word's mask ends up (remaining structural traffic was
    # already consumed at its triggering ops).
    while ei < n_events:
        e_kind = events[ei][1]
        if e_kind == EV_FILL:
            cache_mask = backing_mask
        elif e_kind == EV_EVICT_DIRTY:
            backing_mask = cache_mask
            cache_mask = 0
        elif e_kind == EV_EVICT_CLEAN:
            cache_mask = 0
        elif e_kind == EV_END_FLUSH:
            backing_mask = cache_mask
        ei += 1
    if backing_mask or delta:
        outcome = "sdc"  # corrupt bits reached the final image unhealed
    elif stream_diverged:
        outcome = "timing"
    else:
        outcome = "masked"
    return AnalyticOutcome(
        outcome=outcome,
        triggered=True,
        resident=True,
        dirty_at_injection=dirty_at_injection,
        diverged=True,
        instruction_delta=instr_delta,
    )


# --------------------------------------------------------------------- #
# raw (unprotected) mask walk                                           #
# --------------------------------------------------------------------- #
def _walk_raw(
    golden: GoldenRun,
    wa: int,
    events: Sequence[Event],
    start: int,
    *,
    cache_mask: int,
    backing_mask: int,
    resident: bool,
    last_sync: Optional[int],
    dirty_at_injection: bool,
) -> Verdict:
    """Track an unprotected corruption as XOR masks on the word's two
    copies (cache / backing) through its event stream.

    The decode of a raw word is the identity, so nothing is ever healed
    or reported: the mask shrinks under stores, moves to the backing
    store on dirty writebacks, dies on clean evictions and full
    overwrites, re-enters on fills — until a load reads corrupted bits
    (→ :class:`ResiduePlan`) or the run ends (→ ``sdc`` / ``masked``).
    """
    resident_at_fill_ord: Optional[int] = None
    for index in range(start, len(events)):
        ord_, kind, a, b = events[index]
        if not cache_mask and not backing_mask:
            return AnalyticOutcome(
                outcome="masked",
                triggered=True,
                resident=True,
                dirty_at_injection=dirty_at_injection,
            )
        if kind == EV_LOAD:
            load_mask = subword_mask(a, b)
            if resident and cache_mask & load_mask:
                proved = _walk_divergent(
                    golden,
                    wa,
                    events,
                    index,
                    cache_mask=cache_mask,
                    backing_mask=backing_mask,
                    dirty_at_injection=dirty_at_injection,
                )
                if proved is not None:
                    return proved
                return ResiduePlan(
                    divergence_op=ord_,
                    divergence_instr=golden.op_instr[ord_ - 1],
                    cache_xor=cache_mask,
                    backing_value=_golden_backing(golden, wa, last_sync)
                    ^ backing_mask,
                    resident_before=resident_at_fill_ord != ord_,
                    dirty_at_injection=dirty_at_injection,
                )
        elif kind == EV_STORE:
            if a == 4:
                cache_mask = 0
            else:
                cache_mask &= ~(((1 << (8 * a)) - 1) << b)
        elif kind == EV_EVICT_DIRTY:
            backing_mask = cache_mask
            last_sync = ord_
            resident = False
            cache_mask = 0
        elif kind == EV_EVICT_CLEAN:
            resident = False
            cache_mask = 0
        elif kind == EV_FILL:
            resident = True
            resident_at_fill_ord = ord_
            cache_mask = backing_mask
        elif kind == EV_END_FLUSH:
            backing_mask = cache_mask
        elif kind == EV_END_DISCARD:
            pass
        # EV_LINE_STORE only tracks dirtiness; the eviction events
        # already carry the resulting kind.
    if backing_mask:
        # Survived to the final architectural image without ever being
        # read: silent data corruption, with no error event and no
        # divergence (the classic path reaches the same verdict with
        # `state_match=False, events=[], diverged=False`).
        return AnalyticOutcome(
            outcome="sdc",
            triggered=True,
            resident=True,
            dirty_at_injection=dirty_at_injection,
        )
    return AnalyticOutcome(
        outcome="masked",
        triggered=True,
        resident=True,
        dirty_at_injection=dirty_at_injection,
    )


# --------------------------------------------------------------------- #
# per-target triage                                                     #
# --------------------------------------------------------------------- #
def triage_dl1(
    golden: GoldenRun,
    geometry: CacheGeometry,
    wa: int,
    at_access: int,
    events: Sequence[Event],
    decode: DecodeResult,
    golden_value: int,
) -> Verdict:
    """Classify one DL1-targeted flip; ``decode`` is the (batched)
    decode of the corrupted codeword, ``golden_value`` the word's
    golden value when the flip landed."""
    total_ops = golden.total_ops
    a_eff = max(1, at_access)
    if total_ops < a_eff:
        return AnalyticOutcome(
            outcome="masked", triggered=False, resident=False,
            dirty_at_injection=False,
        )
    start, resident, dirty, last_sync = _state_before(
        events, a_eff, write_back=geometry.write_back
    )
    if not resident:
        return AnalyticOutcome(
            outcome="masked", triggered=True, resident=False,
            dirty_at_injection=False,
        )
    if decode.status is DecodeStatus.CORRECTED:
        outcome, evs = _walk_corrected(events, start)
        return AnalyticOutcome(
            outcome=outcome, triggered=True, resident=True,
            dirty_at_injection=dirty, events=evs,
        )
    if decode.status is DecodeStatus.DETECTED_UNCORRECTABLE:
        if geometry.write_back or dirty:
            return None  # detected on dirty data: classic path decides
        walked = _walk_detected_wt(events, start)
        if walked is None:
            return None
        outcome, evs = walked
        return AnalyticOutcome(
            outcome=outcome, triggered=True, resident=True,
            dirty_at_injection=dirty, events=evs,
        )
    # CLEAN decode: a raw, unprotected word.
    if not geometry.write_back:
        return None  # raw words under write-through: unproven combination
    mask = (decode.data ^ golden_value) & 0xFFFFFFFF
    if mask == 0:
        return None  # a "flip" the decode cannot see: defer to classic
    return _walk_raw(
        golden, wa, events, start,
        cache_mask=mask, backing_mask=0, resident=True,
        last_sync=last_sync, dirty_at_injection=dirty,
    )


def triage_l2(
    golden: GoldenRun,
    geometry: CacheGeometry,
    wa: int,
    at_access: int,
    events: Sequence[Event],
    decode: DecodeResult,
    golden_backing_value: int,
) -> Verdict:
    """Classify one L2-targeted flip.

    ``decode`` is the L2 code's decode of the corrupted codeword that
    :meth:`Dl1ContentModel.inject_l2_fault` would have planted (encoded
    from ``golden_backing_value``, the backing copy at injection time).
    """
    total_ops = golden.total_ops
    # The classic path's `triggered` is `total_ops >= at_access` even in
    # the degenerate at_access < 1 case where the injection hook never
    # fires; replicate both the flag and the no-corruption behaviour.
    triggered = total_ops >= at_access
    if not triggered or at_access < 1:
        return AnalyticOutcome(
            outcome="masked", triggered=triggered, resident=triggered,
            dirty_at_injection=False,
        )
    position, resident, _dirty, last_sync = _state_before(
        events, at_access, write_back=geometry.write_back
    )
    write_back = geometry.write_back
    for index in range(position, len(events)):
        ord_, kind, a, _b = events[index]
        is_bwrite = (
            kind in (EV_EVICT_DIRTY, EV_END_FLUSH)
            or (not write_back and kind == EV_STORE)
        )
        if is_bwrite:
            # A backing write supersedes the not-yet-read corrupt
            # codeword; nothing was ever observed.
            return AnalyticOutcome(
                outcome="masked", triggered=True, resident=True,
                dirty_at_injection=False,
            )
        if kind == EV_FILL:
            # First backing read: the corrupt codeword is decoded.
            if decode.status is DecodeStatus.CORRECTED:
                return AnalyticOutcome(
                    outcome="corrected", triggered=True, resident=True,
                    dirty_at_injection=False, events=("l2_corrected",),
                )
            if decode.status is DecodeStatus.CLEAN:
                if not write_back:
                    return None
                mask = (decode.data ^ golden_backing_value) & 0xFFFFFFFF
                if mask == 0:
                    return None
                # The corrupt word is now both in the backing store and
                # in the freshly filled line: join the raw mask walk at
                # this fill (which re-processes the fill event itself).
                verdict = _walk_raw(
                    golden, wa, events, index,
                    cache_mask=0, backing_mask=mask, resident=False,
                    last_sync=last_sync, dirty_at_injection=False,
                )
                if isinstance(verdict, AnalyticOutcome):
                    verdict.resident = True  # L2 flips always hit live data
                return verdict
            return None  # detected-uncorrectable L2 read: classic decides
    # The corrupt codeword is never read nor overwritten: it stays in
    # the L2 array, the architectural backing image is untouched.
    return AnalyticOutcome(
        outcome="masked", triggered=True, resident=True,
        dirty_at_injection=False,
    )
