"""Pre-decoded lean interpreter powering the batched fault-replay backend.

:class:`~repro.functional.simulator.FunctionalSimulator` builds one
:class:`DynInstruction` dataclass per retired instruction and re-derives
the instruction class from its mnemonic on every step — ideal for a
trace consumed by the timing model, but ~6x too slow for a campaign
that re-executes diverged fault injections by the dozen.  The batched
replay path never needs dynamic instruction objects: classification
only consumes the PC stream, the memory-operation stream and the final
memory image.  This module therefore interprets the *pre-decoded*
program — one flat tuple per static instruction, integer opcodes,
registers in a plain list, memory as a word dictionary — and records
exactly those three things.

Two entry points share the decode tables:

* :func:`golden_pass` executes the clean program once and records the
  golden artefacts every fault in the group shares: the PC stream, the
  memory-op stream (word address / size / store mask per ordinal), a
  per-word store-value history (so the backing copy of any word at any
  ordinal can be reconstructed), periodic register+memory snapshots,
  and the final memory image.

* :func:`resume_faulty` re-executes a *diverged* injection from the
  nearest golden snapshot instead of from scratch.  The prefix up to
  the divergence point is golden by construction (the triage pass
  proved no corrupted value was architecturally visible before it), so
  only ``divergence → end`` runs with fault tracking: a one-set cache
  metadata model (the faulted word's set is the only set whose state is
  architecturally observable) decides when the corrupted cache copy is
  written back, discarded or re-imported.

Semantics are bit-identical to the `FunctionalSimulator` +
`Dl1ContentModel` pair; the differential tests in
``tests/test_batched_replay.py`` pin the equivalence over full grids.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.functional.simulator import ExecutionLimitExceeded
from repro.isa.instructions import (
    INSTRUCTION_BYTES,
    MEMORY_ACCESS_BYTES,
    Mnemonic,
)
from repro.isa.program import Program
from repro.isa.registers import STACK_POINTER

_M32 = 0xFFFFFFFF
_SIGN = 0x80000000

#: Snapshot cadence (retired instructions) of the golden pass.  Small
#: enough that the golden re-execution prefix of a resumed fault stays
#: in the hundreds of instructions, large enough that snapshot copies
#: are a rounding error of the pass itself.
SNAPSHOT_INTERVAL = 1024

# Integer opcodes.  The interpreter dispatch chains test these in
# listed order, tuned to kernel instruction frequency.
(
    _OP_ADD,
    _OP_SET,
    _OP_SUB,
    _OP_ADDCC,
    _OP_SUBCC,
    _OP_SLL,
    _OP_SRL,
    _OP_SRA,
    _OP_AND,
    _OP_OR,
    _OP_XOR,
    _OP_ANDCC,
    _OP_ORCC,
    _OP_XORCC,
    _OP_SMUL,
    _OP_UMUL,
    _OP_SDIV,
    _OP_UDIV,
) = range(18)
_OP_LOAD = 18
_OP_STORE = 19
(
    _OP_BA,
    _OP_BN,
    _OP_BE,
    _OP_BNE,
    _OP_BG,
    _OP_BLE,
    _OP_BGE,
    _OP_BL,
    _OP_BGU,
    _OP_BLEU,
    _OP_BCC,
    _OP_BCS,
    _OP_BPOS,
    _OP_BNEG,
    _OP_BVC,
    _OP_BVS,
) = range(20, 36)
_OP_CALL = 36
_OP_JUMP = 37
_OP_NOP = 38
_OP_HALT = 39

_ALU_OPCODES = {
    Mnemonic.ADD: _OP_ADD,
    Mnemonic.SET: _OP_SET,
    Mnemonic.SUB: _OP_SUB,
    Mnemonic.ADDCC: _OP_ADDCC,
    Mnemonic.SUBCC: _OP_SUBCC,
    Mnemonic.SLL: _OP_SLL,
    Mnemonic.SRL: _OP_SRL,
    Mnemonic.SRA: _OP_SRA,
    Mnemonic.AND: _OP_AND,
    Mnemonic.OR: _OP_OR,
    Mnemonic.XOR: _OP_XOR,
    Mnemonic.ANDCC: _OP_ANDCC,
    Mnemonic.ORCC: _OP_ORCC,
    Mnemonic.XORCC: _OP_XORCC,
    Mnemonic.SMUL: _OP_SMUL,
    Mnemonic.UMUL: _OP_UMUL,
    Mnemonic.SDIV: _OP_SDIV,
    Mnemonic.UDIV: _OP_UDIV,
}
_BRANCH_OPCODES = {
    Mnemonic.BA: _OP_BA,
    Mnemonic.BN: _OP_BN,
    Mnemonic.BE: _OP_BE,
    Mnemonic.BNE: _OP_BNE,
    Mnemonic.BG: _OP_BG,
    Mnemonic.BLE: _OP_BLE,
    Mnemonic.BGE: _OP_BGE,
    Mnemonic.BL: _OP_BL,
    Mnemonic.BGU: _OP_BGU,
    Mnemonic.BLEU: _OP_BLEU,
    Mnemonic.BCC: _OP_BCC,
    Mnemonic.BCS: _OP_BCS,
    Mnemonic.BPOS: _OP_BPOS,
    Mnemonic.BNEG: _OP_BNEG,
    Mnemonic.BVC: _OP_BVC,
    Mnemonic.BVS: _OP_BVS,
}


class LeanExecutionError(RuntimeError):
    """The golden lean pass reached a state the classic simulator would
    have faulted on (bad PC, misaligned access) — golden runs must not."""


def predecode(program: Program) -> Dict[int, tuple]:
    """Flatten every static instruction into one dispatch tuple.

    Tuple layout (fixed positions, consumed positionally by the
    interpreter loops)::

        (op, rd, rs1, rs2, imm, imm_u, uses_imm, size, fall, target, sx)

    ``fall`` is the fall-through PC, ``target`` the pre-resolved
    branch/call target (0 when not a control transfer), ``sx`` the
    sign-extension width for sub-word loads (0 none, 1 byte, 2 half).
    """
    table: Dict[int, tuple] = {}
    for ins in program.instructions:
        mn = ins.mnemonic
        fall = ins.address + INSTRUCTION_BYTES
        imm_u = ins.imm & _M32
        target = 0
        sx = 0
        if mn in _ALU_OPCODES:
            op = _ALU_OPCODES[mn]
        elif mn in MEMORY_ACCESS_BYTES:
            if mn in (Mnemonic.ST, Mnemonic.STH, Mnemonic.STB):
                op = _OP_STORE
            else:
                op = _OP_LOAD
                if mn is Mnemonic.LDSB:
                    sx = 1
                elif mn is Mnemonic.LDSH:
                    sx = 2
        elif mn in _BRANCH_OPCODES:
            op = _BRANCH_OPCODES[mn]
            target = (ins.address + ins.imm) & _M32
        elif mn is Mnemonic.CALL:
            op = _OP_CALL
            target = (ins.address + ins.imm) & _M32
        elif mn is Mnemonic.JMPL:
            op = _OP_JUMP
        elif mn is Mnemonic.NOP:
            op = _OP_NOP
        elif mn is Mnemonic.HALT:
            op = _OP_HALT
        else:  # pragma: no cover - ISA fully enumerated above
            raise LeanExecutionError(f"unhandled mnemonic {mn}")
        table[ins.address] = (
            op,
            ins.rd,
            ins.rs1,
            ins.rs2,
            ins.imm,
            imm_u,
            ins.uses_imm,
            MEMORY_ACCESS_BYTES.get(mn, 0),
            fall,
            target,
            sx,
        )
    return table


def initial_memory_words(program: Program) -> Dict[int, int]:
    """The program's initial data image as a word-address dictionary."""
    words: Dict[int, int] = {}
    base = program.data.base
    for offset, byte in enumerate(program.data.data):
        if not byte:
            continue
        address = base + offset
        wa = address & ~0x3
        words[wa] = words.get(wa, 0) | (byte << ((address & 0x3) * 8))
    return words


@dataclass
class Snapshot:
    """Golden machine state right before executing instruction ``index``."""

    index: int
    op_count: int
    pc: int
    regs: List[int]
    cc: Tuple[bool, bool, bool, bool]
    mem: Dict[int, int]


@dataclass
class GoldenRun:
    """Everything one clean lean execution produced (shared per group)."""

    program: Program
    table: Dict[int, tuple]
    pcs: List[int]
    #: Per memory operation (1-based ordinal ``i`` lives at index ``i-1``):
    op_instr: List[int]  #: retired-instruction index of the op
    op_wa: List[int]  #: word address touched
    op_store: List[bool]
    op_size: List[int]
    op_shift: List[int]  #: bit shift of a sub-word access inside its word
    #: word address -> [(op ordinal, merged word value after the store)]
    store_hist: Dict[int, List[Tuple[int, int]]]
    snapshots: List[Snapshot]
    mem_init: Dict[int, int]
    mem_final: Dict[int, int]
    max_instructions: int

    @property
    def instructions(self) -> int:
        return len(self.pcs)

    @property
    def total_ops(self) -> int:
        return len(self.op_wa)

    def value_at(self, word_address: int, op_ordinal: int) -> int:
        """Architecturally visible value of a word *before* op ``op_ordinal``.

        Stores merge sub-word writes, so the history holds full merged
        words; the value before ordinal ``k`` is the last merge strictly
        below ``k`` (the initial image when none).
        """
        history = self.store_hist.get(word_address)
        if not history:
            return self.mem_init.get(word_address, 0)
        position = bisect.bisect_left(history, (op_ordinal, -1))
        if position == 0:
            return self.mem_init.get(word_address, 0)
        return history[position - 1][1]

    def snapshot_before(self, instr_index: int) -> Snapshot:
        """The latest snapshot taken at or before instruction ``instr_index``."""
        position = bisect.bisect_right(
            [snap.index for snap in self.snapshots], instr_index
        )
        return self.snapshots[max(position - 1, 0)]


def golden_pass(
    program: Program, *, max_instructions: int = 5_000_000
) -> GoldenRun:
    """Execute the clean program once, recording the shared golden artefacts."""
    table = predecode(program)
    mem_init = initial_memory_words(program)
    mem = dict(mem_init)
    regs = [0] * 32
    regs[STACK_POINTER] = program.stack_top & _M32
    n = z = v = c = False
    pc = program.entry
    pcs: List[int] = []
    op_instr: List[int] = []
    op_wa: List[int] = []
    op_store: List[bool] = []
    op_size: List[int] = []
    op_shift: List[int] = []
    store_hist: Dict[int, List[Tuple[int, int]]] = {}
    snapshots: List[Snapshot] = []
    retired = 0
    tget = table.get
    mget = mem.get

    while True:
        if retired % SNAPSHOT_INTERVAL == 0:
            snapshots.append(
                Snapshot(
                    index=retired,
                    op_count=len(op_wa),
                    pc=pc,
                    regs=list(regs),
                    cc=(n, z, v, c),
                    mem=dict(mem),
                )
            )
        t = tget(pc)
        if t is None:
            raise LeanExecutionError(f"golden PC outside text segment: {pc:#x}")
        op, rd, rs1, rs2, imm, imm_u, uses_imm, size, fall, target, sx = t
        next_pc = fall
        if op < 18:
            a = regs[rs1]
            b = imm_u if uses_imm else regs[rs2]
            if op == _OP_ADD:
                r = (a + b) & _M32
            elif op == _OP_SET:
                r = imm_u
            elif op == _OP_SUB:
                r = (a - b) & _M32
            elif op == _OP_ADDCC:
                total = a + b
                r = total & _M32
                v = ((a ^ r) & (b ^ r) & _SIGN) != 0
                c = total > _M32
                n = r >= _SIGN
                z = r == 0
            elif op == _OP_SUBCC:
                total = a - b
                r = total & _M32
                v = ((a ^ b) & (a ^ r) & _SIGN) != 0
                c = a < b
                n = r >= _SIGN
                z = r == 0
            elif op == _OP_SLL:
                r = (a << (b & 31)) & _M32
            elif op == _OP_SRL:
                r = a >> (b & 31)
            elif op == _OP_SRA:
                sa = a - 0x100000000 if a & _SIGN else a
                r = (sa >> (b & 31)) & _M32
            elif op == _OP_AND:
                r = a & b
            elif op == _OP_OR:
                r = a | b
            elif op == _OP_XOR:
                r = a ^ b
            elif op == _OP_ANDCC:
                r = a & b
                n = r >= _SIGN
                z = r == 0
                v = c = False
            elif op == _OP_ORCC:
                r = a | b
                n = r >= _SIGN
                z = r == 0
                v = c = False
            elif op == _OP_XORCC:
                r = a ^ b
                n = r >= _SIGN
                z = r == 0
                v = c = False
            elif op == _OP_SMUL:
                sa = a - 0x100000000 if a & _SIGN else a
                sb = b - 0x100000000 if b & _SIGN else b
                r = (sa * sb) & _M32
            elif op == _OP_UMUL:
                r = (a * b) & _M32
            elif op == _OP_SDIV:
                if b == 0:
                    r = _M32
                else:
                    sa = a - 0x100000000 if a & _SIGN else a
                    sb = b - 0x100000000 if b & _SIGN else b
                    r = (int(sa / sb) if sb else 0) & _M32
            else:  # _OP_UDIV
                r = _M32 if b == 0 else (a // b) & _M32
            if rd:
                regs[rd] = r
        elif op == _OP_LOAD:
            address = (regs[rs1] + (imm if uses_imm else regs[rs2])) & _M32
            if address & (size - 1):
                raise LeanExecutionError(
                    f"golden misaligned {size}-byte read at {address:#x}"
                )
            wa = address & ~0x3
            shift = (address & 0x3) * 8
            op_instr.append(retired)
            op_wa.append(wa)
            op_store.append(False)
            op_size.append(size)
            op_shift.append(shift)
            word = mget(wa, 0)
            if size == 4:
                raw = word
            else:
                raw = (word >> shift) & (0xFF if size == 1 else 0xFFFF)
                if sx == 1 and raw & 0x80:
                    raw |= 0xFFFFFF00
                elif sx == 2 and raw & 0x8000:
                    raw |= 0xFFFF0000
            if rd:
                regs[rd] = raw
        elif op == _OP_STORE:
            address = (regs[rs1] + (imm if uses_imm else regs[rs2])) & _M32
            if address & (size - 1):
                raise LeanExecutionError(
                    f"golden misaligned {size}-byte write at {address:#x}"
                )
            wa = address & ~0x3
            shift = (address & 0x3) * 8
            op_instr.append(retired)
            op_wa.append(wa)
            op_store.append(True)
            op_size.append(size)
            op_shift.append(shift)
            value = regs[rd]
            if size == 4:
                word = value
            else:
                mask = ((1 << (8 * size)) - 1) << shift
                word = (mget(wa, 0) & ~mask) | ((value << shift) & mask)
            mem[wa] = word
            store_hist.setdefault(wa, []).append((len(op_wa), word))
        elif op < 36:
            if op == _OP_BA:
                taken = True
            elif op == _OP_BN:
                taken = False
            elif op == _OP_BE:
                taken = z
            elif op == _OP_BNE:
                taken = not z
            elif op == _OP_BG:
                taken = not (z or (n != v))
            elif op == _OP_BLE:
                taken = z or (n != v)
            elif op == _OP_BGE:
                taken = n == v
            elif op == _OP_BL:
                taken = n != v
            elif op == _OP_BGU:
                taken = not (c or z)
            elif op == _OP_BLEU:
                taken = c or z
            elif op == _OP_BCC:
                taken = not c
            elif op == _OP_BCS:
                taken = c
            elif op == _OP_BPOS:
                taken = not n
            elif op == _OP_BNEG:
                taken = n
            elif op == _OP_BVC:
                taken = not v
            else:  # _OP_BVS
                taken = v
            if taken:
                next_pc = target
        elif op == _OP_CALL:
            if rd:
                regs[rd] = pc + INSTRUCTION_BYTES
            next_pc = target
        elif op == _OP_JUMP:
            jump_target = (regs[rs1] + imm) & _M32
            if rd:
                regs[rd] = pc + INSTRUCTION_BYTES
            next_pc = jump_target
        elif op == _OP_HALT:
            pcs.append(pc)
            retired += 1
            break
        # _OP_NOP falls through.
        pcs.append(pc)
        retired += 1
        if retired > max_instructions:
            raise ExecutionLimitExceeded(
                f"{program.name}: exceeded {max_instructions} retired "
                "instructions without halting"
            )
        pc = next_pc

    return GoldenRun(
        program=program,
        table=table,
        pcs=pcs,
        op_instr=op_instr,
        op_wa=op_wa,
        op_store=op_store,
        op_size=op_size,
        op_shift=op_shift,
        store_hist=store_hist,
        snapshots=snapshots,
        mem_init=mem_init,
        mem_final=mem,
        max_instructions=max_instructions,
    )


def _alu_eval(op: int, a: int, b: int, imm_u: int):
    """One ALU op on 32-bit operands -> ``(result, flags)``.

    ``flags`` is the resulting ``(n, z, v, c)`` tuple for cc-setting ops
    and None otherwise.  Bit-identical to the inline dispatch of
    :func:`golden_pass` / :func:`resume_faulty`; used where one op must
    be evaluated for *two* operand sets (the timeline-delta walk runs
    every tainted op once with golden and once with faulty values).
    """
    if op == _OP_ADD:
        return (a + b) & _M32, None
    if op == _OP_SET:
        return imm_u, None
    if op == _OP_SUB:
        return (a - b) & _M32, None
    if op == _OP_ADDCC:
        total = a + b
        r = total & _M32
        v = ((a ^ r) & (b ^ r) & _SIGN) != 0
        return r, (r >= _SIGN, r == 0, v, total > _M32)
    if op == _OP_SUBCC:
        total = a - b
        r = total & _M32
        v = ((a ^ b) & (a ^ r) & _SIGN) != 0
        return r, (r >= _SIGN, r == 0, v, a < b)
    if op == _OP_SLL:
        return (a << (b & 31)) & _M32, None
    if op == _OP_SRL:
        return a >> (b & 31), None
    if op == _OP_SRA:
        sa = a - 0x100000000 if a & _SIGN else a
        return (sa >> (b & 31)) & _M32, None
    if op == _OP_AND:
        return a & b, None
    if op == _OP_OR:
        return a | b, None
    if op == _OP_XOR:
        return a ^ b, None
    if op == _OP_ANDCC:
        r = a & b
        return r, (r >= _SIGN, r == 0, False, False)
    if op == _OP_ORCC:
        r = a | b
        return r, (r >= _SIGN, r == 0, False, False)
    if op == _OP_XORCC:
        r = a ^ b
        return r, (r >= _SIGN, r == 0, False, False)
    if op == _OP_SMUL:
        sa = a - 0x100000000 if a & _SIGN else a
        sb = b - 0x100000000 if b & _SIGN else b
        return (sa * sb) & _M32, None
    if op == _OP_UMUL:
        return (a * b) & _M32, None
    if op == _OP_SDIV:
        if b == 0:
            return _M32, None
        sa = a - 0x100000000 if a & _SIGN else a
        sb = b - 0x100000000 if b & _SIGN else b
        return (int(sa / sb) if sb else 0) & _M32, None
    # _OP_UDIV
    return (_M32 if b == 0 else (a // b) & _M32), None


def _branch_taken(op: int, n: bool, z: bool, v: bool, c: bool) -> bool:
    """Branch direction of ``op`` under condition codes ``(n, z, v, c)``."""
    if op == _OP_BA:
        return True
    if op == _OP_BN:
        return False
    if op == _OP_BE:
        return z
    if op == _OP_BNE:
        return not z
    if op == _OP_BG:
        return not (z or (n != v))
    if op == _OP_BLE:
        return z or (n != v)
    if op == _OP_BGE:
        return n == v
    if op == _OP_BL:
        return n != v
    if op == _OP_BGU:
        return not (c or z)
    if op == _OP_BLEU:
        return c or z
    if op == _OP_BCC:
        return not c
    if op == _OP_BCS:
        return c
    if op == _OP_BPOS:
        return not n
    if op == _OP_BNEG:
        return n
    if op == _OP_BVC:
        return not v
    return v  # _OP_BVS


def golden_state_at(
    golden: GoldenRun, instr_index: int
) -> Tuple[List[int], Dict[int, int]]:
    """Exact golden ``(registers, memory)`` right before retiring
    instruction ``instr_index``, rebuilt from the nearest snapshot.

    Control flow is taken from the recorded PC stream, so only data
    effects (ALU results, loads, stores, link writes) are replayed —
    branch conditions never need evaluating.  Condition codes are not
    reconstructed: callers that need flags recompute them from operand
    values at the defining op.
    """
    snap = golden.snapshot_before(instr_index)
    regs = list(snap.regs)
    mem = dict(snap.mem)
    pcs = golden.pcs
    table = golden.table
    mget = mem.get
    for index in range(snap.index, instr_index):
        pc = pcs[index]
        op, rd, rs1, rs2, imm, imm_u, uses_imm, size, _fall, _target, sx = table[pc]
        if op < 18:
            if rd:
                regs[rd], _flags = _alu_eval(
                    op, regs[rs1], imm_u if uses_imm else regs[rs2], imm_u
                )
        elif op == _OP_LOAD:
            if rd:
                address = (regs[rs1] + (imm if uses_imm else regs[rs2])) & _M32
                word = mget(address & ~0x3, 0)
                if size == 4:
                    raw = word
                else:
                    shift = (address & 0x3) * 8
                    raw = (word >> shift) & (0xFF if size == 1 else 0xFFFF)
                    if sx == 1 and raw & 0x80:
                        raw |= 0xFFFFFF00
                    elif sx == 2 and raw & 0x8000:
                        raw |= 0xFFFF0000
                regs[rd] = raw
        elif op == _OP_STORE:
            address = (regs[rs1] + (imm if uses_imm else regs[rs2])) & _M32
            wa = address & ~0x3
            value = regs[rd]
            if size == 4:
                mem[wa] = value
            else:
                shift = (address & 0x3) * 8
                mask = ((1 << (8 * size)) - 1) << shift
                mem[wa] = (mget(wa, 0) & ~mask) | ((value << shift) & mask)
        elif op == _OP_CALL or op == _OP_JUMP:
            if rd:
                regs[rd] = pc + INSTRUCTION_BYTES
        # branches / NOP / HALT: no data effects
    return regs, mem


# ---------------------------------------------------------------------- #
# one-set cache metadata model (faulted word's set only)                  #
# ---------------------------------------------------------------------- #
class OneSetModel:
    """Exact LRU/write-policy replica of one :class:`SetAssociativeCache` set.

    During a diverged faulty suffix only the faulted word's set has
    architecturally observable state (whether the corrupted cache copy
    is resident, dirty, written back or discarded); every other set's
    metadata cannot influence any load value or the final memory image.
    """

    __slots__ = ("ways", "tags", "valid", "dirty", "order", "write_allocate", "write_back")

    def __init__(self, ways: int, *, write_allocate: bool, write_back: bool) -> None:
        self.ways = ways
        self.tags = [0] * ways  # line addresses (unique within the set)
        self.valid = [False] * ways
        self.dirty = [False] * ways
        self.order: List[int] = list(range(ways))  # MRU first
        self.write_allocate = write_allocate
        self.write_back = write_back

    def _touch(self, way: int) -> None:
        order = self.order
        order.remove(way)
        order.insert(0, way)

    def access(self, line_address: int, is_write: bool):
        """Mirror of ``SetAssociativeCache.access`` for this set.

        Returns ``(evicted_line, evicted_dirty, filled)``:
        ``evicted_line`` is the valid victim's line address (or None).
        """
        tags = self.tags
        valid = self.valid
        for way in range(self.ways):
            if valid[way] and tags[way] == line_address:
                self._touch(way)
                if is_write and self.write_back:
                    self.dirty[way] = True
                return None, False, False
        if is_write and not self.write_allocate:
            return None, False, False
        victim = -1
        for way in range(self.ways):
            if not valid[way]:
                victim = way
                break
        if victim < 0:
            victim = self.order[-1]
        evicted_line: Optional[int] = None
        evicted_dirty = False
        if valid[victim]:
            evicted_line = tags[victim]
            evicted_dirty = self.dirty[victim]
        valid[victim] = True
        self.dirty[victim] = bool(is_write and self.write_back)
        tags[victim] = line_address
        self._touch(victim)
        return evicted_line, evicted_dirty, True

    def resident(self, line_address: int) -> bool:
        return any(
            self.valid[way] and self.tags[way] == line_address
            for way in range(self.ways)
        )

    def line_dirty(self, line_address: int) -> bool:
        return any(
            self.valid[way] and self.tags[way] == line_address and self.dirty[way]
            for way in range(self.ways)
        )


def replay_set_state(
    golden: GoldenRun,
    *,
    set_index: int,
    line_bits: int,
    set_mask: int,
    ways: int,
    write_allocate: bool,
    write_back: bool,
    until_op: int,
) -> OneSetModel:
    """Golden metadata state of one set right before op ``until_op`` (1-based)."""
    model = OneSetModel(ways, write_allocate=write_allocate, write_back=write_back)
    line_mask = ~((1 << line_bits) - 1)
    op_wa = golden.op_wa
    op_store = golden.op_store
    for position in range(min(until_op - 1, len(op_wa))):
        wa = op_wa[position]
        if (wa >> line_bits) & set_mask == set_index:
            model.access(wa & line_mask, op_store[position])
    return model


@dataclass
class FaultyRunResult:
    """What one resumed faulty execution produced."""

    faulty_instructions: int
    stream_matches_golden: bool
    extra_events: List[str]
    #: Final architectural memory image (word dict), flush semantics applied.
    final_mem: Dict[int, int]
    halted: bool


def resume_faulty(
    golden: GoldenRun,
    *,
    divergence_instr: int,
    fault_wa: int,
    cache_xor: int,
    backing_value: int,
    resident: bool,
    set_state: OneSetModel,
    line_bits: int,
    set_mask: int,
    limit: int,
) -> FaultyRunResult:
    """Re-execute a diverged injection from the nearest golden snapshot.

    ``divergence_instr`` is the retired-instruction index of the first
    load that observes a corrupted value.  The caller (triage) supplies
    the corruption state at that point: ``cache_xor`` is the XOR mask
    between the faulted word's cache-visible value and its golden value
    (0 when the corruption lives only below the DL1), ``backing_value``
    the word's below-DL1 copy, ``resident``/``set_state`` the golden
    metadata of the word's set right before the diverging op.
    """
    program = golden.program
    table = golden.table
    pcs = golden.pcs
    golden_len = len(pcs)
    snap = golden.snapshot_before(divergence_instr)
    regs = list(snap.regs)
    n, z, v, c = snap.cc
    mem = dict(snap.mem)
    pc = snap.pc
    retired = snap.index

    line_mask = ~((1 << line_bits) - 1)
    w_line = fault_wa & line_mask
    w_set = (fault_wa >> line_bits) & set_mask
    w_back = backing_value
    faulty = False  # switches at the divergence instruction
    stream_match = True
    extra_events: List[str] = []
    halted = False

    tget = table.get
    mget = mem.get
    set_access = set_state.access

    while True:
        if not faulty and retired == divergence_instr:
            faulty = True
            if resident:
                mem[fault_wa] = mget(fault_wa, 0) ^ cache_xor
            else:
                mem[fault_wa] = w_back
        t = tget(pc)
        if t is None:
            extra_events.append("crash")
            break
        op, rd, rs1, rs2, imm, imm_u, uses_imm, size, fall, target, sx = t
        next_pc = fall
        if op < 18:
            a = regs[rs1]
            b = imm_u if uses_imm else regs[rs2]
            if op == _OP_ADD:
                r = (a + b) & _M32
            elif op == _OP_SET:
                r = imm_u
            elif op == _OP_SUB:
                r = (a - b) & _M32
            elif op == _OP_ADDCC:
                total = a + b
                r = total & _M32
                v = ((a ^ r) & (b ^ r) & _SIGN) != 0
                c = total > _M32
                n = r >= _SIGN
                z = r == 0
            elif op == _OP_SUBCC:
                total = a - b
                r = total & _M32
                v = ((a ^ b) & (a ^ r) & _SIGN) != 0
                c = a < b
                n = r >= _SIGN
                z = r == 0
            elif op == _OP_SLL:
                r = (a << (b & 31)) & _M32
            elif op == _OP_SRL:
                r = a >> (b & 31)
            elif op == _OP_SRA:
                sa = a - 0x100000000 if a & _SIGN else a
                r = (sa >> (b & 31)) & _M32
            elif op == _OP_AND:
                r = a & b
            elif op == _OP_OR:
                r = a | b
            elif op == _OP_XOR:
                r = a ^ b
            elif op == _OP_ANDCC:
                r = a & b
                n = r >= _SIGN
                z = r == 0
                v = c = False
            elif op == _OP_ORCC:
                r = a | b
                n = r >= _SIGN
                z = r == 0
                v = c = False
            elif op == _OP_XORCC:
                r = a ^ b
                n = r >= _SIGN
                z = r == 0
                v = c = False
            elif op == _OP_SMUL:
                sa = a - 0x100000000 if a & _SIGN else a
                sb = b - 0x100000000 if b & _SIGN else b
                r = (sa * sb) & _M32
            elif op == _OP_UMUL:
                r = (a * b) & _M32
            elif op == _OP_SDIV:
                if b == 0:
                    r = _M32
                else:
                    sa = a - 0x100000000 if a & _SIGN else a
                    sb = b - 0x100000000 if b & _SIGN else b
                    r = (int(sa / sb) if sb else 0) & _M32
            else:  # _OP_UDIV
                r = _M32 if b == 0 else (a // b) & _M32
            if rd:
                regs[rd] = r
        elif op == _OP_LOAD:
            address = (regs[rs1] + (imm if uses_imm else regs[rs2])) & _M32
            if address & (size - 1):
                extra_events.append("crash")
                break
            wa = address & ~0x3
            if faulty and (address >> line_bits) & set_mask == w_set:
                evicted_line, evicted_dirty, filled = set_access(
                    address & line_mask, False
                )
                if evicted_line == w_line:
                    if evicted_dirty:
                        w_back = mem[fault_wa]
                    else:
                        mem[fault_wa] = w_back
                if filled and address & line_mask == w_line:
                    mem[fault_wa] = w_back
            word = mget(wa, 0)
            if size == 4:
                raw = word
            else:
                shift = (address & 0x3) * 8
                raw = (word >> shift) & (0xFF if size == 1 else 0xFFFF)
                if sx == 1 and raw & 0x80:
                    raw |= 0xFFFFFF00
                elif sx == 2 and raw & 0x8000:
                    raw |= 0xFFFF0000
            if rd:
                regs[rd] = raw
        elif op == _OP_STORE:
            address = (regs[rs1] + (imm if uses_imm else regs[rs2])) & _M32
            if address & (size - 1):
                extra_events.append("crash")
                break
            wa = address & ~0x3
            if faulty and (address >> line_bits) & set_mask == w_set:
                evicted_line, evicted_dirty, filled = set_access(
                    address & line_mask, True
                )
                if evicted_line == w_line:
                    if evicted_dirty:
                        w_back = mem[fault_wa]
                    else:
                        mem[fault_wa] = w_back
                if filled and address & line_mask == w_line:
                    mem[fault_wa] = w_back
            value = regs[rd]
            if size == 4:
                mem[wa] = value
            else:
                shift = (address & 0x3) * 8
                mask = ((1 << (8 * size)) - 1) << shift
                mem[wa] = (mget(wa, 0) & ~mask) | ((value << shift) & mask)
        elif op < 36:
            if op == _OP_BA:
                taken = True
            elif op == _OP_BN:
                taken = False
            elif op == _OP_BE:
                taken = z
            elif op == _OP_BNE:
                taken = not z
            elif op == _OP_BG:
                taken = not (z or (n != v))
            elif op == _OP_BLE:
                taken = z or (n != v)
            elif op == _OP_BGE:
                taken = n == v
            elif op == _OP_BL:
                taken = n != v
            elif op == _OP_BGU:
                taken = not (c or z)
            elif op == _OP_BLEU:
                taken = c or z
            elif op == _OP_BCC:
                taken = not c
            elif op == _OP_BCS:
                taken = c
            elif op == _OP_BPOS:
                taken = not n
            elif op == _OP_BNEG:
                taken = n
            elif op == _OP_BVC:
                taken = not v
            else:  # _OP_BVS
                taken = v
            if taken:
                next_pc = target
        elif op == _OP_CALL:
            if rd:
                regs[rd] = pc + INSTRUCTION_BYTES
            next_pc = target
        elif op == _OP_JUMP:
            jump_target = (regs[rs1] + imm) & _M32
            if rd:
                regs[rd] = pc + INSTRUCTION_BYTES
            next_pc = jump_target
        elif op == _OP_HALT:
            if faulty and stream_match and (
                retired >= golden_len or pcs[retired] != pc
            ):
                stream_match = False
            retired += 1
            halted = True
            break
        # _OP_NOP falls through.
        if faulty and stream_match and (
            retired >= golden_len or pcs[retired] != pc
        ):
            stream_match = False
        retired += 1
        if retired > limit:
            extra_events.append("hang")
            break
        pc = next_pc

    # End-of-run flush semantics for the faulted word: dirty resident
    # lines are written back (the corrupted cache copy becomes the
    # final value), clean resident copies are discarded (the backing
    # copy is final).  Every other word's cache and backing copies are
    # architecturally identical, so `mem` already is the final image.
    if set_state.resident(w_line):
        if set_state.line_dirty(w_line):
            w_back = mem.get(fault_wa, 0)
        else:
            mem[fault_wa] = w_back
    else:
        mem[fault_wa] = w_back

    if halted and retired != golden_len:
        stream_match = False

    return FaultyRunResult(
        faulty_instructions=retired,
        stream_matches_golden=stream_match and halted and not extra_events,
        extra_events=extra_events,
        final_mem=mem,
        halted=halted,
    )


def memories_equal(mine: Dict[int, int], theirs: Dict[int, int]) -> bool:
    """Word-dict equality with absent-means-zero semantics."""
    for wa, value in mine.items():
        if value != theirs.get(wa, 0):
            return False
    for wa, value in theirs.items():
        if value and wa not in mine:
            return False
    return True
