"""Stratified fault-point sampling.

A campaign samples injection points per stratum (one stratum per
kernel × policy × target × scenario × scale tuple of the sweep grid):
an injection ordinal uniform over the kernel's DL1 data accesses, a
word address drawn from the targeted array's plausible-resident
population, and a bit position uniform over the codeword width the
policy stores in that array.

Per target, the word population is:

* ``dl1`` — words the kernel has touched *before* the injection ordinal
  (the first-touch population — words it has not touched yet occupy no
  line, so flips aimed at them model upsets landing in unoccupied parts
  of the array);
* ``l2`` — every word of the golden run's working set.  The L2 (plus
  the memory behind it) holds the whole initial data image and every
  word the run ever writes back, so all touched words are L2-resident
  for the entire run, mirroring the DL1 first-touch population without
  its before-the-ordinal restriction.

Sampling is **prefix-deterministic**: the i-th point of a stratum
depends only on the campaign seed and the stratum identity, never on
batch sizes or early stopping.  That property is what makes checkpoint /
resume sound — a resumed campaign regenerates exactly the points the
killed campaign would have run, finds the finished ones in the store by
content hash, and simulates only the rest.

Each stratum also keeps a **sample cursor** (the live RNG plus its
position in the sequence), so drawing a stratum's N points in sequential
batches costs O(N) RNG draws in total instead of regenerating every
batch's prefix from index 0 (which made an N-trial stratum cost O(N²)
draws).  A window that starts before the cursor simply rebuilds the RNG
and replays the prefix — determinism never depends on the cursor cache.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.caching import lru_get, lru_put
from repro.core.policies import make_policy
from repro.scenarios.spec import FAULT_TARGETS, FaultSpec

#: The stratum-dimension defaults: a DL1 fault during an isolation run.
#: Strata pinned to these defaults keep the historical RNG identity, so
#: pre-existing DL1-only campaigns reproduce byte-identically.
DEFAULT_TARGET = "dl1"
ISOLATION_SCENARIO = "isolation"


@dataclass(frozen=True)
class KernelFaultSpace:
    """The sampleable population of one kernel at one scale."""

    #: Total DL1 data accesses (loads + stores) of the golden run.
    mem_ops: int
    #: Distinct word addresses in first-touch order.
    first_touch: Tuple[int, ...]
    #: ``distinct_before[i]`` = number of distinct words touched by the
    #: first ``i`` memory operations (length ``mem_ops + 1``).
    distinct_before: Tuple[int, ...]


_SPACE_CACHE: Dict[Tuple[str, float], KernelFaultSpace] = {}
_SPACE_CACHE_MAX = 32


def kernel_fault_space(kernel: str, scale: float) -> KernelFaultSpace:
    """Build (or fetch) the fault-sampling population of one kernel."""
    key = (kernel, scale)
    cached = lru_get(_SPACE_CACHE, key)
    if cached is not None:
        return cached
    from repro.experiments.runner import cached_kernel_trace

    _, trace = cached_kernel_trace(kernel, scale)
    seen = set()
    first_touch: List[int] = []
    distinct_before: List[int] = [0]
    for dyn in trace.instructions:
        if dyn.address is None:
            continue
        word = dyn.address & ~0x3
        if word not in seen:
            seen.add(word)
            first_touch.append(word)
        distinct_before.append(len(seen))
    space = KernelFaultSpace(
        mem_ops=len(distinct_before) - 1,
        first_touch=tuple(first_touch),
        distinct_before=tuple(distinct_before),
    )
    lru_put(_SPACE_CACHE, key, space, _SPACE_CACHE_MAX)
    return space


def policy_codeword_bits(policy_value: str) -> int:
    """Width of the DL1 codeword stored under ``policy_value``."""
    policy = make_policy(policy_value)
    if policy.dl1_code_name is None:
        return 32
    from repro.ecc.codec import get_code

    return get_code(policy.dl1_code_name).total_bits


def target_codeword_bits(policy_value: str, target: str = DEFAULT_TARGET) -> int:
    """Codeword width of the targeted array under ``policy_value``.

    The DL1 width follows the policy's DL1 code; the L2 width follows
    the deployment's L2 protection (SECDED for every protected
    deployment, the bare 32-bit word for the unprotected ``no-ecc``
    baseline — see :func:`repro.campaign.replay.l2_code_for_policy`).
    """
    if target == "l2":
        from repro.campaign.replay import l2_code_for_policy

        return l2_code_for_policy(make_policy(policy_value)).total_bits
    return policy_codeword_bits(policy_value)


def stratum_identity(
    seed: int,
    kernel: str,
    policy_value: str,
    *,
    target: str = DEFAULT_TARGET,
    scenario: str = ISOLATION_SCENARIO,
) -> str:
    """The RNG identity string of one stratum of the sweep grid.

    Non-default dimensions are appended as suffixes so the historical
    DL1 / isolation strata keep their original identity (and therefore
    their exact historical sample sequences), while every other stratum
    of the grid draws an independent stream.  Scale is deliberately not
    part of the identity: it enters through the fault space the draws
    are mapped onto (a different scale yields a different population and
    mem-op count, hence different points).
    """
    identity = f"campaign:{seed}:{kernel}:{policy_value}"
    if target != DEFAULT_TARGET:
        identity += f":target={target}"
    if scenario not in (None, ISOLATION_SCENARIO):
        identity += f":scenario={scenario}"
    return identity


def stratum_rng(
    seed: int,
    kernel: str,
    policy_value: str,
    *,
    target: str = DEFAULT_TARGET,
    scenario: str = ISOLATION_SCENARIO,
) -> random.Random:
    """The deterministic RNG of one stratum (independent of all others)."""
    return random.Random(
        stratum_identity(seed, kernel, policy_value, target=target, scenario=scenario)
    )


#: Stratum sample cursors: identity key -> [next_index, live RNG].  Pure
#: cache — losing an entry only costs a prefix replay, never determinism.
_CURSOR_CACHE: Dict[Tuple[str, float], List] = {}
_CURSOR_CACHE_MAX = 256

#: Total points drawn (including prefix replays) since process start or
#: the last :func:`reset_draw_count` — the O(N)-sampling regression hook.
_POINT_DRAWS = 0


def point_draw_count() -> int:
    """Number of sample points drawn from stratum RNGs so far."""
    return _POINT_DRAWS


def reset_draw_count() -> None:
    global _POINT_DRAWS
    _POINT_DRAWS = 0


def clear_sample_cursors() -> None:
    """Drop every cached stratum cursor (tests / determinism audits)."""
    _CURSOR_CACHE.clear()


def _draw_point(
    rng: random.Random, space: KernelFaultSpace, total_bits: int, target: str
) -> FaultSpec:
    """One point of a stratum's sequence (exactly one 3-draw step)."""
    global _POINT_DRAWS
    _POINT_DRAWS += 1
    at_access = rng.randint(1, space.mem_ops)
    if target == "l2":
        # The whole working set is L2-resident for the entire run.
        word = space.first_touch[rng.randrange(len(space.first_touch))]
    else:
        population = space.distinct_before[at_access - 1]
        if population:
            word = space.first_touch[rng.randrange(population)]
        else:
            # Nothing resident yet: aim at the first word the kernel
            # will touch — the flip lands in an unoccupied line and is
            # architecturally masked, modelling spatially wasted upsets.
            word = space.first_touch[0]
    bit = rng.randrange(total_bits)
    return FaultSpec(target=target, word_address=word, bit=bit, at_access=at_access)


def sample_faults(
    kernel: str,
    scale: float,
    policy_value: str,
    count: int,
    *,
    seed: int,
    start: int = 0,
    target: str = DEFAULT_TARGET,
    scenario: str = ISOLATION_SCENARIO,
) -> List[FaultSpec]:
    """Points ``start .. start+count`` of one stratum's sample sequence.

    Any ``(start, count)`` window of the same stratum always yields the
    same points — the resume invariant.  Sequential windows continue the
    stratum's cached sample cursor, so sweeping a stratum of N points in
    batches costs O(N) RNG draws total; a window behind the cursor
    rebuilds the RNG and replays the prefix, which is the only case that
    re-draws points.
    """
    if target not in FAULT_TARGETS:
        raise ValueError(
            f"unknown fault target {target!r}; expected one of {FAULT_TARGETS}"
        )
    space = kernel_fault_space(kernel, scale)
    if space.mem_ops == 0:
        return []
    total_bits = target_codeword_bits(policy_value, target)
    identity = stratum_identity(
        seed, kernel, policy_value, target=target, scenario=scenario
    )
    key = (identity, scale)
    cursor = lru_get(_CURSOR_CACHE, key)
    if cursor is None or cursor[0] > start:
        cursor = [
            0,
            stratum_rng(seed, kernel, policy_value, target=target, scenario=scenario),
        ]
    position, rng = cursor
    while position < start:
        _draw_point(rng, space, total_bits, target)
        position += 1
    points = [_draw_point(rng, space, total_bits, target) for _ in range(count)]
    cursor[0] = start + count
    cursor[1] = rng
    lru_put(_CURSOR_CACHE, key, cursor, _CURSOR_CACHE_MAX)
    return points


def replay_group_key(
    kernel: str,
    scale: float,
    *,
    target: str = DEFAULT_TARGET,
    scenario: str = ISOLATION_SCENARIO,
) -> Tuple[str, float, str, str]:
    """The batched-replay grouping key of one sampled point.

    Points sharing it run against one shared set of golden artefacts
    (lean golden trace, final memory, per-word cache timelines) in
    :func:`repro.campaign.replay.run_injection_batch`; the policy axis
    deliberately stays out of the key — every policy of a group reuses
    the same golden run, only the codeword decode differs.
    """
    return (kernel, scale, target, scenario)


def sample_fault_groups(
    strata,
    count: int,
    *,
    seed: int,
    start: int = 0,
):
    """Group-ordered emission of one batch window across many strata.

    ``strata`` is an iterable of ``(kernel, scale, policy_value,
    target, scenario)`` tuples; the result is an insertion-ordered dict
    ``replay_group_key -> [(policy_value, FaultSpec), ...]`` with every
    group's points contiguous, so a consumer hands each group straight
    to ``run_injection_batch`` without re-sorting.  Each stratum's
    points are drawn by :func:`sample_faults` with identical windows,
    so the emitted sequences are byte-identical to per-stratum
    sampling — grouping changes execution order, never the points.
    """
    groups: Dict[Tuple[str, float, str, str], List] = {}
    for kernel, scale, policy_value, target, scenario in strata:
        faults = sample_faults(
            kernel,
            scale,
            policy_value,
            count,
            seed=seed,
            start=start,
            target=target,
            scenario=scenario,
        )
        bucket = groups.setdefault(
            replay_group_key(kernel, scale, target=target, scenario=scenario), []
        )
        bucket.extend((policy_value, fault) for fault in faults)
    return groups
