"""Stratified fault-point sampling.

A campaign samples injection points per stratum (one stratum per
kernel × policy pair): an injection ordinal uniform over the kernel's
DL1 data accesses, a word address uniform over the words the kernel has
touched *before* that ordinal (the plausible-resident population — words
it has not touched yet occupy no line, so flips aimed at them model
upsets landing in unoccupied parts of the array), and a bit position
uniform over the policy's DL1 codeword width.

Sampling is **prefix-deterministic**: the i-th point of a stratum
depends only on the campaign seed and the stratum identity, never on
batch sizes or early stopping.  That property is what makes checkpoint /
resume sound — a resumed campaign regenerates exactly the points the
killed campaign would have run, finds the finished ones in the store by
content hash, and simulates only the rest.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.caching import lru_get, lru_put
from repro.core.policies import make_policy
from repro.scenarios.spec import FaultSpec


@dataclass(frozen=True)
class KernelFaultSpace:
    """The sampleable population of one kernel at one scale."""

    #: Total DL1 data accesses (loads + stores) of the golden run.
    mem_ops: int
    #: Distinct word addresses in first-touch order.
    first_touch: Tuple[int, ...]
    #: ``distinct_before[i]`` = number of distinct words touched by the
    #: first ``i`` memory operations (length ``mem_ops + 1``).
    distinct_before: Tuple[int, ...]


_SPACE_CACHE: Dict[Tuple[str, float], KernelFaultSpace] = {}
_SPACE_CACHE_MAX = 32


def kernel_fault_space(kernel: str, scale: float) -> KernelFaultSpace:
    """Build (or fetch) the fault-sampling population of one kernel."""
    key = (kernel, scale)
    cached = lru_get(_SPACE_CACHE, key)
    if cached is not None:
        return cached
    from repro.experiments.runner import cached_kernel_trace

    _, trace = cached_kernel_trace(kernel, scale)
    seen = set()
    first_touch: List[int] = []
    distinct_before: List[int] = [0]
    for dyn in trace.instructions:
        if dyn.address is None:
            continue
        word = dyn.address & ~0x3
        if word not in seen:
            seen.add(word)
            first_touch.append(word)
        distinct_before.append(len(seen))
    space = KernelFaultSpace(
        mem_ops=len(distinct_before) - 1,
        first_touch=tuple(first_touch),
        distinct_before=tuple(distinct_before),
    )
    lru_put(_SPACE_CACHE, key, space, _SPACE_CACHE_MAX)
    return space


def policy_codeword_bits(policy_value: str) -> int:
    """Width of the DL1 codeword stored under ``policy_value``."""
    policy = make_policy(policy_value)
    if policy.dl1_code_name is None:
        return 32
    from repro.ecc.codec import get_code

    return get_code(policy.dl1_code_name).total_bits


def stratum_rng(seed: int, kernel: str, policy_value: str) -> random.Random:
    """The deterministic RNG of one stratum (independent of all others)."""
    return random.Random(f"campaign:{seed}:{kernel}:{policy_value}")


def sample_faults(
    kernel: str,
    scale: float,
    policy_value: str,
    count: int,
    *,
    seed: int,
    start: int = 0,
) -> List[FaultSpec]:
    """Points ``start .. start+count`` of one stratum's sample sequence.

    Regenerates the sequence from the beginning (draws are cheap), so
    any ``(start, count)`` window of the same stratum always yields the
    same points — the resume invariant.
    """
    space = kernel_fault_space(kernel, scale)
    total_bits = policy_codeword_bits(policy_value)
    rng = stratum_rng(seed, kernel, policy_value)
    points: List[FaultSpec] = []
    if space.mem_ops == 0:
        return points
    for index in range(start + count):
        at_access = rng.randint(1, space.mem_ops)
        population = space.distinct_before[at_access - 1]
        if population:
            word = space.first_touch[rng.randrange(population)]
        else:
            # Nothing resident yet: aim at the first word the kernel
            # will touch — the flip lands in an unoccupied line and is
            # architecturally masked, modelling spatially wasted upsets.
            word = space.first_touch[0]
        bit = rng.randrange(total_bits)
        if index >= start:
            points.append(
                FaultSpec(
                    target="dl1", word_address=word, bit=bit, at_access=at_access
                )
            )
    return points
