"""Deterministic harness-fault injection (chaos) for campaign runs.

The campaign injects faults into a simulated cache hierarchy; this
module injects faults into the *campaign harness itself*, so the
fault-tolerance layer (supervisor, retries, quarantine, store
verify/repair, resume) is testable end to end instead of only on paper.

A :class:`ChaosPlan` is a declarative, fully deterministic schedule
keyed by the campaign-global point index (the same deterministic grid
order the sampler uses — seeded like the sampler, never wall-clock or
PID dependent):

* ``kill-worker@N`` — the worker process simulating point N SIGKILLs
  itself (the ``BrokenProcessPool`` path: the supervisor must respawn
  the pool and retry the shard);
* ``timeout@N`` — point N hangs for :attr:`ChaosPlan.hang_seconds`,
  tripping the supervisor's per-point watchdog;
* ``fail@N`` — the replay of point N raises
  :class:`~repro.campaign.errors.ReplayDivergence`;
* ``kill-main@N`` — the *campaign process* SIGKILLs itself just before
  dispatching point N (crash-anywhere: resume must restore the run);
* ``sigint@N`` — SIGINT is delivered to the campaign process before
  dispatching point N (graceful-interrupt path: flush, checkpoint,
  structured exit).

Directives fire **once** by default — the first attempt fails, the
retry succeeds — which is how transient faults are modelled.  An
``:always`` suffix makes a directive persistent, which is how poison
points are modelled (the supervisor must quarantine them).

The CLI accepts plans as ``--chaos "kill-worker@5,timeout@7:always"``;
:func:`corrupt_store_row` completes the triad by deterministically
corrupting a chosen result-store row (checksum-detectable, see
:meth:`repro.store.ResultStore.verify`).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.campaign.errors import ReplayDivergence

#: Directive kinds that run inside the worker simulating the point.
WORKER_KINDS = ("kill-worker", "timeout", "fail")
#: Directive kinds the supervisor applies in the campaign process.
SUPERVISOR_KINDS = ("kill-main", "sigint")
CHAOS_KINDS = WORKER_KINDS + SUPERVISOR_KINDS


@dataclass(frozen=True)
class ChaosDirective:
    """One scheduled harness fault: ``kind`` at global point ``index``."""

    kind: str
    index: int
    always: bool = False

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; expected one of {CHAOS_KINDS}"
            )
        if self.index < 0:
            raise ValueError("chaos point index must be >= 0")

    def spec(self) -> str:
        return f"{self.kind}@{self.index}" + (":always" if self.always else "")


@dataclass
class ChaosPlan:
    """A deterministic schedule of harness faults for one campaign run."""

    directives: Tuple[ChaosDirective, ...] = ()
    #: How long a chaos ``timeout`` point sleeps (must exceed the
    #: campaign's ``point_timeout`` for the watchdog to trip).
    hang_seconds: float = 3600.0
    #: Attempt counters, so one-shot directives really fire once.
    _fired: Dict[Tuple[str, int], int] = field(default_factory=dict)

    def directive_for(self, index: int, *, worker: bool) -> Optional[ChaosDirective]:
        """The directive to apply to point ``index`` on this attempt.

        ``worker=True`` selects worker-side kinds (travel with the job
        into the pool), ``worker=False`` supervisor-side kinds.  A
        one-shot directive is consumed by the call that returns it.
        """
        kinds = WORKER_KINDS if worker else SUPERVISOR_KINDS
        for directive in self.directives:
            if directive.index != index or directive.kind not in kinds:
                continue
            fired = self._fired.get((directive.kind, index), 0)
            if directive.always or fired == 0:
                self._fired[(directive.kind, index)] = fired + 1
                return directive
        return None

    def has_directive(self, index: int) -> bool:
        """Non-consuming peek: does ``index`` still have a pending directive?

        The batched scheduler routes chaos-targeted points through the
        per-point path (where kill/hang/fail semantics are exact); this
        peek must not consume a one-shot directive, or the directive
        would silently never fire.
        """
        for directive in self.directives:
            if directive.index != index:
                continue
            if directive.always or not self._fired.get((directive.kind, index), 0):
                return True
        return False

    def spec(self) -> str:
        return ",".join(directive.spec() for directive in self.directives)


def parse_chaos(text: str, *, hang_seconds: float = 3600.0) -> ChaosPlan:
    """Parse ``"kind@index[:always],..."`` into a :class:`ChaosPlan`."""
    directives = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        always = False
        if chunk.endswith(":always"):
            always = True
            chunk = chunk[: -len(":always")]
        try:
            kind, raw_index = chunk.rsplit("@", 1)
            index = int(raw_index)
        except ValueError as error:
            raise ValueError(
                f"bad chaos directive {chunk!r}; expected kind@index[:always]"
            ) from error
        directives.append(ChaosDirective(kind=kind.strip(), index=index, always=always))
    return ChaosPlan(directives=tuple(directives), hang_seconds=hang_seconds)


def apply_worker_directive(directive: Optional[ChaosDirective], hang_seconds: float) -> None:
    """Execute a worker-side directive inside the simulating process.

    Called by the supervised point runner before the real replay; the
    directive (already consumed parent-side for one-shot bookkeeping)
    travels pickled with the job, so pool workers need no shared state.
    """
    if directive is None:
        return
    if directive.kind == "kill-worker":
        # Die the way a segfaulted/OOM-killed worker dies: abruptly,
        # without cleanup — the parent sees BrokenProcessPool.
        # repro: allow[D104] reason=self-signalling chaos kill; the pid is consumed by os.kill, never persisted
        os.kill(os.getpid(), signal.SIGKILL)
    elif directive.kind == "timeout":
        time.sleep(hang_seconds)
    elif directive.kind == "fail":
        raise ReplayDivergence(
            "chaos-injected replay failure",
            chaos=directive.spec(),
        )


def apply_supervisor_directive(directive: Optional[ChaosDirective]) -> None:
    """Execute a supervisor-side directive in the campaign process."""
    if directive is None:
        return
    if directive.kind == "kill-main":
        # repro: allow[D104] reason=self-signalling chaos kill; the pid is consumed by os.kill, never persisted
        os.kill(os.getpid(), signal.SIGKILL)
    elif directive.kind == "sigint":
        # repro: allow[D104] reason=self-signalling chaos interrupt; the pid is consumed by os.kill, never persisted
        os.kill(os.getpid(), signal.SIGINT)


def corrupt_store_row(path, index: int = 0, *, seed: int = 2019) -> str:
    """Deterministically bit-corrupt one stored result row (tests/CI).

    Picks the ``index``-th result row in key order and rewrites one
    payload character derived from ``seed`` — the JSON stays parseable,
    so only the per-row checksum (:meth:`ResultStore.verify`) can tell
    the row is lying.  Returns the corrupted row's key.

    Writes through a raw SQLite connection on purpose: this models
    corruption happening *behind the store's back* (torn write, bad
    sector), which the store must detect, not prevent.
    """
    import sqlite3

    connection = sqlite3.connect(str(path))
    try:
        row = connection.execute(
            "SELECT key, payload FROM results ORDER BY key LIMIT 1 OFFSET ?",
            (index,),
        ).fetchone()
        if row is None:
            raise IndexError(f"store has no result row at index {index}")
        key, payload = row
        digits = [i for i, ch in enumerate(payload) if ch.isdigit()]
        if not digits:
            raise ValueError(f"row {key} has no digit to corrupt")
        at = digits[seed % len(digits)]
        flipped = str((int(payload[at]) + 1) % 10)
        corrupted = payload[:at] + flipped + payload[at + 1 :]
        # repro: allow[S301] reason=deliberate behind-the-store corruption the checksum scan must catch (chaos testing)
        connection.execute(
            "UPDATE results SET payload = ? WHERE key = ?", (corrupted, key)
        )
        connection.commit()
        return key
    finally:
        connection.close()


__all__ = [
    "CHAOS_KINDS",
    "ChaosDirective",
    "ChaosPlan",
    "apply_supervisor_directive",
    "apply_worker_directive",
    "corrupt_store_row",
    "parse_chaos",
]
