"""The campaign failure taxonomy.

Every way a campaign point (or the harness running it) can fail is a
:class:`CampaignError` subclass with a stable machine-readable ``kind``
and a structured :meth:`~CampaignError.payload`.  The taxonomy is what
the execution supervisor (:mod:`repro.campaign.engine`) quarantines
poison points under, what the store records in its ``quarantine`` table,
and what the CLI renders as its one-line structured error instead of a
traceback:

* :class:`PointTimeout` — one injection exceeded the configured
  per-point wall-clock budget (``point_timeout``);
* :class:`WorkerCrash` — a pool worker died mid-shard (the
  ``BrokenProcessPool`` path: segfault, OOM kill, chaos ``kill-worker``);
* :class:`ReplayDivergence` — the replay itself raised (an internal
  invariant broke, or chaos forced a failure);
* :class:`StoreCorruption` — the result store detected torn or
  bit-corrupted rows, or an incompatible schema;
* :class:`CampaignInterrupted` — SIGINT/SIGTERM arrived; the in-flight
  batch was flushed and the campaign checkpointed before raising.

Quarantine bookkeeping lives here too: a :class:`QuarantinedPoint`
pairs the failed point's identity (global index, stratum coordinates,
spec hash) with the error payload that condemned it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


class CampaignError(Exception):
    """Base of the campaign failure taxonomy (machine-readable ``kind``)."""

    kind: str = "campaign-error"

    def __init__(self, message: str, **details: object) -> None:
        super().__init__(message)
        self.message = message
        self.details: Dict[str, object] = dict(details)

    def payload(self) -> Dict[str, object]:
        """The structured JSON form stored with quarantined points."""
        return {
            "error": self.kind,
            "message": self.message,
            "details": dict(self.details),
        }

    def __reduce__(self):
        # Default Exception pickling rebuilds from ``args`` alone, which
        # would drop ``details`` on the worker -> supervisor hop (and
        # with it the worker's flight-recorder tail).
        return (_rebuild_campaign_error, (type(self), self.message, self.details))

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


def _rebuild_campaign_error(cls, message: str, details: Dict[str, object]):
    """Unpickle helper: restore a taxonomy error with its details."""
    return cls(message, **details)


class PointTimeout(CampaignError):
    """One injection point exceeded its per-point wall-clock budget."""

    kind = "point-timeout"


class WorkerCrash(CampaignError):
    """A pool worker died mid-shard (BrokenProcessPool and friends)."""

    kind = "worker-crash"


class ReplayDivergence(CampaignError):
    """The architectural replay raised instead of classifying."""

    kind = "replay-divergence"


class StoreCorruption(CampaignError):
    """The result store detected torn/corrupted rows or a bad schema."""

    kind = "store-corruption"


class CampaignInterrupted(CampaignError):
    """SIGINT/SIGTERM: the campaign checkpointed and stopped cleanly."""

    kind = "interrupted"


def wrap_point_error(error: BaseException, **details: object) -> CampaignError:
    """Normalise an arbitrary per-point exception into the taxonomy.

    :class:`CampaignError` instances pass through (their details are
    extended); anything else a worker raised during replay is, by
    definition, a replay that failed to classify its point —
    :class:`ReplayDivergence` — with the original exception preserved
    in the structured payload.
    """
    if isinstance(error, CampaignError):
        error.details.update(details)
        return error
    return ReplayDivergence(
        f"replay raised {type(error).__name__}: {error}",
        exception=type(error).__name__,
        **details,
    )


@dataclass(frozen=True)
class QuarantinedPoint:
    """One poison point: identity plus the error that condemned it.

    ``index`` is the campaign-global point index (deterministic grid
    order), so quarantine reports are byte-stable across re-runs.
    """

    index: int
    kernel: str
    policy: str
    target: str
    scenario: str
    scale: float
    attempts: int
    error: Dict[str, object]
    key: str = ""
    spec_json: str = ""

    def describe(self) -> str:
        """One deterministic report line for the campaign summary."""
        return (
            f"point {self.index} {self.kernel} x {self.policy} "
            f"[{self.target}/{self.scenario}/{self.scale:g}] "
            f"after {self.attempts} attempt(s): "
            f"{self.error.get('error')}: {self.error.get('message')}"
        )


@dataclass
class SupervisorStats:
    """Harness-level health counters of one campaign run."""

    retries: int = 0
    worker_restarts: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    replay_failures: int = 0
    quarantined: int = 0
    #: Replay-mode composition of the completed points: classified
    #: analytically from the golden timeline (zero re-execution),
    #: executed via snapshot suffix-resume ("streamed"), executed via
    #: the classic full per-point replay, or satisfied from the result
    #: store.  ``analytical + streamed + full + store_hits`` equals the
    #: number of non-quarantined points the campaign resolved.
    analytical: int = 0
    streamed: int = 0
    full: int = 0
    store_hits: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def record_mode(self, mode: str) -> None:
        """Count one completed point's replay mode."""
        if mode == "analytical":
            self.analytical += 1
        elif mode == "streamed":
            self.streamed += 1
        else:
            self.full += 1

    def record(self, error: CampaignError) -> None:
        if isinstance(error, PointTimeout):
            self.timeouts += 1
        elif isinstance(error, WorkerCrash):
            self.worker_crashes += 1
        elif isinstance(error, ReplayDivergence):
            self.replay_failures += 1
        else:
            self.extra[error.kind] = self.extra.get(error.kind, 0) + 1


__all__ = [
    "CampaignError",
    "CampaignInterrupted",
    "PointTimeout",
    "QuarantinedPoint",
    "ReplayDivergence",
    "StoreCorruption",
    "SupervisorStats",
    "WorkerCrash",
    "wrap_point_error",
]
