"""The statistical architectural fault-injection campaign engine.

A campaign is a stratified sample over (kernel × policy × injection
point): each stratum draws deterministic fault points
(:mod:`repro.campaign.sampling`), replays them architecturally
(:mod:`repro.campaign.replay`), aggregates outcome counts with Wilson
confidence intervals (:mod:`repro.campaign.stats`), and optionally stops
a stratum early once its intervals are tight enough.

Execution is shardable (``workers=`` fans points out over a
``ProcessPoolExecutor``; every worker reuses the per-process kernel
trace cache) and resumable: with a :class:`~repro.store.ResultStore`
attached, each point is keyed by the content hash of its full
:class:`~repro.scenarios.spec.SimulationSpec` and a resumed campaign
simulates only the points the store does not hold yet.  Because the
sample sequence is prefix-deterministic and each point's outcome is
deterministic, a resumed campaign renders byte-identical summaries.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import Table
from repro.campaign.replay import ArchOutcome, run_injection
from repro.campaign.sampling import sample_faults
from repro.campaign.stats import DEFAULT_Z, wilson_half_width, wilson_interval
from repro.core.policies import make_policy
from repro.ecc.codec import EccCode
from repro.ecc.reliability import ReliabilityModel
from repro.scenarios.spec import SimulationSpec

#: The four DL1 deployments compared in Figure 8, in paper order.
FIGURE8_POLICY_VALUES = ("no-ecc", "extra-cycle", "extra-stage", "laec")

OUTCOME_KEYS = tuple(outcome.value for outcome in ArchOutcome)


@dataclass(frozen=True)
class CampaignConfig:
    """Everything one campaign needs (a plain, picklable value)."""

    kernels: Tuple[str, ...]
    policies: Tuple[str, ...] = FIGURE8_POLICY_VALUES
    scale: float = 0.2
    #: Maximum trials per stratum.
    trials: int = 80
    #: Points simulated between early-stopping checks.
    batch: int = 20
    #: Stop a stratum early once the Wilson half-width of both its SDC
    #: and corrected rates drops to this value (None = never stop early).
    ci_target: Optional[float] = None
    ci_z: float = DEFAULT_Z
    seed: int = 2019
    #: Process-pool width (None = serial, 0 = one per CPU).
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError("a campaign needs at least one kernel")
        if self.trials < 1 or self.batch < 1:
            raise ValueError("trials and batch must be positive")
        for value in self.policies:
            make_policy(value)  # validates early, with a helpful error


@dataclass
class StratumSummary:
    """Aggregated outcome counts of one kernel × policy stratum."""

    kernel: str
    policy: str
    trials: int
    counts: Dict[str, int]
    early_stopped: bool = False

    def rate(self, key: str) -> float:
        return self.counts.get(key, 0) / self.trials if self.trials else 0.0

    def interval(self, key: str, *, z: float = DEFAULT_Z) -> Tuple[float, float]:
        return wilson_interval(self.counts.get(key, 0), self.trials, z=z)


@dataclass
class CampaignResult:
    """The full outcome of one campaign run."""

    config: CampaignConfig
    strata: List[StratumSummary] = field(default_factory=list)
    #: Store bookkeeping (not part of the rendered summary, which must
    #: be byte-identical between fresh and resumed runs).
    store_hits: int = 0
    store_misses: int = 0
    simulated: int = 0

    @property
    def points(self) -> int:
        return sum(stratum.trials for stratum in self.strata)

    def stratum(self, kernel: str, policy: str) -> StratumSummary:
        for candidate in self.strata:
            if candidate.kernel == kernel and candidate.policy == policy:
                return candidate
        raise KeyError(f"no stratum {kernel} x {policy}")

    def policy_totals(self) -> Dict[str, Dict[str, int]]:
        """Outcome counts summed over kernels, keyed by policy value."""
        totals: Dict[str, Dict[str, int]] = {}
        for stratum in self.strata:
            bucket = totals.setdefault(
                stratum.policy, {key: 0 for key in OUTCOME_KEYS}
            )
            bucket["trials"] = bucket.get("trials", 0) + stratum.trials
            for key in OUTCOME_KEYS:
                bucket[key] += stratum.counts.get(key, 0)
        return totals

    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """Deterministic campaign summary (identical for resumed runs)."""
        table = Table(
            title=(
                "Architectural fault-injection campaign "
                f"(scale {self.config.scale:g}, seed {self.config.seed}, "
                f"<= {self.config.trials} trials/stratum)"
            ),
            columns=[
                "kernel",
                "policy",
                "trials",
                "masked %",
                "corrected %",
                "detected %",
                "SDC %",
                "timing %",
                "SDC 95% CI",
            ],
        )
        for stratum in self.strata:
            low, high = stratum.interval("sdc", z=self.config.ci_z)
            table.add_row(
                kernel=stratum.kernel,
                policy=stratum.policy + ("*" if stratum.early_stopped else ""),
                trials=stratum.trials,
                **{
                    "masked %": 100.0 * stratum.rate("masked"),
                    "corrected %": 100.0 * stratum.rate("corrected"),
                    "detected %": 100.0 * stratum.rate("detected"),
                    "SDC %": 100.0 * stratum.rate("sdc"),
                    "timing %": 100.0 * stratum.rate("timing"),
                    "SDC 95% CI": f"[{100.0 * low:.1f}, {100.0 * high:.1f}]",
                },
            )
        note = (
            "* = stratum stopped early at the requested CI half-width.\n"
            "Faults are single bit flips landing in live DL1 lines during the\n"
            "run; outcomes are classified architecturally against the golden\n"
            "functional trace (masked / corrected / detected / SDC / timing)."
        )
        return table.render(float_format="{:.1f}") + "\n" + note


def _simulate_point(spec: SimulationSpec) -> Dict[str, object]:
    """Worker-side job: one architectural injection, payload out.

    Module-level so it pickles for :class:`ProcessPoolExecutor`; the
    golden program/trace come from the worker's kernel-trace cache.
    """
    return run_injection(spec).payload()


def _dl1_code_instance(policy_value: str) -> EccCode:
    from repro.campaign.replay import dl1_code_for_policy

    return dl1_code_for_policy(make_policy(policy_value))


def analytical_reference(
    policies: Sequence[str], *, bit_upset_rate_per_hour: float = 1e-9
) -> Dict[str, Dict[str, float]]:
    """Per-policy analytical prediction to print next to empirical rates.

    ``codec_sdc_bound`` is the code-level SDC probability of a single
    flip (1 for the unprotected array, 0 for detecting/correcting
    codes); architectural masking can only push the observed rate
    *below* it.  ``array_failures_per_1e9h`` is the
    :class:`~repro.ecc.reliability.ReliabilityModel` array-level unsafe
    failure rate for a 16 KiB DL1, which fixes the expected ordering
    between the policies.
    """
    reference: Dict[str, Dict[str, float]] = {}
    for value in policies:
        policy = make_policy(value)
        code = _dl1_code_instance(value)
        model = ReliabilityModel(
            words=16 * 1024 // 4, bit_upset_rate_per_hour=bit_upset_rate_per_hour
        )
        if policy.corrects_errors:
            corrected, detected, sdc = 1.0, 0.0, 0.0
        elif policy.detects_errors:
            corrected, detected, sdc = 0.0, 1.0, 0.0
        else:
            corrected, detected, sdc = 0.0, 0.0, 1.0
        reference[value] = {
            "codec_corrected": corrected,
            "codec_detected": detected,
            "codec_sdc_bound": sdc,
            "array_failures_per_1e9h": model.failures_in_time(code, hours=1e9),
        }
    return reference


def run_campaign(
    config: CampaignConfig,
    *,
    store=None,
    resume: bool = False,
) -> CampaignResult:
    """Run (or resume) one stratified architectural campaign.

    ``store`` is an optional :class:`~repro.store.ResultStore`; computed
    points are always written to it.  With ``resume=True`` points whose
    spec hash is already stored are *not* re-simulated — their stored
    outcome is reused — which is what turns a half-finished campaign
    into an incremental one.
    """
    workers = config.workers
    if workers == 0:
        workers = os.cpu_count() or 1
    result = CampaignResult(config=config)
    executor = (
        ProcessPoolExecutor(max_workers=workers)
        if workers is not None and workers > 1
        else None
    )
    try:
        for kernel in config.kernels:
            for policy_value in config.policies:
                stratum = _run_stratum(
                    config,
                    kernel,
                    policy_value,
                    store=store,
                    resume=resume,
                    executor=executor,
                    result=result,
                )
                result.strata.append(stratum)
    finally:
        if executor is not None:
            executor.shutdown()
    return result


def _run_stratum(
    config: CampaignConfig,
    kernel: str,
    policy_value: str,
    *,
    store,
    resume: bool,
    executor,
    result: CampaignResult,
) -> StratumSummary:
    from repro.store import canonical_json, spec_hash

    counts: Dict[str, int] = {key: 0 for key in OUTCOME_KEYS}
    done = 0
    early = False
    while done < config.trials and not early:
        batch_size = min(config.batch, config.trials - done)
        faults = sample_faults(
            kernel,
            config.scale,
            policy_value,
            batch_size,
            seed=config.seed,
            start=done,
        )
        if not faults:
            break
        specs = [
            SimulationSpec(
                kernel=kernel, scale=config.scale, policy=policy_value, fault=fault
            )
            for fault in faults
        ]
        keys = [spec_hash(spec) for spec in specs]
        payloads: List[Optional[Dict[str, object]]] = [None] * len(specs)
        to_run: List[int] = []
        for index, key in enumerate(keys):
            stored = store.get(key) if (store is not None and resume) else None
            if stored is not None:
                payloads[index] = stored
                result.store_hits += 1
            else:
                to_run.append(index)
        if to_run:
            pending = [specs[index] for index in to_run]
            if executor is not None:
                computed = list(executor.map(_simulate_point, pending))
            else:
                computed = [_simulate_point(spec) for spec in pending]
            for index, payload in zip(to_run, computed):
                payloads[index] = payload
                result.simulated += 1
                if store is not None:
                    result.store_misses += 1
                    store.put(
                        keys[index],
                        payload,
                        spec_json=canonical_json(specs[index]),
                        kind="injection",
                    )
        for payload in payloads:
            counts[str(payload["outcome"])] += 1
        done += len(faults)
        if config.ci_target is not None and done >= config.batch:
            half_sdc = wilson_half_width(counts["sdc"], done, z=config.ci_z)
            half_corrected = wilson_half_width(
                counts["corrected"], done, z=config.ci_z
            )
            if max(half_sdc, half_corrected) <= config.ci_target:
                early = True
    return StratumSummary(
        kernel=kernel,
        policy=policy_value,
        trials=done,
        counts=counts,
        early_stopped=early,
    )
