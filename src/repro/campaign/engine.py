"""The statistical architectural fault-injection campaign engine.

A campaign is a stratified sample over a declarative **sweep grid**:
kernel × policy × fault target (``dl1``/``l2``) × interference scenario
× scale.  Each stratum draws deterministic fault points
(:mod:`repro.campaign.sampling`), replays them architecturally
(:mod:`repro.campaign.replay`), aggregates outcome counts with Wilson
confidence intervals (:mod:`repro.campaign.stats`), and optionally stops
a stratum early once its intervals are tight enough.  The default grid
(one ``dl1`` target, the ``isolation`` scenario, one scale) reproduces
historical single-dimension campaigns byte-identically — same seed, same
points, same rendered table.

Execution is shardable (``workers=`` fans points out over a
``ProcessPoolExecutor``; every worker reuses the per-process kernel
trace cache) and resumable: with a :class:`~repro.store.ResultStore`
attached, each point is keyed by the content hash of its full
:class:`~repro.scenarios.spec.SimulationSpec` — which carries the
target, the scenario's interference and the scale — so resume works
across every dimension of the grid.  Because the sample sequence is
prefix-deterministic and each point's outcome is deterministic, a
resumed campaign renders byte-identical summaries.

Execution is also **supervised**: a per-point watchdog
(``point_timeout``) bounds hung replays, dead pool workers
(``BrokenProcessPool``) respawn the pool and retry the unfinished shard
with exponential backoff, and points that keep failing past
``max_retries`` are **quarantined** — recorded with a structured error
from the taxonomy in :mod:`repro.campaign.errors` (and in the store's
quarantine table) so the campaign completes and reports them instead of
dying.  SIGINT/SIGTERM flush the in-flight batch and checkpoint before
raising :class:`~repro.campaign.errors.CampaignInterrupted`, so an
interrupted campaign resumes byte-identically.  The whole layer is
testable through the deterministic harness-fault injector in
:mod:`repro.campaign.chaos`.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import Table
from repro.campaign.errors import (
    CampaignError,
    CampaignInterrupted,
    PointTimeout,
    QuarantinedPoint,
    SupervisorStats,
    WorkerCrash,
    wrap_point_error,
)
from repro.campaign.replay import ArchOutcome, run_injection
from repro.campaign.sampling import DEFAULT_TARGET, ISOLATION_SCENARIO, sample_faults
from repro.campaign.stats import DEFAULT_Z, wilson_half_width, wilson_interval
from repro.core.policies import make_policy
from repro.ecc.codec import EccCode
from repro.ecc.reliability import ReliabilityModel
from repro.scenarios.spec import FAULT_TARGETS, SimulationSpec
from repro.telemetry import flight as _flight
from repro.telemetry import metrics as _metrics
from repro.telemetry import trace as _trace
from repro.telemetry.console import format_heartbeat, format_quarantine_footer, get_console

#: The four DL1 deployments compared in Figure 8, in paper order.
FIGURE8_POLICY_VALUES = ("no-ecc", "extra-cycle", "extra-stage", "laec")

OUTCOME_KEYS = tuple(outcome.value for outcome in ArchOutcome)


@dataclass(frozen=True)
class CampaignConfig:
    """Everything one campaign needs (a plain, picklable value).

    ``targets``, ``scenarios`` and ``scales`` span the sweep grid; their
    defaults describe the historical single-dimension campaign (DL1
    faults during isolation runs at ``scale``), so existing configs keep
    meaning — and reproducing — exactly what they always did.
    ``scales`` empty means "just ``scale``".

    ``point_timeout``/``max_retries``/``quarantine`` configure the
    execution supervisor: a point that times out, crashes its worker or
    raises is retried up to ``max_retries`` times (exponential backoff
    from ``retry_backoff``); a point failing every attempt is quarantined
    (``quarantine=True``, the default — the campaign completes and
    reports it) or re-raised (``quarantine=False``, fail fast).
    """

    kernels: Tuple[str, ...]
    policies: Tuple[str, ...] = FIGURE8_POLICY_VALUES
    scale: float = 0.2
    #: Maximum trials per stratum.
    trials: int = 80
    #: Points simulated between early-stopping checks.
    batch: int = 20
    #: Stop a stratum early once the Wilson half-width of both its SDC
    #: and corrected rates drops to this value (None = never stop early).
    ci_target: Optional[float] = None
    ci_z: float = DEFAULT_Z
    seed: int = 2019
    #: Process-pool width (None = serial, 0 = one per CPU).
    workers: Optional[int] = None
    #: Fault targets swept (subset of FAULT_TARGETS).
    targets: Tuple[str, ...] = (DEFAULT_TARGET,)
    #: Named interference scenarios the faulty runs execute under (names
    #: from :mod:`repro.scenarios.registry`; only their interference
    #: component is used — the policy axis is this config's own).
    scenarios: Tuple[str, ...] = (ISOLATION_SCENARIO,)
    #: Kernel scales swept; empty = (scale,).
    scales: Tuple[float, ...] = ()
    #: Per-point wall-clock watchdog in seconds (None = no watchdog).
    #: Enforcing a timeout needs a process boundary, so a serial
    #: campaign with a timeout runs its points through a one-worker pool.
    point_timeout: Optional[float] = None
    #: Failed-point retries before quarantine (0 = no retries).
    max_retries: int = 2
    #: Base of the exponential retry backoff, in seconds.
    retry_backoff: float = 0.1
    #: Quarantine poison points (True) or fail fast (False).
    quarantine: bool = True
    #: How sampled points are replayed: ``"batched"`` (default) hands
    #: each stratum batch to :func:`repro.campaign.replay.run_injection_batch`
    #: — golden trace, final memory and per-word timelines derived once
    #: per (kernel, scale) group, analytical triage for dead-on-arrival
    #: and code-healed flips, snapshot suffix-resume for the residue —
    #: while ``"point"`` keeps the legacy one-process-job-per-point
    #: path.  Outcomes and summaries are byte-identical either way.
    replay_mode: str = "batched"

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError("a campaign needs at least one kernel")
        if self.trials < 1 or self.batch < 1:
            raise ValueError("trials and batch must be positive")
        for value in self.policies:
            make_policy(value)  # validates early, with a helpful error
        if not self.targets:
            raise ValueError("a campaign needs at least one fault target")
        for target in self.targets:
            if target not in FAULT_TARGETS:
                raise ValueError(
                    f"unknown fault target {target!r}; "
                    f"expected one of {FAULT_TARGETS}"
                )
        if not self.scenarios:
            raise ValueError("a campaign needs at least one scenario")
        for name in self.scenarios:
            try:
                self.scenario_interference(name)
            except KeyError as error:
                raise ValueError(str(error.args[0])) from error
        for scale in self.sweep_scales:
            if scale <= 0:
                raise ValueError("campaign scales must be positive")
        if self.point_timeout is not None and self.point_timeout <= 0:
            raise ValueError("point_timeout must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if self.replay_mode not in ("batched", "point"):
            raise ValueError(
                f"unknown replay_mode {self.replay_mode!r}; "
                "expected 'batched' or 'point'"
            )

    # -- the sweep grid -------------------------------------------------- #
    @property
    def sweep_scales(self) -> Tuple[float, ...]:
        """The scale axis of the grid (``scales`` or the single ``scale``)."""
        return self.scales if self.scales else (self.scale,)

    @staticmethod
    def scenario_interference(name: str):
        """Resolve a scenario name to its interference component."""
        if name == ISOLATION_SCENARIO:
            # The campaign default never touches the registry (and keeps
            # interference=None, the historical spec shape).
            return None
        from repro.scenarios.registry import scenario_interference

        return scenario_interference(name)

    def strata(self):
        """The grid in deterministic order (kernel-major, scale-minor)."""
        for kernel in self.kernels:
            for policy_value in self.policies:
                for target in self.targets:
                    for scenario in self.scenarios:
                        for scale in self.sweep_scales:
                            yield kernel, policy_value, target, scenario, scale


@dataclass
class StratumSummary:
    """Aggregated outcome counts of one stratum of the sweep grid."""

    kernel: str
    policy: str
    trials: int
    counts: Dict[str, int]
    early_stopped: bool = False
    target: str = DEFAULT_TARGET
    scenario: str = ISOLATION_SCENARIO
    scale: Optional[float] = None
    #: Sampled points of this stratum that failed permanently (they are
    #: excluded from ``trials`` and every rate).
    quarantined: int = 0

    def rate(self, key: str) -> float:
        return self.counts.get(key, 0) / self.trials if self.trials else 0.0

    def interval(self, key: str, *, z: float = DEFAULT_Z) -> Tuple[float, float]:
        return wilson_interval(self.counts.get(key, 0), self.trials, z=z)


@dataclass
class CampaignResult:
    """The full outcome of one campaign run."""

    config: CampaignConfig
    strata: List[StratumSummary] = field(default_factory=list)
    #: Store bookkeeping (not part of the rendered summary, which must
    #: be byte-identical between fresh and resumed runs).  The counters
    #: mirror the attached store's own hit/miss accounting for exactly
    #: the lookups this campaign performed: resume lookups that found a
    #: payload are hits, resume lookups that did not are misses (every
    #: miss is then simulated), and non-resume runs perform no lookups
    #: at all — so ``store_misses == simulated`` whenever resuming and
    #: both are zero-lookup-consistent otherwise.
    store_hits: int = 0
    store_misses: int = 0
    simulated: int = 0
    #: Points that failed every attempt, with their structured errors.
    quarantined: List[QuarantinedPoint] = field(default_factory=list)
    #: Harness-level health counters (retries, pool restarts, ...).
    stats: SupervisorStats = field(default_factory=SupervisorStats)

    @property
    def points(self) -> int:
        return sum(stratum.trials for stratum in self.strata)

    @property
    def quarantined_points(self) -> int:
        return len(self.quarantined)

    def stratum(
        self,
        kernel: str,
        policy: str,
        *,
        target: Optional[str] = None,
        scenario: Optional[str] = None,
        scale: Optional[float] = None,
    ) -> StratumSummary:
        """The first stratum matching the given coordinates."""
        for candidate in self.strata:
            if candidate.kernel != kernel or candidate.policy != policy:
                continue
            if target is not None and candidate.target != target:
                continue
            if scenario is not None and candidate.scenario != scenario:
                continue
            if scale is not None and candidate.scale != scale:
                continue
            return candidate
        raise KeyError(f"no stratum {kernel} x {policy}")

    # -- marginals ------------------------------------------------------- #
    def _totals_by(self, group) -> Dict:
        totals: Dict = {}
        for stratum in self.strata:
            bucket = totals.setdefault(
                group(stratum), {key: 0 for key in OUTCOME_KEYS}
            )
            bucket["trials"] = bucket.get("trials", 0) + stratum.trials
            for key in OUTCOME_KEYS:
                bucket[key] += stratum.counts.get(key, 0)
        return totals

    def policy_totals(self) -> Dict[str, Dict[str, int]]:
        """Outcome counts summed over all other dimensions, per policy."""
        return self._totals_by(lambda stratum: stratum.policy)

    def target_totals(self) -> Dict[Tuple[str, str], Dict[str, int]]:
        """Per-(target, policy) marginal outcome counts."""
        return self._totals_by(lambda stratum: (stratum.target, stratum.policy))

    def scenario_totals(self) -> Dict[Tuple[str, str], Dict[str, int]]:
        """Per-(scenario, policy) marginal outcome counts."""
        return self._totals_by(lambda stratum: (stratum.scenario, stratum.policy))

    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """Deterministic campaign summary (identical for resumed runs).

        Sweep dimensions appear as columns only when the config actually
        sweeps them, so single-dimension campaigns keep their historical
        byte-exact rendering.  Quarantined points append a report after
        the table — a campaign with none renders exactly as before.
        """
        config = self.config
        show_target = config.targets != (DEFAULT_TARGET,)
        show_scenario = config.scenarios != (ISOLATION_SCENARIO,)
        show_scale = len(config.sweep_scales) > 1
        scale_text = ",".join(f"{scale:g}" for scale in config.sweep_scales)
        columns = ["kernel", "policy"]
        if show_target:
            columns.append("target")
        if show_scenario:
            columns.append("scenario")
        if show_scale:
            columns.append("scale")
        columns += [
            "trials",
            "masked %",
            "corrected %",
            "detected %",
            "SDC %",
            "timing %",
            "SDC 95% CI",
        ]
        table = Table(
            title=(
                "Architectural fault-injection campaign "
                f"(scale {scale_text}, seed {config.seed}, "
                f"<= {config.trials} trials/stratum)"
            ),
            columns=columns,
        )
        for stratum in self.strata:
            low, high = stratum.interval("sdc", z=config.ci_z)
            row = {
                "kernel": stratum.kernel,
                "policy": stratum.policy + ("*" if stratum.early_stopped else ""),
            }
            if show_target:
                row["target"] = stratum.target
            if show_scenario:
                row["scenario"] = stratum.scenario
            if show_scale:
                row["scale"] = f"{stratum.scale:g}"
            row.update(
                {
                    "trials": stratum.trials,
                    "masked %": 100.0 * stratum.rate("masked"),
                    "corrected %": 100.0 * stratum.rate("corrected"),
                    "detected %": 100.0 * stratum.rate("detected"),
                    "SDC %": 100.0 * stratum.rate("sdc"),
                    "timing %": 100.0 * stratum.rate("timing"),
                    "SDC 95% CI": f"[{100.0 * low:.1f}, {100.0 * high:.1f}]",
                }
            )
            table.add_row(**row)
        if show_target:
            where = "live DL1/L2 lines"
        else:
            where = "live DL1 lines"
        note = (
            "* = stratum stopped early at the requested CI half-width.\n"
            f"Faults are single bit flips landing in {where} during the\n"
            "run; outcomes are classified architecturally against the golden\n"
            "functional trace (masked / corrected / detected / SDC / timing)."
        )
        if show_scenario:
            note += (
                "\nScenario names set the interference the faulty run executes\n"
                "under (isolation = single core; others load the shared bus)."
            )
        text = table.render(float_format="{:.1f}") + "\n" + note
        if self.quarantined:
            text += format_quarantine_footer(self.quarantined)
        return text


def _simulate_point(spec: SimulationSpec) -> Dict[str, object]:
    """Worker-side job: one architectural injection, payload out.

    Module-level so it pickles for :class:`ProcessPoolExecutor`; the
    golden program/trace come from the worker's kernel-trace cache.
    """
    return run_injection(spec).payload()


def _simulate_point_supervised(
    spec: SimulationSpec, directive=None, hang_seconds: float = 0.0
) -> Dict[str, object]:
    """One supervised injection, with an optional chaos directive.

    The directive travels pickled with the job (no shared state in the
    pool workers); it runs *before* the real replay, so a chaos-killed
    worker dies exactly where a segfault would.

    Returns a job envelope ``{"payload", "pid", "phases"}``: the store
    payload itself is exactly what replay produced; the worker pid and
    its drained phase-timing snapshot ride alongside for telemetry only.
    A failing point leaves with this process's flight-recorder tail
    attached to the taxonomy error, so a quarantine records the last
    things the worker actually did.
    """
    _flight.record("point-start", kernel=spec.kernel, policy=spec.policy)
    try:
        if directive is not None:
            from repro.campaign.chaos import apply_worker_directive

            apply_worker_directive(directive, hang_seconds)
        payload = run_injection(spec).payload()
    except Exception as error:  # noqa: BLE001 - taxonomy boundary
        wrapped = wrap_point_error(error)
        wrapped.details.setdefault("flight_recorder", _flight.tail_payload())
        raise wrapped from error
    return {
        "payload": payload,
        # repro: allow[D104] reason=telemetry envelope field; stripped before payloads persist (differential-tested)
        "pid": os.getpid(),
        "phases": _metrics.drain_phase_payload(),
    }


def _simulate_batch(
    specs: Sequence[SimulationSpec], shard_store: Optional[str] = None
) -> Dict[str, object]:
    """Worker-side job: one whole batch through the shared-golden path.

    Returns an envelope ``{"results", "pid", "phases", "persisted"}``;
    ``results`` is ``(payload, replay_mode)`` per spec, in input order —
    the mode string feeds the ``analytical=/streamed=/full=`` counters —
    and the drained phase snapshot carries this job's golden/triage/
    residue timings back to the campaign process.

    With ``shard_store`` set (the canonical store's path), the worker
    also persists its finished rows to its **own** shard file
    (:mod:`repro.store.sharding`) before returning — the campaign
    process then merges shards instead of re-writing every payload
    through one connection, and ``persisted=True`` tells it to skip its
    own ``put_many`` for this group.
    """
    from repro.campaign.replay import run_injection_batch

    _flight.record("batch-start", points=len(specs))
    results = [
        (result.payload(), result.replay_mode)
        for result in run_injection_batch(list(specs))
    ]
    persisted = False
    if shard_store is not None:
        from repro.store import canonical_json, spec_hash
        from repro.store.sharding import shard_writer

        with _metrics.phase_timer("store_write"):
            shard_writer(shard_store).put_many(
                [
                    (spec_hash(spec), payload, canonical_json(spec))
                    for spec, (payload, _mode) in zip(specs, results)
                ],
                kind="injection",
            )
        persisted = True
    return {
        "results": results,
        # repro: allow[D104] reason=telemetry envelope field; stripped before payloads persist (differential-tested)
        "pid": os.getpid(),
        "phases": _metrics.drain_phase_payload(),
        "persisted": persisted,
    }


class _SignalGuard:
    """Graceful SIGINT/SIGTERM: note the signal, let the batch finish.

    The engine checks :attr:`triggered` after every batch flush and
    raises :class:`CampaignInterrupted` — so the store is checkpointed
    at a batch boundary and resume is byte-exact.  The previous handlers
    are restored on the *first* signal, so a second Ctrl-C behaves
    normally (kills the process).  Outside the main thread this is a
    no-op (signal handlers can only be installed there).
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self.triggered: Optional[str] = None
        self._previous: Dict[int, object] = {}

    def __enter__(self) -> "_SignalGuard":
        if threading.current_thread() is threading.main_thread():
            for signum in self.SIGNALS:
                self._previous[signum] = signal.signal(signum, self._handle)
        return self

    def _handle(self, signum, _frame) -> None:
        self.triggered = signal.Signals(signum).name
        self._restore()

    def _restore(self) -> None:
        for signum, handler in self._previous.items():
            signal.signal(signum, handler)
        self._previous = {}

    def __exit__(self, *_exc) -> None:
        self._restore()

    def check(self, result: "CampaignResult") -> None:
        if self.triggered is None:
            return
        processed = result.simulated + result.store_hits
        raise CampaignInterrupted(
            f"campaign interrupted by {self.triggered}; "
            f"{processed} point(s) checkpointed",
            signal=self.triggered,
            points_completed=processed,
            simulated=result.simulated,
        )


class _PointSupervisor:
    """Runs batches of points, surviving harness faults.

    One supervisor per campaign.  It owns the (optional) process pool,
    assigns every sampled point its campaign-global index (the chaos
    schedule's clock), enforces the per-point watchdog, respawns the
    pool after worker death, retries failed points with exponential
    backoff and quarantines the ones that fail every attempt.

    Fault attribution: when the pool breaks, every pending future fails
    at once and only the point whose wait raised is charged an attempt —
    then the supervisor switches to **isolation mode** (one in-flight
    point at a time) until a clean round, so a genuine poison point is
    charged precisely on every retry while innocent shard-mates are
    rescheduled uncharged.
    """

    def __init__(
        self,
        config: CampaignConfig,
        chaos,
        stats: SupervisorStats,
        shard_store: Optional[str] = None,
    ) -> None:
        self.config = config
        self.chaos = chaos
        self.stats = stats
        workers = config.workers
        if workers == 0:
            workers = os.cpu_count() or 1
        # A watchdog needs a process boundary to interrupt a hung
        # replay, so a serial campaign with a timeout runs pooled.
        if (workers is None or workers < 2) and config.point_timeout is not None:
            workers = max(workers or 1, 1)
            self._pooled = True
        else:
            self._pooled = workers is not None and workers > 1
        self._width = workers if self._pooled else None
        # Workers write their own store shards only where contention
        # exists at all: a real store file, a process pool, group jobs.
        self.shard_store = (
            shard_store
            if self._pooled and config.replay_mode == "batched"
            else None
        )
        self._executor: Optional[ProcessPoolExecutor] = None
        self._isolating = False
        self.next_index = 0
        #: global index -> pid of the process that computed the point
        #: (telemetry only; the campaign process itself when serial).
        self.worker_pids: Dict[int, int] = {}

    # -- pool lifecycle ------------------------------------------------- #
    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            if self.config.replay_mode == "batched":
                # Persistent warm workers: each worker preloads the
                # sweep's golden artefacts once at spawn, so shards stop
                # re-warming traces on every job (and a respawned pool
                # re-warms exactly once, not per batch).
                from repro.campaign.replay import warm_lean_golden

                self._executor = ProcessPoolExecutor(
                    max_workers=self._width,
                    initializer=warm_lean_golden,
                    initargs=(self.config.kernels, self.config.sweep_scales),
                )
            else:
                self._executor = ProcessPoolExecutor(max_workers=self._width)
        return self._executor

    def _collect(self, index: int, job: Dict[str, object], payloads) -> None:
        """Unpack one point-job envelope (payload + telemetry sidecar)."""
        payloads[index] = job["payload"]
        self.worker_pids[index] = job["pid"]
        _metrics.merge_phase_payload(job["phases"])

    def _kill_pool(self) -> None:
        executor, self._executor = self._executor, None
        if executor is None:
            return
        self.stats.worker_restarts += 1
        _metrics.inc("campaign_pool_restarts_total")
        _flight.record("pool-restart")
        _trace.event("pool-restart")
        # Hung or dead workers never drain their queue: cancel what we
        # can, then terminate the worker processes outright (the private
        # map is the only handle ProcessPoolExecutor exposes).
        processes = list(getattr(executor, "_processes", {}).values())
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        for process in processes:
            try:
                process.terminate()
            except Exception:
                pass

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    # -- batch execution ------------------------------------------------ #
    def assign_indices(self, count: int) -> range:
        """Consume ``count`` campaign-global point indices (every sampled
        point gets one — store hits included — so the chaos schedule is
        stable whether or not a run resumes)."""
        indices = range(self.next_index, self.next_index + count)
        self.next_index += count
        return indices

    def run_batch(
        self, jobs: Sequence[Tuple[int, SimulationSpec]]
    ) -> Tuple[Dict[int, Dict[str, object]], Dict[int, Tuple[CampaignError, int]]]:
        """Run ``(global_index, spec)`` jobs to completion or quarantine.

        Returns ``(payloads, quarantined)`` keyed by global index;
        ``quarantined`` values are ``(final_error, attempts)``.  With
        ``config.quarantine=False`` the final error is raised instead.
        """
        payloads: Dict[int, Dict[str, object]] = {}
        quarantined: Dict[int, Tuple[CampaignError, int]] = {}
        attempts: Dict[int, int] = {}
        pending = sorted(jobs)
        while pending:
            failed: List[Tuple[int, SimulationSpec, CampaignError]] = []
            if self._pooled:
                survivors = self._run_pooled(pending, payloads, failed)
            else:
                survivors = self._run_serial(pending, payloads, failed)
            if self._pooled and not failed:
                self._isolating = False
            retry: List[Tuple[int, SimulationSpec]] = list(survivors)
            for index, spec, error in failed:
                attempts[index] = attempts.get(index, 0) + 1
                self.stats.record(error)
                error.details.setdefault("point_index", index)
                error.details["attempts"] = attempts[index]
                _metrics.inc(
                    "campaign_point_failures_total", labels={"error": error.kind}
                )
                _flight.record(
                    "point-failure",
                    index=index,
                    error=error.kind,
                    attempt=attempts[index],
                )
                _trace.event(
                    "point-failure",
                    index=index,
                    error=error.kind,
                    attempt=attempts[index],
                )
                if attempts[index] > self.config.max_retries:
                    if not self.config.quarantine:
                        raise error
                    self.stats.quarantined += 1
                    _metrics.inc("campaign_points_quarantined_total")
                    # The worker's own tail travels in the error when the
                    # worker lived to attach it; a killed or hung worker
                    # leaves the supervisor's view as the next-best tail.
                    error.details.setdefault(
                        "flight_recorder", _flight.tail_payload()
                    )
                    _flight.record("quarantine", index=index, error=error.kind)
                    _trace.event(
                        "quarantine",
                        index=index,
                        error=error.kind,
                        attempts=attempts[index],
                    )
                    quarantined[index] = (error, attempts[index])
                else:
                    self.stats.retries += 1
                    _metrics.inc("campaign_retries_total")
                    _flight.record("retry", index=index, attempt=attempts[index])
                    _trace.event(
                        "retry",
                        index=index,
                        attempt=attempts[index],
                        error=error.kind,
                    )
                    if self.config.retry_backoff > 0:
                        time.sleep(
                            self.config.retry_backoff
                            * (2 ** (attempts[index] - 1))
                        )
                    retry.append((index, spec))
            pending = sorted(retry)
        return payloads, quarantined

    def inflight_groups(self) -> int:
        """Group jobs one stratum window keeps in flight.

        Pooled batched campaigns target **two groups per worker**: one
        running while its successor queues, so workers never idle
        between a group finishing and the engine's collect/flush — and
        golden-artefact derivation for one group overlaps residue
        replay of another.  Serial campaigns window one group at a
        time (there is nothing to overlap with).
        """
        if not self._pooled:
            return 1
        return max(2, 2 * (self._width or 1))

    def run_batch_grouped(
        self, jobs: Sequence[Tuple[int, SimulationSpec]], *, chunk: Optional[int] = None
    ) -> Tuple[
        Dict[int, Dict[str, object]],
        Dict[int, Tuple[CampaignError, int]],
        Dict[int, str],
        set,
    ]:
        """Run one stratum window through the batched replay backend.

        Returns ``(payloads, quarantined, modes, persisted)``; ``modes``
        maps each completed global index to its replay mode
        (``analytical`` / ``streamed`` / ``full``) and ``persisted``
        holds the indices whose rows a worker already wrote to its own
        store shard (the engine must not write them again).

        Semantics are preserved by routing, not by re-implementation:

        * chaos-targeted points (a *non-consuming* peek at the plan, so
          one-shot directives still fire exactly once) take the
          per-point path, where kill/hang/fail directives land on a
          process boundary exactly as in ``--replay-mode=point``;
        * the rest run as group jobs of up to ``chunk`` points against
          shared golden state — **all submitted up front**, so a pooled
          campaign keeps every worker busy — each under a watchdog
          scaled to its size;
        * if a group job times out, crashes its worker or raises, every
          point in it is retried through the per-point path — which
          owns retry accounting, backoff, isolation mode and
          quarantine — so a poison point is attributed and quarantined
          precisely, and no batch failure is ever charged to innocents.
        """
        point_jobs: List[Tuple[int, SimulationSpec]] = []
        group_jobs: List[Tuple[int, SimulationSpec]] = []
        for index, spec in jobs:
            if self.chaos is not None and self.chaos.has_directive(index):
                point_jobs.append((index, spec))
            else:
                group_jobs.append((index, spec))
        payloads: Dict[int, Dict[str, object]] = {}
        modes: Dict[int, str] = {}
        persisted: set = set()
        if group_jobs:
            size = chunk if chunk else len(group_jobs)
            groups = [
                group_jobs[start : start + size]
                for start in range(0, len(group_jobs), size)
            ]
            _flight.record(
                "dispatch-group", points=len(group_jobs), groups=len(groups)
            )
            for group, batch in self._run_groups(groups):
                if batch is None:
                    point_jobs.extend(group)
                    continue
                _metrics.merge_phase_payload(batch["phases"])
                if batch.get("persisted"):
                    persisted.update(index for index, _spec in group)
                for (index, _spec), (payload, mode) in zip(
                    group, batch["results"]
                ):
                    payloads[index] = payload
                    modes[index] = mode
                    self.worker_pids[index] = batch["pid"]
        quarantined: Dict[int, Tuple[CampaignError, int]] = {}
        if point_jobs:
            point_payloads, quarantined = self.run_batch(sorted(point_jobs))
            for index, payload in point_payloads.items():
                payloads[index] = payload
                modes[index] = "full"
        return payloads, quarantined, modes, persisted

    def _run_groups(self, groups):
        """Run group jobs, overlapped when pooled.

        Yields ``(group, envelope)`` pairs in submission order;
        ``envelope=None`` means "retry this group's points per-point".
        Pooled execution submits **every** group before collecting the
        first result, so up to pool-width groups run concurrently and
        the rest queue warm behind them.
        """
        if not self._pooled:
            for group in groups:
                try:
                    yield group, _simulate_batch(
                        [spec for _index, spec in group]
                    )
                except Exception:  # noqa: BLE001 - per-point path attributes it
                    yield group, None
            return
        submitted = []
        for group in groups:
            try:
                future = self._pool().submit(
                    _simulate_batch,
                    [spec for _index, spec in group],
                    self.shard_store,
                )
            except BrokenProcessPool:
                self._kill_pool()
                self._isolating = True
                future = None
            submitted.append((group, future))
        broken = False
        for group, future in submitted:
            if future is None or broken:
                # The pool died under an earlier group: keep results
                # that finished in time, reschedule the rest uncharged
                # (the group whose wait raised took the blame).
                if (
                    future is not None
                    and future.done()
                    and not future.cancelled()
                    and future.exception() is None
                ):
                    yield group, future.result()
                else:
                    yield group, None
                continue
            timeout = (
                self.config.point_timeout * max(1, len(group))
                if self.config.point_timeout is not None
                else None
            )
            try:
                yield group, future.result(timeout=timeout)
            except (FuturesTimeoutError, BrokenProcessPool):
                self._kill_pool()
                self._isolating = True
                broken = True
                yield group, None
            except Exception:  # noqa: BLE001 - per-point path attributes it
                yield group, None

    def _chaos_worker_directive(self, index: int, *, inline: bool):
        if self.chaos is None:
            return None
        directive = self.chaos.directive_for(index, worker=True)
        if directive is not None and inline and directive.kind != "fail":
            # No worker boundary to kill or hang in inline execution.
            return None
        return directive

    def _chaos_supervisor_step(self, index: int) -> None:
        if self.chaos is None:
            return
        from repro.campaign.chaos import apply_supervisor_directive

        apply_supervisor_directive(self.chaos.directive_for(index, worker=False))

    def _run_serial(self, pending, payloads, failed):
        for index, spec in pending:
            self._chaos_supervisor_step(index)
            directive = self._chaos_worker_directive(index, inline=True)
            try:
                self._collect(index, _simulate_point_supervised(spec, directive), payloads)
            except Exception as error:  # noqa: BLE001 - taxonomy boundary
                failed.append((index, spec, wrap_point_error(error, point_index=index)))
        return []

    def _run_pooled(self, pending, payloads, failed):
        if self._isolating:
            waves = [[job] for job in pending]
        else:
            waves = [list(pending)]
        survivors: List[Tuple[int, SimulationSpec]] = []
        for wave in waves:
            survivors.extend(self._run_wave(wave, payloads, failed))
        return survivors

    def _run_wave(self, wave, payloads, failed):
        hang = self.chaos.hang_seconds if self.chaos is not None else 0.0
        futures = []
        for index, spec in wave:
            self._chaos_supervisor_step(index)
            directive = self._chaos_worker_directive(index, inline=False)
            try:
                future = self._pool().submit(
                    _simulate_point_supervised, spec, directive, hang
                )
            except BrokenProcessPool:
                self._kill_pool()
                self._isolating = True
                futures.append((index, spec, None))
                continue
            futures.append((index, spec, future))
        survivors: List[Tuple[int, SimulationSpec]] = []
        broken = False
        for index, spec, future in futures:
            if future is None or broken:
                # The pool died under this future: collect it if it
                # finished in time, otherwise reschedule it uncharged
                # (the point whose wait raised took the blame).
                if (
                    future is not None
                    and future.done()
                    and not future.cancelled()
                    and future.exception() is None
                ):
                    self._collect(index, future.result(), payloads)
                else:
                    survivors.append((index, spec))
                continue
            try:
                self._collect(
                    index,
                    future.result(timeout=self.config.point_timeout),
                    payloads,
                )
            except FuturesTimeoutError:
                failed.append(
                    (
                        index,
                        spec,
                        PointTimeout(
                            f"point exceeded the {self.config.point_timeout:g}s "
                            "watchdog",
                            timeout_seconds=self.config.point_timeout,
                        ),
                    )
                )
                self._kill_pool()
                self._isolating = True
                broken = True
            except BrokenProcessPool:
                failed.append(
                    (
                        index,
                        spec,
                        WorkerCrash("a pool worker died while running the shard"),
                    )
                )
                self._kill_pool()
                self._isolating = True
                broken = True
            except Exception as error:  # noqa: BLE001 - taxonomy boundary
                failed.append(
                    (index, spec, wrap_point_error(error, point_index=index))
                )
        return survivors


def _dl1_code_instance(policy_value: str) -> EccCode:
    from repro.campaign.replay import dl1_code_for_policy

    return dl1_code_for_policy(make_policy(policy_value))


def analytical_reference(
    policies: Sequence[str], *, bit_upset_rate_per_hour: float = 1e-9
) -> Dict[str, Dict[str, float]]:
    """Per-policy analytical prediction to print next to empirical rates.

    ``codec_sdc_bound`` is the code-level SDC probability of a single
    flip (1 for the unprotected array, 0 for detecting/correcting
    codes); architectural masking can only push the observed rate
    *below* it.  ``array_failures_per_1e9h`` is the
    :class:`~repro.ecc.reliability.ReliabilityModel` array-level unsafe
    failure rate for a 16 KiB DL1, which fixes the expected ordering
    between the policies.
    """
    reference: Dict[str, Dict[str, float]] = {}
    for value in policies:
        policy = make_policy(value)
        code = _dl1_code_instance(value)
        model = ReliabilityModel(
            words=16 * 1024 // 4, bit_upset_rate_per_hour=bit_upset_rate_per_hour
        )
        if policy.corrects_errors:
            corrected, detected, sdc = 1.0, 0.0, 0.0
        elif policy.detects_errors:
            corrected, detected, sdc = 0.0, 1.0, 0.0
        else:
            corrected, detected, sdc = 0.0, 0.0, 1.0
        reference[value] = {
            "codec_corrected": corrected,
            "codec_detected": detected,
            "codec_sdc_bound": sdc,
            "array_failures_per_1e9h": model.failures_in_time(code, hours=1e9),
        }
    return reference


class _Heartbeat:
    """Emits the live progress line at batch boundaries.

    ``interval`` is seconds between beats (0 = every batch, None =
    silent); beats go through the process console's status stream, so
    they never touch the deterministic summary on stdout.
    """

    def __init__(self, interval: Optional[float], expected: int) -> None:
        self.interval = interval
        self.expected = expected
        # repro: allow[D101] reason=console heartbeat pacing; feeds stderr progress lines, never a payload
        self._started = time.monotonic()
        self._last = self._started

    def maybe_beat(self, result: "CampaignResult") -> None:
        if self.interval is None:
            return
        # repro: allow[D101] reason=console heartbeat pacing; feeds stderr progress lines, never a payload
        now = time.monotonic()
        if self.interval > 0 and now - self._last < self.interval:
            return
        self._last = now
        get_console().status(
            format_heartbeat(
                done=result.simulated + result.store_hits,
                expected=self.expected,
                elapsed=now - self._started,
                stats=result.stats,
                quarantined=result.quarantined_points,
            )
        )


def run_campaign(
    config: CampaignConfig,
    *,
    store=None,
    resume: bool = False,
    chaos=None,
    telemetry=None,
) -> CampaignResult:
    """Run (or resume) one stratified architectural campaign.

    ``store`` is an optional :class:`~repro.store.ResultStore`; computed
    points are always written to it (one transaction per batch).  With
    ``resume=True`` points whose spec hash is already stored are *not*
    re-simulated — their stored outcome is reused — which is what turns
    a half-finished campaign into an incremental one.

    ``chaos`` is an optional :class:`~repro.campaign.chaos.ChaosPlan`
    injecting deterministic harness faults (tests / CI only).

    ``telemetry`` is an optional
    :class:`~repro.telemetry.trace.Telemetry` session (``--trace`` /
    ``--progress-interval``).  Telemetry is deterministically inert:
    the returned result, its rendered summary and every store payload
    are byte-identical with or without it.
    """
    result = CampaignResult(config=config)
    # Metrics and the flight recorder restart with the campaign, so the
    # final metrics snapshot describes *this* run and quarantine-payload
    # sequence numbers are per-campaign deterministic.
    _metrics.reset_registry()
    _flight.recorder().clear()
    session = _trace.activate(telemetry) if telemetry is not None else None
    heartbeat = _Heartbeat(
        telemetry.progress_interval if telemetry is not None else None,
        expected=config.trials * sum(1 for _ in config.strata()),
    )
    supervisor = _PointSupervisor(
        config,
        chaos,
        result.stats,
        shard_store=(
            store.path
            if store is not None and store.path != ":memory:"
            else None
        ),
    )
    merger = None
    if store is not None and store.path != ":memory:":
        from repro.store.sharding import ShardMerger

        merger = ShardMerger(store)
        # Orphan recovery: shards left by a killed run are folded in
        # *before* the first resume lookup, so their points resume as
        # store hits exactly as if the canonical file had been written.
        merger.merge()
        merger.discard_shards()
    campaign_span = _trace.begin_span(
        "campaign",
        kernels=",".join(config.kernels),
        policies=",".join(config.policies),
        trials=config.trials,
        replay_mode=config.replay_mode,
        workers=config.workers if config.workers is not None else 0,
    )
    status = "completed"
    try:
        with _SignalGuard() as guard:
            for kernel, policy_value, target, scenario, scale in config.strata():
                stratum = _run_stratum(
                    config,
                    kernel,
                    policy_value,
                    target=target,
                    scenario=scenario,
                    scale=scale,
                    store=store,
                    resume=resume,
                    supervisor=supervisor,
                    guard=guard,
                    result=result,
                    heartbeat=heartbeat,
                    campaign_span=campaign_span,
                    merger=merger,
                )
                result.strata.append(stratum)
    except CampaignInterrupted as error:
        status = "interrupted"
        _trace.event("interrupt", signal=error.details.get("signal"))
        _trace.emit_flight("interrupt", _flight.recorder().tail())
        raise
    except BaseException as error:
        status = "error"
        _trace.event("campaign-error", error=type(error).__name__)
        _trace.emit_flight("crash", _flight.recorder().tail())
        raise
    finally:
        supervisor.close()
        if merger is not None:
            # The pool is down: one last merge drains anything a worker
            # persisted that the flush-boundary merges missed, then the
            # fully folded shard files are deleted.
            merger.merge()
            merger.discard_shards()
        _trace.emit_metrics(_metrics.registry().to_payload())
        _trace.end_span(
            campaign_span,
            status=status,
            points=result.points,
            simulated=result.simulated,
            quarantined=result.quarantined_points,
        )
        if session is not None:
            _trace.deactivate()
    return result


def _run_stratum(
    config: CampaignConfig,
    kernel: str,
    policy_value: str,
    *,
    target: str,
    scenario: str,
    scale: float,
    store,
    resume: bool,
    supervisor: _PointSupervisor,
    guard: _SignalGuard,
    result: CampaignResult,
    heartbeat: Optional[_Heartbeat] = None,
    campaign_span: int = 0,
    merger=None,
) -> StratumSummary:
    from repro.store import canonical_json, spec_hash

    interference = config.scenario_interference(scenario)
    stratum_label = f"{kernel}/{policy_value}/{target}/{scenario}/{scale:g}"
    counts: Dict[str, int] = {key: 0 for key in OUTCOME_KEYS}
    # Window sizing: a batched sweep with no early-stopping checks to
    # honour samples `inflight_groups` batches at once and submits them
    # all, so a pooled campaign keeps >= 2 group jobs per worker in
    # flight.  With a CI target (or the point backend) the window stays
    # one batch, preserving the historical check cadence exactly.
    window_groups = (
        supervisor.inflight_groups()
        if config.replay_mode == "batched" and config.ci_target is None
        else 1
    )
    done = 0
    stratum_quarantined = 0
    early = False
    while done < config.trials and not early:
        batch_size = min(config.batch * window_groups, config.trials - done)
        with _metrics.phase_timer("sampling"):
            faults = sample_faults(
                kernel,
                scale,
                policy_value,
                batch_size,
                seed=config.seed,
                start=done,
                target=target,
                scenario=scenario,
            )
        if not faults:
            break
        specs = [
            SimulationSpec(
                kernel=kernel,
                scale=scale,
                policy=policy_value,
                interference=interference,
                fault=fault,
            )
            for fault in faults
        ]
        keys = [spec_hash(spec) for spec in specs]
        indices = supervisor.assign_indices(len(specs))
        _metrics.inc("campaign_batches_total")
        _metrics.inc("campaign_points_total", len(specs))
        batch_span = _trace.begin_span(
            "batch",
            parent=campaign_span,
            stratum=stratum_label,
            points=len(specs),
            start=done,
        )
        payloads: List[Optional[Dict[str, object]]] = [None] * len(specs)
        to_run: List[int] = []
        batch_hits = 0
        lookup = store is not None and resume
        # One SELECT resolves the whole batch's store hits up front —
        # warm resumes never enter the supervisor loop per hit (the
        # BENCH_6 warm-path regression was exactly that).
        stored_payloads = store.get_many(keys) if lookup else {}
        for slot, key in enumerate(keys):
            stored = stored_payloads.get(key)
            if stored is not None:
                payloads[slot] = stored
                result.store_hits += 1
                result.stats.store_hits += 1
                batch_hits += 1
                _metrics.inc("campaign_store_hits_total")
            else:
                if lookup:
                    result.store_misses += 1
                    _metrics.inc("campaign_store_misses_total")
                to_run.append(slot)
        quarantined_slots: List[int] = []
        rows: List[Tuple[str, Dict[str, object], str]] = []
        persisted: set = set()
        if to_run:
            jobs = [(indices[slot], specs[slot]) for slot in to_run]
            run_started = _trace.now()
            if config.replay_mode == "batched":
                computed, poisoned, modes, persisted = (
                    supervisor.run_batch_grouped(jobs, chunk=config.batch)
                )
            else:
                computed, poisoned = supervisor.run_batch(jobs)
                modes = {}
            run_ended = _trace.now()
            for slot in to_run:
                index = indices[slot]
                if index in computed:
                    payloads[slot] = computed[index]
                    result.simulated += 1
                    mode = modes.get(index, "full")
                    result.stats.record_mode(mode)
                    _metrics.inc("campaign_points_simulated_total")
                    _metrics.inc(
                        "campaign_replay_points_total", labels={"mode": mode}
                    )
                    # Per-point spans share the batch-job window: points
                    # inside one group job are not individually timed
                    # (timing them would perturb the hot path).
                    _trace.emit_span(
                        "point",
                        parent=batch_span,
                        t_start=run_started,
                        t_end=run_ended,
                        worker=supervisor.worker_pids.get(index),
                        index=index,
                        mode=mode,
                        outcome=str(computed[index]["outcome"]),
                    )
                    if store is not None and index not in persisted:
                        rows.append(
                            (keys[slot], computed[index], canonical_json(specs[slot]))
                        )
                else:
                    error, tries = poisoned[index]
                    quarantined_slots.append(slot)
                    point = QuarantinedPoint(
                        index=index,
                        kernel=kernel,
                        policy=policy_value,
                        target=target,
                        scenario=scenario,
                        scale=scale,
                        attempts=tries,
                        error=error.payload(),
                        key=keys[slot],
                        spec_json=canonical_json(specs[slot]),
                    )
                    result.quarantined.append(point)
                    if store is not None:
                        with _metrics.phase_timer("store_write"):
                            store.quarantine_put(
                                point.key, point.error, spec_json=point.spec_json
                            )
        for slot, payload in enumerate(payloads):
            if payload is not None:
                counts[str(payload["outcome"])] += 1
        stratum_quarantined += len(quarantined_slots)
        done += len(faults)
        if rows:
            with _metrics.phase_timer("store_write"):
                store.put_many(rows, kind="injection")
        if merger is not None and supervisor.shard_store is not None:
            # Fold worker shards in at the flush boundary, so the
            # canonical store checkpoints exactly what the single-writer
            # path would have — a SIGINT here resumes byte-identically.
            merger.merge()
        _trace.end_span(
            batch_span,
            hits=batch_hits,
            simulated=len(to_run) - len(quarantined_slots),
            quarantined=len(quarantined_slots),
        )
        # The batch is flushed: this is the checkpoint boundary where a
        # graceful interrupt may stop the campaign (resume is byte-exact
        # from here).
        guard.check(result)
        if heartbeat is not None:
            heartbeat.maybe_beat(result)
        completed = done - stratum_quarantined
        if config.ci_target is not None and done >= config.batch and completed:
            half_sdc = wilson_half_width(counts["sdc"], completed, z=config.ci_z)
            half_corrected = wilson_half_width(
                counts["corrected"], completed, z=config.ci_z
            )
            if max(half_sdc, half_corrected) <= config.ci_target:
                early = True
    return StratumSummary(
        kernel=kernel,
        policy=policy_value,
        trials=done - stratum_quarantined,
        counts=counts,
        early_stopped=early,
        target=target,
        scenario=scenario,
        scale=scale,
        quarantined=stratum_quarantined,
    )
