"""The statistical architectural fault-injection campaign engine.

A campaign is a stratified sample over a declarative **sweep grid**:
kernel × policy × fault target (``dl1``/``l2``) × interference scenario
× scale.  Each stratum draws deterministic fault points
(:mod:`repro.campaign.sampling`), replays them architecturally
(:mod:`repro.campaign.replay`), aggregates outcome counts with Wilson
confidence intervals (:mod:`repro.campaign.stats`), and optionally stops
a stratum early once its intervals are tight enough.  The default grid
(one ``dl1`` target, the ``isolation`` scenario, one scale) reproduces
historical single-dimension campaigns byte-identically — same seed, same
points, same rendered table.

Execution is shardable (``workers=`` fans points out over a
``ProcessPoolExecutor``; every worker reuses the per-process kernel
trace cache) and resumable: with a :class:`~repro.store.ResultStore`
attached, each point is keyed by the content hash of its full
:class:`~repro.scenarios.spec.SimulationSpec` — which carries the
target, the scenario's interference and the scale — so resume works
across every dimension of the grid.  Because the sample sequence is
prefix-deterministic and each point's outcome is deterministic, a
resumed campaign renders byte-identical summaries.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import Table
from repro.campaign.replay import ArchOutcome, run_injection
from repro.campaign.sampling import DEFAULT_TARGET, ISOLATION_SCENARIO, sample_faults
from repro.campaign.stats import DEFAULT_Z, wilson_half_width, wilson_interval
from repro.core.policies import make_policy
from repro.ecc.codec import EccCode
from repro.ecc.reliability import ReliabilityModel
from repro.scenarios.spec import FAULT_TARGETS, SimulationSpec

#: The four DL1 deployments compared in Figure 8, in paper order.
FIGURE8_POLICY_VALUES = ("no-ecc", "extra-cycle", "extra-stage", "laec")

OUTCOME_KEYS = tuple(outcome.value for outcome in ArchOutcome)


@dataclass(frozen=True)
class CampaignConfig:
    """Everything one campaign needs (a plain, picklable value).

    ``targets``, ``scenarios`` and ``scales`` span the sweep grid; their
    defaults describe the historical single-dimension campaign (DL1
    faults during isolation runs at ``scale``), so existing configs keep
    meaning — and reproducing — exactly what they always did.
    ``scales`` empty means "just ``scale``".
    """

    kernels: Tuple[str, ...]
    policies: Tuple[str, ...] = FIGURE8_POLICY_VALUES
    scale: float = 0.2
    #: Maximum trials per stratum.
    trials: int = 80
    #: Points simulated between early-stopping checks.
    batch: int = 20
    #: Stop a stratum early once the Wilson half-width of both its SDC
    #: and corrected rates drops to this value (None = never stop early).
    ci_target: Optional[float] = None
    ci_z: float = DEFAULT_Z
    seed: int = 2019
    #: Process-pool width (None = serial, 0 = one per CPU).
    workers: Optional[int] = None
    #: Fault targets swept (subset of FAULT_TARGETS).
    targets: Tuple[str, ...] = (DEFAULT_TARGET,)
    #: Named interference scenarios the faulty runs execute under (names
    #: from :mod:`repro.scenarios.registry`; only their interference
    #: component is used — the policy axis is this config's own).
    scenarios: Tuple[str, ...] = (ISOLATION_SCENARIO,)
    #: Kernel scales swept; empty = (scale,).
    scales: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError("a campaign needs at least one kernel")
        if self.trials < 1 or self.batch < 1:
            raise ValueError("trials and batch must be positive")
        for value in self.policies:
            make_policy(value)  # validates early, with a helpful error
        if not self.targets:
            raise ValueError("a campaign needs at least one fault target")
        for target in self.targets:
            if target not in FAULT_TARGETS:
                raise ValueError(
                    f"unknown fault target {target!r}; "
                    f"expected one of {FAULT_TARGETS}"
                )
        if not self.scenarios:
            raise ValueError("a campaign needs at least one scenario")
        for name in self.scenarios:
            try:
                self.scenario_interference(name)
            except KeyError as error:
                raise ValueError(str(error.args[0])) from error
        for scale in self.sweep_scales:
            if scale <= 0:
                raise ValueError("campaign scales must be positive")

    # -- the sweep grid -------------------------------------------------- #
    @property
    def sweep_scales(self) -> Tuple[float, ...]:
        """The scale axis of the grid (``scales`` or the single ``scale``)."""
        return self.scales if self.scales else (self.scale,)

    @staticmethod
    def scenario_interference(name: str):
        """Resolve a scenario name to its interference component."""
        if name == ISOLATION_SCENARIO:
            # The campaign default never touches the registry (and keeps
            # interference=None, the historical spec shape).
            return None
        from repro.scenarios.registry import scenario_interference

        return scenario_interference(name)

    def strata(self):
        """The grid in deterministic order (kernel-major, scale-minor)."""
        for kernel in self.kernels:
            for policy_value in self.policies:
                for target in self.targets:
                    for scenario in self.scenarios:
                        for scale in self.sweep_scales:
                            yield kernel, policy_value, target, scenario, scale


@dataclass
class StratumSummary:
    """Aggregated outcome counts of one stratum of the sweep grid."""

    kernel: str
    policy: str
    trials: int
    counts: Dict[str, int]
    early_stopped: bool = False
    target: str = DEFAULT_TARGET
    scenario: str = ISOLATION_SCENARIO
    scale: Optional[float] = None

    def rate(self, key: str) -> float:
        return self.counts.get(key, 0) / self.trials if self.trials else 0.0

    def interval(self, key: str, *, z: float = DEFAULT_Z) -> Tuple[float, float]:
        return wilson_interval(self.counts.get(key, 0), self.trials, z=z)


@dataclass
class CampaignResult:
    """The full outcome of one campaign run."""

    config: CampaignConfig
    strata: List[StratumSummary] = field(default_factory=list)
    #: Store bookkeeping (not part of the rendered summary, which must
    #: be byte-identical between fresh and resumed runs).  The counters
    #: mirror the attached store's own hit/miss accounting for exactly
    #: the lookups this campaign performed: resume lookups that found a
    #: payload are hits, resume lookups that did not are misses (every
    #: miss is then simulated), and non-resume runs perform no lookups
    #: at all — so ``store_misses == simulated`` whenever resuming and
    #: both are zero-lookup-consistent otherwise.
    store_hits: int = 0
    store_misses: int = 0
    simulated: int = 0

    @property
    def points(self) -> int:
        return sum(stratum.trials for stratum in self.strata)

    def stratum(
        self,
        kernel: str,
        policy: str,
        *,
        target: Optional[str] = None,
        scenario: Optional[str] = None,
        scale: Optional[float] = None,
    ) -> StratumSummary:
        """The first stratum matching the given coordinates."""
        for candidate in self.strata:
            if candidate.kernel != kernel or candidate.policy != policy:
                continue
            if target is not None and candidate.target != target:
                continue
            if scenario is not None and candidate.scenario != scenario:
                continue
            if scale is not None and candidate.scale != scale:
                continue
            return candidate
        raise KeyError(f"no stratum {kernel} x {policy}")

    # -- marginals ------------------------------------------------------- #
    def _totals_by(self, group) -> Dict:
        totals: Dict = {}
        for stratum in self.strata:
            bucket = totals.setdefault(
                group(stratum), {key: 0 for key in OUTCOME_KEYS}
            )
            bucket["trials"] = bucket.get("trials", 0) + stratum.trials
            for key in OUTCOME_KEYS:
                bucket[key] += stratum.counts.get(key, 0)
        return totals

    def policy_totals(self) -> Dict[str, Dict[str, int]]:
        """Outcome counts summed over all other dimensions, per policy."""
        return self._totals_by(lambda stratum: stratum.policy)

    def target_totals(self) -> Dict[Tuple[str, str], Dict[str, int]]:
        """Per-(target, policy) marginal outcome counts."""
        return self._totals_by(lambda stratum: (stratum.target, stratum.policy))

    def scenario_totals(self) -> Dict[Tuple[str, str], Dict[str, int]]:
        """Per-(scenario, policy) marginal outcome counts."""
        return self._totals_by(lambda stratum: (stratum.scenario, stratum.policy))

    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """Deterministic campaign summary (identical for resumed runs).

        Sweep dimensions appear as columns only when the config actually
        sweeps them, so single-dimension campaigns keep their historical
        byte-exact rendering.
        """
        config = self.config
        show_target = config.targets != (DEFAULT_TARGET,)
        show_scenario = config.scenarios != (ISOLATION_SCENARIO,)
        show_scale = len(config.sweep_scales) > 1
        scale_text = ",".join(f"{scale:g}" for scale in config.sweep_scales)
        columns = ["kernel", "policy"]
        if show_target:
            columns.append("target")
        if show_scenario:
            columns.append("scenario")
        if show_scale:
            columns.append("scale")
        columns += [
            "trials",
            "masked %",
            "corrected %",
            "detected %",
            "SDC %",
            "timing %",
            "SDC 95% CI",
        ]
        table = Table(
            title=(
                "Architectural fault-injection campaign "
                f"(scale {scale_text}, seed {config.seed}, "
                f"<= {config.trials} trials/stratum)"
            ),
            columns=columns,
        )
        for stratum in self.strata:
            low, high = stratum.interval("sdc", z=config.ci_z)
            row = {
                "kernel": stratum.kernel,
                "policy": stratum.policy + ("*" if stratum.early_stopped else ""),
            }
            if show_target:
                row["target"] = stratum.target
            if show_scenario:
                row["scenario"] = stratum.scenario
            if show_scale:
                row["scale"] = f"{stratum.scale:g}"
            row.update(
                {
                    "trials": stratum.trials,
                    "masked %": 100.0 * stratum.rate("masked"),
                    "corrected %": 100.0 * stratum.rate("corrected"),
                    "detected %": 100.0 * stratum.rate("detected"),
                    "SDC %": 100.0 * stratum.rate("sdc"),
                    "timing %": 100.0 * stratum.rate("timing"),
                    "SDC 95% CI": f"[{100.0 * low:.1f}, {100.0 * high:.1f}]",
                }
            )
            table.add_row(**row)
        if show_target:
            where = "live DL1/L2 lines"
        else:
            where = "live DL1 lines"
        note = (
            "* = stratum stopped early at the requested CI half-width.\n"
            f"Faults are single bit flips landing in {where} during the\n"
            "run; outcomes are classified architecturally against the golden\n"
            "functional trace (masked / corrected / detected / SDC / timing)."
        )
        if show_scenario:
            note += (
                "\nScenario names set the interference the faulty run executes\n"
                "under (isolation = single core; others load the shared bus)."
            )
        return table.render(float_format="{:.1f}") + "\n" + note


def _simulate_point(spec: SimulationSpec) -> Dict[str, object]:
    """Worker-side job: one architectural injection, payload out.

    Module-level so it pickles for :class:`ProcessPoolExecutor`; the
    golden program/trace come from the worker's kernel-trace cache.
    """
    return run_injection(spec).payload()


def _dl1_code_instance(policy_value: str) -> EccCode:
    from repro.campaign.replay import dl1_code_for_policy

    return dl1_code_for_policy(make_policy(policy_value))


def analytical_reference(
    policies: Sequence[str], *, bit_upset_rate_per_hour: float = 1e-9
) -> Dict[str, Dict[str, float]]:
    """Per-policy analytical prediction to print next to empirical rates.

    ``codec_sdc_bound`` is the code-level SDC probability of a single
    flip (1 for the unprotected array, 0 for detecting/correcting
    codes); architectural masking can only push the observed rate
    *below* it.  ``array_failures_per_1e9h`` is the
    :class:`~repro.ecc.reliability.ReliabilityModel` array-level unsafe
    failure rate for a 16 KiB DL1, which fixes the expected ordering
    between the policies.
    """
    reference: Dict[str, Dict[str, float]] = {}
    for value in policies:
        policy = make_policy(value)
        code = _dl1_code_instance(value)
        model = ReliabilityModel(
            words=16 * 1024 // 4, bit_upset_rate_per_hour=bit_upset_rate_per_hour
        )
        if policy.corrects_errors:
            corrected, detected, sdc = 1.0, 0.0, 0.0
        elif policy.detects_errors:
            corrected, detected, sdc = 0.0, 1.0, 0.0
        else:
            corrected, detected, sdc = 0.0, 0.0, 1.0
        reference[value] = {
            "codec_corrected": corrected,
            "codec_detected": detected,
            "codec_sdc_bound": sdc,
            "array_failures_per_1e9h": model.failures_in_time(code, hours=1e9),
        }
    return reference


def run_campaign(
    config: CampaignConfig,
    *,
    store=None,
    resume: bool = False,
) -> CampaignResult:
    """Run (or resume) one stratified architectural campaign.

    ``store`` is an optional :class:`~repro.store.ResultStore`; computed
    points are always written to it (one transaction per batch).  With
    ``resume=True`` points whose spec hash is already stored are *not*
    re-simulated — their stored outcome is reused — which is what turns
    a half-finished campaign into an incremental one.
    """
    workers = config.workers
    if workers == 0:
        workers = os.cpu_count() or 1
    result = CampaignResult(config=config)
    executor = (
        ProcessPoolExecutor(max_workers=workers)
        if workers is not None and workers > 1
        else None
    )
    try:
        for kernel, policy_value, target, scenario, scale in config.strata():
            stratum = _run_stratum(
                config,
                kernel,
                policy_value,
                target=target,
                scenario=scenario,
                scale=scale,
                store=store,
                resume=resume,
                executor=executor,
                result=result,
            )
            result.strata.append(stratum)
    finally:
        if executor is not None:
            executor.shutdown()
    return result


def _run_stratum(
    config: CampaignConfig,
    kernel: str,
    policy_value: str,
    *,
    target: str,
    scenario: str,
    scale: float,
    store,
    resume: bool,
    executor,
    result: CampaignResult,
) -> StratumSummary:
    from repro.store import canonical_json, spec_hash

    interference = config.scenario_interference(scenario)
    counts: Dict[str, int] = {key: 0 for key in OUTCOME_KEYS}
    done = 0
    early = False
    while done < config.trials and not early:
        batch_size = min(config.batch, config.trials - done)
        faults = sample_faults(
            kernel,
            scale,
            policy_value,
            batch_size,
            seed=config.seed,
            start=done,
            target=target,
            scenario=scenario,
        )
        if not faults:
            break
        specs = [
            SimulationSpec(
                kernel=kernel,
                scale=scale,
                policy=policy_value,
                interference=interference,
                fault=fault,
            )
            for fault in faults
        ]
        keys = [spec_hash(spec) for spec in specs]
        payloads: List[Optional[Dict[str, object]]] = [None] * len(specs)
        to_run: List[int] = []
        lookup = store is not None and resume
        for index, key in enumerate(keys):
            stored = store.get(key) if lookup else None
            if stored is not None:
                payloads[index] = stored
                result.store_hits += 1
            else:
                if lookup:
                    result.store_misses += 1
                to_run.append(index)
        if to_run:
            pending = [specs[index] for index in to_run]
            if executor is not None:
                computed = list(executor.map(_simulate_point, pending))
            else:
                computed = [_simulate_point(spec) for spec in pending]
            rows = []
            for index, payload in zip(to_run, computed):
                payloads[index] = payload
                result.simulated += 1
                if store is not None:
                    rows.append(
                        (keys[index], payload, canonical_json(specs[index]))
                    )
            if rows:
                store.put_many(rows, kind="injection")
        for payload in payloads:
            counts[str(payload["outcome"])] += 1
        done += len(faults)
        if config.ci_target is not None and done >= config.batch:
            half_sdc = wilson_half_width(counts["sdc"], done, z=config.ci_z)
            half_corrected = wilson_half_width(
                counts["corrected"], done, z=config.ci_z
            )
            if max(half_sdc, half_corrected) <= config.ci_target:
                early = True
    return StratumSummary(
        kernel=kernel,
        policy=policy_value,
        trials=done,
        counts=counts,
        early_stopped=early,
        target=target,
        scenario=scenario,
        scale=scale,
    )
