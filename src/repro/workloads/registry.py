"""Registry mapping EEMBC Automotive benchmark names to kernel builders."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.workloads.kernels import control, math_kernels, memory_kernels, signal


@dataclass(frozen=True)
class KernelSpec:
    """Description of one workload kernel."""

    name: str
    description: str
    builder: Callable[[float], str]
    #: True when the kernel's load addresses are mostly produced by the
    #: immediately preceding instruction, which the paper identifies as
    #: the pattern limiting LAEC (aifftr, aiifft, bitmnp, matrix).
    laec_unfriendly: bool = False

    def source(self, scale: float = 1.0) -> str:
        return self.builder(scale)

    def program(self, scale: float = 1.0) -> Program:
        return assemble(self.source(scale), name=self.name)


_SPECS: Dict[str, KernelSpec] = {
    spec.name: spec
    for spec in [
        KernelSpec(
            "a2time",
            "angle-to-time conversion with a correction table",
            math_kernels.build_a2time_source,
        ),
        KernelSpec(
            "aifftr",
            "radix-2 FFT butterflies (fixed point)",
            signal.build_aifftr_source,
            laec_unfriendly=True,
        ),
        KernelSpec(
            "aifirf",
            "direct-form FIR filter",
            signal.build_aifirf_source,
        ),
        KernelSpec(
            "aiifft",
            "radix-2 inverse FFT butterflies",
            signal.build_aiifft_source,
            laec_unfriendly=True,
        ),
        KernelSpec(
            "basefp",
            "emulated floating-point mantissa/exponent arithmetic",
            math_kernels.build_basefp_source,
        ),
        KernelSpec(
            "bitmnp",
            "bit manipulation with value-dependent table indexing",
            memory_kernels.build_bitmnp_source,
            laec_unfriendly=True,
        ),
        KernelSpec(
            "cacheb",
            "cache-busting strided sweeps with far-apart consumers",
            memory_kernels.build_cacheb_source,
        ),
        KernelSpec(
            "canrdr",
            "CAN remote-data-request filtering",
            control.build_canrdr_source,
        ),
        KernelSpec(
            "idctrn",
            "8x8 inverse discrete cosine transform",
            math_kernels.build_idctrn_source,
        ),
        KernelSpec(
            "iirflt",
            "cascaded biquad IIR filtering",
            signal.build_iirflt_source,
        ),
        KernelSpec(
            "matrix",
            "dense integer matrix multiply",
            math_kernels.build_matrix_source,
            laec_unfriendly=True,
        ),
        KernelSpec(
            "pntrch",
            "pointer chase over a shuffled linked list",
            memory_kernels.build_pntrch_source,
        ),
        KernelSpec(
            "puwmod",
            "pulse-width-modulation duty-cycle control",
            control.build_puwmod_source,
        ),
        KernelSpec(
            "rspeed",
            "road-speed calculation from timer deltas",
            control.build_rspeed_source,
        ),
        KernelSpec(
            "tblook",
            "breakpoint-table lookup with interpolation",
            control.build_tblook_source,
        ),
        KernelSpec(
            "ttsprk",
            "tooth-to-spark ignition timing",
            control.build_ttsprk_source,
        ),
    ]
}

#: The 16 benchmark names, in the order used by the paper's Table II /
#: Figure 8 (alphabetical, matching the paper's column order).
KERNEL_NAMES: List[str] = sorted(_SPECS)


def kernel_specs() -> List[KernelSpec]:
    """All kernel specifications in canonical (paper) order."""
    return [_SPECS[name] for name in KERNEL_NAMES]


def _lookup(name: str) -> KernelSpec:
    key = name.strip().lower()
    if key not in _SPECS:
        raise KeyError(
            f"unknown kernel {name!r}; available kernels: {', '.join(KERNEL_NAMES)}"
        )
    return _SPECS[key]


def kernel_source(name: str, *, scale: float = 1.0) -> str:
    """Assembly source of the named kernel."""
    return _lookup(name).source(scale)


def build_kernel(name: str, *, scale: float = 1.0) -> Program:
    """Assemble the named kernel into a :class:`Program`."""
    return _lookup(name).program(scale)
