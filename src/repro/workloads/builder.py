"""Helpers shared by the kernel builders.

Kernels are generated as assembly source text.  The helpers here keep
the per-kernel builders focused on the algorithm: deterministic
pseudo-random data generation, ``.word`` table emission and iteration
scaling.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence


def scaled(value: int, scale: float, *, minimum: int = 1) -> int:
    """Scale an iteration count, never dropping below ``minimum``."""
    return max(minimum, int(round(value * scale)))


def words_directive(values: Sequence[int], *, per_line: int = 8) -> str:
    """Render a list of 32-bit values as ``.word`` directives."""
    lines: List[str] = []
    for start in range(0, len(values), per_line):
        chunk = values[start : start + per_line]
        rendered = ", ".join(str(v & 0xFFFFFFFF) for v in chunk)
        lines.append(f"    .word {rendered}")
    return "\n".join(lines)


def deterministic_values(
    count: int, *, seed: int, low: int = 0, high: int = 1 << 15
) -> List[int]:
    """Deterministic pseudo-random table contents (stable across runs)."""
    rng = random.Random(seed)
    return [rng.randrange(low, high) for _ in range(count)]


def ramp(count: int, *, start: int = 0, step: int = 1) -> List[int]:
    """A monotonically increasing table (for lookup/interpolation kernels)."""
    return [start + i * step for i in range(count)]


def sine_table(count: int, *, amplitude: int = 1 << 12, seed: int = 7) -> List[int]:
    """A rough integer 'sine-like' table built without floating point.

    A triangle wave perturbed by a small deterministic noise term; good
    enough to make signal-processing kernels exercise realistic value
    ranges without needing math.sin at build time.
    """
    rng = random.Random(seed)
    values: List[int] = []
    quarter = max(1, count // 4)
    for i in range(count):
        phase = i % (4 * quarter)
        if phase < quarter:
            base = amplitude * phase // quarter
        elif phase < 2 * quarter:
            base = amplitude - amplitude * (phase - quarter) // quarter
        elif phase < 3 * quarter:
            base = -amplitude * (phase - 2 * quarter) // quarter
        else:
            base = -amplitude + amplitude * (phase - 3 * quarter) // quarter
        values.append(base + rng.randrange(-amplitude // 16, amplitude // 16 + 1))
    return values


def linked_list_nodes(
    count: int, *, node_words: int = 4, seed: int = 11, shuffle: bool = True
) -> List[int]:
    """Build the word image of a singly linked list laid out in one array.

    Each node occupies ``node_words`` 32-bit words: word 0 is the *index*
    of the next node (the kernel turns it into an address), the remaining
    words are payload.  The traversal order is shuffled so the chase does
    not degenerate into a sequential sweep.
    """
    rng = random.Random(seed)
    order = list(range(1, count))
    if shuffle:
        rng.shuffle(order)
    order.append(0)  # close the cycle back to node 0
    next_index = [0] * count
    current = 0
    for target in order:
        next_index[current] = target
        current = target
    image: List[int] = []
    for node in range(count):
        image.append(next_index[node])
        for payload in range(1, node_words):
            image.append(rng.randrange(0, 1 << 15) ^ (node * payload))
    return image


def flatten(chunks: Iterable[Sequence[int]]) -> List[int]:
    out: List[int] = []
    for chunk in chunks:
        out.extend(chunk)
    return out
