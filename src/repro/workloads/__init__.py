"""Workloads: EEMBC-Automotive-like kernels and synthetic streams.

The paper evaluates the EEMBC Automotive suite, which is proprietary.
This package substitutes 16 hand-written kernels — one per EEMBC
benchmark name — implementing the same class of algorithm in our mini
ISA (see DESIGN.md §2 for the substitution argument), plus a synthetic
dynamic-stream generator that can be calibrated to arbitrary Table II
statistics for sensitivity studies.

The registry maps the paper's benchmark names to kernel builders::

    from repro.workloads import build_kernel, KERNEL_NAMES

    program = build_kernel("matrix")
"""

from repro.workloads.registry import (
    KERNEL_NAMES,
    KernelSpec,
    build_kernel,
    kernel_source,
    kernel_specs,
)
from repro.workloads.synthetic import SyntheticStreamConfig, SyntheticWorkloadGenerator
from repro.workloads.table2_reference import PAPER_TABLE2, Table2Row

__all__ = [
    "KERNEL_NAMES",
    "KernelSpec",
    "PAPER_TABLE2",
    "SyntheticStreamConfig",
    "SyntheticWorkloadGenerator",
    "Table2Row",
    "build_kernel",
    "kernel_source",
    "kernel_specs",
]
