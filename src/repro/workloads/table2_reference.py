"""The paper's Table II, transcribed as reference data.

Table II of the paper reports, for each EEMBC Automotive benchmark,

* the percentage of load instructions that hit in the DL1,
* the percentage of loads followed (at distance 1 or 2) by an
  instruction consuming the loaded value, and
* loads as a percentage of all executed instructions.

The reproduction uses this table in two ways: the Table II experiment
compares our kernels' measured statistics against it, and the synthetic
workload generator can be calibrated to these exact percentages for the
sensitivity ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Table2Row:
    """One benchmark's row of Table II (percentages, 0-100)."""

    benchmark: str
    pct_hit_loads: float
    pct_dependent_loads: float
    pct_loads: float


PAPER_TABLE2: Dict[str, Table2Row] = {
    row.benchmark: row
    for row in [
        Table2Row("a2time", 89.0, 68.0, 23.0),
        Table2Row("aifftr", 97.0, 53.0, 21.0),
        Table2Row("aifirf", 90.0, 66.0, 26.0),
        Table2Row("aiifft", 97.0, 54.0, 21.0),
        Table2Row("basefp", 84.0, 80.0, 24.0),
        Table2Row("bitmnp", 98.0, 65.0, 20.0),
        Table2Row("cacheb", 77.0, 13.0, 18.0),
        Table2Row("canrdr", 86.0, 67.0, 29.0),
        Table2Row("idctrn", 92.0, 59.0, 21.0),
        Table2Row("iirflt", 86.0, 63.0, 26.0),
        Table2Row("matrix", 99.0, 64.0, 20.0),
        Table2Row("pntrch", 90.0, 61.0, 25.0),
        Table2Row("puwmod", 85.0, 66.0, 31.0),
        Table2Row("rspeed", 84.0, 66.0, 29.0),
        Table2Row("tblook", 88.0, 68.0, 29.0),
        Table2Row("ttsprk", 84.0, 61.0, 31.0),
    ]
}

#: Averages reported in the paper's Table II "average" column.
PAPER_TABLE2_AVERAGE = Table2Row("average", 89.0, 60.0, 25.0)

#: Figure 8 headline numbers (average execution-time increase over the
#: no-ECC baseline) used by the Figure 8 experiment to compare shapes.
PAPER_FIGURE8_AVERAGE_INCREASE = {
    "extra-cycle": 0.17,
    "extra-stage": 0.10,
    "laec": 0.04,
}

#: Benchmarks the paper reports as showing almost no LAEC improvement
#: over Extra Stage (their loads' address registers are produced by the
#: immediately preceding instruction).
PAPER_LAEC_NO_IMPROVEMENT = ("aifftr", "aiifft", "bitmnp", "matrix")

#: Benchmarks with LAEC overhead below 1 % according to Section IV-A.
PAPER_LAEC_BELOW_1PCT = ("basefp", "cacheb", "canrdr", "puwmod", "rspeed", "ttsprk")
