"""Synthetic dynamic-instruction-stream generator.

The generator fabricates a :class:`~repro.functional.simulator.FunctionalTrace`
directly — no assembly, no functional execution — with first-order
statistics dialled in by configuration:

* fraction of loads and stores,
* fraction of loads whose value is consumed at distance 1 or 2,
* fraction of loads whose *address register* is produced by the
  immediately preceding instruction (the LAEC data hazard),
* target DL1 hit rate (via a hot working set that fits in the cache
  versus streaming cold addresses),
* fraction of (taken) branches.

This is the tool the sensitivity ablations use to sweep Table II-style
parameters continuously, including pinning them to the paper's exact
per-benchmark values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.functional.simulator import DynInstruction, FunctionalTrace
from repro.isa.instructions import Instruction, Mnemonic
from repro.workloads.table2_reference import Table2Row

_DATA_BASE = 0x4020_0000
_COLD_BASE = 0x4100_0000
_TEXT_BASE = 0x4000_0000


@dataclass(frozen=True)
class SyntheticStreamConfig:
    """Target statistics for a synthetic stream."""

    instructions: int = 20_000
    load_fraction: float = 0.25
    store_fraction: float = 0.08
    branch_fraction: float = 0.12
    taken_branch_fraction: float = 0.6
    dependent_load_fraction: float = 0.60
    dependent_distance_1_fraction: float = 0.7
    address_from_previous_fraction: float = 0.30
    load_hit_rate: float = 0.89
    hot_lines: int = 128
    line_bytes: int = 32
    seed: int = 2019

    @classmethod
    def from_table2_row(
        cls,
        row: Table2Row,
        *,
        instructions: int = 20_000,
        address_from_previous_fraction: float = 0.30,
        seed: int = 2019,
    ) -> "SyntheticStreamConfig":
        """Calibrate a configuration to one row of the paper's Table II."""
        return cls(
            instructions=instructions,
            load_fraction=row.pct_loads / 100.0,
            dependent_load_fraction=row.pct_dependent_loads / 100.0,
            load_hit_rate=row.pct_hit_loads / 100.0,
            address_from_previous_fraction=address_from_previous_fraction,
            seed=seed,
        )


class SyntheticWorkloadGenerator:
    """Generates synthetic traces according to a :class:`SyntheticStreamConfig`."""

    def __init__(self, config: SyntheticStreamConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------ #
    def generate(self, *, name: str = "synthetic") -> FunctionalTrace:
        cfg = self.config
        rng = random.Random(cfg.seed)
        trace = FunctionalTrace(program_name=name)
        instructions: List[DynInstruction] = trace.instructions

        hot_addresses = [
            _DATA_BASE + line * cfg.line_bytes for line in range(cfg.hot_lines)
        ]
        cold_cursor = _COLD_BASE
        pc = _TEXT_BASE
        index = 0
        #: Registers reserved: r1-r4 address bases, r10-r19 data values,
        #: r20-r24 scratch for fillers.
        pending_consumers: List[tuple] = []  # (emit_at_index, register)

        def alu_filler(dest: int, srcs: tuple) -> Instruction:
            rs1 = srcs[0] if srcs else 20
            rs2 = srcs[1] if len(srcs) > 1 else 0
            return Instruction(
                mnemonic=Mnemonic.ADD,
                rd=dest,
                rs1=rs1,
                rs2=rs2,
                uses_imm=len(srcs) < 2,
                imm=1 if len(srcs) < 2 else 0,
                address=pc,
                text="synthetic-alu",
            )

        while index < cfg.instructions:
            # Emit any scheduled consumer of an earlier load first so the
            # dependent-load distances come out as configured.
            consumer = next(
                (c for c in pending_consumers if c[0] == index), None
            )
            if consumer is not None:
                pending_consumers.remove(consumer)
                instr = alu_filler(20 + rng.randrange(5), (consumer[1],))
                instructions.append(
                    DynInstruction(
                        index=index, pc=pc, instruction=instr, next_pc=pc + 4
                    )
                )
                pc += 4
                index += 1
                continue

            draw = rng.random()
            if draw < cfg.load_fraction:
                index, pc, cold_cursor = self._emit_load(
                    rng, instructions, index, pc, hot_addresses, cold_cursor,
                    pending_consumers,
                )
            elif draw < cfg.load_fraction + cfg.store_fraction:
                address = rng.choice(hot_addresses)
                instr = Instruction(
                    mnemonic=Mnemonic.ST,
                    rd=10 + rng.randrange(10),
                    rs1=1,
                    imm=address - _DATA_BASE,
                    uses_imm=True,
                    address=pc,
                    text="synthetic-store",
                )
                instructions.append(
                    DynInstruction(
                        index=index,
                        pc=pc,
                        instruction=instr,
                        address=address,
                        size=4,
                        next_pc=pc + 4,
                    )
                )
                pc += 4
                index += 1
            elif draw < cfg.load_fraction + cfg.store_fraction + cfg.branch_fraction:
                taken = rng.random() < cfg.taken_branch_fraction
                instr = Instruction(
                    mnemonic=Mnemonic.BNE,
                    imm=-64 if taken else 8,
                    uses_imm=True,
                    address=pc,
                    text="synthetic-branch",
                )
                next_pc = pc + instr.imm if taken else pc + 4
                instructions.append(
                    DynInstruction(
                        index=index,
                        pc=pc,
                        instruction=instr,
                        branch_taken=taken,
                        next_pc=next_pc,
                    )
                )
                pc += 4
                index += 1
            else:
                dest = 20 + rng.randrange(5)
                srcs = (20 + rng.randrange(5),)
                instructions.append(
                    DynInstruction(
                        index=index,
                        pc=pc,
                        instruction=alu_filler(dest, srcs),
                        next_pc=pc + 4,
                    )
                )
                pc += 4
                index += 1
        trace.halted = True
        return trace

    # ------------------------------------------------------------------ #
    def _emit_load(
        self,
        rng: random.Random,
        instructions: List[DynInstruction],
        index: int,
        pc: int,
        hot_addresses: List[int],
        cold_cursor: int,
        pending_consumers: List[tuple],
    ):
        cfg = self.config
        base_register = 1
        value_register = 10 + rng.randrange(10)

        # Optionally emit an address-producing instruction right before the
        # load (the LAEC data hazard pattern).
        if rng.random() < cfg.address_from_previous_fraction:
            address_register = 5
            producer = Instruction(
                mnemonic=Mnemonic.ADD,
                rd=address_register,
                rs1=base_register,
                imm=rng.randrange(0, 64) * 4,
                uses_imm=True,
                address=pc,
                text="synthetic-addrgen",
            )
            instructions.append(
                DynInstruction(index=index, pc=pc, instruction=producer, next_pc=pc + 4)
            )
            pc += 4
            index += 1
            load_rs1 = address_register
        else:
            load_rs1 = base_register

        if rng.random() < cfg.load_hit_rate:
            address = rng.choice(hot_addresses)
        else:
            address = cold_cursor
            cold_cursor += cfg.line_bytes

        load = Instruction(
            mnemonic=Mnemonic.LD,
            rd=value_register,
            rs1=load_rs1,
            imm=0,
            uses_imm=True,
            address=pc,
            text="synthetic-load",
        )
        instructions.append(
            DynInstruction(
                index=index,
                pc=pc,
                instruction=load,
                address=address,
                size=4,
                next_pc=pc + 4,
            )
        )
        load_index = index
        pc += 4
        index += 1

        if rng.random() < cfg.dependent_load_fraction:
            distance = 1 if rng.random() < cfg.dependent_distance_1_fraction else 2
            pending_consumers.append((load_index + distance, value_register))
        return index, pc, cold_cursor
