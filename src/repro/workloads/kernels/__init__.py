"""Kernel builders, grouped by algorithm family.

Every builder returns assembly source text for one EEMBC-Automotive-like
kernel.  See :mod:`repro.workloads.registry` for the name-to-builder map
and :mod:`repro.workloads.builder` for the shared helpers.
"""

from repro.workloads.kernels import control, math_kernels, memory_kernels, signal

__all__ = ["control", "math_kernels", "memory_kernels", "signal"]
