"""Signal-processing kernels: aifftr, aiifft, aifirf, iirflt.

* ``aifftr`` / ``aiifft`` — radix-2 decimation-in-time FFT / inverse FFT
  butterflies over a fixed-point sample buffer.  Butterfly element
  addresses are computed from the loop indices *immediately before* the
  loads, which is exactly the pattern the paper identifies as limiting
  LAEC (the address register is produced by the preceding instruction).
* ``aifirf`` — direct-form FIR filter: the inner tap loop walks two
  pointers that are updated at the *end* of the loop body, so loads can
  almost always be anticipated.
* ``iirflt`` — cascaded biquad IIR sections with the filter state kept
  in registers.
"""

from __future__ import annotations

from repro.workloads.builder import (
    deterministic_values,
    scaled,
    sine_table,
    words_directive,
)


def build_aifftr_source(scale: float = 1.0, *, inverse: bool = False) -> str:
    """Radix-2 FFT butterfly passes (aifftr) or inverse FFT (aiifft)."""
    points = 64
    passes = scaled(6, scale, minimum=2)          # log2(64) = 6 stages
    repeats = scaled(10, scale, minimum=1)
    real = sine_table(points, seed=3 if not inverse else 5)
    imag = sine_table(points, seed=4 if not inverse else 6)
    twiddle = sine_table(points, seed=9)
    sign = -1 if inverse else 1
    name = "aiifft" if inverse else "aifftr"
    return f"""
; {name}: radix-2 {'inverse ' if inverse else ''}FFT butterflies, fixed point
.data
real:
{words_directive(real)}
imag:
{words_directive(imag)}
twiddle:
{words_directive(twiddle)}

.text
main:
    set {repeats}, r25          ; outer repetitions
outer:
    set {passes}, r24           ; FFT stages
    set 1, r23                  ; half-size = 1, doubles per stage
stage:
    set 0, r22                  ; butterfly group index
group:
    ; element indices: i = group, j = group + half
    add r22, r23, r21           ; j = i + half
    ; --- load real[i] : index scaled right before the load (no look-ahead)
    sll r22, 2, r15             ; byte offset of i
    set real, r2
    ld [r2+r15], r10            ; real[i]   (address reg produced just above)
    sll r21, 2, r16             ; byte offset of j
    ld [r2+r16], r11            ; real[j]
    ; --- twiddle factor lookup, again with a freshly computed offset
    sll r22, 2, r17
    set twiddle, r3
    ld [r3+r17], r12            ; w
    ; butterfly on the real part
    smul r11, r12, r13          ; t = real[j] * w
    sra r13, 12, r13            ; fixed-point scaling
    add r10, r13, r14           ; real[i] + t
    sub r10, r13, r18           ; real[i] - t
    st r14, [r2+r15]
    st r18, [r2+r16]
    ; --- imaginary part, same addressing pattern
    set imag, r4
    ld [r4+r15], r10            ; imag[i]
    ld [r4+r16], r11            ; imag[j]
    smul r11, r12, r13
    sra r13, 12, r13
    {'sub' if sign < 0 else 'add'} r10, r13, r14
    {'add' if sign < 0 else 'sub'} r10, r13, r18
    st r14, [r4+r15]
    st r18, [r4+r16]
    ; next butterfly group (skip by 2*half to stay in range)
    add r23, r23, r19
    add r22, r19, r22
    cmp r22, {points - 1}
    bl group
    ; next stage: double the half size
    add r23, r23, r23
    cmp r23, {points}
    bge stage_done
    subcc r24, 1, r24
    bg stage
stage_done:
    subcc r25, 1, r25
    bg outer
    halt
"""


def build_aiifft_source(scale: float = 1.0) -> str:
    """Inverse-FFT variant of :func:`build_aifftr_source`."""
    return build_aifftr_source(scale, inverse=True)


def build_aifirf_source(scale: float = 1.0) -> str:
    """Direct-form FIR filter (aifirf)."""
    taps = 16
    samples = scaled(96, scale, minimum=taps + 1)
    repeats = scaled(6, scale, minimum=1)
    coefficients = deterministic_values(taps, seed=21, low=1, high=1 << 10)
    signal = sine_table(samples + taps, seed=22)
    return f"""
; aifirf: {taps}-tap direct-form FIR filter over {samples} samples
.data
coeffs:
{words_directive(coefficients)}
signal:
{words_directive(signal)}
output:
    .space {4 * samples}

.text
main:
    set {repeats}, r25
repeat:
    set {samples}, r24          ; sample loop counter
    set signal, r1              ; sliding window base
    set output, r5
sample_loop:
    set coeffs, r2              ; coefficient pointer
    or r1, 0, r3                ; window pointer (copy of sample base)
    set 0, r10                  ; accumulator
    set {taps // 2}, r23
tap_loop:
    ; two taps per iteration: loads are partially batched ahead of the
    ; multiplies, so only some of them have a consumer within distance 2
    ld [r2], r11                ; coefficient k
    ld [r3], r12                ; sample k
    ld [r2+4], r14              ; coefficient k+1  (consumed further away)
    smul r11, r12, r13
    add r10, r13, r10           ; accumulate tap k
    ld [r3+4], r15              ; sample k+1
    smul r14, r15, r16
    add r10, r16, r10           ; accumulate tap k+1
    add r2, 8, r2
    add r3, 8, r3
    subcc r23, 1, r23
    bg tap_loop
    sra r10, 10, r10            ; renormalise the fixed-point product
    st r10, [r5]
    add r5, 4, r5
    add r1, 4, r1               ; slide the window by one sample
    subcc r24, 1, r24
    bg sample_loop
    subcc r25, 1, r25
    bg repeat
    halt
"""


def build_iirflt_source(scale: float = 1.0) -> str:
    """Cascaded biquad IIR filter (iirflt)."""
    samples = scaled(140, scale, minimum=8)
    repeats = scaled(7, scale, minimum=1)
    signal = sine_table(samples, seed=31)
    return f"""
; iirflt: biquad section with coefficients and delay line kept in memory,
; as a compiler would for a filter-state structure passed by reference
.data
signal:
{words_directive(signal)}
output:
    .space {4 * samples}
gains:
    .word 1967, 3934, 1967, 1620, 675      ; b0 b1 b2 a1 a2 (Q12)
state:
    .word 0, 0, 0, 0                        ; x[n-1] x[n-2] y[n-1] y[n-2]

.text
main:
    set {repeats}, r25
repeat:
    set signal, r1
    set output, r2
    set gains, r3
    set state, r4
    set {samples}, r24
sample_loop:
    ld [r1], r10                ; x[n]    (base pointer bumped at loop end)
    ld [r3], r16                ; b0
    smul r10, r16, r15          ; b0*x        (consumes both loads)
    ld [r3+4], r17              ; b1
    ld [r4], r11                ; x[n-1]      (batched: used two below)
    ld [r4+4], r12              ; x[n-2]
    smul r11, r17, r21
    add r15, r21, r15
    ld [r3+8], r18              ; b2
    smul r12, r18, r21
    add r15, r21, r21
    ld [r3+12], r19             ; a1
    ld [r4+8], r13              ; y[n-1]      (batched)
    ld [r4+12], r14             ; y[n-2]
    smul r13, r19, r22
    sub r21, r22, r21
    ld [r3+16], r20             ; a2
    smul r14, r20, r22
    sub r21, r22, r21
    sra r21, 12, r21            ; y[n]
    st r21, [r2]
    st r11, [r4+4]              ; shift the delay line in memory
    st r10, [r4]
    st r13, [r4+12]
    st r21, [r4+8]
    add r1, 4, r1
    add r2, 4, r2
    subcc r24, 1, r24
    bg sample_loop
    subcc r25, 1, r25
    bg repeat
    halt
"""
