"""Memory-behaviour kernels: cacheb, pntrch, bitmnp.

* ``cacheb`` — the "cache buster": strided sweeps over a buffer larger
  than the 16 KiB DL1.  Loaded values are deliberately *not* consumed by
  the next couple of instructions, reproducing the paper's observation
  that only ~13 % of cacheb's loads have a nearby consumer (and hence
  that the Extra Stage scheme barely hurts it).
* ``pntrch`` — pointer chasing through a shuffled linked list with a
  small amount of per-node work.
* ``bitmnp`` — bit manipulation where the bit-table index is derived
  from the value computed immediately before the load, blocking LAEC
  anticipation (one of the paper's four no-improvement benchmarks).
"""

from __future__ import annotations

from repro.workloads.builder import (
    deterministic_values,
    linked_list_nodes,
    scaled,
    words_directive,
)


def build_cacheb_source(scale: float = 1.0) -> str:
    """Cache-busting strided sweep (cacheb)."""
    buffer_words = 24 * 1024            # 96 KiB, six times the DL1 size
    stride_words = 24                   # 96 B stride: three lines apart
    sweeps = scaled(4, scale, minimum=1)
    seed_words = deterministic_values(256, seed=131, low=0, high=1 << 16)
    return f"""
; cacheb: strided sweeps over a {buffer_words * 4 // 1024} KiB buffer ({stride_words * 4}-byte stride)
.data
seeds:
{words_directive(seed_words)}
buffer:
    .space {4 * buffer_words}
checksum:
    .word 0

.text
main:
    ; initialise the head of the buffer from the seed table so the sweep
    ; reads non-zero data (the tail stays zero, which is fine)
    set seeds, r1
    set buffer, r2
    set 256, r24
init_loop:
    ld [r1], r10
    st r10, [r2]
    add r1, 4, r1
    add r2, 4, r2
    subcc r24, 1, r24
    bg init_loop
    ; ------------------------------------------------------------------
    set {sweeps}, r25
sweep_loop:
    set buffer, r1
    set 0, r20                  ; running checksum
    set {buffer_words // stride_words}, r24
stride_loop:
    ld [r1], r10                ; strided load (frequently a DL1 miss)
    ; keep the loaded values un-consumed for a few instructions so that
    ; only a small fraction of loads count as "dependent" (Table II);
    ; the two extra loads land in the same line and therefore hit.
    ld [r1+8], r11
    ld [r1+16], r12
    add r1, {4 * stride_words}, r1
    subcc r24, 1, r24
    add r20, r10, r20           ; consume the values only at distance >= 3
    xor r20, r11, r20
    add r20, r12, r20
    bg stride_loop
    set checksum, r5
    st r20, [r5]
    subcc r25, 1, r25
    bg sweep_loop
    halt
"""


def build_pntrch_source(scale: float = 1.0) -> str:
    """Pointer chase over a shuffled linked list (pntrch)."""
    nodes = 192
    node_words = 4
    hops = scaled(1400, scale, minimum=16)
    image = linked_list_nodes(nodes, node_words=node_words, seed=141)
    return f"""
; pntrch: chase a {nodes}-node shuffled list, {node_words} words per node
.data
nodes:
{words_directive(image)}
hits:
    .word 0

.text
main:
    set nodes, r7               ; list base
    or r7, 0, r1                ; current node pointer
    set 0, r20                  ; match counter
    set {hops}, r24
chase_loop:
    ld [r1+4], r10              ; payload word 1
    ld [r1+8], r11              ; payload word 2
    xor r10, r11, r12           ; per-node work on the payload
    and r12, 255, r12
    cmp r12, 42
    bne no_match
    add r20, 1, r20
no_match:
    ld [r1], r13                ; next-node *index*
    sll r13, {2 + (node_words.bit_length() - 1)}, r13   ; index -> byte offset
    add r7, r13, r1             ; next node address
    subcc r24, 1, r24
    bg chase_loop
    set hits, r5
    st r20, [r5]
    halt
"""


def build_bitmnp_source(scale: float = 1.0) -> str:
    """Bit manipulation with value-dependent table indexing (bitmnp)."""
    words = scaled(200, scale, minimum=8)
    repeats = scaled(6, scale, minimum=1)
    data = deterministic_values(words, seed=151, low=0, high=1 << 16)
    masks = [1 << (i % 32) for i in range(32)]
    return f"""
; bitmnp: per-word bit twiddling driven by a value-indexed mask table
.data
data_words:
{words_directive(data)}
bit_masks:
{words_directive(masks)}
population:
    .word 0

.text
main:
    set {repeats}, r25
repeat:
    set data_words, r1
    set 0, r20                  ; population accumulator
    set 0, r23                  ; word index
word_loop:
    ; the word's byte offset is computed from the index right before the
    ; load, so LAEC has a data hazard on the address register and cannot
    ; anticipate it (one of the paper's four no-improvement benchmarks)
    sll r23, 2, r9
    ld [r1+r9], r10             ; data word (address operand produced above)
    ; derive the mask index from the *value* we just loaded: the index
    ; lands in the instruction right before the mask load, so LAEC has a
    ; data hazard and cannot anticipate the second load either.
    and r10, 31, r11
    sll r11, 2, r11
    set bit_masks, r2
    ld [r2+r11], r12            ; mask   (address operand produced above)
    and r10, r12, r13
    cmp r13, 0
    be bit_clear
    add r20, 1, r20             ; count set bits selected by the mask
    xor r10, r12, r10           ; toggle the bit
    ba store_back
bit_clear:
    or r10, r12, r10            ; set the bit
store_back:
    st r10, [r1+r9]
    add r23, 1, r23
    cmp r23, {words}
    bl word_loop
    set population, r5
    st r20, [r5]
    subcc r25, 1, r25
    bg repeat
    halt
"""
