"""Arithmetic-heavy kernels: a2time, basefp, idctrn, matrix.

* ``a2time`` — angle-to-time conversion: per tooth-wheel sample, mask the
  raw angle, look the correction factor up in a table and accumulate the
  firing time.
* ``basefp`` — emulated floating-point style arithmetic on a fixed-point
  mantissa/exponent representation (normalisation shifts + adds).
* ``idctrn`` — 8x8 inverse discrete cosine transform, row pass followed
  by column pass with multiply-accumulate over a coefficient table.
* ``matrix`` — dense matrix multiply; element addresses are produced by
  the instruction right before each load, which prevents LAEC
  anticipation (one of the four benchmarks the paper singles out).
"""

from __future__ import annotations

from repro.workloads.builder import (
    deterministic_values,
    ramp,
    scaled,
    sine_table,
    words_directive,
)


def build_a2time_source(scale: float = 1.0) -> str:
    """Angle-to-time conversion (a2time)."""
    samples = scaled(200, scale, minimum=8)
    repeats = scaled(6, scale, minimum=1)
    angles = deterministic_values(samples, seed=41, low=0, high=1 << 14)
    correction = deterministic_values(64, seed=42, low=1, high=1 << 8)
    return f"""
; a2time: angle-to-time conversion with a 64-entry correction table
.data
angles:
{words_directive(angles)}
correction:
{words_directive(correction)}
firing:
    .space {4 * samples}
wheel:
    .word 0, 36, 720, 0          ; accumulated_time, tooth_pitch, rev_degrees, rev_count

.text
main:
    set {repeats}, r25
repeat:
    set angles, r1
    set firing, r5
    set correction, r6
    set wheel, r7
    set {samples}, r24
sample_loop:
    ld [r1], r10                ; raw angle  (pointer bumped at loop end)
    ld [r7+4], r18              ; tooth pitch (wheel struct, batched)
    ld [r7+8], r19              ; degrees per revolution
    and r10, 4095, r11          ; wrap the angle into one revolution
    srl r10, 6, r12             ; table index from the coarse angle bits
    and r12, 63, r12
    sll r12, 2, r12
    ld [r6+r12], r13            ; correction factor (index computed above)
    smul r11, r13, r14          ; corrected angle
    sra r14, 8, r14
    smul r14, r18, r14          ; angle -> time via the tooth pitch
    sub r14, r19, r14
    ld [r7], r20                ; accumulated firing time
    add r20, r14, r20           ; accumulate the firing time
    st r20, [r7]
    st r14, [r5]
    add r5, 4, r5
    add r1, 4, r1
    subcc r24, 1, r24
    bg sample_loop
    subcc r25, 1, r25
    bg repeat
    halt
"""


def build_basefp_source(scale: float = 1.0) -> str:
    """Emulated floating-point arithmetic (basefp)."""
    samples = scaled(180, scale, minimum=8)
    repeats = scaled(6, scale, minimum=1)
    mantissas = deterministic_values(samples, seed=51, low=1, high=1 << 20)
    exponents = deterministic_values(samples, seed=52, low=0, high=16)
    return f"""
; basefp: software floating-point style mantissa/exponent arithmetic
.data
mantissas:
{words_directive(mantissas)}
exponents:
{words_directive(exponents)}
results:
    .space {4 * samples}
fpstate:
    .word 1024, 10, 127          ; running mantissa (Q10), shift, exponent bias

.text
main:
    set {repeats}, r25
repeat:
    set mantissas, r1
    set exponents, r2
    set results, r5
    set fpstate, r6
    set {samples}, r24
loop:
    ld [r1], r10                ; mantissa  (pointer walks)
    ld [r2], r11                ; exponent
    ld [r6+4], r15              ; normalisation shift (batched)
    ld [r6+8], r16              ; exponent bias
    sll r10, 1, r12             ; pre-normalise
    srl r12, r15, r12
    add r12, 1, r12             ; avoid zero mantissa
    ld [r6], r20                ; running product mantissa
    smul r20, r12, r13          ; multiply the running product
    sra r13, 10, r20
    st r20, [r6]
    sub r11, r16, r11           ; unbias the exponent
    sra r20, r11, r14           ; denormalise by the exponent
    add r14, r11, r14
    st r14, [r5]
    add r5, 4, r5
    add r1, 4, r1
    add r2, 4, r2
    subcc r24, 1, r24
    bg loop
    subcc r25, 1, r25
    bg repeat
    halt
"""


def build_idctrn_source(scale: float = 1.0) -> str:
    """8x8 inverse DCT (idctrn)."""
    blocks = scaled(3, scale, minimum=1)
    coefficients = deterministic_values(64, seed=61, low=1, high=1 << 10)
    block = sine_table(64, seed=62, amplitude=1 << 10)
    return f"""
; idctrn: 8x8 inverse DCT, row pass then column pass
.data
cosines:
{words_directive(coefficients)}
block:
{words_directive(block)}
workspace:
    .space 256

.text
main:
    set {blocks}, r25
block_loop:
    ; ---------------- row pass ----------------
    set 0, r22                  ; row index
row_loop:
    sll r22, 5, r15             ; row byte offset (8 words)
    set 0, r21                  ; column index
row_col_loop:
    set 0, r10                  ; accumulator
    set 0, r20                  ; k
row_mac_loop:
    sll r20, 2, r16             ; k byte offset
    set block, r2
    add r2, r15, r17            ; &block[row][0]   (fresh address each time)
    ld [r17+r16], r11           ; block[row][k]
    sll r21, 3, r18             ; cosine row offset
    add r18, r20, r18
    sll r18, 2, r18
    set cosines, r3
    ld [r3+r18], r12            ; cosines[col][k]
    smul r11, r12, r13
    sra r13, 8, r13
    add r10, r13, r10
    add r20, 1, r20
    cmp r20, 8
    bl row_mac_loop
    ; store workspace[row][col]
    sll r21, 2, r16
    set workspace, r4
    add r4, r15, r17
    st r10, [r17+r16]
    add r21, 1, r21
    cmp r21, 8
    bl row_col_loop
    add r22, 1, r22
    cmp r22, 8
    bl row_loop
    ; ---------------- column pass ----------------
    set 0, r22                  ; column index
col_loop:
    set 0, r21                  ; row index
col_row_loop:
    set 0, r10
    set 0, r20
col_mac_loop:
    sll r20, 5, r16             ; k row byte offset
    add r16, r22, r17
    sll r22, 2, r18
    add r16, r18, r16
    set workspace, r4
    ld [r4+r16], r11            ; workspace[k][col]
    sll r21, 3, r18
    add r18, r20, r18
    sll r18, 2, r18
    set cosines, r3
    ld [r3+r18], r12
    smul r11, r12, r13
    sra r13, 8, r13
    add r10, r13, r10
    add r20, 1, r20
    cmp r20, 8
    bl col_mac_loop
    sll r21, 5, r16
    sll r22, 2, r18
    add r16, r18, r16
    set block, r2
    st r10, [r2+r16]
    add r21, 1, r21
    cmp r21, 8
    bl col_row_loop
    add r22, 1, r22
    cmp r22, 8
    bl col_loop
    subcc r25, 1, r25
    bg block_loop
    halt
"""


def build_matrix_source(scale: float = 1.0) -> str:
    """Dense matrix multiply (matrix)."""
    size = 12
    row_stride = 1 << size.bit_length()     # rows padded to a power of two
    repeats = scaled(2, scale, minimum=1)
    a = deterministic_values(size * row_stride, seed=71, low=0, high=1 << 8)
    b = deterministic_values(size * row_stride, seed=72, low=0, high=1 << 8)
    return f"""
; matrix: {size}x{size} integer matrix multiply, C = A * B (rows padded to {row_stride})
.data
mat_a:
{words_directive(a)}
mat_b:
{words_directive(b)}
mat_c:
    .space {4 * size * row_stride}

.text
main:
    set {repeats}, r25
repeat:
    set 0, r22                  ; i
i_loop:
    set 0, r21                  ; j
j_loop:
    set 0, r10                  ; accumulator
    set 0, r20                  ; k
k_loop:
    ; A[i][k]: the (strength-reduced) index arithmetic lands right before
    ; the load, so the address register is produced by the preceding
    ; instruction and LAEC cannot anticipate it (paper Section IV-A,
    ; matrix row).
    sll r22, {size.bit_length()}, r15
    add r15, r20, r15
    sll r15, 2, r15
    set mat_a, r2
    ld [r2+r15], r11            ; A[i][k]
    sll r20, {size.bit_length()}, r16
    add r16, r21, r16
    sll r16, 2, r16
    set mat_b, r3
    ld [r3+r16], r12            ; B[k][j]
    smul r11, r12, r13
    add r10, r13, r10
    add r20, 1, r20
    cmp r20, {size}
    bl k_loop
    ; store C[i][j]
    sll r22, {size.bit_length()}, r17
    add r17, r21, r17
    sll r17, 2, r17
    set mat_c, r4
    st r10, [r4+r17]
    add r21, 1, r21
    cmp r21, {size}
    bl j_loop
    add r22, 1, r22
    cmp r22, {size}
    bl i_loop
    subcc r25, 1, r25
    bg repeat
    halt
"""
