"""Automotive control kernels: canrdr, puwmod, rspeed, tblook, ttsprk.

* ``canrdr`` — CAN remote-data-request handling: scan a buffer of frame
  identifiers, match them against an acceptance filter and update the
  per-mailbox response counters.
* ``puwmod`` — pulse-width-modulation duty-cycle control with clamping
  and a proportional correction term.
* ``rspeed`` — road-speed calculation from tooth-wheel timer deltas.
* ``tblook`` — table lookup and linear interpolation.
* ``ttsprk`` — tooth-to-spark: ignition advance lookup and dwell update.

These kernels are branch- and load-heavy with the load addresses coming
from pointers updated at the bottom of each loop, so LAEC anticipates
almost every load (the paper reports < 1 % overhead for puwmod, rspeed
and ttsprk).
"""

from __future__ import annotations

from repro.workloads.builder import deterministic_values, ramp, scaled, words_directive


def build_canrdr_source(scale: float = 1.0) -> str:
    """CAN remote data request processing (canrdr)."""
    frames = scaled(200, scale, minimum=8)
    repeats = scaled(5, scale, minimum=1)
    identifiers = deterministic_values(frames, seed=81, low=0, high=1 << 11)
    payloads = deterministic_values(frames, seed=83, low=0, high=1 << 16)
    filters = deterministic_values(8, seed=82, low=0, high=1 << 11)
    return f"""
; canrdr: match CAN frame identifiers against an 8-entry acceptance filter
.data
frames:
{words_directive(identifiers)}
payloads:
{words_directive(payloads)}
filters:
{words_directive(filters)}
mailboxes:
    .space 64
rejected:
    .word 0

.text
main:
    set {repeats}, r25
repeat:
    set frames, r1
    set payloads, r3
    set {frames}, r24
frame_loop:
    ld [r1], r10                ; frame identifier
    ld [r3], r17                ; frame payload (batched: consumed on a match)
    and r10, 2047, r10          ; 11-bit identifier
    set filters, r2
    set 0, r21                  ; filter index
filter_loop:
    ld [r2], r11                ; acceptance filter entry
    ld [r2+4], r19              ; next filter entry, prefetched by the scan
    cmp r11, r10
    be matched
    add r2, 4, r2
    add r21, 1, r21
    cmp r21, 8
    bl filter_loop
    ; no filter matched: count the rejection
    set rejected, r4
    ld [r4], r12
    add r12, 1, r12
    st r12, [r4]
    ba next_frame
matched:
    ; bump the mailbox counter for the matching filter
    sll r21, 3, r13
    set mailboxes, r5
    add r5, r13, r14
    ld [r14], r15
    add r15, 1, r15
    st r15, [r14]
    ld [r14+4], r16             ; remote-request flag word
    xor r16, r17, r16           ; fold the payload into the response flag
    st r16, [r14+4]
next_frame:
    add r1, 4, r1
    add r3, 4, r3
    subcc r24, 1, r24
    bg frame_loop
    subcc r25, 1, r25
    bg repeat
    halt
"""


def build_puwmod_source(scale: float = 1.0) -> str:
    """Pulse-width modulation duty-cycle control (puwmod)."""
    samples = scaled(240, scale, minimum=8)
    repeats = scaled(5, scale, minimum=1)
    setpoints = deterministic_values(samples, seed=91, low=100, high=900)
    feedback = deterministic_values(samples, seed=92, low=80, high=950)
    return f"""
; puwmod: proportional PWM duty-cycle update with clamping
.data
setpoints:
{words_directive(setpoints)}
feedback:
{words_directive(feedback)}
duty:
    .space {4 * samples}
controller:
    .word 512, 250, 1000, 0      ; duty, gain, clamp_high, clamp_low

.text
main:
    set {repeats}, r25
repeat:
    set setpoints, r1
    set feedback, r2
    set duty, r5
    set controller, r6
    set {samples}, r24
loop:
    ld [r1], r10                ; setpoint  (pointer bumped at loop end)
    ld [r2], r11                ; measured value
    sub r10, r11, r12           ; error
    ld [r6+4], r15              ; proportional gain (controller struct)
    ld [r6], r20                ; current duty cycle
    smul r12, r15, r13          ; proportional term
    sra r13, 10, r13
    add r20, r13, r20           ; update the duty cycle
    ld [r6+8], r16              ; clamp_high  (batched: used two below)
    ld [r6+12], r17             ; clamp_low
    cmp r20, r16
    ble no_clamp_high
    or r16, 0, r20
no_clamp_high:
    cmp r20, r17
    bge no_clamp_low
    or r17, 0, r20
no_clamp_low:
    st r20, [r6]
    st r20, [r5]
    add r5, 4, r5
    add r1, 4, r1
    add r2, 4, r2
    subcc r24, 1, r24
    bg loop
    subcc r25, 1, r25
    bg repeat
    halt
"""


def build_rspeed_source(scale: float = 1.0) -> str:
    """Road speed calculation from timer deltas (rspeed)."""
    samples = scaled(220, scale, minimum=8)
    repeats = scaled(5, scale, minimum=1)
    deltas = deterministic_values(samples, seed=101, low=50, high=4000)
    return f"""
; rspeed: road speed from tooth-wheel timer deltas, with filtering
.data
deltas:
{words_directive(deltas)}
speeds:
    .space {4 * samples}
sensor:
    .word 0, 29127, 640, 0       ; filtered_speed, reciprocal seed, pulses/km, overflow_count

.text
main:
    set {repeats}, r25
repeat:
    set deltas, r1
    set speeds, r5
    set sensor, r6
    set {samples}, r24
loop:
    ld [r1], r10                ; timer delta
    ld [r6+8], r18              ; pulses per km calibration
    cmp r10, 64
    bge delta_ok
    ld [r6+12], r11             ; implausibly small delta: count and skip
    add r11, 1, r11
    st r11, [r6+12]
    ba next
delta_ok:
    ; speed ~ constant / delta, computed as a reciprocal multiply to
    ; match the integer-only pipelines of LEON-class parts
    ld [r6+4], r12              ; reciprocal seed (2^28 / 9216)
    sub r12, r10, r15           ; first-order correction of the seed
    sra r15, 4, r15
    add r12, r15, r12
    smul r12, r10, r13
    sra r13, 12, r13            ; raw speed estimate
    smul r13, r18, r13          ; scale by the wheel calibration
    sra r13, 9, r13
    ld [r6], r20                ; filtered speed state
    add r20, r13, r14           ; simple low-pass: avg of old and new
    sra r14, 1, r20
    st r20, [r6]
    st r20, [r5]
next:
    add r5, 4, r5
    add r1, 4, r1
    subcc r24, 1, r24
    bg loop
    subcc r25, 1, r25
    bg repeat
    halt
"""


def build_tblook_source(scale: float = 1.0) -> str:
    """Table lookup and interpolation (tblook)."""
    table_size = 32
    samples = scaled(160, scale, minimum=8)
    repeats = scaled(5, scale, minimum=1)
    x_axis = ramp(table_size, start=0, step=256)
    y_axis = deterministic_values(table_size, seed=111, low=0, high=1 << 12)
    queries = deterministic_values(samples, seed=112, low=0, high=256 * (table_size - 1))
    return f"""
; tblook: breakpoint-table lookup with linear interpolation
.data
x_axis:
{words_directive(x_axis)}
y_axis:
{words_directive(y_axis)}
queries:
{words_directive(queries)}
answers:
    .space {4 * samples}

.text
main:
    set {repeats}, r25
repeat:
    set queries, r1
    set answers, r5
    set {samples}, r24
query_loop:
    ld [r1], r10                ; query x
    ; index search: x / 256 gives the breakpoint directly (uniform axis),
    ; but we still walk the axis to mimic the real benchmark's search.
    set x_axis, r2
    set 0, r21                  ; index
search_loop:
    ld [r2+4], r11              ; x_axis[index + 1]
    cmp r11, r10
    bg found
    add r2, 4, r2
    add r21, 1, r21
    cmp r21, {table_size - 2}
    bl search_loop
found:
    ; interpolate between (x0, y0) and (x1, y1)
    ld [r2], r12                ; x0
    sll r21, 2, r15
    set y_axis, r3
    add r3, r15, r19            ; &y_axis[index]
    ld [r19], r13               ; y0   (address computed just above)
    ld [r19+4], r14             ; y1
    sub r10, r12, r16           ; dx = x - x0
    sub r14, r13, r17           ; dy = y1 - y0
    smul r16, r17, r18
    sra r18, 8, r18             ; dx*dy / 256
    add r13, r18, r18           ; interpolated value
    st r18, [r5]
    add r5, 4, r5
    add r1, 4, r1
    subcc r24, 1, r24
    bg query_loop
    subcc r25, 1, r25
    bg repeat
    halt
"""


def build_ttsprk_source(scale: float = 1.0) -> str:
    """Tooth-to-spark ignition timing (ttsprk)."""
    teeth = scaled(200, scale, minimum=8)
    repeats = scaled(5, scale, minimum=1)
    tooth_times = deterministic_values(teeth, seed=121, low=100, high=2000)
    advance_map = deterministic_values(64, seed=122, low=0, high=60)
    return f"""
; ttsprk: spark advance lookup and dwell update per tooth event
.data
tooth_times:
{words_directive(tooth_times)}
advance_map:
{words_directive(advance_map)}
dwell:
    .space {4 * teeth}
engine:
    .word 0, 460800, 0, 12       ; rpm_filtered, rpm_constant, spark_count, min_dwell

.text
main:
    set {repeats}, r25
repeat:
    set tooth_times, r1
    set dwell, r5
    set engine, r6
    set {teeth}, r24
tooth_loop:
    ld [r1], r10                ; tooth period
    ld [r6+4], r11              ; rpm constant (engine struct)
    srl r10, 3, r12             ; rpm estimate via shift-based reciprocal
    sub r11, r12, r12
    srl r12, 9, r12
    ld [r6], r20                ; filtered rpm state
    add r20, r12, r13           ; low-pass filter
    sra r13, 1, r20
    st r20, [r6]
    ; advance map lookup indexed by the rpm band
    srl r20, 6, r14
    and r14, 63, r14
    sll r14, 2, r14
    set advance_map, r2
    ld [r2+r14], r15            ; spark advance (index computed above)
    smul r15, r10, r16          ; advance in timer ticks
    sra r16, 6, r16
    sub r10, r16, r17           ; dwell time before the spark
    ld [r6+12], r19             ; minimum dwell
    cmp r17, r19
    bg dwell_ok
    or r19, 0, r17
dwell_ok:
    st r17, [r5]
    ld [r6+8], r18              ; spark counter
    add r18, 1, r18
    st r18, [r6+8]
    add r5, 4, r5
    add r1, 4, r1
    subcc r24, 1, r24
    bg tooth_loop
    subcc r25, 1, r25
    bg repeat
    halt
"""
