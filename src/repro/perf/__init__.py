"""Performance harness for the fast-path engine.

This package measures the three hot paths the experiment suite funnels
through — the table-driven ECC codecs, the optimized timing-pipeline
scheduling loop, and the cached/parallel kernel × policy sweep — against
the seed implementations that are kept alive as references
(:mod:`repro.ecc.reference` and
:mod:`repro.pipeline.reference_timing`).  Each benchmark times baseline
and optimized variants of the *same* workload, checks they agree on the
reported numbers, and records the speedup.

Run it via ``benchmarks/run_bench.sh`` (or
``PYTHONPATH=src python benchmarks/bench_perf.py``), which writes the
results to ``BENCH_<n>.json`` at the repository root so the perf
trajectory is tracked across PRs.  The fast-path architecture, the
functional-trace cache and the meaning of every field in the JSON are
documented in `PERFORMANCE.md <../../../PERFORMANCE.md>`_ at the
repository root.
"""

from repro.perf.harness import (
    BenchmarkResult,
    HarnessReport,
    bench_fault_campaign,
    bench_sweep,
    bench_timing_engine,
    run_harness,
)

__all__ = [
    "BenchmarkResult",
    "HarnessReport",
    "bench_fault_campaign",
    "bench_sweep",
    "bench_timing_engine",
    "run_harness",
]
