"""Benchmark definitions for the fast-path performance harness.

Every benchmark here has the same shape:

1. build one workload;
2. run it through the **baseline** (seed/reference) implementation and
   the **optimized** (fast-path) implementation, timing both;
3. assert the two implementations agree on the numbers the experiments
   would report (the speedups are only meaningful if nothing changed);
4. return a :class:`BenchmarkResult` with the timings and metadata.

``run_harness`` bundles the three layers into a :class:`HarnessReport`
and serialises it to ``BENCH_<n>.json``; see PERFORMANCE.md for how to
read the file.
"""

from __future__ import annotations

import json
import os
import platform
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.policies import make_policy
from repro.ecc import FaultInjector, FaultModel, InjectionOutcome
from repro.ecc.codec import get_code
from repro.ecc.reference import REFERENCE_CODES
from repro.experiments.runner import (
    FIGURE8_POLICIES,
    ExperimentRunner,
    cached_kernel_trace,
    clear_kernel_trace_cache,
)
from repro.functional.simulator import run_program
from repro.pipeline.config import CoreConfig
from repro.pipeline.reference_timing import ReferenceTimingPipeline
from repro.pipeline.timing import TimingPipeline
from repro.simulation import build_hierarchy
from repro.workloads import KERNEL_NAMES, build_kernel

#: JSON schema identifier written into every report.
SCHEMA = "repro-perf-bench/1"


@dataclass
class BenchmarkResult:
    """Baseline-versus-optimized timing of one layer."""

    name: str
    description: str
    baseline_seconds: float
    optimized_seconds: float
    baseline_impl: str
    optimized_impl: str
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.optimized_seconds <= 0.0:
            return float("inf")
        return self.baseline_seconds / self.optimized_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "baseline_impl": self.baseline_impl,
            "optimized_impl": self.optimized_impl,
            "baseline_seconds": self.baseline_seconds,
            "optimized_seconds": self.optimized_seconds,
            "speedup": self.speedup,
            "meta": self.meta,
        }


@dataclass
class HarnessReport:
    """Everything one harness invocation measured."""

    results: List[BenchmarkResult]
    config: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "created_unix": time.time(),
            "platform": {
                "python": sys.version.split()[0],
                "implementation": platform.python_implementation(),
                "machine": platform.machine(),
                "cpu_count": os.cpu_count(),
            },
            "config": self.config,
            "benchmarks": [result.as_dict() for result in self.results],
        }

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Wall-clock the callable ``repeats`` times, return the fastest run."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


# --------------------------------------------------------------------- #
# Layer 1: ECC codecs (fault campaign)                                  #
# --------------------------------------------------------------------- #
def _campaign_rates(code, trials: int, seed: int) -> List[Dict[str, float]]:
    """The fault-campaign kernel: 1- and 2-bit flips against one code.

    ``code`` is a pre-built (stateless) codec instance: a deployed system
    constructs its codec once per protected array and amortises the
    lookup tables across every access, so construction stays outside the
    timed region.
    """
    rates = []
    for flips in (1, 2):
        injector = FaultInjector(code, rng=random.Random(seed))
        report = injector.run_campaign(
            trials=trials,
            fault_model=FaultModel(multiplicity_weights={flips: 1.0}),
        )
        rates.append({outcome.value: report.rate(outcome) for outcome in InjectionOutcome})
    return rates


def bench_fault_campaign(
    *, trials_per_point: int = 2000, seed: int = 2019, repeats: int = 3
) -> BenchmarkResult:
    """Time the full 3-code × 2-multiplicity injection campaign.

    Baseline: the seed bit-loop codecs (:mod:`repro.ecc.reference`).
    Optimized: the registered table-driven codecs.  Both run the exact
    same seeded trial stream; the reported outcome rates must match.
    """
    code_names = sorted(REFERENCE_CODES)
    reference_codes = [REFERENCE_CODES[name]() for name in code_names]
    fast_codes = [get_code(name) for name in code_names]

    def baseline() -> List[List[Dict[str, float]]]:
        return [
            _campaign_rates(code, trials_per_point, seed)
            for code in reference_codes
        ]

    def optimized() -> List[List[Dict[str, float]]]:
        return [
            _campaign_rates(code, trials_per_point, seed) for code in fast_codes
        ]

    base_rates = baseline()
    fast_rates = optimized()
    if base_rates != fast_rates:
        raise AssertionError(
            "table-driven codecs changed fault-campaign outcome rates: "
            f"{base_rates} != {fast_rates}"
        )
    baseline_seconds = _best_of(baseline, repeats)
    optimized_seconds = _best_of(optimized, repeats)
    return BenchmarkResult(
        name="fault_campaign",
        description=(
            "ECC fault-injection campaign: "
            f"{len(code_names)} codes x 2 flip multiplicities x "
            f"{trials_per_point} trials"
        ),
        baseline_seconds=baseline_seconds,
        optimized_seconds=optimized_seconds,
        baseline_impl="repro.ecc.reference (per-bit loops)",
        optimized_impl="repro.ecc (table-driven + batch encode/decode)",
        meta={
            "codes": code_names,
            "trials_per_point": trials_per_point,
            "seed": seed,
            "repeats": repeats,
        },
    )


# --------------------------------------------------------------------- #
# Layer 2: timing-pipeline scheduling loop                              #
# --------------------------------------------------------------------- #
def bench_timing_engine(
    *,
    kernel: str = "matrix",
    scale: float = 0.4,
    policy: str = "laec",
    repeats: int = 3,
) -> BenchmarkResult:
    """Time one kernel's trace replay through both scheduling engines.

    Hierarchy state feeds the schedule, so each timed run gets a fresh
    private :class:`~repro.memory.hierarchy.MemoryHierarchy`; the
    functional trace is shared (it is policy- and engine-independent).
    """
    program = build_kernel(kernel, scale=scale)
    trace = run_program(program)
    resolved = make_policy(policy)
    core_config = CoreConfig().with_policy(resolved)

    def baseline():
        hierarchy = build_hierarchy(core_config)
        return ReferenceTimingPipeline(resolved, hierarchy, core_config.pipeline).run(trace)

    def optimized():
        hierarchy = build_hierarchy(core_config)
        return TimingPipeline(resolved, hierarchy, core_config.pipeline).run(trace)

    base_result = baseline()
    fast_result = optimized()
    if base_result.stats.as_dict() != fast_result.stats.as_dict():
        raise AssertionError(
            "optimized timing engine diverged from the reference engine on "
            f"{kernel}/{policy}"
        )
    baseline_seconds = _best_of(baseline, repeats)
    optimized_seconds = _best_of(optimized, repeats)
    return BenchmarkResult(
        name="timing_engine",
        description=(
            f"cycle-accurate replay of {kernel} (scale {scale}, "
            f"{len(trace)} dynamic instructions) under {policy}"
        ),
        baseline_seconds=baseline_seconds,
        optimized_seconds=optimized_seconds,
        baseline_impl="repro.pipeline.reference_timing (seed dict-based loop)",
        optimized_impl="repro.pipeline.timing (fast-path loop)",
        meta={
            "kernel": kernel,
            "scale": scale,
            "policy": policy,
            "dynamic_instructions": len(trace),
            "cycles": fast_result.cycles,
            "repeats": repeats,
        },
    )


# --------------------------------------------------------------------- #
# Layer 3: full kernel x policy sweep                                   #
# --------------------------------------------------------------------- #
def _seed_sweep(kernels: List[str], scale: float) -> Dict[str, Dict[str, int]]:
    """Replicate the seed ``ExperimentRunner.run_all``: fresh functional
    trace per kernel (no cache), reference scheduling engine."""
    cycles: Dict[str, Dict[str, int]] = {}
    for name in kernels:
        program = build_kernel(name, scale=scale)
        trace = run_program(program)
        per_policy: Dict[str, int] = {}
        for policy_kind in FIGURE8_POLICIES:
            resolved = make_policy(policy_kind)
            core_config = CoreConfig().with_policy(resolved)
            hierarchy = build_hierarchy(core_config)
            pipeline = ReferenceTimingPipeline(resolved, hierarchy, core_config.pipeline)
            per_policy[policy_kind.value] = pipeline.run(trace).cycles
        cycles[name] = per_policy
    return cycles


def bench_sweep(
    *,
    scale: float = 0.4,
    kernels: Optional[List[str]] = None,
    max_workers: Optional[int] = None,
    repeats: int = 1,
) -> BenchmarkResult:
    """Time the full kernel × Figure 8 policy sweep, seed versus fast path.

    Baseline: the seed runner shape — one functional simulation plus four
    reference-engine timing runs per kernel, every time.  Optimized: the
    current :class:`~repro.experiments.runner.ExperimentRunner` (fast
    engine; trace cache cleared first so the comparison covers a cold
    sweep; optional process fan-out via ``max_workers``).
    """
    kernel_list = list(kernels) if kernels is not None else list(KERNEL_NAMES)

    def baseline():
        return _seed_sweep(kernel_list, scale)

    def optimized():
        clear_kernel_trace_cache()
        runner = ExperimentRunner(
            scale=scale, kernels=kernel_list, max_workers=max_workers
        )
        run_set = runner.run_all(force=True)
        return {
            name: {policy: result.cycles for policy, result in per_policy.items()}
            for name, per_policy in run_set.results.items()
        }

    base_cycles = baseline()
    fast_cycles = optimized()
    if base_cycles != fast_cycles:
        raise AssertionError(
            "fast-path sweep changed reported cycle counts: "
            f"{base_cycles} != {fast_cycles}"
        )
    baseline_seconds = _best_of(baseline, repeats)
    optimized_seconds = _best_of(optimized, repeats)
    return BenchmarkResult(
        name="kernel_policy_sweep",
        description=(
            f"{len(kernel_list)} kernels x {len(FIGURE8_POLICIES)} Figure 8 "
            f"policies at scale {scale}"
        ),
        baseline_seconds=baseline_seconds,
        optimized_seconds=optimized_seconds,
        baseline_impl="seed runner (reference engine, no trace cache)",
        optimized_impl=(
            "ExperimentRunner (fast engine, trace cache"
            + (f", {max_workers} workers" if max_workers else ", serial")
            + ")"
        ),
        meta={
            "kernels": kernel_list,
            "scale": scale,
            "max_workers": max_workers,
            "repeats": repeats,
        },
    )


# --------------------------------------------------------------------- #
# Harness entry point                                                   #
# --------------------------------------------------------------------- #
def run_harness(
    *,
    trials_per_point: int = 2000,
    sweep_scale: float = 0.4,
    timing_kernel: str = "matrix",
    timing_scale: float = 0.4,
    sweep_kernels: Optional[List[str]] = None,
    max_workers: Optional[int] = None,
    repeats: int = 3,
    sweep_repeats: int = 1,
) -> HarnessReport:
    """Run all three layer benchmarks and bundle them into one report."""
    config = {
        "trials_per_point": trials_per_point,
        "sweep_scale": sweep_scale,
        "timing_kernel": timing_kernel,
        "timing_scale": timing_scale,
        "sweep_kernels": sweep_kernels,
        "max_workers": max_workers,
        "repeats": repeats,
        "sweep_repeats": sweep_repeats,
    }
    results = [
        bench_fault_campaign(trials_per_point=trials_per_point, repeats=repeats),
        bench_timing_engine(
            kernel=timing_kernel, scale=timing_scale, repeats=repeats
        ),
        bench_sweep(
            scale=sweep_scale,
            kernels=sweep_kernels,
            max_workers=max_workers,
            repeats=sweep_repeats,
        ),
    ]
    return HarnessReport(results=results, config=config)


def render_report(report: HarnessReport) -> str:
    """Human-readable table of one harness run."""
    lines = ["layer benchmarks (baseline = seed implementation):", ""]
    header = f"{'benchmark':<22} {'baseline':>10} {'optimized':>10} {'speedup':>9}"
    lines.append(header)
    lines.append("-" * len(header))
    for result in report.results:
        lines.append(
            f"{result.name:<22} {result.baseline_seconds:>9.3f}s "
            f"{result.optimized_seconds:>9.3f}s {result.speedup:>8.2f}x"
        )
    return "\n".join(lines)
