"""Functional (architectural) simulator for the mini ISA.

The simulator interprets an assembled :class:`~repro.isa.program.Program`
and records one :class:`DynInstruction` per retired instruction.  This
dynamic stream is what the cycle-accurate pipeline model replays: the
timing model never has to re-execute semantics, it only needs each
instruction's class, register def/use sets, effective address and branch
outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.functional.memory import FlatMemory
from repro.isa.instructions import INSTRUCTION_BYTES, Instruction, InstructionClass, Mnemonic
from repro.isa.program import Program
from repro.isa.registers import (
    ConditionCodes,
    RegisterFile,
    STACK_POINTER,
    to_signed,
    to_unsigned,
)


class ExecutionLimitExceeded(RuntimeError):
    """Raised when a program executes more instructions than allowed."""


class SimulationFault(RuntimeError):
    """Raised when execution reaches an invalid state (bad PC, bad access)."""


@dataclass(frozen=True)
class DynInstruction:
    """A single retired (dynamic) instruction.

    Attributes
    ----------
    index:
        Zero-based position in the dynamic stream.
    pc:
        Byte address of the instruction.
    instruction:
        The static :class:`~repro.isa.instructions.Instruction`.
    address:
        Effective byte address for memory operations (``None`` otherwise).
    size:
        Access width in bytes for memory operations (0 otherwise).
    value:
        Value loaded (for loads) or stored (for stores); architectural
        result for ALU operations.  Used by verification tests and by the
        ECC fault-injection experiments; ignored by the timing model.
    branch_taken:
        Whether a control-transfer instruction redirected the PC.
    next_pc:
        Address of the dynamically following instruction.
    """

    index: int
    pc: int
    instruction: Instruction
    address: Optional[int] = None
    size: int = 0
    value: int = 0
    branch_taken: bool = False
    next_pc: int = 0

    @property
    def is_load(self) -> bool:
        return self.instruction.is_load

    @property
    def is_store(self) -> bool:
        return self.instruction.is_store

    @property
    def is_memory(self) -> bool:
        return self.instruction.klass.is_memory

    @property
    def destination_register(self) -> Optional[int]:
        return self.instruction.destination_register()

    @property
    def source_registers(self) -> Tuple[int, ...]:
        return self.instruction.source_registers()

    @property
    def address_registers(self) -> Tuple[int, ...]:
        return self.instruction.address_registers()

    @property
    def klass(self) -> InstructionClass:
        return self.instruction.klass


@dataclass
class FunctionalTrace:
    """The complete dynamic stream of a program run plus summary counters."""

    program_name: str
    instructions: List[DynInstruction] = field(default_factory=list)
    halted: bool = False

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[DynInstruction]:
        return iter(self.instructions)

    def __getitem__(self, index):
        return self.instructions[index]

    @property
    def dynamic_count(self) -> int:
        return len(self.instructions)

    def count_class(self, klass: InstructionClass) -> int:
        return sum(1 for dyn in self.instructions if dyn.klass is klass)

    @property
    def load_count(self) -> int:
        return self.count_class(InstructionClass.LOAD)

    @property
    def store_count(self) -> int:
        return self.count_class(InstructionClass.STORE)

    @property
    def load_fraction(self) -> float:
        if not self.instructions:
            return 0.0
        return self.load_count / len(self.instructions)

    def memory_addresses(self) -> List[int]:
        """Effective addresses of all memory operations, in program order."""
        return [dyn.address for dyn in self.instructions if dyn.address is not None]


_BRANCH_PREDICATES = {
    Mnemonic.BA: lambda cc: True,
    Mnemonic.BN: lambda cc: False,
    Mnemonic.BE: lambda cc: cc.zero,
    Mnemonic.BNE: lambda cc: not cc.zero,
    Mnemonic.BG: lambda cc: not (cc.zero or (cc.negative != cc.overflow)),
    Mnemonic.BLE: lambda cc: cc.zero or (cc.negative != cc.overflow),
    Mnemonic.BGE: lambda cc: cc.negative == cc.overflow,
    Mnemonic.BL: lambda cc: cc.negative != cc.overflow,
    Mnemonic.BGU: lambda cc: not (cc.carry or cc.zero),
    Mnemonic.BLEU: lambda cc: cc.carry or cc.zero,
    Mnemonic.BCC: lambda cc: not cc.carry,
    Mnemonic.BCS: lambda cc: cc.carry,
    Mnemonic.BPOS: lambda cc: not cc.negative,
    Mnemonic.BNEG: lambda cc: cc.negative,
    Mnemonic.BVC: lambda cc: not cc.overflow,
    Mnemonic.BVS: lambda cc: cc.overflow,
}


class FunctionalSimulator:
    """Interprets a program and produces its dynamic instruction stream."""

    def __init__(self, program: Program, *, max_instructions: int = 5_000_000) -> None:
        self.program = program
        self.max_instructions = max_instructions
        self.registers = RegisterFile()
        self.condition_codes = ConditionCodes()
        self.memory = FlatMemory()
        self.pc = program.entry
        self.halted = False
        self._retired = 0
        self.memory.load_bytes(program.data.base, program.data.data)
        self.registers.write(STACK_POINTER, program.stack_top)

    # ------------------------------------------------------------------ #
    # execution loop                                                     #
    # ------------------------------------------------------------------ #
    def run(self) -> FunctionalTrace:
        """Run until HALT (or the instruction limit) and return the trace."""
        trace = FunctionalTrace(program_name=self.program.name)
        while not self.halted:
            dyn = self.step()
            trace.instructions.append(dyn)
            if len(trace.instructions) > self.max_instructions:
                raise ExecutionLimitExceeded(
                    f"{self.program.name}: exceeded {self.max_instructions} "
                    "retired instructions without halting"
                )
        trace.halted = True
        return trace

    def step(self) -> DynInstruction:
        """Execute a single instruction and return its dynamic record."""
        if self.halted:
            raise SimulationFault("step() called after halt")
        if not self.program.has_instruction_at(self.pc):
            raise SimulationFault(f"PC outside text segment: {self.pc:#x}")
        instruction = self.program.instruction_at(self.pc)
        index = self._retired
        next_pc = self.pc + INSTRUCTION_BYTES
        address: Optional[int] = None
        size = 0
        value = 0
        branch_taken = False

        mnemonic = instruction.mnemonic
        klass = instruction.klass

        if klass is InstructionClass.HALT:
            self.halted = True
        elif klass is InstructionClass.NOP:
            pass
        elif klass in (
            InstructionClass.ALU,
            InstructionClass.MUL,
            InstructionClass.DIV,
        ):
            value = self._execute_alu(instruction)
        elif klass is InstructionClass.LOAD:
            address, size, value = self._execute_load(instruction)
        elif klass is InstructionClass.STORE:
            address, size, value = self._execute_store(instruction)
        elif klass is InstructionClass.BRANCH:
            predicate = _BRANCH_PREDICATES[mnemonic]
            branch_taken = predicate(self.condition_codes)
            if branch_taken:
                next_pc = to_unsigned(self.pc + instruction.imm)
        elif klass is InstructionClass.CALL:
            branch_taken = True
            self.registers.write(instruction.rd, self.pc + INSTRUCTION_BYTES)
            next_pc = to_unsigned(self.pc + instruction.imm)
        elif klass is InstructionClass.JUMP:
            branch_taken = True
            target = to_unsigned(self.registers.read(instruction.rs1) + instruction.imm)
            self.registers.write(instruction.rd, self.pc + INSTRUCTION_BYTES)
            next_pc = target
        else:  # pragma: no cover - all classes handled above
            raise SimulationFault(f"unhandled instruction class {klass}")

        dyn = DynInstruction(
            index=index,
            pc=self.pc,
            instruction=instruction,
            address=address,
            size=size,
            value=value,
            branch_taken=branch_taken,
            next_pc=next_pc,
        )
        self.pc = next_pc
        self._retired += 1
        return dyn

    # ------------------------------------------------------------------ #
    # per-class semantics                                                #
    # ------------------------------------------------------------------ #
    def _operand2(self, instruction: Instruction) -> int:
        if instruction.uses_imm:
            return to_unsigned(instruction.imm)
        return self.registers.read(instruction.rs2)

    def _execute_alu(self, instruction: Instruction) -> int:
        mnemonic = instruction.mnemonic
        a = self.registers.read(instruction.rs1)
        b = self._operand2(instruction)
        if mnemonic is Mnemonic.SET:
            result = to_unsigned(instruction.imm)
        elif mnemonic in (Mnemonic.ADD, Mnemonic.ADDCC):
            total = a + b
            result = to_unsigned(total)
            if mnemonic is Mnemonic.ADDCC:
                overflow = ((a ^ result) & (b ^ result) & 0x80000000) != 0
                self.condition_codes.update_arithmetic(result, total > 0xFFFFFFFF, overflow)
        elif mnemonic in (Mnemonic.SUB, Mnemonic.SUBCC):
            total = a - b
            result = to_unsigned(total)
            if mnemonic is Mnemonic.SUBCC:
                overflow = ((a ^ b) & (a ^ result) & 0x80000000) != 0
                self.condition_codes.update_arithmetic(result, a < b, overflow)
        elif mnemonic in (Mnemonic.AND, Mnemonic.ANDCC):
            result = a & b
            if mnemonic is Mnemonic.ANDCC:
                self.condition_codes.update_logical(result)
        elif mnemonic in (Mnemonic.OR, Mnemonic.ORCC):
            result = a | b
            if mnemonic is Mnemonic.ORCC:
                self.condition_codes.update_logical(result)
        elif mnemonic in (Mnemonic.XOR, Mnemonic.XORCC):
            result = a ^ b
            if mnemonic is Mnemonic.XORCC:
                self.condition_codes.update_logical(result)
        elif mnemonic is Mnemonic.SLL:
            result = to_unsigned(a << (b & 31))
        elif mnemonic is Mnemonic.SRL:
            result = a >> (b & 31)
        elif mnemonic is Mnemonic.SRA:
            result = to_unsigned(to_signed(a) >> (b & 31))
        elif mnemonic in (Mnemonic.SMUL, Mnemonic.UMUL):
            if mnemonic is Mnemonic.SMUL:
                result = to_unsigned(to_signed(a) * to_signed(b))
            else:
                result = to_unsigned(a * b)
        elif mnemonic in (Mnemonic.SDIV, Mnemonic.UDIV):
            if b == 0:
                result = 0xFFFFFFFF
            elif mnemonic is Mnemonic.SDIV:
                result = to_unsigned(int(to_signed(a) / to_signed(b)) if to_signed(b) else 0)
            else:
                result = to_unsigned(a // b)
        else:  # pragma: no cover - all ALU mnemonics handled above
            raise SimulationFault(f"unhandled ALU mnemonic {mnemonic}")
        self.registers.write(instruction.rd, result)
        return result

    def _effective_address(self, instruction: Instruction) -> int:
        base = self.registers.read(instruction.rs1)
        offset = (
            instruction.imm if instruction.uses_imm else self.registers.read(instruction.rs2)
        )
        return to_unsigned(base + offset)

    def _execute_load(self, instruction: Instruction) -> Tuple[int, int, int]:
        address = self._effective_address(instruction)
        size = instruction.memory_bytes
        raw = self.memory.read(address, size)
        if instruction.mnemonic is Mnemonic.LDSB and raw & 0x80:
            raw |= 0xFFFFFF00
        elif instruction.mnemonic is Mnemonic.LDSH and raw & 0x8000:
            raw |= 0xFFFF0000
        value = to_unsigned(raw)
        self.registers.write(instruction.rd, value)
        return address, size, value

    def _execute_store(self, instruction: Instruction) -> Tuple[int, int, int]:
        address = self._effective_address(instruction)
        size = instruction.memory_bytes
        value = self.registers.read(instruction.rd)
        self.memory.write(address, value, size)
        return address, size, value & ((1 << (8 * size)) - 1)


def run_program(program: Program, *, max_instructions: int = 5_000_000) -> FunctionalTrace:
    """Convenience wrapper: run ``program`` to completion, return its trace."""
    simulator = FunctionalSimulator(program, max_instructions=max_instructions)
    return simulator.run()
