"""Flat byte-addressable memory used by the functional simulator.

The functional simulator needs architectural memory semantics only; all
timing (caches, bus, DRAM) lives in :mod:`repro.memory`.  Memory is stored
sparsely in fixed-size pages so large address spaces (stack near the top
of a 2 GiB region, data at its base) do not allocate gigabytes.
"""

from __future__ import annotations

from typing import Dict, Iterable

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS
PAGE_MASK = PAGE_SIZE - 1


class MemoryAccessError(ValueError):
    """Raised on misaligned or malformed accesses."""


class FlatMemory:
    """Sparse little-endian byte-addressable memory."""

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}

    # ------------------------------------------------------------------ #
    # byte primitives                                                    #
    # ------------------------------------------------------------------ #
    def _page_for(self, address: int, create: bool) -> bytearray:
        page_number = address >> PAGE_BITS
        page = self._pages.get(page_number)
        if page is None:
            if not create:
                return b""  # type: ignore[return-value]
            page = bytearray(PAGE_SIZE)
            self._pages[page_number] = page
        return page

    def read_byte(self, address: int) -> int:
        page = self._pages.get(address >> PAGE_BITS)
        if page is None:
            return 0
        return page[address & PAGE_MASK]

    def write_byte(self, address: int, value: int) -> None:
        page = self._page_for(address, create=True)
        page[address & PAGE_MASK] = value & 0xFF

    # ------------------------------------------------------------------ #
    # multi-byte accessors                                               #
    # ------------------------------------------------------------------ #
    def read(self, address: int, size: int) -> int:
        """Read ``size`` bytes (1, 2 or 4) little-endian, unsigned."""
        if size not in (1, 2, 4):
            raise MemoryAccessError(f"unsupported access size {size}")
        if address % size != 0:
            raise MemoryAccessError(
                f"misaligned {size}-byte read at {address:#x}"
            )
        value = 0
        for offset in range(size):
            value |= self.read_byte(address + offset) << (8 * offset)
        return value

    def write(self, address: int, value: int, size: int) -> None:
        """Write ``size`` bytes (1, 2 or 4) little-endian."""
        if size not in (1, 2, 4):
            raise MemoryAccessError(f"unsupported access size {size}")
        if address % size != 0:
            raise MemoryAccessError(
                f"misaligned {size}-byte write at {address:#x}"
            )
        for offset in range(size):
            self.write_byte(address + offset, (value >> (8 * offset)) & 0xFF)

    def read_word(self, address: int) -> int:
        return self.read(address, 4)

    def write_word(self, address: int, value: int) -> None:
        self.write(address, value, 4)

    # ------------------------------------------------------------------ #
    # bulk initialisation                                                #
    # ------------------------------------------------------------------ #
    def load_bytes(self, base: int, payload: Iterable[int]) -> None:
        """Copy ``payload`` into memory starting at ``base``."""
        for offset, value in enumerate(payload):
            self.write_byte(base + offset, value)

    def touched_pages(self) -> int:
        """Number of allocated pages (useful for footprint diagnostics)."""
        return len(self._pages)

    # ------------------------------------------------------------------ #
    # comparison                                                         #
    # ------------------------------------------------------------------ #
    def same_contents(self, other: "FlatMemory") -> bool:
        """Whether both memories hold identical architectural contents.

        Pages absent on one side compare equal to all-zero pages on the
        other (an allocated-but-zero page is architecturally identical
        to an untouched one), so the comparison is about *contents*, not
        allocation history.  Used by the fault-injection campaign to
        decide whether corrupted data reached the final memory image.
        """
        zero = bytes(PAGE_SIZE)
        for page_number in self._pages.keys() | other._pages.keys():
            mine = bytes(self._pages.get(page_number, zero))
            theirs = bytes(other._pages.get(page_number, zero))
            if mine != theirs:
                return False
        return True
