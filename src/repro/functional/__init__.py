"""Architectural (functional) simulation.

The functional simulator interprets a :class:`repro.isa.program.Program`
with full architectural semantics and emits the *dynamic instruction
stream*: one :class:`repro.functional.simulator.DynInstruction` per retired
instruction, carrying the effective address of memory operations and the
outcome of control transfers.  The cycle-accurate timing model in
:mod:`repro.pipeline` replays this stream (a standard functional-first /
timing-directed decomposition, as used by many academic simulators).
"""

from repro.functional.memory import FlatMemory
from repro.functional.simulator import (
    DynInstruction,
    ExecutionLimitExceeded,
    FunctionalSimulator,
    FunctionalTrace,
    run_program,
)

__all__ = [
    "DynInstruction",
    "ExecutionLimitExceeded",
    "FlatMemory",
    "FunctionalSimulator",
    "FunctionalTrace",
    "run_program",
]
