"""Analytical reliability model for ECC-protected arrays.

Critical systems must show that residual failure rates stay below the
thresholds set by safety standards (e.g. ISO 26262 ASIL levels).  This
module provides the small amount of combinatorics needed to turn a raw
bit upset probability into per-word and per-array outcome probabilities
for each code, which the fault-injection experiments then cross-check
empirically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.ecc.codec import EccCode
from repro.ecc.hamming import HammingSecCode
from repro.ecc.parity import ParityCode
from repro.ecc.secded import HsiaoSecDedCode


def _binomial_pmf(n: int, k: int, p: float) -> float:
    """Probability of exactly ``k`` successes in ``n`` Bernoulli trials."""
    if not 0 <= k <= n:
        return 0.0
    return math.comb(n, k) * (p ** k) * ((1.0 - p) ** (n - k))


def word_outcome_probabilities(code: EccCode, bit_upset_probability: float) -> Dict[str, float]:
    """Per-word probabilities of clean / corrected / detected / SDC outcomes.

    Errors are assumed independent and uniform over the codeword bits
    (the standard soft-error assumption for SRAM arrays).  Guarantees by
    construction:

    * parity: corrects nothing, detects odd flip counts, is silent on
      even non-zero flip counts;
    * Hamming SEC: corrects exactly one flip, anything more is (almost
      always) silent mis-correction — we conservatively count all
      multiplicities >= 2 as SDC;
    * Hsiao SECDED: corrects one flip, detects two, multiplicities >= 3
      are conservatively counted as SDC.
    """
    n = code.total_bits
    p = bit_upset_probability
    p_clean = _binomial_pmf(n, 0, p)
    p_one = _binomial_pmf(n, 1, p)
    p_two = _binomial_pmf(n, 2, p)
    p_three_plus = max(0.0, 1.0 - p_clean - p_one - p_two)

    if isinstance(code, ParityCode):
        p_odd = sum(_binomial_pmf(n, k, p) for k in range(1, n + 1, 2))
        p_even_nonzero = max(0.0, 1.0 - p_clean - p_odd)
        return {
            "clean": p_clean,
            "corrected": 0.0,
            "detected": p_odd,
            "sdc": p_even_nonzero,
        }
    if isinstance(code, HsiaoSecDedCode):
        return {
            "clean": p_clean,
            "corrected": p_one,
            "detected": p_two,
            "sdc": p_three_plus,
        }
    if isinstance(code, HammingSecCode):
        return {
            "clean": p_clean,
            "corrected": p_one,
            "detected": 0.0,
            "sdc": p_two + p_three_plus,
        }
    # Unknown code: be conservative — only the zero-flip case is safe.
    return {
        "clean": p_clean,
        "corrected": 0.0,
        "detected": 0.0,
        "sdc": 1.0 - p_clean,
    }


@dataclass
class ReliabilityModel:
    """Array-level reliability: many protected words observed over time.

    Parameters
    ----------
    words:
        Number of independently protected words in the array (e.g. a
        16 KiB DL1 protected per 32-bit word holds 4096 words).
    bit_upset_rate_per_hour:
        Raw upsets per bit per hour of operation (technology dependent;
        the absolute value only scales the results).
    scrub_interval_hours:
        Interval after which accumulated errors are assumed to be
        cleaned (by scrubbing or by natural eviction/refill); errors
        accumulate within a window, which is what makes double errors
        possible at all.
    """

    words: int
    bit_upset_rate_per_hour: float
    scrub_interval_hours: float = 1.0

    def bit_upset_probability(self) -> float:
        """Probability that a given bit is flipped within one scrub window."""
        rate = self.bit_upset_rate_per_hour * self.scrub_interval_hours
        return 1.0 - math.exp(-rate)

    def word_outcomes(self, code: EccCode) -> Dict[str, float]:
        return word_outcome_probabilities(code, self.bit_upset_probability())

    def array_failure_probability(self, code: EccCode) -> float:
        """Probability that at least one word suffers an unsafe outcome.

        "Unsafe" means silent data corruption, plus — for codes without
        correction used on dirty write-back data — detected-but-
        uncorrectable errors (the dirty copy is the only copy, so
        detection alone cannot restore it).
        """
        outcomes = self.word_outcomes(code)
        unsafe = outcomes["sdc"]
        if isinstance(code, ParityCode):
            unsafe += outcomes["detected"]
        per_word_safe = 1.0 - unsafe
        return 1.0 - per_word_safe ** self.words

    def failures_in_time(self, code: EccCode, *, hours: float = 1e9) -> float:
        """Expected unsafe failures per ``hours`` device-hours (FIT-like)."""
        windows = hours / self.scrub_interval_hours
        return self.array_failure_probability(code) * windows

    def compare(self, codes) -> Dict[str, Dict[str, float]]:
        """Return per-code outcome probabilities and array failure rates."""
        comparison: Dict[str, Dict[str, float]] = {}
        for code in codes:
            entry = dict(self.word_outcomes(code))
            entry["array_failure_probability"] = self.array_failure_probability(code)
            comparison[code.name] = entry
        return comparison
