"""Hsiao SECDED code: single-error correction, double-error detection.

This is the code the paper assumes for the write-back DL1 (and for the
shared L2).  The Hsiao construction [Hsiao 1970, also summarised in
Chen & Hsiao 1984, reference [10] of the paper] uses a parity-check
matrix whose columns all have *odd* weight:

* check-bit columns are the 7 weight-1 unit vectors;
* data-bit columns are 32 distinct weight-3 vectors chosen from the
  C(7,3)=35 available ones (balanced so each check bit covers a similar
  number of data bits, which equalises the XOR-tree depth in hardware).

With odd-weight columns, any single-bit error produces an odd-weight
syndrome and any double-bit error produces a non-zero *even*-weight
syndrome, which cleanly separates "correct" from "detect, do not touch".

Codeword layout (public interface): data word in bits ``[0, 32)``, check
bits in ``[32, 39)``.

This is the fast-path implementation.  The H matrix (built by the shared
:func:`repro.ecc.reference.build_hsiao_columns` construction, so it is
identical to the reference codec's) is flattened into two lookup
structures:

* per-byte XOR tables — ``check = T0[b0] ^ T1[b1] ^ ...`` replaces the
  walk over every set data bit;
* a dense syndrome table of size ``2**check_bits`` mapping each
  odd-weight syndrome directly to the erroneous public-layout bit
  position (or -1 for "no matching column": a detected triple error).

The original bit-loop implementation lives on as
:class:`repro.ecc.reference.ReferenceHsiaoSecDedCode` and the
equivalence tests hold the two bit-identical.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ecc.codec import DecodeResult, DecodeStatus, EccCode, register_code
from repro.ecc.reference import build_hsiao_columns

#: Re-exported for backwards compatibility with the seed module layout.
_build_hsiao_columns = build_hsiao_columns


#: Construction products per (data_bits, check_bits): building the H
#: matrix, byte XOR tables and the dense syndrome table costs a few
#: milliseconds — noticeable when spec canonicalisation instantiates a
#: code per point (the warm-resume hot path) — and the products are
#: immutable once built, so every instance of a given shape shares them.
_CONSTRUCTION_CACHE: Dict[Tuple[int, int], Tuple[List[int], Dict[int, int], list, object]] = {}


class HsiaoSecDedCode(EccCode):
    """Hsiao odd-weight-column SECDED over ``data_bits`` bits (39,32 default)."""

    name = "secded"

    def __init__(self, data_bits: int = 32, check_bits: Optional[int] = None) -> None:
        self.data_bits = data_bits
        if check_bits is None:
            # Smallest r such that the number of available odd-weight
            # columns (2**(r-1)) covers data bits + the r unit columns.
            check_bits = 1
            while (1 << (check_bits - 1)) < data_bits + check_bits + 1:
                check_bits += 1
        self.check_bits = check_bits
        cached = _CONSTRUCTION_CACHE.get((data_bits, check_bits))
        if cached is not None:
            (
                self._data_columns,
                self._syndrome_to_position,
                self._byte_tables,
                self._syndrome_table,
            ) = cached
            return
        self._data_columns: List[int] = build_hsiao_columns(data_bits, check_bits)
        # Map syndrome -> erroneous bit position in the public layout
        # (kept as a dict for introspection; the dense list below is the
        # decode fast path).
        self._syndrome_to_position: Dict[int, int] = {}
        for position, column in enumerate(self._data_columns):
            self._syndrome_to_position[column] = position
        for check_index in range(check_bits):
            self._syndrome_to_position[1 << check_index] = data_bits + check_index

        # Per-byte XOR tables: table i maps a byte value to the XOR of the
        # H columns of data bits [8i, 8i+8).  Stored as C int arrays so
        # the batch paths index machine words, not boxed-Python lists.
        self._byte_tables: List[array] = []
        for base in range(0, data_bits, 8):
            table = array("q", bytes(8 * 256))
            width = min(8, data_bits - base)
            for byte in range(256):
                acc = 0
                bits = byte & ((1 << width) - 1)
                while bits:
                    low = bits & -bits
                    acc ^= self._data_columns[base + low.bit_length() - 1]
                    bits ^= low
                table[byte] = acc
            self._byte_tables.append(table)

        # Dense syndrome -> position table (only odd-weight syndromes are
        # ever looked up; -1 marks "no matching column").
        self._syndrome_table: array = array("q", [-1]) * (1 << check_bits)
        for syndrome, position in self._syndrome_to_position.items():
            self._syndrome_table[syndrome] = position
        _CONSTRUCTION_CACHE[(data_bits, check_bits)] = (
            self._data_columns,
            self._syndrome_to_position,
            self._byte_tables,
            self._syndrome_table,
        )

    # ------------------------------------------------------------------ #
    @property
    def parity_check_columns(self) -> Tuple[int, ...]:
        """H-matrix columns for the data bits (check columns are unit vectors)."""
        return tuple(self._data_columns)

    def _compute_check(self, data: int) -> int:
        check = 0
        for table in self._byte_tables:
            check ^= table[data & 0xFF]
            data >>= 8
        return check

    def encode(self, data: int) -> int:
        self._check_data_range(data)
        return data | (self._compute_check(data) << self.data_bits)

    def decode(self, codeword: int) -> DecodeResult:
        self._check_codeword_range(codeword)
        data = codeword & ((1 << self.data_bits) - 1)
        stored_check = codeword >> self.data_bits
        syndrome = self._compute_check(data) ^ stored_check
        if syndrome == 0:
            return DecodeResult(data=data, status=DecodeStatus.CLEAN, syndrome=0)
        if syndrome.bit_count() & 1:
            position = self._syndrome_table[syndrome]
            if position < 0:
                # Odd-weight syndrome not matching any column: at least a
                # triple error; report it as uncorrectable.
                return DecodeResult(
                    data=data,
                    status=DecodeStatus.DETECTED_UNCORRECTABLE,
                    syndrome=syndrome,
                )
            if position < self.data_bits:
                data ^= 1 << position
            return DecodeResult(
                data=data,
                status=DecodeStatus.CORRECTED,
                syndrome=syndrome,
                corrected_bit=position,
            )
        # Non-zero even-weight syndrome: double error detected.
        return DecodeResult(
            data=data,
            status=DecodeStatus.DETECTED_UNCORRECTABLE,
            syndrome=syndrome,
        )

    # Batch fast paths --------------------------------------------------
    def encode_many(self, words: Iterable[int]) -> List[int]:
        data_bits = self.data_bits
        tables = self._byte_tables
        out: List[int] = []
        append = out.append
        for data in words:
            if data < 0 or data >> data_bits:
                self._check_data_range(data)
            check = 0
            shifted = data
            for table in tables:
                check ^= table[shifted & 0xFF]
                shifted >>= 8
            append(data | (check << data_bits))
        return out

    def decode_many(self, codewords: Iterable[int]) -> List[DecodeResult]:
        data_bits = self.data_bits
        total_bits = self.total_bits
        data_mask = (1 << data_bits) - 1
        tables = self._byte_tables
        syndrome_table = self._syndrome_table
        clean = DecodeStatus.CLEAN
        corrected = DecodeStatus.CORRECTED
        detected = DecodeStatus.DETECTED_UNCORRECTABLE
        out: List[DecodeResult] = []
        append = out.append
        for codeword in codewords:
            if codeword < 0 or codeword >> total_bits:
                self._check_codeword_range(codeword)
            data = codeword & data_mask
            check = codeword >> data_bits
            shifted = data
            for table in tables:
                check ^= table[shifted & 0xFF]
                shifted >>= 8
            syndrome = check
            if syndrome == 0:
                append(DecodeResult(data=data, status=clean, syndrome=0))
            elif syndrome.bit_count() & 1:
                position = syndrome_table[syndrome]
                if position < 0:
                    append(
                        DecodeResult(data=data, status=detected, syndrome=syndrome)
                    )
                else:
                    if position < data_bits:
                        data ^= 1 << position
                    append(
                        DecodeResult(
                            data=data,
                            status=corrected,
                            syndrome=syndrome,
                            corrected_bit=position,
                        )
                    )
            else:
                append(DecodeResult(data=data, status=detected, syndrome=syndrome))
        return out


register_code("secded", HsiaoSecDedCode)
