"""Hsiao SECDED code: single-error correction, double-error detection.

This is the code the paper assumes for the write-back DL1 (and for the
shared L2).  The Hsiao construction [Hsiao 1970, also summarised in
Chen & Hsiao 1984, reference [10] of the paper] uses a parity-check
matrix whose columns all have *odd* weight:

* check-bit columns are the 7 weight-1 unit vectors;
* data-bit columns are 32 distinct weight-3 vectors chosen from the
  C(7,3)=35 available ones (balanced so each check bit covers a similar
  number of data bits, which equalises the XOR-tree depth in hardware).

With odd-weight columns, any single-bit error produces an odd-weight
syndrome and any double-bit error produces a non-zero *even*-weight
syndrome, which cleanly separates "correct" from "detect, do not touch".

Codeword layout (public interface): data word in bits ``[0, 32)``, check
bits in ``[32, 39)``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Tuple

from repro.ecc.codec import DecodeResult, DecodeStatus, EccCode, register_code


def _popcount(value: int) -> int:
    return bin(value).count("1")


def _build_hsiao_columns(data_bits: int, check_bits: int) -> List[int]:
    """Choose ``data_bits`` odd-weight columns of ``check_bits`` bits.

    Columns are drawn first from weight-3 vectors (balanced across check
    bits), then weight-5, and so on, following Hsiao's minimum-odd-weight
    construction.  The selection is deterministic so encodings are stable
    across runs and machines.
    """
    columns: List[int] = []
    usage = [0] * check_bits  # how many selected columns cover each check bit
    weight = 3
    while len(columns) < data_bits:
        if weight > check_bits:
            raise ValueError(
                f"cannot build Hsiao code: {data_bits} data bits, "
                f"{check_bits} check bits"
            )
        candidates = [
            sum(1 << bit for bit in combo)
            for combo in combinations(range(check_bits), weight)
        ]
        # Greedy balanced pick: repeatedly take the candidate whose check
        # bits are currently least used.
        remaining = list(candidates)
        while remaining and len(columns) < data_bits:
            remaining.sort(
                key=lambda col: (
                    sum(usage[b] for b in range(check_bits) if col >> b & 1),
                    col,
                )
            )
            chosen = remaining.pop(0)
            columns.append(chosen)
            for bit in range(check_bits):
                if chosen >> bit & 1:
                    usage[bit] += 1
        weight += 2
    return columns


class HsiaoSecDedCode(EccCode):
    """Hsiao odd-weight-column SECDED over ``data_bits`` bits (39,32 default)."""

    name = "secded"

    def __init__(self, data_bits: int = 32, check_bits: Optional[int] = None) -> None:
        self.data_bits = data_bits
        if check_bits is None:
            # Smallest r such that the number of available odd-weight
            # columns (2**(r-1)) covers data bits + the r unit columns.
            check_bits = 1
            while (1 << (check_bits - 1)) < data_bits + check_bits + 1:
                check_bits += 1
        self.check_bits = check_bits
        self._data_columns: List[int] = _build_hsiao_columns(data_bits, check_bits)
        # Map syndrome -> erroneous bit position in the public layout.
        self._syndrome_to_position: Dict[int, int] = {}
        for position, column in enumerate(self._data_columns):
            self._syndrome_to_position[column] = position
        for check_index in range(check_bits):
            self._syndrome_to_position[1 << check_index] = data_bits + check_index

    # ------------------------------------------------------------------ #
    @property
    def parity_check_columns(self) -> Tuple[int, ...]:
        """H-matrix columns for the data bits (check columns are unit vectors)."""
        return tuple(self._data_columns)

    def _compute_check(self, data: int) -> int:
        check = 0
        remaining = data
        position = 0
        while remaining:
            if remaining & 1:
                check ^= self._data_columns[position]
            remaining >>= 1
            position += 1
        return check

    def encode(self, data: int) -> int:
        self._check_data_range(data)
        return data | (self._compute_check(data) << self.data_bits)

    def decode(self, codeword: int) -> DecodeResult:
        self._check_codeword_range(codeword)
        data = codeword & ((1 << self.data_bits) - 1)
        stored_check = codeword >> self.data_bits
        syndrome = self._compute_check(data) ^ stored_check
        if syndrome == 0:
            return DecodeResult(data=data, status=DecodeStatus.CLEAN, syndrome=0)
        if _popcount(syndrome) % 2 == 1:
            position = self._syndrome_to_position.get(syndrome)
            if position is None:
                # Odd-weight syndrome not matching any column: at least a
                # triple error; report it as uncorrectable.
                return DecodeResult(
                    data=data,
                    status=DecodeStatus.DETECTED_UNCORRECTABLE,
                    syndrome=syndrome,
                )
            if position < self.data_bits:
                data ^= 1 << position
            return DecodeResult(
                data=data,
                status=DecodeStatus.CORRECTED,
                syndrome=syndrome,
                corrected_bit=position,
            )
        # Non-zero even-weight syndrome: double error detected.
        return DecodeResult(
            data=data,
            status=DecodeStatus.DETECTED_UNCORRECTABLE,
            syndrome=syndrome,
        )


register_code("secded", HsiaoSecDedCode)
