"""Single-bit parity code.

Parity detects any odd number of flipped bits but cannot correct anything
and does not see an even number of flips.  In the paper this is the
protection used by write-through DL1 designs (LEON3/LEON4): detection is
enough because a clean copy of the data always exists in the (SECDED
protected) L2, so a detected error simply becomes a refetch.
"""

from __future__ import annotations

from repro.ecc.codec import DecodeResult, DecodeStatus, EccCode, register_code


def _parity_of(value: int) -> int:
    """Return the XOR of all bits of ``value`` (0 or 1)."""
    parity = 0
    while value:
        parity ^= value & 1
        value >>= 1
    return parity


class ParityCode(EccCode):
    """Even or odd parity over a ``data_bits``-wide word.

    Codeword layout: ``data`` in bits ``[0, data_bits)``, parity bit at bit
    ``data_bits``.
    """

    name = "parity"

    def __init__(self, data_bits: int = 32, *, even: bool = True) -> None:
        self.data_bits = data_bits
        self.check_bits = 1
        self.even = even

    def encode(self, data: int) -> int:
        self._check_data_range(data)
        parity = _parity_of(data)
        if not self.even:
            parity ^= 1
        return data | (parity << self.data_bits)

    def decode(self, codeword: int) -> DecodeResult:
        self._check_codeword_range(codeword)
        data = codeword & ((1 << self.data_bits) - 1)
        stored_parity = (codeword >> self.data_bits) & 1
        expected = _parity_of(data)
        if not self.even:
            expected ^= 1
        syndrome = stored_parity ^ expected
        if syndrome == 0:
            # Either clean or an even number of flips (undetectable); the
            # code cannot tell the difference, which is exactly why parity
            # alone is insufficient for dirty write-back data.
            return DecodeResult(data=data, status=DecodeStatus.CLEAN, syndrome=0)
        return DecodeResult(
            data=data, status=DecodeStatus.DETECTED_UNCORRECTABLE, syndrome=1
        )


register_code("parity", ParityCode)
