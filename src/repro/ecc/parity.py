"""Single-bit parity code.

Parity detects any odd number of flipped bits but cannot correct anything
and does not see an even number of flips.  In the paper this is the
protection used by write-through DL1 designs (LEON3/LEON4): detection is
enough because a clean copy of the data always exists in the (SECDED
protected) L2, so a detected error simply becomes a refetch.

This is the fast-path implementation: the word parity is one
``int.bit_count()`` instead of a shift-and-XOR loop over every bit.  The
original loop lives on as :class:`repro.ecc.reference.ReferenceParityCode`
and the equivalence tests hold the two bit-identical.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.ecc.codec import DecodeResult, DecodeStatus, EccCode, register_code


def _parity_of(value: int) -> int:
    """Return the XOR of all bits of ``value`` (0 or 1)."""
    return value.bit_count() & 1


class ParityCode(EccCode):
    """Even or odd parity over a ``data_bits``-wide word.

    Codeword layout: ``data`` in bits ``[0, data_bits)``, parity bit at bit
    ``data_bits``.
    """

    name = "parity"

    def __init__(self, data_bits: int = 32, *, even: bool = True) -> None:
        self.data_bits = data_bits
        self.check_bits = 1
        self.even = even

    def encode(self, data: int) -> int:
        self._check_data_range(data)
        parity = data.bit_count() & 1
        if not self.even:
            parity ^= 1
        return data | (parity << self.data_bits)

    def decode(self, codeword: int) -> DecodeResult:
        self._check_codeword_range(codeword)
        data = codeword & ((1 << self.data_bits) - 1)
        # The stored parity bit participates in the whole-codeword parity,
        # so for an even code the codeword itself must have even weight.
        syndrome = codeword.bit_count() & 1
        if not self.even:
            syndrome ^= 1
        if syndrome == 0:
            # Either clean or an even number of flips (undetectable); the
            # code cannot tell the difference, which is exactly why parity
            # alone is insufficient for dirty write-back data.
            return DecodeResult(data=data, status=DecodeStatus.CLEAN, syndrome=0)
        return DecodeResult(
            data=data, status=DecodeStatus.DETECTED_UNCORRECTABLE, syndrome=1
        )

    # Batch fast paths --------------------------------------------------
    def encode_many(self, words: Iterable[int]) -> List[int]:
        data_bits = self.data_bits
        flip = 0 if self.even else 1
        out: List[int] = []
        append = out.append
        for data in words:
            if data < 0 or data >> data_bits:
                self._check_data_range(data)
            append(data | (((data.bit_count() & 1) ^ flip) << data_bits))
        return out

    def decode_many(self, codewords: Iterable[int]) -> List[DecodeResult]:
        data_bits = self.data_bits
        total_bits = self.total_bits
        data_mask = (1 << data_bits) - 1
        flip = 0 if self.even else 1
        clean = DecodeStatus.CLEAN
        detected = DecodeStatus.DETECTED_UNCORRECTABLE
        out: List[DecodeResult] = []
        append = out.append
        for codeword in codewords:
            if codeword < 0 or codeword >> total_bits:
                self._check_codeword_range(codeword)
            data = codeword & data_mask
            if (codeword.bit_count() & 1) ^ flip:
                append(DecodeResult(data=data, status=detected, syndrome=1))
            else:
                append(DecodeResult(data=data, status=clean, syndrome=0))
        return out


register_code("parity", ParityCode)
