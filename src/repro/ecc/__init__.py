"""Error detection and correction codes.

The paper deploys SECDED (Single-Error-Correction, Double-Error-Detection)
in the write-back DL1 cache and contrasts it with parity-protected
write-through designs.  This package implements the actual codes at the
bit level so that the fault-injection experiments exercise the same
encode/decode/correct path a hardware implementation would:

* :class:`repro.ecc.parity.ParityCode` — single even/odd parity bit
  (detection only; what LEON3/LEON4 use in their WT DL1).
* :class:`repro.ecc.hamming.HammingSecCode` — Hamming single-error
  correction without double-error detection (included as a baseline for
  the reliability analytics; double errors are silently mis-corrected).
* :class:`repro.ecc.secded.HsiaoSecDedCode` — Hsiao odd-weight-column
  SECDED(39,32), the code assumed throughout the paper.
"""

from repro.ecc.codec import CodeWord, DecodeResult, DecodeStatus, EccCode, get_code, register_code
from repro.ecc.fault_injection import FaultInjector, FaultModel, InjectionOutcome, InjectionReport
from repro.ecc.hamming import HammingSecCode
from repro.ecc.parity import ParityCode
from repro.ecc.reference import (
    REFERENCE_CODES,
    ReferenceHammingSecCode,
    ReferenceHsiaoSecDedCode,
    ReferenceParityCode,
)
from repro.ecc.reliability import ReliabilityModel, word_outcome_probabilities
from repro.ecc.secded import HsiaoSecDedCode

__all__ = [
    "REFERENCE_CODES",
    "ReferenceHammingSecCode",
    "ReferenceHsiaoSecDedCode",
    "ReferenceParityCode",
    "CodeWord",
    "DecodeResult",
    "DecodeStatus",
    "EccCode",
    "FaultInjector",
    "FaultModel",
    "HammingSecCode",
    "HsiaoSecDedCode",
    "InjectionOutcome",
    "InjectionReport",
    "ParityCode",
    "ReliabilityModel",
    "get_code",
    "register_code",
    "word_outcome_probabilities",
]
