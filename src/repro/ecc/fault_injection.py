"""Fault injection for ECC-protected storage.

The paper targets *soft errors* (radiation-induced single-event upsets) in
the DL1 data array.  We model them as bit flips in stored codewords and
classify the outcome by comparing the decoded word with the ground truth:

* ``MASKED`` — the flip(s) hit bits that do not change the decoded data
  and the decoder saw nothing (only possible for parity with even flips).
* ``CORRECTED`` — the decoder returned the original data and flagged a
  correction.
* ``DETECTED`` — the decoder flagged an uncorrectable error (the cache
  controller would then raise a fault / refetch / trigger recovery).
* ``SILENT_DATA_CORRUPTION`` — the decoder returned wrong data without
  any error indication.  This is the failure mode safety standards such
  as ISO 26262 care about.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.ecc.codec import DecodeStatus, EccCode


class InjectionOutcome(enum.Enum):
    """Classification of one injection experiment against ground truth."""

    MASKED = "masked"
    CORRECTED = "corrected"
    DETECTED = "detected"
    SILENT_DATA_CORRUPTION = "sdc"


@dataclass(frozen=True)
class FaultModel:
    """Describes how many bits to flip per injected fault.

    ``multiplicity_weights`` maps the number of simultaneously flipped
    bits to its relative probability.  The paper assumes MBU (multi-bit
    upset) rates are negligible for the targeted technologies, so the
    default model is single-bit flips only; the reliability ablation uses
    a mixed model to show what SECDED buys over plain Hamming.
    """

    multiplicity_weights: Dict[int, float] = field(
        default_factory=lambda: {1: 1.0}
    )

    def __post_init__(self) -> None:
        # The weight table is immutable, so the sum/sort that the seed
        # implementation redid on every draw is hoisted here.  The
        # arithmetic (summation order, cumulative walk) is kept identical
        # so a seeded campaign draws the exact same multiplicities.
        items = sorted(self.multiplicity_weights.items())
        object.__setattr__(self, "_weight_items", items)
        object.__setattr__(
            self, "_weight_total", sum(self.multiplicity_weights.values())
        )
        object.__setattr__(
            self, "_single_multiplicity", items[0][0] if len(items) == 1 else None
        )

    def sample_multiplicity(self, rng: random.Random) -> int:
        pick = rng.random() * self._weight_total
        single = self._single_multiplicity
        if single is not None:
            # One entry: the cumulative walk always stops at it (``pick``
            # is strictly below the total); the draw above keeps the RNG
            # stream identical to the general case.
            return single
        cumulative = 0.0
        for multiplicity, weight in self._weight_items:
            cumulative += weight
            if pick <= cumulative:
                return multiplicity
        return max(self.multiplicity_weights)


@dataclass
class InjectionRecord:
    """One injection: where the flips landed and what the decoder did."""

    data: int
    flipped_bits: Sequence[int]
    status: DecodeStatus
    outcome: InjectionOutcome


@dataclass
class InjectionReport:
    """Aggregated results of an injection campaign."""

    code_name: str
    records: List[InjectionRecord] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.records)

    def count(self, outcome: InjectionOutcome) -> int:
        return sum(1 for record in self.records if record.outcome is outcome)

    def rate(self, outcome: InjectionOutcome) -> float:
        if not self.records:
            return 0.0
        return self.count(outcome) / self.total

    def by_multiplicity(self) -> Dict[int, Dict[InjectionOutcome, int]]:
        """Outcome counts grouped by the number of flipped bits."""
        grouped: Dict[int, Dict[InjectionOutcome, int]] = {}
        for record in self.records:
            bucket = grouped.setdefault(len(record.flipped_bits), {})
            bucket[record.outcome] = bucket.get(record.outcome, 0) + 1
        return grouped

    def summary(self) -> Dict[str, float]:
        return {outcome.value: self.rate(outcome) for outcome in InjectionOutcome}


class FaultInjector:
    """Runs bit-flip campaigns against an :class:`EccCode`.

    Randomness is *never* drawn from the global :mod:`random` state: each
    injector owns (or is handed) an explicit :class:`random.Random`, so
    campaigns are reproducible under a fixed seed and independent
    injectors can safely run in parallel worker processes without
    perturbing each other's trial streams.
    """

    def __init__(
        self,
        code: EccCode,
        *,
        seed: int = 2019,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.code = code
        #: The private RNG driving trial generation.  Pass ``rng=`` to
        #: share/sequence generators explicitly; ``seed=`` is then ignored.
        self.rng = rng if rng is not None else random.Random(seed)

    # ------------------------------------------------------------------ #
    def inject_once(
        self, data: int, flipped_bits: Iterable[int]
    ) -> InjectionRecord:
        """Encode ``data``, flip exactly ``flipped_bits``, decode, classify."""
        positions = tuple(flipped_bits)
        codeword = self.code.encode(data)
        corrupted = self.code.flip_bits(codeword, positions)
        result = self.code.decode(corrupted)
        outcome = self._classify(data, positions, result.data, result.status)
        return InjectionRecord(
            data=data, flipped_bits=positions, status=result.status, outcome=outcome
        )

    def run_campaign(
        self,
        *,
        trials: int,
        fault_model: Optional[FaultModel] = None,
        data_source: Optional[Iterable[int]] = None,
    ) -> InjectionReport:
        """Inject ``trials`` random faults and return the aggregated report.

        ``data_source`` optionally supplies the words to protect (e.g.
        values captured from a workload run); otherwise uniform random
        32-bit words are used.
        """
        model = fault_model or FaultModel()
        rng = self.rng
        code = self.code
        data_bits = code.data_bits
        total_bits = code.total_bits
        data_mask = (1 << data_bits) - 1
        position_range = range(total_bits)

        # Phase 1: draw every trial up front.  The RNG call sequence is
        # exactly the per-trial sequence the reference implementation
        # used (data word, multiplicity, positions), so a fixed seed
        # reproduces the seed campaign byte for byte.
        trial_plan: List[tuple] = []
        plan_append = trial_plan.append
        rng_getrandbits = rng.getrandbits
        rng_sample = rng.sample
        sample_multiplicity = model.sample_multiplicity
        data_iterator = iter(data_source) if data_source is not None else None
        for _ in range(trials):
            if data_iterator is not None:
                try:
                    data = next(data_iterator) & data_mask
                except StopIteration:
                    data_iterator = None
                    data = rng_getrandbits(data_bits)
            else:
                data = rng_getrandbits(data_bits)
            multiplicity = sample_multiplicity(rng)
            if multiplicity > total_bits:
                multiplicity = total_bits
            plan_append((data, tuple(rng_sample(position_range, multiplicity))))

        # Phase 2: batch encode/corrupt/decode through the table-driven
        # fast paths (positions come from ``rng.sample`` over the valid
        # range, so no per-flip validation is needed).
        codewords = code.encode_many([data for data, _ in trial_plan])
        corrupted: List[int] = []
        for codeword, (_, positions) in zip(codewords, trial_plan):
            flip_mask = 0
            for position in positions:
                flip_mask |= 1 << position
            corrupted.append(codeword ^ flip_mask)
        decoded = code.decode_many(corrupted)

        report = InjectionReport(code_name=code.name)
        records_append = report.records.append
        # Outcome classification inlined from _classify: MISCORRECTED is
        # never emitted by a decoder, so anything that is neither CLEAN
        # nor CORRECTED is a detected-uncorrectable.
        clean = DecodeStatus.CLEAN
        corrected = DecodeStatus.CORRECTED
        masked = InjectionOutcome.MASKED
        outcome_corrected = InjectionOutcome.CORRECTED
        detected = InjectionOutcome.DETECTED
        sdc = InjectionOutcome.SILENT_DATA_CORRUPTION
        for (data, positions), result in zip(trial_plan, decoded):
            status = result.status
            if status is clean:
                outcome = masked if result.data == data else sdc
            elif status is corrected:
                outcome = outcome_corrected if result.data == data else sdc
            else:
                outcome = detected
            records_append(
                InjectionRecord(
                    data=data,
                    flipped_bits=positions,
                    status=status,
                    outcome=outcome,
                )
            )
        return report

    def exhaustive_single_bit(self, data_words: Iterable[int]) -> InjectionReport:
        """Flip every single bit position of every supplied data word."""
        report = InjectionReport(code_name=self.code.name)
        data_mask = (1 << self.code.data_bits) - 1
        positions = range(self.code.total_bits)
        for data in data_words:
            data &= data_mask
            codeword = self.code.encode(data)
            decoded = self.code.decode_many(
                [codeword ^ (1 << position) for position in positions]
            )
            for position, result in zip(positions, decoded):
                report.records.append(
                    InjectionRecord(
                        data=data,
                        flipped_bits=(position,),
                        status=result.status,
                        outcome=self._classify(
                            data, (position,), result.data, result.status
                        ),
                    )
                )
        return report

    def exhaustive_double_bit(self, data: int) -> InjectionReport:
        """Flip every pair of bit positions of one data word."""
        report = InjectionReport(code_name=self.code.name)
        data &= (1 << self.code.data_bits) - 1
        codeword = self.code.encode(data)
        pairs = [
            (first, second)
            for first in range(self.code.total_bits)
            for second in range(first + 1, self.code.total_bits)
        ]
        decoded = self.code.decode_many(
            [codeword ^ (1 << first) ^ (1 << second) for first, second in pairs]
        )
        for (first, second), result in zip(pairs, decoded):
            report.records.append(
                InjectionRecord(
                    data=data,
                    flipped_bits=(first, second),
                    status=result.status,
                    outcome=self._classify(
                        data, (first, second), result.data, result.status
                    ),
                )
            )
        return report

    # ------------------------------------------------------------------ #
    def _classify(
        self,
        original: int,
        flipped_bits: Sequence[int],
        decoded: int,
        status: DecodeStatus,
    ) -> InjectionOutcome:
        data_intact = decoded == original
        if status is DecodeStatus.CLEAN:
            if data_intact:
                return InjectionOutcome.MASKED
            return InjectionOutcome.SILENT_DATA_CORRUPTION
        if status is DecodeStatus.CORRECTED:
            if data_intact:
                return InjectionOutcome.CORRECTED
            return InjectionOutcome.SILENT_DATA_CORRUPTION
        # Detected-uncorrectable: the controller is informed, so even if
        # the data image is wrong this is not silent.
        return InjectionOutcome.DETECTED
