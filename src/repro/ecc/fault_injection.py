"""Fault injection for ECC-protected storage.

The paper targets *soft errors* (radiation-induced single-event upsets) in
the DL1 data array.  We model them as bit flips in stored codewords and
classify the outcome by comparing the decoded word with the ground truth:

* ``MASKED`` — the flip(s) hit bits that do not change the decoded data
  and the decoder saw nothing (only possible for parity with even flips).
* ``CORRECTED`` — the decoder returned the original data and flagged a
  correction.
* ``DETECTED`` — the decoder flagged an uncorrectable error (the cache
  controller would then raise a fault / refetch / trigger recovery).
* ``SILENT_DATA_CORRUPTION`` — the decoder returned wrong data without
  any error indication.  This is the failure mode safety standards such
  as ISO 26262 care about.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.ecc.codec import DecodeStatus, EccCode


class InjectionOutcome(enum.Enum):
    """Classification of one injection experiment against ground truth."""

    MASKED = "masked"
    CORRECTED = "corrected"
    DETECTED = "detected"
    SILENT_DATA_CORRUPTION = "sdc"


@dataclass(frozen=True)
class FaultModel:
    """Describes how many bits to flip per injected fault.

    ``multiplicity_weights`` maps the number of simultaneously flipped
    bits to its relative probability.  The paper assumes MBU (multi-bit
    upset) rates are negligible for the targeted technologies, so the
    default model is single-bit flips only; the reliability ablation uses
    a mixed model to show what SECDED buys over plain Hamming.
    """

    multiplicity_weights: Dict[int, float] = field(
        default_factory=lambda: {1: 1.0}
    )

    def sample_multiplicity(self, rng: random.Random) -> int:
        total = sum(self.multiplicity_weights.values())
        pick = rng.random() * total
        cumulative = 0.0
        for multiplicity, weight in sorted(self.multiplicity_weights.items()):
            cumulative += weight
            if pick <= cumulative:
                return multiplicity
        return max(self.multiplicity_weights)


@dataclass
class InjectionRecord:
    """One injection: where the flips landed and what the decoder did."""

    data: int
    flipped_bits: Sequence[int]
    status: DecodeStatus
    outcome: InjectionOutcome


@dataclass
class InjectionReport:
    """Aggregated results of an injection campaign."""

    code_name: str
    records: List[InjectionRecord] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.records)

    def count(self, outcome: InjectionOutcome) -> int:
        return sum(1 for record in self.records if record.outcome is outcome)

    def rate(self, outcome: InjectionOutcome) -> float:
        if not self.records:
            return 0.0
        return self.count(outcome) / self.total

    def by_multiplicity(self) -> Dict[int, Dict[InjectionOutcome, int]]:
        """Outcome counts grouped by the number of flipped bits."""
        grouped: Dict[int, Dict[InjectionOutcome, int]] = {}
        for record in self.records:
            bucket = grouped.setdefault(len(record.flipped_bits), {})
            bucket[record.outcome] = bucket.get(record.outcome, 0) + 1
        return grouped

    def summary(self) -> Dict[str, float]:
        return {outcome.value: self.rate(outcome) for outcome in InjectionOutcome}


class FaultInjector:
    """Runs bit-flip campaigns against an :class:`EccCode`."""

    def __init__(self, code: EccCode, *, seed: int = 2019) -> None:
        self.code = code
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------ #
    def inject_once(
        self, data: int, flipped_bits: Iterable[int]
    ) -> InjectionRecord:
        """Encode ``data``, flip exactly ``flipped_bits``, decode, classify."""
        positions = tuple(flipped_bits)
        codeword = self.code.encode(data)
        corrupted = self.code.flip_bits(codeword, positions)
        result = self.code.decode(corrupted)
        outcome = self._classify(data, positions, result.data, result.status)
        return InjectionRecord(
            data=data, flipped_bits=positions, status=result.status, outcome=outcome
        )

    def run_campaign(
        self,
        *,
        trials: int,
        fault_model: Optional[FaultModel] = None,
        data_source: Optional[Iterable[int]] = None,
    ) -> InjectionReport:
        """Inject ``trials`` random faults and return the aggregated report.

        ``data_source`` optionally supplies the words to protect (e.g.
        values captured from a workload run); otherwise uniform random
        32-bit words are used.
        """
        model = fault_model or FaultModel()
        report = InjectionReport(code_name=self.code.name)
        data_iterator = iter(data_source) if data_source is not None else None
        for _ in range(trials):
            if data_iterator is not None:
                try:
                    data = next(data_iterator) & ((1 << self.code.data_bits) - 1)
                except StopIteration:
                    data_iterator = None
                    data = self.rng.getrandbits(self.code.data_bits)
            else:
                data = self.rng.getrandbits(self.code.data_bits)
            multiplicity = model.sample_multiplicity(self.rng)
            multiplicity = min(multiplicity, self.code.total_bits)
            positions = self.rng.sample(range(self.code.total_bits), multiplicity)
            report.records.append(self.inject_once(data, positions))
        return report

    def exhaustive_single_bit(self, data_words: Iterable[int]) -> InjectionReport:
        """Flip every single bit position of every supplied data word."""
        report = InjectionReport(code_name=self.code.name)
        for data in data_words:
            data &= (1 << self.code.data_bits) - 1
            for position in range(self.code.total_bits):
                report.records.append(self.inject_once(data, (position,)))
        return report

    def exhaustive_double_bit(self, data: int) -> InjectionReport:
        """Flip every pair of bit positions of one data word."""
        report = InjectionReport(code_name=self.code.name)
        data &= (1 << self.code.data_bits) - 1
        for first in range(self.code.total_bits):
            for second in range(first + 1, self.code.total_bits):
                report.records.append(self.inject_once(data, (first, second)))
        return report

    # ------------------------------------------------------------------ #
    def _classify(
        self,
        original: int,
        flipped_bits: Sequence[int],
        decoded: int,
        status: DecodeStatus,
    ) -> InjectionOutcome:
        data_intact = decoded == original
        if status is DecodeStatus.CLEAN:
            if data_intact:
                return InjectionOutcome.MASKED
            return InjectionOutcome.SILENT_DATA_CORRUPTION
        if status is DecodeStatus.CORRECTED:
            if data_intact:
                return InjectionOutcome.CORRECTED
            return InjectionOutcome.SILENT_DATA_CORRUPTION
        # Detected-uncorrectable: the controller is informed, so even if
        # the data image is wrong this is not silent.
        return InjectionOutcome.DETECTED
