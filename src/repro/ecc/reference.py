"""Reference (bit-by-bit) codec implementations.

These are the original per-bit loop implementations of the three codes,
kept verbatim as the behavioural specification for the table-driven fast
codecs in :mod:`repro.ecc.parity`, :mod:`repro.ecc.hamming` and
:mod:`repro.ecc.secded`.  The equivalence tests assert that the fast
codecs produce bit-identical codewords and :class:`DecodeResult`\\ s for
clean words, every single-bit flip and sampled double-bit flips.

They deliberately trade speed for obviousness: every parity is computed
by walking the codeword positions exactly the way the textbook
constructions describe them.  Nothing in the experiment pipeline should
import these classes on a hot path — use the registered fast codecs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional

from repro.ecc.codec import DecodeResult, DecodeStatus, EccCode


def _popcount(value: int) -> int:
    return bin(value).count("1")


def _parity_of(value: int) -> int:
    """Return the XOR of all bits of ``value`` (0 or 1)."""
    parity = 0
    while value:
        parity ^= value & 1
        value >>= 1
    return parity


def _required_check_bits(data_bits: int) -> int:
    """Smallest r with 2**r >= data_bits + r + 1."""
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r


class ReferenceParityCode(EccCode):
    """Bit-loop even/odd parity over a ``data_bits``-wide word."""

    name = "parity"

    def __init__(self, data_bits: int = 32, *, even: bool = True) -> None:
        self.data_bits = data_bits
        self.check_bits = 1
        self.even = even

    def encode(self, data: int) -> int:
        self._check_data_range(data)
        parity = _parity_of(data)
        if not self.even:
            parity ^= 1
        return data | (parity << self.data_bits)

    def decode(self, codeword: int) -> DecodeResult:
        self._check_codeword_range(codeword)
        data = codeword & ((1 << self.data_bits) - 1)
        stored_parity = (codeword >> self.data_bits) & 1
        expected = _parity_of(data)
        if not self.even:
            expected ^= 1
        syndrome = stored_parity ^ expected
        if syndrome == 0:
            return DecodeResult(data=data, status=DecodeStatus.CLEAN, syndrome=0)
        return DecodeResult(
            data=data, status=DecodeStatus.DETECTED_UNCORRECTABLE, syndrome=1
        )


class ReferenceHammingSecCode(EccCode):
    """Bit-loop Hamming SEC over ``data_bits`` bits (6 check bits for 32)."""

    name = "hamming"

    def __init__(self, data_bits: int = 32) -> None:
        self.data_bits = data_bits
        self.check_bits = _required_check_bits(data_bits)
        # Precompute the 1-indexed codeword positions of the data bits
        # (every position that is not a power of two).
        self._data_positions: List[int] = []
        position = 1
        while len(self._data_positions) < data_bits:
            if position & (position - 1):  # not a power of two
                self._data_positions.append(position)
            position += 1
        # The true codeword length is the largest used position.
        largest_check = 1 << (self.check_bits - 1)
        self._codeword_length = max(self._data_positions[-1], largest_check)

    # ------------------------------------------------------------------ #
    def _spread(self, data: int) -> List[int]:
        """Place data bits into their codeword positions (1-indexed array)."""
        bits = [0] * (self._codeword_length + 1)
        for index, position in enumerate(self._data_positions):
            bits[position] = (data >> index) & 1
        return bits

    def _compute_checks(self, bits: List[int]) -> None:
        for check_index in range(self.check_bits):
            parity_position = 1 << check_index
            parity = 0
            for position in range(1, self._codeword_length + 1):
                if position & parity_position and position != parity_position:
                    parity ^= bits[position]
            bits[parity_position] = parity

    def _collect(self, bits: List[int]) -> int:
        """Pack the positional bit array into the public codeword layout."""
        data = 0
        for index, position in enumerate(self._data_positions):
            data |= bits[position] << index
        check = 0
        for check_index in range(self.check_bits):
            check |= bits[1 << check_index] << check_index
        return data | (check << self.data_bits)

    def _unpack(self, codeword: int) -> List[int]:
        data = codeword & ((1 << self.data_bits) - 1)
        check = codeword >> self.data_bits
        bits = [0] * (self._codeword_length + 1)
        for index, position in enumerate(self._data_positions):
            bits[position] = (data >> index) & 1
        for check_index in range(self.check_bits):
            bits[1 << check_index] = (check >> check_index) & 1
        return bits

    # ------------------------------------------------------------------ #
    def encode(self, data: int) -> int:
        self._check_data_range(data)
        bits = self._spread(data)
        self._compute_checks(bits)
        return self._collect(bits)

    def decode(self, codeword: int) -> DecodeResult:
        self._check_codeword_range(codeword)
        bits = self._unpack(codeword)
        syndrome = 0
        for check_index in range(self.check_bits):
            parity_position = 1 << check_index
            parity = 0
            for position in range(1, self._codeword_length + 1):
                if position & parity_position:
                    parity ^= bits[position]
            if parity:
                syndrome |= parity_position
        if syndrome == 0:
            data = self._extract_data(bits)
            return DecodeResult(data=data, status=DecodeStatus.CLEAN, syndrome=0)
        if syndrome <= self._codeword_length:
            bits[syndrome] ^= 1
            data = self._extract_data(bits)
            return DecodeResult(
                data=data,
                status=DecodeStatus.CORRECTED,
                syndrome=syndrome,
                corrected_bit=syndrome,
            )
        # Syndrome points outside the codeword: detectable but uncorrectable.
        data = self._extract_data(bits)
        return DecodeResult(
            data=data, status=DecodeStatus.DETECTED_UNCORRECTABLE, syndrome=syndrome
        )

    def _extract_data(self, bits: List[int]) -> int:
        data = 0
        for index, position in enumerate(self._data_positions):
            data |= bits[position] << index
        return data


def build_hsiao_columns(data_bits: int, check_bits: int) -> List[int]:
    """Choose ``data_bits`` odd-weight columns of ``check_bits`` bits.

    Columns are drawn first from weight-3 vectors (balanced across check
    bits), then weight-5, and so on, following Hsiao's minimum-odd-weight
    construction.  The selection is deterministic so encodings are stable
    across runs and machines.  Shared by the reference and the fast
    SECDED codec so both use the *same* H matrix.
    """
    columns: List[int] = []
    usage = [0] * check_bits  # how many selected columns cover each check bit
    weight = 3
    while len(columns) < data_bits:
        if weight > check_bits:
            raise ValueError(
                f"cannot build Hsiao code: {data_bits} data bits, "
                f"{check_bits} check bits"
            )
        candidates = [
            sum(1 << bit for bit in combo)
            for combo in combinations(range(check_bits), weight)
        ]
        # Greedy balanced pick: repeatedly take the candidate whose check
        # bits are currently least used.
        remaining = list(candidates)
        while remaining and len(columns) < data_bits:
            remaining.sort(
                key=lambda col: (
                    sum(usage[b] for b in range(check_bits) if col >> b & 1),
                    col,
                )
            )
            chosen = remaining.pop(0)
            columns.append(chosen)
            for bit in range(check_bits):
                if chosen >> bit & 1:
                    usage[bit] += 1
        weight += 2
    return columns


class ReferenceHsiaoSecDedCode(EccCode):
    """Bit-loop Hsiao odd-weight-column SECDED over ``data_bits`` bits."""

    name = "secded"

    def __init__(self, data_bits: int = 32, check_bits: Optional[int] = None) -> None:
        self.data_bits = data_bits
        if check_bits is None:
            # Smallest r such that the number of available odd-weight
            # columns (2**(r-1)) covers data bits + the r unit columns.
            check_bits = 1
            while (1 << (check_bits - 1)) < data_bits + check_bits + 1:
                check_bits += 1
        self.check_bits = check_bits
        self._data_columns: List[int] = build_hsiao_columns(data_bits, check_bits)
        # Map syndrome -> erroneous bit position in the public layout.
        self._syndrome_to_position: Dict[int, int] = {}
        for position, column in enumerate(self._data_columns):
            self._syndrome_to_position[column] = position
        for check_index in range(check_bits):
            self._syndrome_to_position[1 << check_index] = data_bits + check_index

    def _compute_check(self, data: int) -> int:
        check = 0
        remaining = data
        position = 0
        while remaining:
            if remaining & 1:
                check ^= self._data_columns[position]
            remaining >>= 1
            position += 1
        return check

    def encode(self, data: int) -> int:
        self._check_data_range(data)
        return data | (self._compute_check(data) << self.data_bits)

    def decode(self, codeword: int) -> DecodeResult:
        self._check_codeword_range(codeword)
        data = codeword & ((1 << self.data_bits) - 1)
        stored_check = codeword >> self.data_bits
        syndrome = self._compute_check(data) ^ stored_check
        if syndrome == 0:
            return DecodeResult(data=data, status=DecodeStatus.CLEAN, syndrome=0)
        if _popcount(syndrome) % 2 == 1:
            position = self._syndrome_to_position.get(syndrome)
            if position is None:
                # Odd-weight syndrome not matching any column: at least a
                # triple error; report it as uncorrectable.
                return DecodeResult(
                    data=data,
                    status=DecodeStatus.DETECTED_UNCORRECTABLE,
                    syndrome=syndrome,
                )
            if position < self.data_bits:
                data ^= 1 << position
            return DecodeResult(
                data=data,
                status=DecodeStatus.CORRECTED,
                syndrome=syndrome,
                corrected_bit=position,
            )
        # Non-zero even-weight syndrome: double error detected.
        return DecodeResult(
            data=data,
            status=DecodeStatus.DETECTED_UNCORRECTABLE,
            syndrome=syndrome,
        )


#: Fast-codec class name -> reference implementation, used by the
#: equivalence tests and the perf harness baselines.
REFERENCE_CODES = {
    "parity": ReferenceParityCode,
    "hamming": ReferenceHammingSecCode,
    "secded": ReferenceHsiaoSecDedCode,
}
