"""Hamming single-error-correction (SEC) code.

Included as a reference point for the reliability analysis: plain Hamming
corrects any single-bit error but has no double-error detection — a
double error produces a syndrome that usually points at a third, innocent
bit and gets silently "corrected" into garbage.  The paper (and our cache
model) uses Hsiao SECDED instead; see :mod:`repro.ecc.secded`.

Layout: the classic 1-indexed Hamming arrangement where check bits sit at
power-of-two positions (1, 2, 4, ...) and data bits fill the remaining
positions.  The public ``encode``/``decode`` interface still exchanges
plain ``data_bits``-wide integers; the positional shuffling is internal.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ecc.codec import DecodeResult, DecodeStatus, EccCode, register_code


def _required_check_bits(data_bits: int) -> int:
    """Smallest r with 2**r >= data_bits + r + 1."""
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r


class HammingSecCode(EccCode):
    """Hamming SEC over ``data_bits`` bits (6 check bits for 32)."""

    name = "hamming"

    def __init__(self, data_bits: int = 32) -> None:
        self.data_bits = data_bits
        self.check_bits = _required_check_bits(data_bits)
        # Precompute the 1-indexed codeword positions of the data bits
        # (every position that is not a power of two).
        self._data_positions: List[int] = []
        position = 1
        while len(self._data_positions) < data_bits:
            if position & (position - 1):  # not a power of two
                self._data_positions.append(position)
            position += 1
        self._codeword_length = position - 1 if not (position - 1) & (position - 2) \
            else self._data_positions[-1]
        # The true codeword length is the largest used position.
        largest_check = 1 << (self.check_bits - 1)
        self._codeword_length = max(self._data_positions[-1], largest_check)

    # ------------------------------------------------------------------ #
    def _spread(self, data: int) -> List[int]:
        """Place data bits into their codeword positions (1-indexed array)."""
        bits = [0] * (self._codeword_length + 1)
        for index, position in enumerate(self._data_positions):
            bits[position] = (data >> index) & 1
        return bits

    def _compute_checks(self, bits: List[int]) -> None:
        for check_index in range(self.check_bits):
            parity_position = 1 << check_index
            parity = 0
            for position in range(1, self._codeword_length + 1):
                if position & parity_position and position != parity_position:
                    parity ^= bits[position]
            bits[parity_position] = parity

    def _collect(self, bits: List[int]) -> int:
        """Pack the positional bit array into the public codeword layout.

        Public layout: data word in bits [0, data_bits), check bits above.
        """
        data = 0
        for index, position in enumerate(self._data_positions):
            data |= bits[position] << index
        check = 0
        for check_index in range(self.check_bits):
            check |= bits[1 << check_index] << check_index
        return data | (check << self.data_bits)

    def _unpack(self, codeword: int) -> List[int]:
        data = codeword & ((1 << self.data_bits) - 1)
        check = codeword >> self.data_bits
        bits = [0] * (self._codeword_length + 1)
        for index, position in enumerate(self._data_positions):
            bits[position] = (data >> index) & 1
        for check_index in range(self.check_bits):
            bits[1 << check_index] = (check >> check_index) & 1
        return bits

    # ------------------------------------------------------------------ #
    def encode(self, data: int) -> int:
        self._check_data_range(data)
        bits = self._spread(data)
        self._compute_checks(bits)
        return self._collect(bits)

    def decode(self, codeword: int) -> DecodeResult:
        self._check_codeword_range(codeword)
        bits = self._unpack(codeword)
        syndrome = 0
        for check_index in range(self.check_bits):
            parity_position = 1 << check_index
            parity = 0
            for position in range(1, self._codeword_length + 1):
                if position & parity_position:
                    parity ^= bits[position]
            if parity:
                syndrome |= parity_position
        if syndrome == 0:
            data = self._extract_data(bits)
            return DecodeResult(data=data, status=DecodeStatus.CLEAN, syndrome=0)
        corrected_bit: Optional[int] = None
        if syndrome <= self._codeword_length:
            bits[syndrome] ^= 1
            corrected_bit = syndrome
            data = self._extract_data(bits)
            return DecodeResult(
                data=data,
                status=DecodeStatus.CORRECTED,
                syndrome=syndrome,
                corrected_bit=corrected_bit,
            )
        # Syndrome points outside the codeword: detectable but uncorrectable.
        data = self._extract_data(bits)
        return DecodeResult(
            data=data, status=DecodeStatus.DETECTED_UNCORRECTABLE, syndrome=syndrome
        )

    def _extract_data(self, bits: List[int]) -> int:
        data = 0
        for index, position in enumerate(self._data_positions):
            data |= bits[position] << index
        return data


register_code("hamming", HammingSecCode)
