"""Hamming single-error-correction (SEC) code.

Included as a reference point for the reliability analysis: plain Hamming
corrects any single-bit error but has no double-error detection — a
double error produces a syndrome that usually points at a third, innocent
bit and gets silently "corrected" into garbage.  The paper (and our cache
model) uses Hsiao SECDED instead; see :mod:`repro.ecc.secded`.

Layout: the classic 1-indexed Hamming arrangement where check bits sit at
power-of-two positions (1, 2, 4, ...) and data bits fill the remaining
positions.  The public ``encode``/``decode`` interface still exchanges
plain ``data_bits``-wide integers; the positional shuffling is internal.

This is the fast-path implementation.  Instead of spreading the word into
a positional bit array and walking it once per check bit, the
constructor flattens the construction into lookup structures over the
*public* codeword layout:

* ``_check_masks[k]`` — mask of public codeword bits covered by check
  ``k`` (its own stored check bit included), so each syndrome bit is one
  ``(codeword & mask).bit_count() & 1``;
* ``_data_masks[k]`` — the data-word part of the same coverage, used by
  ``encode``;
* ``_syndrome_flip[s]`` — for every in-range positional syndrome ``s``,
  the data-word XOR mask that undoes the indicated single-bit error
  (zero when ``s`` names a check-bit position).

The original loop implementation lives on as
:class:`repro.ecc.reference.ReferenceHammingSecCode` and the equivalence
tests hold the two bit-identical over clean words and all flips.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List

from repro.ecc.codec import DecodeResult, DecodeStatus, EccCode, register_code


def _required_check_bits(data_bits: int) -> int:
    """Smallest r with 2**r >= data_bits + r + 1."""
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r


class HammingSecCode(EccCode):
    """Hamming SEC over ``data_bits`` bits (6 check bits for 32)."""

    name = "hamming"

    def __init__(self, data_bits: int = 32) -> None:
        self.data_bits = data_bits
        self.check_bits = _required_check_bits(data_bits)
        # 1-indexed codeword positions of the data bits (every position
        # that is not a power of two).
        self._data_positions: List[int] = []
        position = 1
        while len(self._data_positions) < data_bits:
            if position & (position - 1):  # not a power of two
                self._data_positions.append(position)
            position += 1
        largest_check = 1 << (self.check_bits - 1)
        self._codeword_length = max(self._data_positions[-1], largest_check)

        # Coverage masks in the public layout (data word low, check bits
        # above).  Data bit *index* sits at positional address
        # ``_data_positions[index]``; check bit k at position ``1 << k``.
        self._data_masks: List[int] = []
        self._check_masks: List[int] = []
        for check_index in range(self.check_bits):
            parity_position = 1 << check_index
            data_mask = 0
            for index, pos in enumerate(self._data_positions):
                if pos & parity_position:
                    data_mask |= 1 << index
            self._data_masks.append(data_mask)
            self._check_masks.append(data_mask | (1 << (data_bits + check_index)))

        # Positional syndrome -> data-word correction mask (0 for check
        # positions: flipping a stored check bit never changes the data).
        # A C int array: the batch decode indexes it once per codeword.
        self._syndrome_flip: array = array("q", bytes(8 * (self._codeword_length + 1)))
        for index, pos in enumerate(self._data_positions):
            self._syndrome_flip[pos] = 1 << index

    # ------------------------------------------------------------------ #
    def encode(self, data: int) -> int:
        self._check_data_range(data)
        check = 0
        for check_index, mask in enumerate(self._data_masks):
            check |= ((data & mask).bit_count() & 1) << check_index
        return data | (check << self.data_bits)

    def decode(self, codeword: int) -> DecodeResult:
        self._check_codeword_range(codeword)
        syndrome = 0
        for check_index, mask in enumerate(self._check_masks):
            syndrome |= ((codeword & mask).bit_count() & 1) << check_index
        data = codeword & ((1 << self.data_bits) - 1)
        if syndrome == 0:
            return DecodeResult(data=data, status=DecodeStatus.CLEAN, syndrome=0)
        if syndrome <= self._codeword_length:
            return DecodeResult(
                data=data ^ self._syndrome_flip[syndrome],
                status=DecodeStatus.CORRECTED,
                syndrome=syndrome,
                corrected_bit=syndrome,
            )
        # Syndrome points outside the codeword: detectable but uncorrectable.
        return DecodeResult(
            data=data, status=DecodeStatus.DETECTED_UNCORRECTABLE, syndrome=syndrome
        )

    # Batch fast paths --------------------------------------------------
    def encode_many(self, words: Iterable[int]) -> List[int]:
        data_bits = self.data_bits
        masks = tuple(enumerate(self._data_masks))
        out: List[int] = []
        append = out.append
        for data in words:
            if data < 0 or data >> data_bits:
                self._check_data_range(data)
            check = 0
            for check_index, mask in masks:
                check |= ((data & mask).bit_count() & 1) << check_index
            append(data | (check << data_bits))
        return out

    def decode_many(self, codewords: Iterable[int]) -> List[DecodeResult]:
        data_bits = self.data_bits
        total_bits = self.total_bits
        data_mask = (1 << data_bits) - 1
        masks = tuple(enumerate(self._check_masks))
        length = self._codeword_length
        flips = self._syndrome_flip
        clean = DecodeStatus.CLEAN
        corrected = DecodeStatus.CORRECTED
        detected = DecodeStatus.DETECTED_UNCORRECTABLE
        out: List[DecodeResult] = []
        append = out.append
        for codeword in codewords:
            if codeword < 0 or codeword >> total_bits:
                self._check_codeword_range(codeword)
            syndrome = 0
            for check_index, mask in masks:
                syndrome |= ((codeword & mask).bit_count() & 1) << check_index
            data = codeword & data_mask
            if syndrome == 0:
                append(DecodeResult(data=data, status=clean, syndrome=0))
            elif syndrome <= length:
                append(
                    DecodeResult(
                        data=data ^ flips[syndrome],
                        status=corrected,
                        syndrome=syndrome,
                        corrected_bit=syndrome,
                    )
                )
            else:
                append(DecodeResult(data=data, status=detected, syndrome=syndrome))
        return out


register_code("hamming", HammingSecCode)
