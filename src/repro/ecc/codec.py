"""Common codec interface for all error-correcting codes.

Every code works on ``data_bits``-wide words (32 by default, matching the
DL1 word size of the LEON4) and produces a codeword of
``data_bits + check_bits`` bits.  Codewords are plain Python integers with
the data word in the low bits and the check bits above it — the layout is
an implementation convenience, not a claim about the physical array
layout, and is documented per code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional


class DecodeStatus(enum.Enum):
    """Outcome of decoding a (possibly corrupted) codeword."""

    CLEAN = "clean"                      # syndrome zero, no error observed
    CORRECTED = "corrected"              # single-bit error corrected
    DETECTED_UNCORRECTABLE = "detected"  # error detected but not correctable
    MISCORRECTED = "miscorrected"        # code applied a wrong "correction"

    @property
    def is_silent_corruption(self) -> bool:
        """True when decoded data may be wrong without any error signal."""
        return self is DecodeStatus.MISCORRECTED


@dataclass(frozen=True)
class CodeWord:
    """An encoded word: original data plus check bits."""

    data: int
    check: int
    total_bits: int

    @property
    def value(self) -> int:
        return self.data | (self.check << (self.total_bits - self.check_bits))

    @property
    def check_bits(self) -> int:
        return self.total_bits - self.data.bit_length() if False else 0  # unused


@dataclass(frozen=True)
class DecodeResult:
    """Result of decoding a codeword."""

    data: int
    status: DecodeStatus
    syndrome: int = 0
    corrected_bit: Optional[int] = None

    @property
    def detected(self) -> bool:
        return self.status in (
            DecodeStatus.CORRECTED,
            DecodeStatus.DETECTED_UNCORRECTABLE,
        )

    @property
    def corrected(self) -> bool:
        return self.status is DecodeStatus.CORRECTED

    @property
    def uncorrectable(self) -> bool:
        return self.status is DecodeStatus.DETECTED_UNCORRECTABLE


class EccCode:
    """Abstract base class for all codes.

    Subclasses must set :attr:`data_bits` and :attr:`check_bits` and
    implement :meth:`encode` and :meth:`decode`.
    """

    #: Short registry name (e.g. ``"secded"``); set by subclasses.
    name: str = "abstract"
    data_bits: int = 32
    check_bits: int = 0

    @property
    def total_bits(self) -> int:
        return self.data_bits + self.check_bits

    @property
    def storage_overhead(self) -> float:
        """Check-bit storage overhead as a fraction of the data bits."""
        return self.check_bits / self.data_bits if self.data_bits else 0.0

    def encode(self, data: int) -> int:
        """Return the codeword for ``data`` (data in the low bits)."""
        raise NotImplementedError

    def decode(self, codeword: int) -> DecodeResult:
        """Decode ``codeword``, correcting/flagging errors as supported."""
        raise NotImplementedError

    # Batch interface ---------------------------------------------------
    # The fault campaigns encode/decode tens of thousands of words per
    # run; these entry points let table-driven codecs amortise their
    # lookup-structure access across a whole batch.  The base versions
    # simply loop, so every code gets the API for free.
    def encode_many(self, words: Iterable[int]) -> List[int]:
        """Encode a batch of data words (one codeword per input word)."""
        encode = self.encode
        return [encode(word) for word in words]

    def decode_many(self, codewords: Iterable[int]) -> List[DecodeResult]:
        """Decode a batch of codewords (one :class:`DecodeResult` each)."""
        decode = self.decode
        return [decode(codeword) for codeword in codewords]

    # Convenience helpers shared by all codes ---------------------------
    def _check_data_range(self, data: int) -> None:
        if data < 0 or data >> self.data_bits:
            raise ValueError(
                f"data word out of range for a {self.data_bits}-bit code: {data:#x}"
            )

    def _check_codeword_range(self, codeword: int) -> None:
        if codeword < 0 or codeword >> self.total_bits:
            raise ValueError(
                f"codeword out of range for a {self.total_bits}-bit code: {codeword:#x}"
            )

    def flip_bits(self, codeword: int, positions) -> int:
        """Return ``codeword`` with the given bit ``positions`` flipped."""
        result = codeword
        for position in positions:
            if position < 0 or position >= self.total_bits:
                raise ValueError(f"bit position out of range: {position}")
            result ^= 1 << position
        return result

    def roundtrip(self, data: int) -> DecodeResult:
        """Encode then decode ``data`` (should always be CLEAN)."""
        return self.decode(self.encode(data))

    # -------------------------------------------------------------------
    def describe(self) -> str:
        return (
            f"{self.name}: ({self.total_bits},{self.data_bits}) code, "
            f"{self.check_bits} check bits, "
            f"{self.storage_overhead * 100:.1f}% storage overhead"
        )


_REGISTRY: Dict[str, Callable[[], EccCode]] = {}


def register_code(name: str, factory: Callable[[], EccCode]) -> None:
    """Register a code factory under ``name`` (used by configuration)."""
    _REGISTRY[name] = factory


def get_code(name: str) -> EccCode:
    """Instantiate a registered code by name (``parity``, ``hamming``, ``secded``)."""
    try:
        factory = _REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown ECC code {name!r}; known codes: {known}") from exc
    return factory()


def available_codes():
    """Names of all registered codes."""
    return sorted(_REGISTRY)
