"""Configuration dataclasses for the memory hierarchy.

Defaults follow the evaluation platform of the paper (Section IV): a
LEON4/NGMP-like core with a 16 KiB, 4-way, 32 B/line DL1, a private L1I
of the same geometry, a shared 256 KiB L2 behind a bus, and off-chip
memory.  Latencies are parameters of our model, not values taken from
the paper (which does not list them); the chosen defaults give a
baseline CPI in the range typical for this class of core, and the
benchmark harness reports sensitivity to them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional


class WritePolicy(enum.Enum):
    """DL1 write policy."""

    WRITE_BACK = "write-back"
    WRITE_THROUGH = "write-through"


class ReplacementPolicy(enum.Enum):
    """Cache replacement policy."""

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policies of one cache level."""

    size_bytes: int = 16 * 1024
    line_bytes: int = 32
    ways: int = 4
    replacement: ReplacementPolicy = ReplacementPolicy.LRU
    write_policy: WritePolicy = WritePolicy.WRITE_BACK
    write_allocate: bool = True
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} is not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two")
        sets = self.size_bytes // (self.line_bytes * self.ways)
        if sets & (sets - 1):
            raise ValueError("number of sets must be a power of two")

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)

    @property
    def lines(self) -> int:
        return self.sets * self.ways

    def with_write_policy(self, policy: WritePolicy) -> "CacheConfig":
        return replace(self, write_policy=policy)


@dataclass(frozen=True)
class MemoryHierarchyConfig:
    """Latency and topology parameters of the full hierarchy.

    All latencies are expressed in core cycles.

    * ``l2_hit_latency`` — cycles spent inside the L2 array on a hit.
    * ``bus_request_latency`` / ``bus_transfer_latency`` — cycles to win
      the bus and to move a line (or a store word) across it.
    * ``memory_latency`` — additional cycles for an L2 miss serviced by
      off-chip memory.
    * ``bus_contenders`` / ``bus_contention_mode`` — interference from
      the other cores of the SoC (see :class:`repro.memory.bus.Bus`).
    * ``bus_slot_cycles`` — length of one round-robin arbitration slot.
      This is the single source of truth for both interference models:
      the analytic :class:`~repro.memory.bus.ContentionModel` charge and
      the co-simulation arbiter's per-request clamp are derived from it,
      which is what keeps ``co-simulated <= worst analytic`` sound for
      non-default slot lengths.
    """

    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(name="dl1")
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(name="il1")
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=256 * 1024, line_bytes=32, ways=8, name="l2"
        )
    )
    l2_hit_latency: int = 4
    bus_request_latency: int = 2
    bus_transfer_latency: int = 4
    memory_latency: int = 20
    store_through_latency: int = 6
    bus_contenders: int = 0
    bus_contention_mode: str = "none"  # "none" | "average" | "worst"
    bus_slot_cycles: int = 6

    @property
    def l2_round_trip(self) -> int:
        """Cycles for a DL1 miss that hits in the L2 (no contention)."""
        return (
            self.bus_request_latency
            + self.l2_hit_latency
            + self.bus_transfer_latency
        )

    @property
    def memory_round_trip(self) -> int:
        """Cycles for a DL1 miss that also misses in the L2."""
        return self.l2_round_trip + self.memory_latency

    def with_write_through_l1d(self) -> "MemoryHierarchyConfig":
        """Return a copy whose DL1 uses the write-through policy."""
        return replace(
            self, l1d=self.l1d.with_write_policy(WritePolicy.WRITE_THROUGH)
        )

    def with_contention(
        self, contenders: int, mode: str = "worst"
    ) -> "MemoryHierarchyConfig":
        """Return a copy with ``contenders`` other cores loading the bus."""
        return replace(self, bus_contenders=contenders, bus_contention_mode=mode)
