"""Off-chip main-memory timing model.

Main memory is the last level of the hierarchy.  The model is a fixed
access latency plus an optional very simple row-buffer effect: accesses
that fall into the most recently opened "row" (a coarse address window)
are cheaper, which makes streaming workloads behave qualitatively
differently from pointer-chasing ones even beyond the caches.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MainMemoryStatistics:
    accesses: int = 0
    row_hits: int = 0

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0


class MainMemory:
    """Fixed-latency memory with an optional open-row discount."""

    def __init__(
        self,
        *,
        access_latency: int = 20,
        row_bytes: int = 1024,
        row_hit_discount: int = 6,
    ) -> None:
        self.access_latency = access_latency
        self.row_bytes = row_bytes
        self.row_hit_discount = row_hit_discount
        self._open_row: int | None = None
        self.stats = MainMemoryStatistics()

    def access_cycles(self, address: int) -> int:
        """Latency of one line fetch from memory."""
        row = address // self.row_bytes
        self.stats.accesses += 1
        if row == self._open_row:
            self.stats.row_hits += 1
            return max(1, self.access_latency - self.row_hit_discount)
        self._open_row = row
        return self.access_latency

    def reset(self) -> None:
        self._open_row = None
        self.stats = MainMemoryStatistics()
