"""Replacement policy implementations for set-associative caches.

Each policy manages the eviction order of one cache *set*.  Policies are
deliberately tiny state machines so they can be tested exhaustively and
swapped freely in the cache configuration.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.memory.config import ReplacementPolicy


class ReplacementState:
    """Base class: one instance per cache set."""

    def __init__(self, ways: int) -> None:
        self.ways = ways

    def touch(self, way: int) -> None:
        """Record a hit on ``way``."""

    def fill(self, way: int) -> None:
        """Record that ``way`` was (re)filled."""

    def victim(self, valid: List[bool]) -> int:
        """Return the way to evict.  Invalid ways are always preferred."""
        raise NotImplementedError


class LruState(ReplacementState):
    """True LRU: maintain the recency order of all ways in the set."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        # Most-recently-used first.
        self._order: List[int] = list(range(ways))

    def touch(self, way: int) -> None:
        self._order.remove(way)
        self._order.insert(0, way)

    def fill(self, way: int) -> None:
        self.touch(way)

    def victim(self, valid: List[bool]) -> int:
        for way, is_valid in enumerate(valid):
            if not is_valid:
                return way
        return self._order[-1]


class FifoState(ReplacementState):
    """FIFO: evict the way that was filled the longest ago."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._fill_order: List[int] = []

    def fill(self, way: int) -> None:
        if way in self._fill_order:
            self._fill_order.remove(way)
        self._fill_order.append(way)

    def victim(self, valid: List[bool]) -> int:
        for way, is_valid in enumerate(valid):
            if not is_valid:
                return way
        if self._fill_order:
            return self._fill_order[0]
        return 0


class RandomState(ReplacementState):
    """Pseudo-random replacement with a per-set deterministic stream."""

    def __init__(self, ways: int, seed: int = 0) -> None:
        super().__init__(ways)
        self._rng = random.Random(seed)

    def victim(self, valid: List[bool]) -> int:
        for way, is_valid in enumerate(valid):
            if not is_valid:
                return way
        return self._rng.randrange(self.ways)


def make_replacement_state(
    policy: ReplacementPolicy, ways: int, *, seed: Optional[int] = None
) -> ReplacementState:
    """Factory used by :class:`repro.memory.cache.SetAssociativeCache`."""
    if policy is ReplacementPolicy.LRU:
        return LruState(ways)
    if policy is ReplacementPolicy.FIFO:
        return FifoState(ways)
    if policy is ReplacementPolicy.RANDOM:
        return RandomState(ways, seed=seed or 0)
    raise ValueError(f"unknown replacement policy {policy}")
