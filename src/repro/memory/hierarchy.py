"""Per-core view of the memory hierarchy.

The :class:`MemoryHierarchy` is what the timing pipeline talks to.  It
owns the private L1 instruction and data caches and the store/write
buffer of one core, and it references the (possibly shared) bus, L2 and
main memory.  All methods return *latencies in cycles*; the pipeline is
responsible for scheduling them into stage occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ecc.codec import EccCode
from repro.memory.bus import Bus, ContentionModel
from repro.memory.cache import SetAssociativeCache
from repro.memory.config import MemoryHierarchyConfig, WritePolicy
from repro.memory.l2_cache import SharedL2Cache
from repro.memory.main_memory import MainMemory
from repro.memory.write_buffer import WriteBuffer


@dataclass(frozen=True)
class DataAccessOutcome:
    """Timing outcome of one DL1 data access.

    ``extra_cycles`` is the latency *beyond* the nominal single-cycle DL1
    access: zero on a hit, the full miss round-trip (plus any dirty
    write-back) on a miss.  For stores, ``store_drain_latency`` is how
    long the corresponding write-buffer entry occupies the buffer once it
    reaches the head.
    """

    hit: bool
    extra_cycles: int = 0
    store_drain_latency: int = 0
    caused_writeback: bool = False


class MemoryHierarchy:
    """Private L1s + write buffer, backed by a shared bus/L2/memory."""

    def __init__(
        self,
        config: MemoryHierarchyConfig,
        *,
        bus: Optional[Bus] = None,
        l2: Optional[SharedL2Cache] = None,
        memory: Optional[MainMemory] = None,
        write_buffer_entries: int = 4,
        dl1_ecc_code: Optional[EccCode] = None,
        core_id: int = 0,
        l2_address_offset: int = 0,
        track_l2_master: bool = False,
    ) -> None:
        self.config = config
        #: Identifies this core in shared-L2 accounting (co-simulation).
        self.core_id = core_id
        #: Offset applied to addresses presented to a *shared* L2 so that
        #: different cores' identical virtual layouts do not alias to the
        #: same lines (each task owns a distinct physical region).  Zero
        #: for private (single-core / partitioned) hierarchies.
        self.l2_address_offset = l2_address_offset
        #: Master id passed to the L2 for per-core attribution, or
        #: ``None`` to skip the accounting entirely — the default, so
        #: single-core runs (the optimized campaign hot path) pay nothing
        #: for a feature only shared-L2 co-simulations read.
        self.l2_master = core_id if track_l2_master else None
        self.memory = memory or MainMemory(access_latency=config.memory_latency)
        self.l2 = l2 or SharedL2Cache(
            config.l2, self.memory, hit_latency=config.l2_hit_latency
        )
        self.bus = bus or Bus(
            request_latency=config.bus_request_latency,
            transfer_latency=config.bus_transfer_latency,
            contention=ContentionModel(
                contenders=config.bus_contenders,
                slot_cycles=config.bus_slot_cycles,
                mode=config.bus_contention_mode,
            ),
        )
        self.l1d = SetAssociativeCache(config.l1d, ecc_code=dl1_ecc_code)
        self.l1i = SetAssociativeCache(config.l1i)
        self.write_buffer = WriteBuffer(capacity=write_buffer_entries)

    # ------------------------------------------------------------------ #
    # instruction side                                                   #
    # ------------------------------------------------------------------ #
    def instruction_fetch_cycles(self, pc: int, *, cycle: Optional[int] = None) -> int:
        """Extra fetch cycles beyond the single-cycle L1I hit (0 on a hit).

        ``cycle`` is the issue cycle of the fetch; it is only needed when
        the bus is backed by the co-simulation arbiter and is ignored by
        the analytic contention model.
        """
        result = self.l1i.access(pc, is_write=False)
        if result.hit:
            return 0
        line_address = self.l1i.line_address(pc) + self.l2_address_offset
        return self.bus.transaction_cycles("line", cycle=cycle) + self.l2.access_cycles(
            line_address, master=self.l2_master
        )

    # ------------------------------------------------------------------ #
    # data side                                                          #
    # ------------------------------------------------------------------ #
    def load_access(self, address: int, *, cycle: Optional[int] = None) -> DataAccessOutcome:
        """Timing of one load (hit/miss decision plus miss penalty)."""
        result = self.l1d.access(address, is_write=False)
        if result.hit:
            return DataAccessOutcome(hit=True)
        extra = self._miss_penalty(
            address, result.writeback, result.writeback_address, cycle=cycle
        )
        return DataAccessOutcome(hit=False, extra_cycles=extra, caused_writeback=result.writeback)

    def store_access(self, address: int, *, cycle: Optional[int] = None) -> DataAccessOutcome:
        """Timing of one store as seen by the write buffer.

        Write-back DL1: a store hit drains in a single DL1 cycle; a store
        miss (write-allocate) must first fetch the line, so the buffer
        entry holds the miss round-trip.  Write-through DL1: every store
        pushes the word to the L2 over the bus regardless of hit/miss.
        """
        write_back = self.config.l1d.write_policy is WritePolicy.WRITE_BACK
        result = self.l1d.access(address, is_write=True)
        if write_back:
            if result.hit:
                return DataAccessOutcome(hit=True, store_drain_latency=1)
            extra = self._miss_penalty(
                address, result.writeback, result.writeback_address, cycle=cycle
            )
            return DataAccessOutcome(
                hit=False,
                store_drain_latency=1 + extra,
                caused_writeback=result.writeback,
            )
        # Write-through: the DL1 lookup only decides whether the line is
        # also updated locally; the drain always pays a bus + L2 word write.
        drain = (
            self.bus.transaction_cycles("word", cycle=cycle)
            + self.config.store_through_latency
        )
        return DataAccessOutcome(hit=result.hit, store_drain_latency=drain)

    def _miss_penalty(
        self,
        address: int,
        writeback: bool,
        writeback_address: Optional[int],
        cycle: Optional[int] = None,
    ) -> int:
        line_address = self.l1d.line_address(address) + self.l2_address_offset
        cycles = self.bus.transaction_cycles("line", cycle=cycle)
        cycles += self.l2.access_cycles(line_address, master=self.l2_master)
        if writeback and writeback_address is not None:
            # Dirty victim: the write-back occupies the bus and the L2
            # write port before the fill can complete (no write buffer
            # between L1 and L2 in this simple model).
            wb_cycle = None if cycle is None else cycle + cycles
            cycles += self.bus.transaction_cycles("line", cycle=wb_cycle)
            cycles += (
                self.l2.access_cycles(
                    writeback_address + self.l2_address_offset,
                    is_write=True,
                    master=self.l2_master,
                )
                // 2
            )
        return cycles

    # ------------------------------------------------------------------ #
    # maintenance                                                        #
    # ------------------------------------------------------------------ #
    def warm_up_instruction(self, pc: int) -> None:
        """Pre-load the L1I line holding ``pc`` (used for warm-start runs)."""
        self.l1i.access(pc, is_write=False)

    def reset_statistics(self) -> None:
        self.l1d.stats.__init__()
        self.l1i.stats.__init__()
        self.bus.reset_statistics()
        self.write_buffer.reset()

    def dl1_statistics(self):
        return self.l1d.stats

    def describe(self) -> str:
        l1d = self.config.l1d
        return (
            f"DL1 {l1d.size_bytes // 1024} KiB {l1d.ways}-way {l1d.line_bytes}B/line "
            f"({l1d.write_policy.value}), L2 {self.config.l2.size_bytes // 1024} KiB, "
            f"memory {self.config.memory_latency} cycles"
        )
