"""Set-associative cache timing model.

The cache tracks tags, valid and dirty bits only: its job is to decide
hits, misses and dirty evictions so the hierarchy can charge the right
latencies.  An optional per-word ECC shadow array (used by the DL1 when
fault injection is enabled) stores encoded words so reliability
experiments can corrupt and decode genuine cache contents.

For architectural fault-injection campaigns (:mod:`repro.campaign`) the
cache also exposes *injection hooks*: :meth:`SetAssociativeCache.arm_fault`
arms one single-event upset that lands right before the N-th access
after arming, flipping one bit of the stored codeword of a resident
word.  The trigger is a single predictable branch on the access path, so
unarmed runs (every ordinary timing simulation) pay nothing for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ecc.codec import EccCode
from repro.memory.config import CacheConfig, WritePolicy
from repro.memory.replacement import make_replacement_state


@dataclass(frozen=True)
class CacheAccessResult:
    """Outcome of one cache access (timing view)."""

    hit: bool
    set_index: int
    tag: int
    way: int
    writeback: bool = False
    writeback_address: Optional[int] = None
    allocated: bool = False
    #: Line address of the valid victim this access replaced (set for
    #: clean evictions too, unlike ``writeback_address``); ``None`` when
    #: the fill used an invalid way or no line was brought in.
    evicted_address: Optional[int] = None

    @property
    def miss(self) -> bool:
        return not self.hit


@dataclass
class ArmedFault:
    """One armed single-event upset plus what happened when it landed."""

    word_address: int
    bit: int
    #: 1-based ordinal (counted from arming) of the access right before
    #: which the upset lands.
    at_access: int
    triggered: bool = False
    #: Whether the word's line was valid in the array when the fault landed.
    resident: bool = False
    #: Whether that line was dirty at that moment.
    dirty: bool = False
    #: Whether a stored codeword was actually corrupted (requires the
    #: word to be resident *and* present in the ECC shadow array).
    flipped: bool = False


@dataclass
class _CacheLine:
    valid: bool = False
    dirty: bool = False
    tag: int = 0


@dataclass
class CacheStatistics:
    """Per-cache access counters."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    writebacks: int = 0
    fills: int = 0

    @property
    def reads(self) -> int:
        return self.read_hits + self.read_misses

    @property
    def writes(self) -> int:
        return self.write_hits + self.write_misses

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def hits(self) -> int:
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def read_hit_rate(self) -> float:
        return self.read_hits / self.reads if self.reads else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "read_hit_rate": self.read_hit_rate,
            "writebacks": self.writebacks,
        }


class SetAssociativeCache:
    """A set-associative cache with configurable write/replacement policy."""

    def __init__(self, config: CacheConfig, *, ecc_code: Optional[EccCode] = None) -> None:
        self.config = config
        self.line_bits = config.line_bytes.bit_length() - 1
        self.set_bits = config.sets.bit_length() - 1
        self._sets: List[List[_CacheLine]] = [
            [_CacheLine() for _ in range(config.ways)] for _ in range(config.sets)
        ]
        self._replacement = [
            make_replacement_state(config.replacement, config.ways, seed=index)
            for index in range(config.sets)
        ]
        self.stats = CacheStatistics()
        # Optional ECC shadow: word address -> stored codeword.
        self.ecc_code = ecc_code
        self._ecc_array: Dict[int, int] = {}
        # Armed single-event upset (see arm_fault); None keeps the access
        # path trigger-free apart from one predictable branch.
        self._armed_fault: Optional[ArmedFault] = None
        self._accesses_since_arm = 0

    # ------------------------------------------------------------------ #
    # address helpers                                                    #
    # ------------------------------------------------------------------ #
    def split_address(self, address: int) -> tuple:
        """Return ``(tag, set_index, offset)`` for ``address``."""
        offset = address & (self.config.line_bytes - 1)
        set_index = (address >> self.line_bits) & (self.config.sets - 1)
        tag = address >> (self.line_bits + self.set_bits)
        return tag, set_index, offset

    def line_address(self, address: int) -> int:
        return address & ~(self.config.line_bytes - 1)

    def _rebuild_address(self, tag: int, set_index: int) -> int:
        return (tag << (self.line_bits + self.set_bits)) | (set_index << self.line_bits)

    # ------------------------------------------------------------------ #
    # lookup / access                                                    #
    # ------------------------------------------------------------------ #
    def probe(self, address: int) -> bool:
        """Return True if ``address`` currently hits, without side effects."""
        tag, set_index, _ = self.split_address(address)
        return any(
            line.valid and line.tag == tag for line in self._sets[set_index]
        )

    def access(self, address: int, *, is_write: bool = False) -> CacheAccessResult:
        """Perform a load/store lookup, allocating on miss per the config.

        Returns the timing-relevant outcome; the caller (hierarchy) is
        responsible for charging miss and writeback latencies.
        """
        armed = self._armed_fault
        if armed is not None:
            self._accesses_since_arm += 1
            if not armed.triggered and self._accesses_since_arm >= armed.at_access:
                self._trigger_fault(armed)
        tag, set_index, _ = self.split_address(address)
        lines = self._sets[set_index]
        replacement = self._replacement[set_index]
        for way, line in enumerate(lines):
            if line.valid and line.tag == tag:
                replacement.touch(way)
                if is_write:
                    self.stats.write_hits += 1
                    if self.config.write_policy is WritePolicy.WRITE_BACK:
                        line.dirty = True
                else:
                    self.stats.read_hits += 1
                return CacheAccessResult(
                    hit=True, set_index=set_index, tag=tag, way=way
                )
        # Miss.
        if is_write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
        allocate = not is_write or self.config.write_allocate
        if not allocate:
            # Write-around: no line is brought in.
            return CacheAccessResult(
                hit=False, set_index=set_index, tag=tag, way=-1, allocated=False
            )
        victim_way = replacement.victim([line.valid for line in lines])
        victim = lines[victim_way]
        writeback = bool(victim.valid and victim.dirty)
        evicted_address = (
            self._rebuild_address(victim.tag, set_index) if victim.valid else None
        )
        writeback_address = evicted_address if writeback else None
        if writeback:
            self.stats.writebacks += 1
        victim.valid = True
        victim.dirty = bool(
            is_write and self.config.write_policy is WritePolicy.WRITE_BACK
        )
        victim.tag = tag
        replacement.fill(victim_way)
        self.stats.fills += 1
        return CacheAccessResult(
            hit=False,
            set_index=set_index,
            tag=tag,
            way=victim_way,
            writeback=writeback,
            writeback_address=writeback_address,
            allocated=True,
            evicted_address=evicted_address,
        )

    def invalidate_all(self) -> None:
        """Invalidate every line (keeps statistics)."""
        for lines in self._sets:
            for line in lines:
                line.valid = False
                line.dirty = False

    def dirty_line_count(self) -> int:
        return sum(
            1 for lines in self._sets for line in lines if line.valid and line.dirty
        )

    def dirty_line_addresses(self) -> List[int]:
        """Line addresses of every valid dirty line (sorted)."""
        addresses = []
        for set_index, lines in enumerate(self._sets):
            for line in lines:
                if line.valid and line.dirty:
                    addresses.append(self._rebuild_address(line.tag, set_index))
        return sorted(addresses)

    def line_is_dirty(self, address: int) -> bool:
        """Whether the valid line holding ``address`` is dirty."""
        tag, set_index, _ = self.split_address(address)
        return any(
            line.valid and line.tag == tag and line.dirty
            for line in self._sets[set_index]
        )

    def valid_line_count(self) -> int:
        return sum(1 for lines in self._sets for line in lines if line.valid)

    # ------------------------------------------------------------------ #
    # optional ECC shadow array                                          #
    # ------------------------------------------------------------------ #
    def ecc_store_word(self, address: int, value: int) -> None:
        """Store an ECC-encoded shadow copy of ``value`` at word ``address``."""
        if self.ecc_code is None:
            return
        word_address = address & ~0x3
        self._ecc_array[word_address] = self.ecc_code.encode(
            value & ((1 << self.ecc_code.data_bits) - 1)
        )

    def ecc_load_word(self, address: int):
        """Decode the shadow codeword at ``address`` (None if never stored)."""
        if self.ecc_code is None:
            return None
        word_address = address & ~0x3
        codeword = self._ecc_array.get(word_address)
        if codeword is None:
            return None
        return self.ecc_code.decode(codeword)

    def ecc_flip_bit(self, address: int, bit: int) -> bool:
        """Flip one bit of the stored codeword (returns False if absent)."""
        if self.ecc_code is None:
            return False
        word_address = address & ~0x3
        if word_address not in self._ecc_array:
            return False
        self._ecc_array[word_address] ^= 1 << bit
        return True

    def ecc_resident_words(self):
        """Word addresses currently holding an ECC shadow entry."""
        return sorted(self._ecc_array)

    def ecc_load_raw(self, address: int) -> Optional[int]:
        """The stored (possibly corrupted) codeword at ``address``, undecoded."""
        return self._ecc_array.get(address & ~0x3)

    def ecc_take_word(self, address: int) -> Optional[int]:
        """Remove and return the raw codeword at ``address`` (eviction)."""
        return self._ecc_array.pop(address & ~0x3, None)

    # ------------------------------------------------------------------ #
    # fault-injection hooks (architectural campaigns)                    #
    # ------------------------------------------------------------------ #
    def arm_fault(self, word_address: int, bit: int, at_access: int) -> ArmedFault:
        """Arm one single-event upset against this cache's data array.

        The upset lands immediately *before* the ``at_access``-th access
        (1-based, counted from this call), flipping ``bit`` of the
        stored codeword at ``word_address`` — but only if that word's
        line is resident at that moment; a flip landing on an invalid
        line (or on a physical location holding another tag) corrupts no
        live data and the returned record says so.  Only one fault can
        be armed at a time; re-arming replaces the previous fault.
        """
        if self.ecc_code is not None and not 0 <= bit < self.ecc_code.total_bits:
            raise ValueError(
                f"bit {bit} outside the {self.ecc_code.total_bits}-bit codeword"
            )
        armed = ArmedFault(
            word_address=word_address & ~0x3, bit=bit, at_access=at_access
        )
        self._armed_fault = armed
        self._accesses_since_arm = 0
        return armed

    def armed_fault(self) -> Optional[ArmedFault]:
        """The currently armed fault record (also after it triggered)."""
        return self._armed_fault

    def disarm_fault(self) -> None:
        self._armed_fault = None
        self._accesses_since_arm = 0

    def _trigger_fault(self, armed: ArmedFault) -> None:
        armed.triggered = True
        tag, set_index, _ = self.split_address(armed.word_address)
        for line in self._sets[set_index]:
            if line.valid and line.tag == tag:
                armed.resident = True
                armed.dirty = line.dirty
                break
        if armed.resident and armed.word_address in self._ecc_array:
            self._ecc_array[armed.word_address] ^= 1 << armed.bit
            armed.flipped = True
