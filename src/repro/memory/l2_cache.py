"""Shared L2 cache model.

The L2 is unified, SECDED-protected (per the paper's baseline platform)
and shared between the four cores of the NGMP.  Because the SECDED check
is folded into the already multi-cycle L2 access, the paper treats its
latency impact as negligible; we simply include it in ``hit_latency``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ecc.codec import EccCode
from repro.memory.cache import ArmedFault, SetAssociativeCache
from repro.memory.config import CacheConfig
from repro.memory.main_memory import MainMemory


class SharedL2Cache:
    """Unified second-level cache backed by main memory.

    When the co-simulation shares one instance between several cores the
    ``master`` argument attributes each access (and each miss) to the
    core that issued it, so inter-core storage interference can be
    quantified per task.
    """

    def __init__(
        self,
        config: CacheConfig,
        memory: MainMemory,
        *,
        hit_latency: int = 4,
        ecc_code: Optional[EccCode] = None,
    ) -> None:
        self.cache = SetAssociativeCache(config, ecc_code=ecc_code)
        self.memory = memory
        self.hit_latency = hit_latency
        self.accesses_by_master: Dict[int, int] = {}
        self.misses_by_master: Dict[int, int] = {}

    def access_cycles(
        self, address: int, *, is_write: bool = False, master: Optional[int] = None
    ) -> int:
        """Cycles spent in the L2 (and memory, on an L2 miss) for a request."""
        result = self.cache.access(address, is_write=is_write)
        cycles = self.hit_latency
        if master is not None:
            self.accesses_by_master[master] = self.accesses_by_master.get(master, 0) + 1
        if result.miss:
            if master is not None:
                self.misses_by_master[master] = self.misses_by_master.get(master, 0) + 1
            cycles += self.memory.access_cycles(address)
            if result.writeback and result.writeback_address is not None:
                # Dirty L2 victim: charge the memory write (no row reuse
                # credit for writes, conservatively).
                cycles += self.memory.access_latency // 2
        return cycles

    # ------------------------------------------------------------------ #
    # fault-injection hooks (architectural campaigns)                    #
    # ------------------------------------------------------------------ #
    def arm_fault(self, word_address: int, bit: int, at_access: int) -> ArmedFault:
        """Arm one single-event upset against the L2 data array.

        Delegates to the underlying
        :meth:`~repro.memory.cache.SetAssociativeCache.arm_fault`: the
        upset lands before the ``at_access``-th L2 access after arming,
        flipping a bit of an ECC-shadow codeword the caller has stored
        (``self.cache.ecc_store_word``).  This is the timing-hierarchy
        counterpart of the content-model path the campaign replay uses
        for L2 faults (:meth:`repro.campaign.replay.Dl1ContentModel.
        inject_l2_fault`); because the paper's L2 is SECDED-protected, a
        single flip here is always corrected on the next decode.
        """
        return self.cache.arm_fault(word_address, bit, at_access)

    def armed_fault(self) -> Optional[ArmedFault]:
        return self.cache.armed_fault()

    @property
    def stats(self):
        return self.cache.stats
