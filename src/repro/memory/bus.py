"""Shared-bus model with contention accounting.

The NGMP connects the four cores' private L1 caches to the shared L2
through a bus.  For single-core timing runs the bus only contributes its
fixed request/transfer latencies, but for the WCET experiments the other
cores are modelled as *contenders* that can delay every transaction:

* ``none`` — private bus behaviour (no interference);
* ``average`` — each transaction waits half of the worst-case round of
  competing transactions (an expected-case model);
* ``worst`` — each transaction waits a full round of competing
  transactions, which is the bound WCET analyses assume for a
  round-robin arbiter [Dasari 2011, reference [14] of the paper].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ContentionModel:
    """Interference added by other bus masters to each transaction."""

    contenders: int = 0
    slot_cycles: int = 6
    mode: str = "none"  # "none" | "average" | "worst"

    def delay(self) -> int:
        """Cycles of interference charged to one transaction."""
        if self.mode == "none" or self.contenders <= 0:
            return 0
        full_round = self.contenders * self.slot_cycles
        if self.mode == "worst":
            return full_round
        if self.mode == "average":
            return full_round // 2
        raise ValueError(f"unknown contention mode {self.mode!r}")


@dataclass
class BusStatistics:
    """Transaction counters and occupancy accounting."""

    transactions: int = 0
    busy_cycles: int = 0
    contention_cycles: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, duration: int, contention: int) -> None:
        self.transactions += 1
        self.busy_cycles += duration
        self.contention_cycles += contention
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1


class Bus:
    """A shared bus: fixed per-transaction latency plus contention."""

    def __init__(
        self,
        *,
        request_latency: int = 2,
        transfer_latency: int = 4,
        contention: ContentionModel | None = None,
    ) -> None:
        self.request_latency = request_latency
        self.transfer_latency = transfer_latency
        self.contention = contention or ContentionModel()
        self.stats = BusStatistics()

    def transaction_cycles(self, kind: str = "line") -> int:
        """Latency of one bus transaction including interference.

        ``kind`` is ``"line"`` for a cache-line transfer (miss fill or
        dirty write-back) and ``"word"`` for a single-word write-through
        store; the word case only pays the request plus one beat.
        """
        contention = self.contention.delay()
        if kind == "word":
            duration = self.request_latency + max(1, self.transfer_latency // 4)
        else:
            duration = self.request_latency + self.transfer_latency
        self.stats.record(kind, duration + contention, contention)
        return duration + contention

    def reset_statistics(self) -> None:
        self.stats = BusStatistics()
