"""Shared-bus model with contention accounting.

The NGMP connects the four cores' private L1 caches to the shared L2
through a bus.  For single-core timing runs the bus only contributes its
fixed request/transfer latencies, but for the WCET experiments the other
cores are modelled as *contenders* that can delay every transaction:

* ``none`` — private bus behaviour (no interference);
* ``average`` — each transaction waits half of the worst-case round of
  competing transactions (an expected-case model);
* ``worst`` — each transaction waits a full round of competing
  transactions, which is the bound WCET analyses assume for a
  round-robin arbiter [Dasari 2011, reference [14] of the paper].

For the cycle-level multicore co-simulation (:mod:`repro.soc.cosim`)
the analytic :class:`ContentionModel` is replaced by an actual
:class:`RoundRobinArbiter` shared by the per-core buses: every
transaction then waits for the *observed* bus occupancy of the other
cores rather than an assumed round, subject to the same physical
guarantee the analytic bound encodes (a work-conserving round-robin
arbiter never delays one request by more than one full round of the
other masters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


#: The interference accountings :class:`ContentionModel` understands.
CONTENTION_MODES = ("none", "average", "worst")


@dataclass
class ContentionModel:
    """Interference added by other bus masters to each transaction."""

    contenders: int = 0
    slot_cycles: int = 6
    mode: str = "none"  # "none" | "average" | "worst"

    def __post_init__(self) -> None:
        # Validate eagerly: delay() used to accept any mode whenever
        # contenders <= 0, so a typo like mode="wrost" was silently a
        # no-contention model on isolation configs.
        if self.mode not in CONTENTION_MODES:
            raise ValueError(
                f"unknown contention mode {self.mode!r}; "
                f"expected one of {CONTENTION_MODES}"
            )

    def delay(self) -> int:
        """Cycles of interference charged to one transaction."""
        if self.mode == "none" or self.contenders <= 0:
            return 0
        full_round = self.contenders * self.slot_cycles
        if self.mode == "worst":
            return full_round
        if self.mode == "average":
            return full_round // 2
        raise ValueError(f"unknown contention mode {self.mode!r}")


@dataclass
class ArbiterStatistics:
    """Observed behaviour of the shared round-robin arbiter."""

    grants: int = 0
    wait_cycles: int = 0
    capped_waits: int = 0

    @property
    def average_wait(self) -> float:
        return self.wait_cycles / self.grants if self.grants else 0.0


class RoundRobinArbiter:
    """Cycle-level shared-bus arbiter for the multicore co-simulation.

    Requests arrive as ``(master, cycle, duration)`` and are serialised
    on the single bus: a request issued while the bus is busy waits until
    the in-flight transaction completes.  The wait charged to any single
    request is clamped to one full round of the *other* masters
    (``(masters - 1) * slot_cycles``) — the defining guarantee of a
    work-conserving round-robin arbiter, and exactly the per-transaction
    bound the analytic ``worst`` contention mode charges [Dasari 2011].
    The clamp also absorbs the small out-of-order arrival skew the
    lockstep scheduler can introduce between cores.

    Grant order is **first-come-first-served with that clamp**: requests
    are granted in the order :meth:`acquire` is called, regardless of
    which master issues them — the lockstep scheduler already steps the
    cores in a fixed order, so same-cycle requests arrive (and are
    granted) in core order.  The arbiter keeps no slot pointer or
    last-granted-master state; the round-robin *bound* is what it
    enforces, not a slot schedule.
    """

    def __init__(self, *, masters: int = 4, slot_cycles: int = 6) -> None:
        if masters < 1:
            raise ValueError("the arbiter needs at least one master")
        self.masters = masters
        self.slot_cycles = slot_cycles
        self.busy_until = 0
        self.stats = ArbiterStatistics()

    @property
    def max_wait(self) -> int:
        """Worst-case wait of one request: a full round of the others."""
        return (self.masters - 1) * self.slot_cycles

    def acquire(self, master: int, cycle: int, duration: int) -> int:
        """Grant the bus to ``master`` for ``duration`` cycles.

        Returns the wait (in cycles) between the request at ``cycle`` and
        the grant.  Guaranteed to satisfy ``0 <= wait <= max_wait``.
        """
        start = self.busy_until if self.busy_until > cycle else cycle
        bound = self.max_wait
        if start - cycle > bound:
            start = cycle + bound
            self.stats.capped_waits += 1
        wait = start - cycle
        end = start + duration
        if end > self.busy_until:
            self.busy_until = end
        self.stats.grants += 1
        self.stats.wait_cycles += wait
        return wait

    def reset(self) -> None:
        self.busy_until = 0
        self.stats = ArbiterStatistics()


@dataclass
class BusStatistics:
    """Transaction counters and occupancy accounting."""

    transactions: int = 0
    busy_cycles: int = 0
    contention_cycles: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, duration: int, contention: int) -> None:
        self.transactions += 1
        self.busy_cycles += duration
        self.contention_cycles += contention
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1


class Bus:
    """A shared bus: fixed per-transaction latency plus contention.

    Interference comes from one of two sources:

    * the analytic :class:`ContentionModel` (single-core WCET runs) — a
      fixed per-transaction charge independent of time, or
    * a shared :class:`RoundRobinArbiter` (multicore co-simulation) —
      the *observed* wait at the cycle the transaction is issued.  The
      arbiter is only consulted when the caller supplies the issue
      ``cycle``; time-agnostic callers (the fast-path single-core
      engine) keep the analytic behaviour unchanged.
    """

    def __init__(
        self,
        *,
        request_latency: int = 2,
        transfer_latency: int = 4,
        contention: ContentionModel | None = None,
        arbiter: RoundRobinArbiter | None = None,
        master_id: int = 0,
    ) -> None:
        self.request_latency = request_latency
        self.transfer_latency = transfer_latency
        self.contention = contention or ContentionModel()
        self.arbiter = arbiter
        self.master_id = master_id
        self.stats = BusStatistics()

    def transaction_cycles(self, kind: str = "line", *, cycle: Optional[int] = None) -> int:
        """Latency of one bus transaction including interference.

        ``kind`` is ``"line"`` for a cache-line transfer (miss fill or
        dirty write-back) and ``"word"`` for a single-word write-through
        store; the word case only pays the request plus one beat.
        ``cycle`` is the issue cycle; it is required for arbiter-backed
        (co-simulated) buses and ignored otherwise.
        """
        if kind == "word":
            duration = self.request_latency + max(1, self.transfer_latency // 4)
        else:
            duration = self.request_latency + self.transfer_latency
        if self.arbiter is not None and cycle is not None:
            contention = self.arbiter.acquire(self.master_id, cycle, duration)
        else:
            contention = self.contention.delay()
        self.stats.record(kind, duration + contention, contention)
        return duration + contention

    def reset_statistics(self) -> None:
        self.stats = BusStatistics()
