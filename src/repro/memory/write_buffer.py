"""Store/write buffer model.

The NGMP memory stage holds stores in a write buffer until they can
access the DL1 (or, for a write-through DL1, until they have been pushed
to the L2 over the bus).  Two behaviours from the paper matter for
timing and are reproduced here:

* loads stall in the memory stage until the write buffer is *empty*
  (the simple consistency rule the NGMP uses);
* when a store finds the buffer full, the pipeline stalls with
  back-pressure until the buffer has *completely* drained.

The buffer is modelled as a queue of drain-completion times, which is
sufficient because the timing pipeline processes instructions in order
and time is monotonic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class WriteBufferStatistics:
    stores_buffered: int = 0
    full_stalls: int = 0
    full_stall_cycles: int = 0
    load_drain_stall_cycles: int = 0

    def as_dict(self):
        return {
            "stores_buffered": self.stores_buffered,
            "full_stalls": self.full_stalls,
            "full_stall_cycles": self.full_stall_cycles,
            "load_drain_stall_cycles": self.load_drain_stall_cycles,
        }


@dataclass
class WriteBuffer:
    """A fixed-capacity store buffer with sequential drain."""

    capacity: int = 4
    _completions: List[int] = field(default_factory=list)
    stats: WriteBufferStatistics = field(default_factory=WriteBufferStatistics)

    def _expire(self, cycle: int) -> None:
        self._completions = [c for c in self._completions if c > cycle]

    def occupancy(self, cycle: int) -> int:
        """Entries still draining at ``cycle``."""
        self._expire(cycle)
        return len(self._completions)

    def empty_at(self, cycle: int) -> bool:
        return self.occupancy(cycle) == 0

    def drain_complete_time(self, cycle: int) -> int:
        """Cycle at which the buffer becomes empty (>= ``cycle``)."""
        self._expire(cycle)
        if not self._completions:
            return cycle
        return max(self._completions)

    def push(self, cycle: int, drain_latency: int, capacity: Optional[int] = None) -> int:
        """Insert a store at ``cycle``; return the cycle the store's memory
        stage can complete (after any full-buffer back-pressure stall).

        ``drain_latency`` is the time this entry needs once it reaches the
        head of the buffer: a DL1 write for a write-back cache, or a bus +
        L2 transaction for a write-through cache (plus any miss handling
        charged by the hierarchy).

        ``capacity`` optionally overrides :attr:`capacity` for this push
        only.  The timing pipeline passes its configured entry count here
        instead of mutating the (potentially shared) buffer object.
        """
        if capacity is None:
            capacity = self.capacity
        self._expire(cycle)
        stalled_until = cycle
        if len(self._completions) >= capacity:
            # Back-pressure: wait until the buffer fully drains.
            stalled_until = max(self._completions)
            self.stats.full_stalls += 1
            self.stats.full_stall_cycles += stalled_until - cycle
            self._completions = []
        start = max(stalled_until, self._completions[-1] if self._completions else 0)
        self._completions.append(start + drain_latency)
        self.stats.stores_buffered += 1
        return stalled_until

    def record_load_wait(self, waited_cycles: int) -> None:
        if waited_cycles > 0:
            self.stats.load_drain_stall_cycles += waited_cycles

    def reset(self) -> None:
        self._completions = []
        self.stats = WriteBufferStatistics()
