"""Cache and memory-hierarchy timing models.

The hierarchy mirrors the NGMP organisation used in the paper's
evaluation: each core has private L1 instruction and data caches; all
cores share a bus to a unified L2; the L2 connects to off-chip memory.
Only *timing* is modelled here — architectural data values live in the
functional simulator — but the DL1 optionally keeps an ECC-encoded
shadow of stored words so the fault-injection experiments can corrupt
and decode real cache contents.
"""

from repro.memory.bus import CONTENTION_MODES, Bus, ContentionModel
from repro.memory.cache import CacheAccessResult, SetAssociativeCache
from repro.memory.config import (
    CacheConfig,
    MemoryHierarchyConfig,
    ReplacementPolicy,
    WritePolicy,
)
from repro.memory.hierarchy import DataAccessOutcome, MemoryHierarchy
from repro.memory.l2_cache import SharedL2Cache
from repro.memory.main_memory import MainMemory
from repro.memory.write_buffer import WriteBuffer

__all__ = [
    "Bus",
    "CONTENTION_MODES",
    "CacheAccessResult",
    "CacheConfig",
    "ContentionModel",
    "DataAccessOutcome",
    "MainMemory",
    "MemoryHierarchy",
    "MemoryHierarchyConfig",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "SharedL2Cache",
    "WriteBuffer",
    "WritePolicy",
]
