"""Per-worker shard stores and their idempotent merge.

A pooled batched campaign has many workers finishing group jobs
concurrently; funnelling every payload back through the campaign
process into one SQLite writer serialises persistence on a single
connection — and, on slow or networked filesystems, breeds the
``database is locked`` retry path.  Sharding removes the single-writer
bottleneck: each pool worker appends its finished rows to its **own**
shard file — ``<canonical>.shards/shard-<pid>.sqlite``, the same
schema as the canonical :class:`~repro.store.ResultStore` — and the
campaign process **merges** shards into the canonical store with
``INSERT OR IGNORE`` at every batch-flush boundary.

The merge protocol leans entirely on content addressing:

* rows are keyed by the spec hash and their payloads are
  deterministic, so merging a shard twice, merging shards in any
  order, or merging a stale shard left behind by a killed run all
  converge to the same canonical bytes (``INSERT OR IGNORE`` keeps the
  first — identical — payload);
* a per-shard **rowid high-water mark** makes repeated merges
  incremental (each scan only reads rows appended since the previous
  merge), but it is an optimisation, never load-bearing for
  correctness — a merger with no memory of a shard simply re-reads it;
* shard rows carry the same payload checksum the canonical store
  writes; a torn shard row is skipped at merge (and counted), so a
  crashed worker can never poison the canonical store.

Orphan recovery: the campaign engine merges whatever shards exist
*before* its first resume lookup, so rows persisted by workers of a
killed run (``kill-main`` chaos, OOM, power loss) are found by resume
exactly as if the canonical store had been written directly.
"""

from __future__ import annotations

import os
import pathlib
import sqlite3
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.store.result_store import ResultStore, payload_checksum
from repro.telemetry import metrics as _metrics

#: Filename prefix of one worker's shard inside the shard directory.
SHARD_PREFIX = "shard-"
SHARD_SUFFIX = ".sqlite"


def shard_directory(canonical_path: Union[str, pathlib.Path]) -> pathlib.Path:
    """The shard directory of a canonical store: ``<path>.shards/``."""
    return pathlib.Path(str(canonical_path) + ".shards")


def shard_path(
    canonical_path: Union[str, pathlib.Path], worker_id: Optional[int] = None
) -> pathlib.Path:
    """This worker's shard file (keyed by pid unless ``worker_id`` given)."""
    if worker_id is None:
        worker_id = os.getpid()
    return shard_directory(canonical_path) / (
        f"{SHARD_PREFIX}{worker_id}{SHARD_SUFFIX}"
    )


def list_shards(canonical_path: Union[str, pathlib.Path]) -> List[pathlib.Path]:
    """All shard files of a canonical store, in deterministic name order
    (the merge result is order-independent; the order is for tests)."""
    directory = shard_directory(canonical_path)
    if not directory.is_dir():
        return []
    return sorted(directory.glob(f"{SHARD_PREFIX}*{SHARD_SUFFIX}"))


# --------------------------------------------------------------------- #
# worker side: the per-process shard writer                             #
# --------------------------------------------------------------------- #

#: Per-process cache of open shard writers, keyed by canonical path —
#: warm pool workers keep one connection per campaign store instead of
#: re-opening (and re-journalling) a SQLite file per group job.
_WRITERS: Dict[str, ResultStore] = {}


def shard_writer(canonical_path: Union[str, pathlib.Path]) -> ResultStore:
    """This process's shard store for ``canonical_path`` (cached).

    The shard is a plain :class:`ResultStore` — same schema, same
    checksummed rows — living at ``<canonical>.shards/shard-<pid>.sqlite``.
    Nothing but this process ever writes it, so shard writes never
    contend on a lock.
    """
    cache_key = str(canonical_path)
    writer = _WRITERS.get(cache_key)
    if writer is not None and not writer.closed:
        return writer
    path = shard_path(canonical_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    writer = ResultStore(path)
    _WRITERS[cache_key] = writer
    return writer


def close_shard_writers() -> None:
    """Close every cached shard writer (test teardown / worker exit)."""
    while _WRITERS:
        _, writer = _WRITERS.popitem()
        writer.close()


# --------------------------------------------------------------------- #
# engine side: the incremental merger                                   #
# --------------------------------------------------------------------- #


def _read_shard_rows(
    path: pathlib.Path, high_water: int
) -> Tuple[int, List[Tuple[str, str, str, str, str]], int]:
    """Rows of one shard past ``high_water``, checksum-filtered.

    Returns ``(new_high_water, rows, corrupt_skipped)``; the rows are
    full ``(key, kind, spec, payload, checksum)`` tuples ready for
    :meth:`ResultStore.merge_rows`.  A shard that cannot be opened or
    read (still warming up, torn header) contributes nothing this
    round and keeps its high-water mark — the next merge retries it.
    """
    rows: List[Tuple[str, str, str, str, str]] = []
    corrupt = 0
    new_high = high_water
    try:
        connection = sqlite3.connect(path)
    except sqlite3.Error:
        return high_water, rows, corrupt
    try:
        cursor = connection.execute(
            "SELECT rowid, key, kind, spec, payload, checksum FROM results "
            "WHERE rowid > ? ORDER BY rowid",
            (high_water,),
        )
        for rowid, key, kind, spec, payload_text, checksum in cursor:
            new_high = max(new_high, rowid)
            if checksum and payload_checksum(payload_text) != checksum:
                corrupt += 1
                continue
            rows.append((key, kind, spec, payload_text, checksum))
    except sqlite3.Error:
        return high_water, [], corrupt
    finally:
        connection.close()
    return new_high, rows, corrupt


class ShardMerger:
    """Folds worker shards into a canonical store, incrementally.

    One merger per campaign.  :meth:`merge` scans every shard file
    currently present, reads only rows past each shard's high-water
    mark, verifies their checksums, and lands survivors in one
    ``INSERT OR IGNORE`` transaction on the canonical store.  Calling
    it at every batch-flush boundary makes the canonical store's
    on-disk state a superset of what the single-writer path would have
    checkpointed — so SIGINT/resume stays byte-identical.
    """

    def __init__(self, store: ResultStore) -> None:
        self.store = store
        self._high_water: Dict[str, int] = {}
        #: Lifetime row/corruption counters (mirrored into metrics).
        self.rows_merged = 0
        self.corrupt_skipped = 0

    @property
    def active(self) -> bool:
        """Whether the canonical store can have shards at all."""
        return self.store.path != ":memory:"

    def merge(self) -> int:
        """Fold all current shard rows in; returns rows newly scanned."""
        if not self.active:
            return 0
        shards = list_shards(self.store.path)
        if not shards:
            return 0
        merged = 0
        with _metrics.phase_timer("merge"):
            for path in shards:
                cache_key = str(path)
                high, rows, corrupt = _read_shard_rows(
                    path, self._high_water.get(cache_key, 0)
                )
                self._high_water[cache_key] = high
                if corrupt:
                    self.corrupt_skipped += corrupt
                    _metrics.inc("store_shard_corrupt_skipped_total", corrupt)
                if rows:
                    self.store.merge_rows(rows)
                    merged += len(rows)
            if merged:
                self.rows_merged += merged
                _metrics.inc("store_shard_rows_merged_total", merged)
            _metrics.inc("store_shard_merges_total")
        return merged

    def discard_shards(self) -> int:
        """Delete fully merged shard files (and the directory when empty).

        Call only after a final :meth:`merge` with no writers left —
        the campaign engine does this once the pool has shut down.
        Returns the number of shard files removed.
        """
        if not self.active:
            return 0
        removed = 0
        for path in list_shards(self.store.path):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
            self._high_water.pop(str(path), None)
            # WAL side-files of a cleanly closed shard are gone already;
            # sweep any a killed worker left behind.
            for suffix in ("-wal", "-shm"):
                side = pathlib.Path(str(path) + suffix)
                if side.exists():
                    try:
                        side.unlink()
                    except OSError:
                        pass
        directory = shard_directory(self.store.path)
        try:
            directory.rmdir()
        except OSError:
            pass
        return removed


def merge_shards(
    store: ResultStore, shard_paths: Iterable[Union[str, pathlib.Path]]
) -> int:
    """One-shot merge of explicit shard files (the CLI entry point).

    Unlike :class:`ShardMerger` this takes the shard list from the
    caller, so detached shards (copied from another machine, recovered
    from a crashed run's directory) can be folded into any canonical
    store.  Returns the number of rows actually inserted
    (already-present keys don't count), so re-merging reports 0.
    """
    merged = 0
    for path in shard_paths:
        _high, rows, _corrupt = _read_shard_rows(pathlib.Path(path), 0)
        if rows:
            merged += store.merge_rows(rows)
    return merged
