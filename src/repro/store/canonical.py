"""Canonical serialisation of :class:`SimulationSpec`.

The result store is content addressed: a result's key is the SHA-256 of
the canonical JSON form of the spec that produced it.  Canonical means

* every field is reduced to plain JSON scalars (enums to their values,
  the policy to its kind string — an :class:`EccPolicy` instance, its
  kind and its name string all canonicalise identically);
* nested configs are emitted as sorted-key objects;
* the encoding carries a schema version so future spec fields can be
  added without silently aliasing old keys.

``spec_from_canonical`` inverts the encoding, and round-tripping any
spec built from :mod:`repro.scenarios.registry` returns an equal spec
with the same hash — the property the store's correctness rests on
(tested for every registered scenario).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Union

from repro.core.policies import EccPolicy, EccPolicyKind, make_policy
from repro.memory.config import (
    CacheConfig,
    MemoryHierarchyConfig,
    ReplacementPolicy,
    WritePolicy,
)
from repro.pipeline.config import PipelineConfig
from repro.scenarios.interference import InterferenceScenario
from repro.scenarios.spec import FaultSpec, SimulationSpec

#: Bump when the canonical encoding changes shape (old keys then simply
#: miss, which is safe — the store never aliases across versions).
SCHEMA_VERSION = 1


# ---------------------------------------------------------------------- #
# encoding                                                               #
# ---------------------------------------------------------------------- #
def _cache_config_dict(config: CacheConfig) -> Dict[str, Any]:
    return {
        "size_bytes": config.size_bytes,
        "line_bytes": config.line_bytes,
        "ways": config.ways,
        "replacement": config.replacement.value,
        "write_policy": config.write_policy.value,
        "write_allocate": config.write_allocate,
        "name": config.name,
    }


def _hierarchy_dict(config: MemoryHierarchyConfig) -> Dict[str, Any]:
    return {
        "l1d": _cache_config_dict(config.l1d),
        "l1i": _cache_config_dict(config.l1i),
        "l2": _cache_config_dict(config.l2),
        "l2_hit_latency": config.l2_hit_latency,
        "bus_request_latency": config.bus_request_latency,
        "bus_transfer_latency": config.bus_transfer_latency,
        "memory_latency": config.memory_latency,
        "store_through_latency": config.store_through_latency,
        "bus_contenders": config.bus_contenders,
        "bus_contention_mode": config.bus_contention_mode,
        "bus_slot_cycles": config.bus_slot_cycles,
    }


def _pipeline_dict(config: PipelineConfig) -> Dict[str, Any]:
    return {
        "taken_branch_penalty": config.taken_branch_penalty,
        "indirect_branch_penalty": config.indirect_branch_penalty,
        "mul_latency": config.mul_latency,
        "div_latency": config.div_latency,
        "write_buffer_entries": config.write_buffer_entries,
        "chronogram_window": config.chronogram_window,
    }


def canonical_policy_value(policy: Union[str, EccPolicyKind, EccPolicy]) -> str:
    """Normalise any accepted policy form to its kind value string."""
    return make_policy(policy).kind.value


def canonical_dict(spec: SimulationSpec) -> Dict[str, Any]:
    """The canonical JSON-safe form of ``spec``."""
    interference: Optional[Dict[str, Any]] = None
    if spec.interference is not None:
        interference = {
            "name": spec.interference.name,
            "contenders": spec.interference.contenders,
            "mode": spec.interference.mode,
        }
    fault: Optional[Dict[str, Any]] = None
    if spec.fault is not None:
        fault = {
            "target": spec.fault.target,
            "word_address": spec.fault.word_address,
            "bit": spec.fault.bit,
            "at_access": spec.fault.at_access,
        }
        if spec.fault.target == "l2":
            # The outcome of an L2-targeted point depends on the L2
            # protection, which is derived from the policy (SECDED for
            # protected deployments, bare words for the unprotected
            # baseline).  Schema v1 assumed an always-SECDED L2, so the
            # code is encoded only when it deviates from that
            # assumption: every historical key stays stable, while
            # points whose semantics changed (no-ecc × l2) hash afresh
            # instead of resuming stale stored outcomes.
            from repro.campaign.replay import l2_code_for_policy

            code = l2_code_for_policy(make_policy(spec.policy))
            if code.name != "secded":
                fault["l2_code"] = code.name
    return {
        "v": SCHEMA_VERSION,
        "kernel": spec.kernel,
        "scale": spec.scale,
        "policy": canonical_policy_value(spec.policy),
        "pipeline": _pipeline_dict(spec.pipeline),
        "hierarchy": _hierarchy_dict(spec.hierarchy),
        "interference": interference,
        "core_index": spec.core_index,
        "chronogram_window": spec.chronogram_window,
        "max_instructions": spec.max_instructions,
        "fault": fault,
    }


def canonical_json(spec: SimulationSpec) -> str:
    """Canonical JSON text: sorted keys, no whitespace."""
    return json.dumps(canonical_dict(spec), sort_keys=True, separators=(",", ":"))


def spec_hash(spec: SimulationSpec) -> str:
    """Content hash of ``spec`` — the result store's primary key."""
    return hashlib.sha256(canonical_json(spec).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------- #
# decoding                                                               #
# ---------------------------------------------------------------------- #
def _cache_config_from(payload: Dict[str, Any]) -> CacheConfig:
    return CacheConfig(
        size_bytes=payload["size_bytes"],
        line_bytes=payload["line_bytes"],
        ways=payload["ways"],
        replacement=ReplacementPolicy(payload["replacement"]),
        write_policy=WritePolicy(payload["write_policy"]),
        write_allocate=payload["write_allocate"],
        name=payload["name"],
    )


def spec_from_canonical(payload: Union[str, Dict[str, Any]]) -> SimulationSpec:
    """Rebuild a :class:`SimulationSpec` from its canonical form."""
    if isinstance(payload, str):
        payload = json.loads(payload)
    version = payload.get("v")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"canonical spec schema {version!r} not supported "
            f"(expected {SCHEMA_VERSION})"
        )
    interference = None
    if payload["interference"] is not None:
        raw = payload["interference"]
        interference = InterferenceScenario(
            name=raw["name"], contenders=raw["contenders"], mode=raw["mode"]
        )
    fault = None
    if payload["fault"] is not None:
        raw = payload["fault"]
        fault = FaultSpec(
            target=raw["target"],
            word_address=raw["word_address"],
            bit=raw["bit"],
            at_access=raw["at_access"],
        )
    hierarchy_raw = payload["hierarchy"]
    hierarchy = MemoryHierarchyConfig(
        l1d=_cache_config_from(hierarchy_raw["l1d"]),
        l1i=_cache_config_from(hierarchy_raw["l1i"]),
        l2=_cache_config_from(hierarchy_raw["l2"]),
        l2_hit_latency=hierarchy_raw["l2_hit_latency"],
        bus_request_latency=hierarchy_raw["bus_request_latency"],
        bus_transfer_latency=hierarchy_raw["bus_transfer_latency"],
        memory_latency=hierarchy_raw["memory_latency"],
        store_through_latency=hierarchy_raw["store_through_latency"],
        bus_contenders=hierarchy_raw["bus_contenders"],
        bus_contention_mode=hierarchy_raw["bus_contention_mode"],
        bus_slot_cycles=hierarchy_raw["bus_slot_cycles"],
    )
    pipeline_raw = payload["pipeline"]
    pipeline = PipelineConfig(
        taken_branch_penalty=pipeline_raw["taken_branch_penalty"],
        indirect_branch_penalty=pipeline_raw["indirect_branch_penalty"],
        mul_latency=pipeline_raw["mul_latency"],
        div_latency=pipeline_raw["div_latency"],
        write_buffer_entries=pipeline_raw["write_buffer_entries"],
        chronogram_window=pipeline_raw["chronogram_window"],
    )
    return SimulationSpec(
        kernel=payload["kernel"],
        scale=payload["scale"],
        policy=EccPolicyKind(payload["policy"]),
        pipeline=pipeline,
        hierarchy=hierarchy,
        interference=interference,
        core_index=payload["core_index"],
        chronogram_window=payload["chronogram_window"],
        max_instructions=payload["max_instructions"],
        fault=fault,
    )
