"""Content-addressed, persistent result store.

Results are keyed by the SHA-256 of the canonical JSON form of the
:class:`~repro.scenarios.spec.SimulationSpec` that produced them — a
pure content address, so identical work is never repeated across
processes, campaign restarts or machines sharing a store file.

* :mod:`repro.store.canonical` — canonical spec encoding, hashing and
  the inverse (round-trip is tested for every registered scenario).
* :mod:`repro.store.result_store` — the SQLite-backed key/JSON store
  with hit/miss accounting.
* :mod:`repro.store.serialize` — lossless timing-result payloads for
  the :func:`repro.simulation.simulate_spec` / experiment-runner cache.
"""

from repro.store.canonical import (
    SCHEMA_VERSION,
    canonical_dict,
    canonical_json,
    canonical_policy_value,
    spec_from_canonical,
    spec_hash,
)
from repro.store.result_store import (
    STORE_SCHEMA_VERSION,
    ResultStore,
    StoreHealthReport,
    payload_checksum,
    with_lock_retry,
)
from repro.store.serialize import (
    cacheable,
    payload_from_result,
    result_from_payload,
    store_timing_result,
)
from repro.store.sharding import (
    ShardMerger,
    list_shards,
    merge_shards,
    shard_directory,
    shard_path,
    shard_writer,
)

__all__ = [
    "SCHEMA_VERSION",
    "STORE_SCHEMA_VERSION",
    "ResultStore",
    "ShardMerger",
    "StoreHealthReport",
    "cacheable",
    "payload_checksum",
    "with_lock_retry",
    "canonical_dict",
    "canonical_json",
    "canonical_policy_value",
    "list_shards",
    "merge_shards",
    "payload_from_result",
    "result_from_payload",
    "shard_directory",
    "shard_path",
    "shard_writer",
    "spec_from_canonical",
    "spec_hash",
    "store_timing_result",
]
