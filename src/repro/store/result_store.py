"""Persistent, content-addressed, self-verifying result store.

One SQLite file holds one table of JSON payloads keyed by the canonical
spec hash (:func:`repro.store.canonical.spec_hash`).  The store is the
substrate for two features:

* **campaign checkpoint / resume** — every finished injection point is
  written under its spec hash, so a re-run only simulates missing
  points;
* an **opt-in cross-process result cache** for
  :func:`repro.simulation.simulate_spec` / the experiment runner —
  timing results keyed the same way survive process boundaries (unlike
  the in-memory kernel-trace cache).

SQLite keeps the implementation dependency-free, transactional and safe
for one writer + many readers; each process opens its own connection.

Because a poisoned store silently poisons every future ``--resume``,
the store defends itself:

* every row carries a **payload checksum** (truncated SHA-256) written
  with the payload and checked on every read — a torn or bit-corrupted
  row is *dropped on read* (counted in :attr:`corrupt_dropped`) and
  reported as a miss, so the resume path transparently re-simulates it;
* :meth:`verify` scans the whole file without modifying it and
  :meth:`repair` drops corrupt rows / backfills legacy checksums;
* writes retry with exponential backoff when ``database is locked``
  outlives ``busy_timeout`` (competing writers on network filesystems);
* the file is stamped with a **store schema version**; opening a file
  written by a *newer* layout raises
  :class:`~repro.campaign.errors.StoreCorruption` instead of guessing;
  older (v1) files are migrated in place, their rows kept as
  legacy-unchecksummed until :meth:`repair` backfills them;
* a **quarantine table** records points the campaign supervisor gave up
  on, with their structured error payloads;
* :meth:`close` is idempotent and exception-safe, so no teardown path
  leaks a WAL handle.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import pathlib
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.telemetry import metrics as _metrics

#: Version of the *file layout* (tables/columns), independent of the
#: canonical spec-encoding version (``repro.store.canonical``).  v1 had
#: no checksum column, meta table or quarantine table.
STORE_SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key      TEXT PRIMARY KEY,
    kind     TEXT NOT NULL DEFAULT '',
    spec     TEXT NOT NULL DEFAULT '',
    payload  TEXT NOT NULL,
    checksum TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS results_kind ON results (kind);
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantine (
    key   TEXT PRIMARY KEY,
    spec  TEXT NOT NULL DEFAULT '',
    error TEXT NOT NULL
);
"""

#: ``database is locked`` retry schedule (seconds) used once SQLite's
#: own ``busy_timeout`` has been exhausted.
_LOCK_RETRIES = 5
_LOCK_BASE_DELAY = 0.05


def payload_checksum(payload_text: str) -> str:
    """Truncated SHA-256 of the stored payload text (16 hex chars)."""
    return hashlib.sha256(payload_text.encode("utf-8")).hexdigest()[:16]


def _is_locked_error(error: BaseException) -> bool:
    return isinstance(error, sqlite3.OperationalError) and "locked" in str(error)


def with_lock_retry(
    operation: Callable[[], object],
    *,
    retries: int = _LOCK_RETRIES,
    base_delay: float = _LOCK_BASE_DELAY,
    sleep: Callable[[float], None] = time.sleep,
):
    """Run ``operation``, retrying with exponential backoff while SQLite
    reports ``database is locked`` (beyond the connection's own
    ``busy_timeout``).  Any other error propagates immediately."""
    attempt = 0
    while True:
        try:
            return operation()
        except sqlite3.OperationalError as error:
            if not _is_locked_error(error) or attempt >= retries:
                raise
            _metrics.inc("store_lock_retries_total")
            sleep(base_delay * (2 ** attempt))
            attempt += 1


@dataclass
class StoreHealthReport:
    """The outcome of one :meth:`ResultStore.verify`/``repair`` scan."""

    total: int = 0
    intact: int = 0
    #: Keys whose checksum (or JSON) no longer matches their payload.
    corrupt: List[str] = field(default_factory=list)
    #: Keys written by a pre-checksum (v1) store, not yet backfilled.
    legacy: List[str] = field(default_factory=list)
    #: Keys dropped / backfilled by ``repair`` (empty after ``verify``).
    dropped: List[str] = field(default_factory=list)
    backfilled: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.corrupt

    def describe(self) -> str:
        text = (
            f"{self.total} rows: {self.intact} intact, "
            f"{len(self.corrupt)} corrupt, {len(self.legacy)} legacy"
        )
        if self.dropped or self.backfilled:
            text += (
                f"; repaired ({len(self.dropped)} dropped, "
                f"{len(self.backfilled)} checksums backfilled)"
            )
        return text


class ResultStore:
    """Content-addressed JSON result store backed by SQLite.

    ``path`` may be a filesystem path or ``":memory:"`` for an ephemeral
    store (useful in tests).  The store counts its ``hits`` and
    ``misses`` (lookups that found / did not find a payload) plus
    ``corrupt_dropped`` (rows a read rejected and deleted because their
    checksum lied) so callers can assert resume behaviour.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = str(path)
        self._closed = True  # true until the connection is live
        if self.path != ":memory:":
            parent = pathlib.Path(self.path).resolve().parent
            parent.mkdir(parents=True, exist_ok=True)
        self._connection = sqlite3.connect(self.path)
        self._closed = False
        try:
            # Concurrent campaigns sharing one store file: WAL lets
            # readers proceed during a write, and the busy timeout makes
            # competing writers queue instead of raising "database is
            # locked".  (":memory:" silently ignores the WAL request.)
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute("PRAGMA busy_timeout=30000")
            self._migrate()
        except BaseException:
            # Never leak a half-opened WAL handle from a failed open.
            self.close()
            raise
        self.hits = 0
        self.misses = 0
        self.corrupt_dropped = 0

    def _migrate(self) -> None:
        """Create or upgrade the file layout in place (v1 -> v2)."""
        from repro.campaign.errors import StoreCorruption

        has_results = self._connection.execute(
            "SELECT 1 FROM sqlite_master WHERE type='table' AND name='results'"
        ).fetchone()
        if has_results:
            columns = {
                row[1]
                for row in self._connection.execute("PRAGMA table_info(results)")
            }
            if "checksum" not in columns:
                # A v1 file: add the checksum column; existing rows stay
                # legacy (empty checksum) until repair() backfills them.
                self._connection.execute(
                    "ALTER TABLE results ADD COLUMN checksum TEXT NOT NULL DEFAULT ''"
                )
        self._connection.executescript(_SCHEMA)
        row = self._connection.execute(
            "SELECT value FROM store_meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is not None and int(row[0]) > STORE_SCHEMA_VERSION:
            version = int(row[0])
            self._connection.commit()
            raise StoreCorruption(
                f"store {self.path!r} uses schema v{version}, newer than "
                f"this build's v{STORE_SCHEMA_VERSION}",
                path=self.path,
                found_version=version,
                supported_version=STORE_SCHEMA_VERSION,
            )
        self._connection.execute(
            "INSERT OR REPLACE INTO store_meta (key, value) VALUES "
            "('schema_version', ?)",
            (str(STORE_SCHEMA_VERSION),),
        )
        self._connection.commit()

    @property
    def schema_version(self) -> int:
        row = self._connection.execute(
            "SELECT value FROM store_meta WHERE key = 'schema_version'"
        ).fetchone()
        return int(row[0]) if row is not None else 1

    # ------------------------------------------------------------------ #
    # core mapping interface                                             #
    # ------------------------------------------------------------------ #
    @contextlib.contextmanager
    def _published_lookup(self):
        """Publish one lookup's latency and hit/miss deltas as metrics."""
        hits, misses = self.hits, self.misses
        started = time.perf_counter()
        try:
            yield
        finally:
            _metrics.observe("store_lookup_seconds", time.perf_counter() - started)
            gained_hits = self.hits - hits
            gained_misses = self.misses - misses
            if gained_hits:
                _metrics.inc(
                    "store_lookups_total", gained_hits, labels={"result": "hit"}
                )
            if gained_misses:
                _metrics.inc(
                    "store_lookups_total", gained_misses, labels={"result": "miss"}
                )

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored payload for ``key``, or None (counted as hit/miss).

        A row whose checksum or JSON no longer matches its payload is a
        lie, not a result: the row is deleted (``corrupt_dropped``) and
        the lookup reported as a miss, so resume re-simulates the point
        instead of trusting torn data.  Legacy (pre-checksum) rows are
        still JSON-validated.
        """
        with self._published_lookup():
            return self._get(key)

    def _get(self, key: str) -> Optional[Dict[str, object]]:
        row = self._connection.execute(
            "SELECT payload, checksum FROM results WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            self.misses += 1
            return None
        payload_text, checksum = row
        if checksum and payload_checksum(payload_text) != checksum:
            self._drop_corrupt(key)
            self.misses += 1
            return None
        try:
            payload = json.loads(payload_text)
        except ValueError:
            self._drop_corrupt(key)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def get_many(self, keys: List[str]) -> Dict[str, Dict[str, object]]:
        """Resolve many keys in one query; returns only the hits.

        Semantically equivalent to calling :meth:`get` per key — same
        checksum verification, same corrupt-row dropping, same hit/miss
        accounting — but the SELECT runs once (chunked under SQLite's
        host-parameter limit) instead of once per key.  The warm
        resume path resolves a whole stratum's store hits up front with
        this before entering the supervisor loop.
        """
        with self._published_lookup():
            return self._get_many(keys)

    def _get_many(self, keys: List[str]) -> Dict[str, Dict[str, object]]:
        found: Dict[str, Dict[str, object]] = {}
        if not keys:
            return found
        rows: Dict[str, Tuple[str, str]] = {}
        # SQLite's default variable limit is 999; stay well under it.
        chunk_size = 500
        unique = list(dict.fromkeys(keys))
        for start in range(0, len(unique), chunk_size):
            chunk = unique[start : start + chunk_size]
            placeholders = ",".join("?" * len(chunk))
            for key, payload_text, checksum in self._connection.execute(
                f"SELECT key, payload, checksum FROM results "
                f"WHERE key IN ({placeholders})",
                chunk,
            ):
                rows[key] = (payload_text, checksum)
        for key in unique:
            row = rows.get(key)
            if row is None:
                self.misses += 1
                continue
            payload_text, checksum = row
            if checksum and payload_checksum(payload_text) != checksum:
                self._drop_corrupt(key)
                self.misses += 1
                continue
            try:
                payload = json.loads(payload_text)
            except ValueError:
                self._drop_corrupt(key)
                self.misses += 1
                continue
            self.hits += 1
            found[key] = payload
        return found

    def _timed_write(self, write: Callable[[], object]) -> None:
        """Run a write under lock-retry, publishing its latency."""
        started = time.perf_counter()
        try:
            with_lock_retry(write)
        finally:
            _metrics.observe("store_write_seconds", time.perf_counter() - started)

    def _drop_corrupt(self, key: str) -> None:
        with_lock_retry(
            lambda: (
                self._connection.execute(
                    "DELETE FROM results WHERE key = ?", (key,)
                ),
                self._connection.commit(),
            )
        )
        self.corrupt_dropped += 1
        _metrics.inc("store_corrupt_dropped_total")

    def put(
        self,
        key: str,
        payload: Dict[str, object],
        *,
        spec_json: str = "",
        kind: str = "",
    ) -> None:
        """Insert or overwrite the payload stored under ``key``."""
        payload_text = json.dumps(payload, sort_keys=True)

        def write():
            self._connection.execute(
                "INSERT OR REPLACE INTO results "
                "(key, kind, spec, payload, checksum) VALUES (?, ?, ?, ?, ?)",
                (key, kind, spec_json, payload_text, payload_checksum(payload_text)),
            )
            self._connection.commit()

        self._timed_write(write)

    def put_many(
        self,
        rows: Iterable[Tuple[str, Dict[str, object], str]],
        *,
        kind: str = "",
    ) -> None:
        """Insert or overwrite many ``(key, payload, spec_json)`` rows.

        All rows land in **one** SQLite transaction (``executemany``),
        so batch writers — the campaign engine writes one batch of
        injection points at a time — pay one fsync per batch instead of
        one per point.  Equivalent to calling :meth:`put` per row.
        """
        prepared = []
        for key, payload, spec_json in rows:
            payload_text = json.dumps(payload, sort_keys=True)
            prepared.append(
                (key, kind, spec_json, payload_text, payload_checksum(payload_text))
            )
        if not prepared:
            return

        def write():
            self._connection.executemany(
                "INSERT OR REPLACE INTO results "
                "(key, kind, spec, payload, checksum) VALUES (?, ?, ?, ?, ?)",
                prepared,
            )
            self._connection.commit()

        self._timed_write(write)

    def merge_rows(self, rows: Iterable[Tuple[str, str, str, str, str]]) -> int:
        """Idempotently fold foreign ``(key, kind, spec, payload,
        checksum)`` rows in — ``INSERT OR IGNORE``, one transaction.

        This is the shard-merge primitive
        (:mod:`repro.store.sharding`): keys are content addresses and
        payloads deterministic, so ignoring an existing key keeps an
        identical payload, which makes the merge idempotent and
        order-independent.  Returns the number of rows actually
        inserted (already-present keys don't count).
        """
        prepared = list(rows)
        if not prepared:
            return 0
        inserted = 0

        def write():
            nonlocal inserted
            before = self._connection.total_changes
            self._connection.executemany(
                "INSERT OR IGNORE INTO results "
                "(key, kind, spec, payload, checksum) VALUES (?, ?, ?, ?, ?)",
                prepared,
            )
            self._connection.commit()
            inserted = self._connection.total_changes - before

        self._timed_write(write)
        return inserted

    def spec_json(self, key: str) -> Optional[str]:
        """The canonical spec recorded with ``key`` (provenance)."""
        row = self._connection.execute(
            "SELECT spec FROM results WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    def __contains__(self, key: str) -> bool:
        row = self._connection.execute(
            "SELECT 1 FROM results WHERE key = ?", (key,)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        (count,) = self._connection.execute(
            "SELECT COUNT(*) FROM results"
        ).fetchone()
        return int(count)

    def count(self, kind: str) -> int:
        (count,) = self._connection.execute(
            "SELECT COUNT(*) FROM results WHERE kind = ?", (kind,)
        ).fetchone()
        return int(count)

    def keys(self) -> Iterator[str]:
        for (key,) in self._connection.execute(
            "SELECT key FROM results ORDER BY key"
        ):
            yield key

    def iter_rows(self) -> Iterator[Tuple[str, Dict[str, object], str]]:
        """All ``(key, payload, kind)`` rows in key order.

        Payloads are decoded but *not* checksum-verified — use
        :meth:`verify` / :meth:`repair` for integrity scans.
        """
        for key, payload_text, kind in self._connection.execute(
            "SELECT key, payload, kind FROM results ORDER BY key"
        ):
            yield key, json.loads(payload_text), kind

    # ------------------------------------------------------------------ #
    # integrity: verify / repair                                         #
    # ------------------------------------------------------------------ #
    def _scan(self) -> StoreHealthReport:
        report = StoreHealthReport()
        for key, payload_text, checksum in self._connection.execute(
            "SELECT key, payload, checksum FROM results ORDER BY key"
        ):
            report.total += 1
            parses = True
            try:
                json.loads(payload_text)
            except ValueError:
                parses = False
            if not parses:
                report.corrupt.append(key)
            elif not checksum:
                report.legacy.append(key)
            elif payload_checksum(payload_text) != checksum:
                report.corrupt.append(key)
            else:
                report.intact += 1
        return report

    def verify(self) -> StoreHealthReport:
        """Scan every row's checksum/JSON without modifying the file."""
        return self._scan()

    def repair(self) -> StoreHealthReport:
        """Heal the store: drop corrupt rows, backfill legacy checksums.

        Dropped rows are simply missing afterwards — the resume path
        re-simulates them from their (re-derivable) specs, which is the
        re-simulation fallback the checksum design counts on.
        """
        report = self._scan()

        def heal():
            for key in report.corrupt:
                self._connection.execute(
                    "DELETE FROM results WHERE key = ?", (key,)
                )
            for key in report.legacy:
                (payload_text,) = self._connection.execute(
                    "SELECT payload FROM results WHERE key = ?", (key,)
                ).fetchone()
                self._connection.execute(
                    "UPDATE results SET checksum = ? WHERE key = ?",
                    (payload_checksum(payload_text), key),
                )
            self._connection.commit()

        with_lock_retry(heal)
        self.corrupt_dropped += len(report.corrupt)
        report.dropped = list(report.corrupt)
        report.backfilled = list(report.legacy)
        report.intact += len(report.legacy)
        report.legacy = []
        return report

    # ------------------------------------------------------------------ #
    # quarantine                                                         #
    # ------------------------------------------------------------------ #
    def quarantine_put(
        self, key: str, error: Dict[str, object], *, spec_json: str = ""
    ) -> None:
        """Record a poison point the campaign supervisor gave up on."""

        def write():
            self._connection.execute(
                "INSERT OR REPLACE INTO quarantine (key, spec, error) "
                "VALUES (?, ?, ?)",
                (key, spec_json, json.dumps(error, sort_keys=True)),
            )
            self._connection.commit()

        self._timed_write(write)

    def quarantine_get(self, key: str) -> Optional[Dict[str, object]]:
        row = self._connection.execute(
            "SELECT error FROM quarantine WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else json.loads(row[0])

    def quarantine_count(self) -> int:
        (count,) = self._connection.execute(
            "SELECT COUNT(*) FROM quarantine"
        ).fetchone()
        return int(count)

    def quarantine_clear(self, key: Optional[str] = None) -> None:
        """Forget quarantined keys (all, or just one) — e.g. after a
        resume successfully re-simulated them."""

        def clear():
            if key is None:
                self._connection.execute("DELETE FROM quarantine")
            else:
                self._connection.execute(
                    "DELETE FROM quarantine WHERE key = ?", (key,)
                )
            self._connection.commit()

        with_lock_retry(clear)

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #
    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.corrupt_dropped = 0

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the connection (idempotent — safe on every teardown path).

        A finished store checkpoints its WAL back into the main file
        (``wal_checkpoint(TRUNCATE)``) before closing, so a clean close
        leaves no stale ``-wal``/``-shm`` side-files next to the
        database — the file on disk *is* the store.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        except sqlite3.Error:
            pass  # e.g. another connection holds the file; close anyway
        self._connection.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"entries={len(self)}"
        return f"ResultStore({self.path!r}, {state})"
