"""Persistent, content-addressed result store.

One SQLite file holds one table of JSON payloads keyed by the canonical
spec hash (:func:`repro.store.canonical.spec_hash`).  The store is the
substrate for two features:

* **campaign checkpoint / resume** — every finished injection point is
  written under its spec hash, so a re-run only simulates missing
  points;
* an **opt-in cross-process result cache** for
  :func:`repro.simulation.simulate_spec` / the experiment runner —
  timing results keyed the same way survive process boundaries (unlike
  the in-memory kernel-trace cache).

SQLite keeps the implementation dependency-free, transactional and safe
for one writer + many readers; each process opens its own connection.
"""

from __future__ import annotations

import json
import pathlib
import sqlite3
from typing import Dict, Iterable, Iterator, Optional, Tuple, Union

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key     TEXT PRIMARY KEY,
    kind    TEXT NOT NULL DEFAULT '',
    spec    TEXT NOT NULL DEFAULT '',
    payload TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS results_kind ON results (kind);
"""


class ResultStore:
    """Content-addressed JSON result store backed by SQLite.

    ``path`` may be a filesystem path or ``":memory:"`` for an ephemeral
    store (useful in tests).  The store counts its ``hits`` and
    ``misses`` (lookups that found / did not find a payload) so callers
    can assert resume behaviour.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = str(path)
        if self.path != ":memory:":
            parent = pathlib.Path(self.path).resolve().parent
            parent.mkdir(parents=True, exist_ok=True)
        self._connection = sqlite3.connect(self.path)
        # Concurrent campaigns sharing one store file: WAL lets readers
        # proceed during a write, and the busy timeout makes competing
        # writers queue instead of raising "database is locked".
        # (":memory:" silently ignores the WAL request.)
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA busy_timeout=30000")
        self._connection.executescript(_SCHEMA)
        self._connection.commit()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # core mapping interface                                             #
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored payload for ``key``, or None (counted as hit/miss)."""
        row = self._connection.execute(
            "SELECT payload FROM results WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        return json.loads(row[0])

    def put(
        self,
        key: str,
        payload: Dict[str, object],
        *,
        spec_json: str = "",
        kind: str = "",
    ) -> None:
        """Insert or overwrite the payload stored under ``key``."""
        self._connection.execute(
            "INSERT OR REPLACE INTO results (key, kind, spec, payload) "
            "VALUES (?, ?, ?, ?)",
            (key, kind, spec_json, json.dumps(payload, sort_keys=True)),
        )
        self._connection.commit()

    def put_many(
        self,
        rows: Iterable[Tuple[str, Dict[str, object], str]],
        *,
        kind: str = "",
    ) -> None:
        """Insert or overwrite many ``(key, payload, spec_json)`` rows.

        All rows land in **one** SQLite transaction (``executemany``),
        so batch writers — the campaign engine writes one batch of
        injection points at a time — pay one fsync per batch instead of
        one per point.  Equivalent to calling :meth:`put` per row.
        """
        prepared = [
            (key, kind, spec_json, json.dumps(payload, sort_keys=True))
            for key, payload, spec_json in rows
        ]
        if not prepared:
            return
        self._connection.executemany(
            "INSERT OR REPLACE INTO results (key, kind, spec, payload) "
            "VALUES (?, ?, ?, ?)",
            prepared,
        )
        self._connection.commit()

    def spec_json(self, key: str) -> Optional[str]:
        """The canonical spec recorded with ``key`` (provenance)."""
        row = self._connection.execute(
            "SELECT spec FROM results WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    def __contains__(self, key: str) -> bool:
        row = self._connection.execute(
            "SELECT 1 FROM results WHERE key = ?", (key,)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        (count,) = self._connection.execute(
            "SELECT COUNT(*) FROM results"
        ).fetchone()
        return int(count)

    def count(self, kind: str) -> int:
        (count,) = self._connection.execute(
            "SELECT COUNT(*) FROM results WHERE kind = ?", (kind,)
        ).fetchone()
        return int(count)

    def keys(self) -> Iterator[str]:
        for (key,) in self._connection.execute(
            "SELECT key FROM results ORDER BY key"
        ):
            yield key

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #
    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({self.path!r}, entries={len(self)})"
