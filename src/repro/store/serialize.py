"""Lossless (de)serialisation of timing results for the store.

Only what the experiments consume is stored: the full statistics tree
(all plain integer counters), the DL1 statistics dictionary and the bus
counters.  The functional trace is *not* stored — it is policy
independent and reproducible from the kernel-trace cache, so callers
that need it re-attach it — and neither is the chronogram, which is why
only specs with ``chronogram_window == 0`` are cacheable.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.lookahead import LookaheadStatistics
from repro.pipeline.statistics import PipelineStatistics, StallBreakdown
from repro.pipeline.timing import PipelineResult
from repro.scenarios.spec import SimulationSpec

#: Bump when the payload shape changes.
TIMING_SCHEMA = 1

_STATS_FIELDS = (
    "instructions",
    "cycles",
    "loads",
    "stores",
    "branches",
    "taken_branches",
    "load_hits",
    "load_misses",
    "dependent_loads",
    "dependent_load_distance_1",
    "dependent_load_distance_2",
)
_STALL_FIELDS = (
    "operand_wait",
    "load_use_wait",
    "ecc_wait",
    "memory_structural",
    "dl1_miss",
    "write_buffer_full",
    "write_buffer_drain",
    "branch_redirect",
    "icache_miss",
)
_LOOKAHEAD_FIELDS = (
    "loads_seen",
    "lookaheads_taken",
    "blocked_data_hazard",
    "blocked_resource_hazard",
    "blocked_operands_late",
)


def payload_from_result(result) -> Dict[str, object]:
    """JSON-safe payload for one :class:`SimulationResult`."""
    stats = result.timing.stats
    return {
        "v": TIMING_SCHEMA,
        "program_name": result.program_name,
        "policy": result.policy.kind.value,
        "stats": {name: getattr(stats, name) for name in _STATS_FIELDS},
        "stalls": {name: getattr(stats.stalls, name) for name in _STALL_FIELDS},
        "lookahead": {
            name: getattr(stats.lookahead, name) for name in _LOOKAHEAD_FIELDS
        },
        "dl1_stats": dict(result.timing.dl1_stats),
        "bus_transactions": result.timing.bus_transactions,
        "bus_contention_cycles": result.timing.bus_contention_cycles,
    }


def result_from_payload(
    spec: SimulationSpec, payload: Dict[str, object], *, trace=None
):
    """Rebuild a :class:`SimulationResult` from a stored payload.

    ``hierarchy`` is ``None`` (the live cache objects are not stored)
    and ``trace`` is attached only when the caller supplies it; the
    reconstructed result is flagged ``from_store``.
    """
    from repro.simulation import SimulationResult  # local: avoids cycle

    if payload.get("v") != TIMING_SCHEMA:
        raise ValueError(f"unsupported timing payload schema {payload.get('v')!r}")
    stats = PipelineStatistics(
        stalls=StallBreakdown(**payload["stalls"]),
        lookahead=LookaheadStatistics(**payload["lookahead"]),
        **payload["stats"],
    )
    policy = spec.resolved_policy()
    timing = PipelineResult(
        policy=policy,
        stats=stats,
        dl1_stats=dict(payload["dl1_stats"]),
        bus_transactions=int(payload["bus_transactions"]),
        bus_contention_cycles=int(payload["bus_contention_cycles"]),
    )
    return SimulationResult(
        program_name=str(payload["program_name"]),
        policy=policy,
        trace=trace,
        timing=timing,
        hierarchy=None,
        spec=spec,
        from_store=True,
    )


def store_timing_result(store, spec: SimulationSpec, result) -> None:
    """Write one timing result under its spec's content hash.

    The single place that knows the timing payload's key/kind/provenance
    convention — every writer (``simulate_spec``'s store branch, the
    experiment runner's serial and parallel paths) goes through it.
    """
    from repro.store.canonical import canonical_json, spec_hash

    store.put(
        spec_hash(spec),
        payload_from_result(result),
        spec_json=canonical_json(spec),
        kind="timing",
    )


def cacheable(spec: SimulationSpec) -> bool:
    """Whether a spec's timing result can round-trip through the store.

    Chronogram-recording runs are excluded (per-instruction occupancy is
    not serialised), as are fault runs (their payloads live under the
    injection kind) and anonymous programs (no kernel name means the
    spec alone cannot reproduce the workload).
    """
    return (
        spec.kernel is not None
        and spec.chronogram_window == 0
        and spec.fault is None
    )
