"""High-level simulation façade.

Most users only need two calls::

    from repro import simulate_kernel

    baseline = simulate_kernel("matrix", policy="no-ecc")
    laec = simulate_kernel("matrix", policy="laec")
    print(laec.cycles / baseline.cycles - 1.0)   # Figure 8 data point

:func:`simulate_program` does the same for an arbitrary assembled
:class:`~repro.isa.program.Program`, and :class:`SimulationResult`
bundles the functional trace, the timing statistics and the chronogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.core.policies import EccPolicy, EccPolicyKind, make_policy
from repro.functional.simulator import FunctionalTrace, run_program
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.chronogram import Chronogram
from repro.pipeline.config import CoreConfig, PipelineConfig
from repro.pipeline.statistics import PipelineStatistics
from repro.pipeline.timing import PipelineResult, TimingPipeline


@dataclass
class SimulationResult:
    """Everything produced by one program/policy simulation."""

    program_name: str
    policy: EccPolicy
    trace: FunctionalTrace
    timing: PipelineResult
    hierarchy: MemoryHierarchy

    @property
    def cycles(self) -> int:
        return self.timing.cycles

    @property
    def instructions(self) -> int:
        return self.timing.instructions

    @property
    def cpi(self) -> float:
        return self.timing.cpi

    @property
    def stats(self) -> PipelineStatistics:
        return self.timing.stats

    @property
    def chronogram(self) -> Chronogram:
        return self.timing.chronogram

    def execution_time_increase_over(self, baseline: "SimulationResult") -> float:
        """Relative execution-time increase versus ``baseline`` (Figure 8)."""
        return self.timing.execution_time_increase_over(baseline.timing)

    def summary(self) -> Dict[str, float]:
        summary = dict(self.stats.as_dict())
        summary["policy"] = self.policy.kind.value
        summary["program"] = self.program_name
        return summary


def build_hierarchy(config: CoreConfig) -> MemoryHierarchy:
    """Construct a private memory hierarchy for ``config``."""
    return MemoryHierarchy(
        config.resolved_hierarchy_config(),
        write_buffer_entries=config.pipeline.write_buffer_entries,
    )


def simulate_program(
    program: Program,
    *,
    policy: Union[str, EccPolicyKind, EccPolicy] = EccPolicyKind.NO_ECC,
    config: Optional[CoreConfig] = None,
    trace: Optional[FunctionalTrace] = None,
    chronogram_window: int = 0,
    max_instructions: int = 5_000_000,
) -> SimulationResult:
    """Run ``program`` under ``policy`` and return the combined result.

    The functional trace can be passed in (``trace=``) to avoid re-running
    the architectural simulation when timing the same program under
    several policies — the stream is identical by construction because
    none of the policies change architectural behaviour.
    """
    resolved_policy = make_policy(policy)
    core_config = config or CoreConfig()
    core_config = core_config.with_policy(resolved_policy)
    pipeline_config = core_config.pipeline
    if chronogram_window:
        pipeline_config = pipeline_config.with_chronogram(chronogram_window)
    if trace is None:
        trace = run_program(program, max_instructions=max_instructions)
    hierarchy = build_hierarchy(core_config)
    pipeline = TimingPipeline(resolved_policy, hierarchy, pipeline_config)
    timing = pipeline.run(trace)
    return SimulationResult(
        program_name=program.name,
        policy=resolved_policy,
        trace=trace,
        timing=timing,
        hierarchy=hierarchy,
    )


def simulate_kernel(
    kernel_name: str,
    *,
    policy: Union[str, EccPolicyKind, EccPolicy] = EccPolicyKind.NO_ECC,
    config: Optional[CoreConfig] = None,
    chronogram_window: int = 0,
    scale: float = 1.0,
) -> SimulationResult:
    """Assemble and simulate one of the EEMBC-Automotive-like kernels.

    ``scale`` shrinks or grows the kernel's iteration counts (useful to
    trade accuracy for speed in tests); 1.0 reproduces the default
    workload sizes used by the benchmark harness.
    """
    # Imported lazily to keep the core library importable without the
    # workload suite (and to avoid a circular import at package init).
    from repro.workloads import build_kernel

    program = build_kernel(kernel_name, scale=scale)
    return simulate_program(
        program,
        policy=policy,
        config=config,
        chronogram_window=chronogram_window,
    )


def simulate_policies(
    program: Program,
    policies,
    *,
    config: Optional[CoreConfig] = None,
) -> Dict[str, SimulationResult]:
    """Time ``program`` under several policies, reusing one functional trace."""
    trace = run_program(program)
    results: Dict[str, SimulationResult] = {}
    for policy in policies:
        resolved = make_policy(policy)
        results[resolved.kind.value] = simulate_program(
            program, policy=resolved, config=config, trace=trace
        )
    return results
