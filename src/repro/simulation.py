"""High-level simulation façade.

Most users only need two calls::

    from repro import simulate_kernel

    baseline = simulate_kernel("matrix", policy="no-ecc")
    laec = simulate_kernel("matrix", policy="laec")
    print(laec.cycles / baseline.cycles - 1.0)   # Figure 8 data point

:func:`simulate_program` does the same for an arbitrary assembled
:class:`~repro.isa.program.Program`, and :class:`SimulationResult`
bundles the functional trace, the timing statistics and the chronogram.

Since the scenario-first refactor every entry path — these two
functions, the experiment runner and the SoC — constructs a declarative
:class:`~repro.scenarios.SimulationSpec` and funnels it through
:func:`simulate_spec`, the single place where a spec is turned into a
functional trace, a memory hierarchy and a timing run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.core.policies import EccPolicy, EccPolicyKind, make_policy
from repro.functional.simulator import FunctionalTrace, run_program
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.chronogram import Chronogram
from repro.pipeline.config import CoreConfig, PipelineConfig
from repro.pipeline.statistics import PipelineStatistics
from repro.pipeline.timing import PipelineResult, TimingPipeline
from repro.scenarios.spec import SimulationSpec


@dataclass
class SimulationResult:
    """Everything produced by one program/policy simulation."""

    program_name: str
    policy: EccPolicy
    trace: FunctionalTrace
    timing: PipelineResult
    hierarchy: Optional[MemoryHierarchy]
    #: The declarative spec this result was produced from (``None`` only
    #: for results assembled by hand, e.g. in unit tests).
    spec: Optional[SimulationSpec] = None
    #: Architectural fault-injection outcome
    #: (:class:`repro.campaign.replay.ArchInjectionResult`) when the
    #: spec armed a :class:`~repro.scenarios.FaultSpec`.
    injection: Optional[object] = None
    #: True when this result was reconstructed from a
    #: :class:`~repro.store.ResultStore` payload rather than simulated
    #: in this process (``hierarchy`` is then ``None`` and ``trace`` is
    #: only present if the caller re-attached it).
    from_store: bool = False

    @property
    def cycles(self) -> int:
        return self.timing.cycles

    @property
    def instructions(self) -> int:
        return self.timing.instructions

    @property
    def cpi(self) -> float:
        return self.timing.cpi

    @property
    def stats(self) -> PipelineStatistics:
        return self.timing.stats

    @property
    def chronogram(self) -> Chronogram:
        return self.timing.chronogram

    def execution_time_increase_over(self, baseline: "SimulationResult") -> float:
        """Relative execution-time increase versus ``baseline`` (Figure 8)."""
        return self.timing.execution_time_increase_over(baseline.timing)

    def summary(self) -> Dict[str, float]:
        summary = dict(self.stats.as_dict())
        summary["policy"] = self.policy.kind.value
        summary["program"] = self.program_name
        return summary


def build_hierarchy(config: CoreConfig) -> MemoryHierarchy:
    """Construct a private memory hierarchy for ``config``."""
    return MemoryHierarchy(
        config.resolved_hierarchy_config(),
        write_buffer_entries=config.pipeline.write_buffer_entries,
    )


def simulate_spec(
    spec: SimulationSpec,
    *,
    program: Optional[Program] = None,
    trace: Optional[FunctionalTrace] = None,
    store=None,
) -> SimulationResult:
    """Execute one declarative :class:`SimulationSpec`.

    This is the funnel every public entry path goes through.  ``program``
    may be supplied to bypass the kernel registry (required when the spec
    names no kernel); ``trace`` may be supplied to reuse a functional
    trace across policies — the architectural stream is identical under
    every ECC scheme by construction.

    Two opt-in layers sit in front of the plain run:

    * a spec with an armed :class:`~repro.scenarios.FaultSpec` is routed
      through the architectural fault-injection replay
      (:mod:`repro.campaign.replay`) — the returned result then times
      the dynamic stream the *faulty* machine actually executed and
      carries the injection classification in ``result.injection``;
    * ``store`` (a :class:`~repro.store.ResultStore`) makes the call a
      cross-process cache lookup: cacheable specs found in the store are
      reconstructed without simulating, and fresh results are written
      back under their content hash.
    """
    if spec.fault is not None:
        from repro.campaign.replay import simulate_faulty_spec

        return simulate_faulty_spec(spec, program=program, trace=trace)
    if store is not None:
        from repro.store import (
            cacheable,
            result_from_payload,
            spec_hash,
            store_timing_result,
        )

        if cacheable(spec):
            payload = store.get(spec_hash(spec))
            if payload is not None:
                return result_from_payload(spec, payload, trace=trace)
            result = simulate_spec(spec, program=program, trace=trace)
            store_timing_result(store, spec, result)
            return result
    resolved_policy = spec.resolved_policy()
    if program is None:
        program = spec.build_program()
    core_config = spec.core_config()
    if trace is None:
        trace = run_program(program, max_instructions=spec.max_instructions)
    hierarchy = build_hierarchy(core_config)
    pipeline = TimingPipeline(resolved_policy, hierarchy, core_config.pipeline)
    timing = pipeline.run(trace)
    return SimulationResult(
        program_name=program.name,
        policy=resolved_policy,
        trace=trace,
        timing=timing,
        hierarchy=hierarchy,
        spec=spec,
    )


def simulate_program(
    program: Program,
    *,
    policy: Union[str, EccPolicyKind, EccPolicy] = EccPolicyKind.NO_ECC,
    config: Optional[CoreConfig] = None,
    trace: Optional[FunctionalTrace] = None,
    chronogram_window: int = 0,
    max_instructions: int = 5_000_000,
) -> SimulationResult:
    """Run ``program`` under ``policy`` and return the combined result.

    The functional trace can be passed in (``trace=``) to avoid re-running
    the architectural simulation when timing the same program under
    several policies — the stream is identical by construction because
    none of the policies change architectural behaviour.
    """
    core_config = config or CoreConfig()
    spec = SimulationSpec(
        policy=policy,
        pipeline=core_config.pipeline,
        hierarchy=core_config.hierarchy,
        chronogram_window=chronogram_window,
        max_instructions=max_instructions,
    )
    return simulate_spec(spec, program=program, trace=trace)


def simulate_kernel(
    kernel_name: str,
    *,
    policy: Union[str, EccPolicyKind, EccPolicy] = EccPolicyKind.NO_ECC,
    config: Optional[CoreConfig] = None,
    chronogram_window: int = 0,
    scale: float = 1.0,
) -> SimulationResult:
    """Assemble and simulate one of the EEMBC-Automotive-like kernels.

    ``scale`` shrinks or grows the kernel's iteration counts (useful to
    trade accuracy for speed in tests); 1.0 reproduces the default
    workload sizes used by the benchmark harness.
    """
    core_config = config or CoreConfig()
    spec = SimulationSpec(
        kernel=kernel_name,
        scale=scale,
        policy=policy,
        pipeline=core_config.pipeline,
        hierarchy=core_config.hierarchy,
        chronogram_window=chronogram_window,
    )
    return simulate_spec(spec)


def simulate_policies(
    program: Program,
    policies,
    *,
    config: Optional[CoreConfig] = None,
) -> Dict[str, SimulationResult]:
    """Time ``program`` under several policies, reusing one functional trace."""
    trace = run_program(program)
    results: Dict[str, SimulationResult] = {}
    for policy in policies:
        resolved = make_policy(policy)
        results[resolved.kind.value] = simulate_program(
            program, policy=resolved, config=config, trace=trace
        )
    return results
