"""repro — reproduction of LAEC (DATE 2019).

LAEC: Look-Ahead Error Correction Codes in Embedded Processors L1 Data Cache.

The package provides, from the bottom up:

* :mod:`repro.isa` — a small SPARC-V8-like instruction set, assembler and
  program container used by all workloads.
* :mod:`repro.functional` — an architectural (functional) simulator that
  produces the dynamic instruction stream driving the timing model.
* :mod:`repro.ecc` — parity / Hamming / Hsiao-SECDED codecs and a fault
  injection engine.
* :mod:`repro.memory` — set-associative caches, write buffer, shared bus,
  L2 and main memory.
* :mod:`repro.pipeline` — the cycle-accurate 7/8-stage in-order pipeline
  of an NGMP/LEON4-class core, with chronogram recording and statistics.
* :mod:`repro.core` — the paper's contribution: the ECC deployment
  policies (No-ECC, Extra Cache Cycle, Extra Stage, LAEC) and the LAEC
  look-ahead unit.
* :mod:`repro.soc` — a 4-core NGMP-like SoC model with shared bus and L2.
* :mod:`repro.workloads` — EEMBC-Automotive-like kernels and synthetic
  trace generation.
* :mod:`repro.scenarios` — the declarative :class:`SimulationSpec` and
  the named-scenario registry every entry path funnels through.
* :mod:`repro.analysis` — metrics, energy/leakage model, WCET analysis
  and report rendering.
* :mod:`repro.experiments` — one module per paper table/figure plus
  ablations, unified behind the :class:`Experiment` registry served by
  the ``python -m repro`` CLI.
"""

from repro.core.policies import (
    EccPolicyKind,
    ExtraCacheCyclePolicy,
    ExtraStagePolicy,
    LaecPolicy,
    NoEccPolicy,
    WriteThroughParityPolicy,
    make_policy,
)
from repro.memory.config import CacheConfig, MemoryHierarchyConfig
from repro.pipeline.config import CoreConfig, PipelineConfig
from repro.scenarios import (
    FaultSpec,
    InterferenceScenario,
    SimulationSpec,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.simulation import (
    SimulationResult,
    simulate_kernel,
    simulate_program,
    simulate_spec,
)

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "EccPolicyKind",
    "ExtraCacheCyclePolicy",
    "ExtraStagePolicy",
    "FaultSpec",
    "InterferenceScenario",
    "LaecPolicy",
    "MemoryHierarchyConfig",
    "NoEccPolicy",
    "PipelineConfig",
    "SimulationResult",
    "SimulationSpec",
    "WriteThroughParityPolicy",
    "get_scenario",
    "make_policy",
    "register_scenario",
    "scenario_names",
    "simulate_kernel",
    "simulate_program",
    "simulate_spec",
]

__version__ = "1.0.0"
