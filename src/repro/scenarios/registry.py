"""Named-scenario registry.

The registry maps short, stable names to :class:`SimulationSpec`
*factories*, so campaigns, the CLI and tests can request "the
worst-contention LAEC configuration" without re-deriving the plumbing.
Factories (rather than constant specs) keep every lookup independent:
callers can freely ``replace()`` fields on what they receive.

Built-in scenarios cover the paper's evaluation matrix: each ECC policy
in isolation, plus the three interference settings of the WCET study
applied to the LAEC and WT+parity configurations.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.policies import EccPolicyKind
from repro.scenarios.interference import InterferenceScenario
from repro.scenarios.spec import SimulationSpec

ScenarioFactory = Callable[[], SimulationSpec]

_REGISTRY: Dict[str, ScenarioFactory] = {}
_DESCRIPTIONS: Dict[str, str] = {}


def register_scenario(
    name: str, factory: ScenarioFactory, *, description: str = "", replace: bool = False
) -> None:
    """Register a named scenario factory.

    ``replace=True`` allows overwriting (useful for test fixtures);
    otherwise double registration is an error, catching copy-paste slips.
    """
    key = name.strip().lower()
    if not replace and key in _REGISTRY:
        raise ValueError(f"scenario {name!r} is already registered")
    _REGISTRY[key] = factory
    _DESCRIPTIONS[key] = description


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)


def scenario_description(name: str) -> str:
    return _DESCRIPTIONS.get(name.strip().lower(), "")


def scenario_interference(name: str) -> Optional[InterferenceScenario]:
    """The interference component of the named scenario.

    This is what the fault-campaign sweep grid consumes: its policy axis
    is separate, so a scenario name only contributes the contention
    setting under which the faulty runs execute.  ``None`` means the
    task runs in isolation (the historical campaign behaviour — specs
    built that way hash identically to pre-sweep campaign points, so old
    stores keep resuming).
    """
    return get_scenario(name).interference


def get_scenario(name: str, **overrides) -> SimulationSpec:
    """Build the named scenario's spec, optionally overriding fields.

    ``overrides`` are applied with :func:`dataclasses.replace`, e.g.
    ``get_scenario("laec-worst", kernel="matrix", scale=0.2)``.
    """
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(scenario_names())}"
        )
    spec = _REGISTRY[key]()
    if overrides:
        from dataclasses import replace as _replace

        spec = _replace(spec, **overrides)
    return spec


# ---------------------------------------------------------------------- #
# built-in scenarios                                                     #
# ---------------------------------------------------------------------- #
def _default_contenders() -> int:
    """Every other core of the default SoC topology is busy.

    Resolved at factory-call time (and imported lazily — the SoC layer
    sits above this package), so the registry always agrees with
    :func:`repro.soc.interference.contention_modes` about what "all
    other cores" means instead of hard-coding a core count.
    """
    from repro.soc.ngmp import NgmpConfig

    return max(NgmpConfig().cores - 1, 0)


def _register_builtins() -> None:
    for kind in EccPolicyKind:
        policy = kind  # bind per iteration

        def factory(policy: EccPolicyKind = policy) -> SimulationSpec:
            return SimulationSpec(policy=policy)

        register_scenario(
            kind.value,
            factory,
            description=f"{kind.value} policy, single core, no interference",
        )

    wcet_settings = (
        ("isolation", "none", "task alone on the SoC"),
        ("average", "average", "all other cores busy, average round-robin wait"),
        (
            "worst",
            "worst",
            "all other cores busy, full round-robin round per transaction",
        ),
    )
    # Policy-agnostic interference scenarios: what the fault-campaign
    # sweep grid combines with its own policy axis.  "isolation" keeps
    # interference=None (the historical single-core campaign spec, so
    # its points hash identically to pre-sweep stores).
    register_scenario(
        "isolation",
        lambda: SimulationSpec(),
        description="task alone on the SoC, no interference (campaign default)",
    )
    for scenario_name, mode, text in wcet_settings[1:]:

        def interference_factory(
            scenario_name: str = scenario_name, mode: str = mode
        ) -> SimulationSpec:
            return SimulationSpec(
                interference=InterferenceScenario(
                    scenario_name, _default_contenders(), mode
                )
            )

        register_scenario(
            scenario_name,
            interference_factory,
            description=f"any policy with {text}",
        )

    for policy_kind, label in (
        (EccPolicyKind.LAEC, "laec"),
        (EccPolicyKind.WT_PARITY, "wt-parity"),
    ):
        for scenario_name, mode, text in wcet_settings:

            def factory(
                policy_kind: EccPolicyKind = policy_kind,
                scenario_name: str = scenario_name,
                mode: str = mode,
            ) -> SimulationSpec:
                contenders = 0 if mode == "none" else _default_contenders()
                return SimulationSpec(
                    policy=policy_kind,
                    interference=InterferenceScenario(scenario_name, contenders, mode),
                )

            register_scenario(
                f"{label}-{scenario_name}",
                factory,
                description=f"{label} DL1 with {text}",
            )


_register_builtins()
