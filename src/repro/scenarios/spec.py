"""The declarative simulation specification.

A :class:`SimulationSpec` is the single, frozen description of "one
timing run": which workload (a named kernel or a caller-supplied
program), at which scale, under which ECC policy, on which pipeline and
memory-hierarchy configuration, with which inter-core interference, and
pinned to which core.  Every entry path of the library —
:func:`repro.simulation.simulate_kernel`,
:func:`repro.simulation.simulate_program`,
:class:`repro.experiments.runner.ExperimentRunner` and
:meth:`repro.soc.ngmp.NgmpSoC.run_task` — builds a spec and funnels it
through :func:`repro.simulation.simulate_spec`, so scenario handling,
caching and sharding logic all operate on one value type.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.core.policies import EccPolicy, EccPolicyKind, make_policy
from repro.memory.config import MemoryHierarchyConfig
from repro.pipeline.config import CoreConfig, PipelineConfig
from repro.scenarios.interference import InterferenceScenario

PolicyLike = Union[str, EccPolicyKind, EccPolicy]

#: Cache arrays a :class:`FaultSpec` can target.
FAULT_TARGETS = ("dl1", "l2")


@dataclass(frozen=True)
class FaultSpec:
    """One architectural soft error: a single bit flip in a cache array.

    The fault is *armed* before the run starts and lands right before the
    ``at_access``-th DL1 data access of the run (a deterministic proxy
    for the injection cycle: the DL1 access ordinal is a bijective
    function of simulated time for a fixed spec).  ``word_address`` is
    the word-aligned byte address whose stored codeword is hit and
    ``bit`` the position within that codeword (data bits low, check bits
    above — see :mod:`repro.ecc.codec`).  If the word is not resident in
    the targeted array when the fault lands, the upset hits a bit
    holding no live data and the run is architecturally masked.
    """

    target: str = "dl1"
    word_address: int = 0
    bit: int = 0
    at_access: int = 1

    def __post_init__(self) -> None:
        if self.target not in FAULT_TARGETS:
            raise ValueError(
                f"unknown fault target {self.target!r}; expected one of {FAULT_TARGETS}"
            )
        if self.word_address % 4:
            raise ValueError("fault word_address must be word (4-byte) aligned")
        if self.bit < 0:
            raise ValueError("fault bit position must be non-negative")
        if self.at_access < 1:
            raise ValueError("at_access is a 1-based access ordinal")

    def describe(self) -> str:
        return (
            f"flip bit {self.bit} of {self.target} word {self.word_address:#x} "
            f"before access #{self.at_access}"
        )


@dataclass(frozen=True)
class SimulationSpec:
    """Everything needed to reproduce one timing run.

    ``kernel`` names a workload from the registry; leave it ``None``
    when the program object is supplied directly to
    :func:`repro.simulation.simulate_spec`.  ``interference`` of ``None``
    means "whatever contention is already encoded in ``hierarchy``"
    (usually none); an explicit :class:`InterferenceScenario` overrides
    the hierarchy's bus-contention fields.
    """

    kernel: Optional[str] = None
    scale: float = 1.0
    policy: PolicyLike = EccPolicyKind.NO_ECC
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    hierarchy: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)
    interference: Optional[InterferenceScenario] = None
    core_index: int = 0
    chronogram_window: int = 0
    max_instructions: int = 5_000_000
    #: Optional armed soft error (see :class:`FaultSpec`).  When set,
    #: :func:`repro.simulation.simulate_spec` routes the run through the
    #: architectural fault-injection replay in :mod:`repro.campaign`.
    fault: Optional[FaultSpec] = None

    # -- derived views -------------------------------------------------- #
    def resolved_policy(self) -> EccPolicy:
        return make_policy(self.policy)

    def effective_hierarchy(self) -> MemoryHierarchyConfig:
        """Hierarchy config with the spec's interference applied."""
        if self.interference is None:
            return self.hierarchy
        scenario = self.interference
        return self.hierarchy.with_contention(scenario.contenders, scenario.mode)

    def core_config(self) -> CoreConfig:
        """The per-core configuration this spec describes."""
        pipeline = self.pipeline
        if self.chronogram_window:
            pipeline = pipeline.with_chronogram(self.chronogram_window)
        return CoreConfig(
            pipeline=pipeline,
            hierarchy=self.effective_hierarchy(),
            policy=self.policy,
            name=f"core{self.core_index}",
        )

    def build_program(self):
        """Assemble the named kernel (requires ``kernel`` to be set)."""
        if self.kernel is None:
            raise ValueError("this spec names no kernel; pass a program explicitly")
        # Imported lazily: the workload suite is optional and pulls in the
        # assembler, which must not be a hard dependency of the spec type.
        from repro.workloads import build_kernel

        return build_kernel(self.kernel, scale=self.scale)

    # -- functional-style updates --------------------------------------- #
    def with_policy(self, policy: PolicyLike) -> "SimulationSpec":
        return replace(self, policy=policy)

    def with_scale(self, scale: float) -> "SimulationSpec":
        return replace(self, scale=scale)

    def with_kernel(self, kernel: str) -> "SimulationSpec":
        return replace(self, kernel=kernel)

    def with_interference(
        self, interference: Optional[InterferenceScenario]
    ) -> "SimulationSpec":
        return replace(self, interference=interference)

    def with_chronogram(self, window: int) -> "SimulationSpec":
        return replace(self, chronogram_window=window)

    def with_core(self, core_index: int) -> "SimulationSpec":
        return replace(self, core_index=core_index)

    def with_fault(self, fault: Optional[FaultSpec]) -> "SimulationSpec":
        return replace(self, fault=fault)

    def describe(self) -> str:
        workload = self.kernel or "<program>"
        scenario = (
            self.interference.describe()
            if self.interference is not None
            else "inherited contention"
        )
        text = (
            f"{workload} (scale {self.scale:g}) under "
            f"{self.resolved_policy().kind.value} on core{self.core_index}; "
            f"{scenario}"
        )
        if self.fault is not None:
            text += f"; {self.fault.describe()}"
        return text
