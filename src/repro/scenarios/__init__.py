"""Scenario-first simulation layer.

This package turns "what should be simulated" into a first-class,
declarative value: :class:`SimulationSpec` captures workload, scale, ECC
policy, pipeline and hierarchy configuration, interference and core
placement in one frozen object, and the registry names the recurring
combinations (``laec-worst``, ``wt-parity-isolation``, every single
policy, ...).

All simulation entry paths funnel through a spec — see
:func:`repro.simulation.simulate_spec` — which is what makes campaigns
shardable and cacheable: a spec is a plain value that can be compared,
hashed into cache keys, shipped to worker processes, or enumerated by a
sweep without touching any imperative plumbing.
"""

from repro.scenarios.interference import InterferenceScenario
from repro.scenarios.registry import (
    get_scenario,
    register_scenario,
    scenario_description,
    scenario_interference,
    scenario_names,
)
from repro.scenarios.spec import FaultSpec, SimulationSpec

__all__ = [
    "FaultSpec",
    "InterferenceScenario",
    "SimulationSpec",
    "get_scenario",
    "register_scenario",
    "scenario_description",
    "scenario_interference",
    "scenario_names",
]
