"""Inter-core interference descriptions (part of the scenario model).

A scenario describes how many other cores are generating bus traffic and
how pessimistically their interference is accounted:

* ``isolation`` — the task runs alone (no contention); this is the
  average-performance configuration.
* ``average`` — contenders are active and each bus transaction of the
  task waits, on average, half a round of the round-robin arbiter.
* ``worst`` — every transaction of the task waits a full round (one slot
  per contender), the bound a measurement-based WCET estimate must
  assume for this arbiter [Dasari 2011, paper reference [14]].

This lives in the scenarios package (rather than :mod:`repro.soc`) so
the declarative :class:`~repro.scenarios.spec.SimulationSpec` can carry
an interference description without depending on the SoC layer;
:mod:`repro.soc.interference` re-exports it for its historical import
path.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InterferenceScenario:
    """One interference configuration applied to the task under analysis."""

    name: str
    contenders: int
    mode: str  # "none" | "average" | "worst"

    def describe(self) -> str:
        if self.mode == "none" or self.contenders == 0:
            return f"{self.name}: task in isolation"
        return (
            f"{self.name}: {self.contenders} contending core(s), "
            f"{self.mode}-case round-robin interference"
        )
