"""Pipeline and core configuration dataclasses."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.core.policies import EccPolicy, EccPolicyKind, make_policy
from repro.memory.config import MemoryHierarchyConfig


@dataclass(frozen=True)
class PipelineConfig:
    """Timing parameters of the in-order core.

    ``taken_branch_penalty`` models the bubble(s) a taken control
    transfer introduces between its Decode stage and the fetch of its
    target; LEON-class cores keep this at one cycle thanks to the
    architectural delay slot, which our ISA does not expose but whose
    timing effect we keep.  ``mul_latency``/``div_latency`` are the extra
    Execute-stage cycles of multiplications and divisions.
    """

    taken_branch_penalty: int = 1
    indirect_branch_penalty: int = 2
    mul_latency: int = 2
    div_latency: int = 18
    write_buffer_entries: int = 4
    #: Record per-instruction chronograms for at most this many dynamic
    #: instructions (0 disables recording; keeps memory bounded).
    chronogram_window: int = 0

    def __post_init__(self) -> None:
        if self.taken_branch_penalty < 0 or self.indirect_branch_penalty < 0:
            raise ValueError("branch penalties must be non-negative")
        if self.mul_latency < 1 or self.div_latency < 1:
            raise ValueError("mul/div latencies must be at least one cycle")
        if self.write_buffer_entries < 1:
            raise ValueError("the write buffer needs at least one entry")

    def with_chronogram(self, window: int) -> "PipelineConfig":
        return replace(self, chronogram_window=window)


@dataclass(frozen=True)
class CoreConfig:
    """Everything needed to time one core: pipeline, hierarchy and policy."""

    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    hierarchy: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)
    policy: Union[str, EccPolicyKind, EccPolicy] = EccPolicyKind.NO_ECC
    name: str = "core0"

    def resolved_policy(self) -> EccPolicy:
        return make_policy(self.policy)

    def resolved_hierarchy_config(self) -> MemoryHierarchyConfig:
        """Hierarchy config with the DL1 write policy forced by the ECC policy."""
        policy = self.resolved_policy()
        hierarchy = self.hierarchy
        if hierarchy.l1d.write_policy is not policy.dl1_write_policy:
            hierarchy = replace(
                hierarchy, l1d=hierarchy.l1d.with_write_policy(policy.dl1_write_policy)
            )
        return hierarchy

    def with_policy(self, policy: Union[str, EccPolicyKind, EccPolicy]) -> "CoreConfig":
        return replace(self, policy=policy)

    def with_contention(self, contenders: int, mode: str = "worst") -> "CoreConfig":
        return replace(
            self, hierarchy=self.hierarchy.with_contention(contenders, mode)
        )
