"""Cycle-accurate timing model of an NGMP/LEON4-class in-order core.

The model replays the dynamic instruction stream produced by
:mod:`repro.functional` through the 7-stage pipeline of Figure 1 of the
paper (Fetch, Decode, Register Access, Execute, Memory, Exception,
Write-Back), extended with the ECC stage when the active policy requires
it.  Stalls arise from operand dependences (with full bypassing), DL1
misses, multi-cycle Memory occupancy, the write buffer, taken branches
and instruction-cache misses — exactly the effects the paper's
evaluation relies on.
"""

from repro.pipeline.chronogram import Chronogram, ChronogramEntry
from repro.pipeline.config import CoreConfig, PipelineConfig
from repro.pipeline.stages import Stage, stages_for_policy
from repro.pipeline.statistics import PipelineStatistics
from repro.pipeline.timing import PipelineResult, TimingPipeline

__all__ = [
    "Chronogram",
    "ChronogramEntry",
    "CoreConfig",
    "PipelineConfig",
    "PipelineResult",
    "PipelineStatistics",
    "Stage",
    "TimingPipeline",
    "stages_for_policy",
]
