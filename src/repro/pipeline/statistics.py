"""Execution statistics collected by the timing pipeline.

Beyond total cycles/CPI, the counters are chosen to support the paper's
evaluation directly:

* Table II needs, per benchmark, the fraction of instructions that are
  loads, the DL1 hit rate of loads, and the fraction of loads whose value
  is consumed within the next two instructions.
* The discussion of Figure 8 needs the breakdown of stall causes and, for
  LAEC, how often anticipation was blocked by a data versus a resource
  hazard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.lookahead import LookaheadStatistics


@dataclass
class StallBreakdown:
    """Cycles lost to each cause, measured against an ideal 1-IPC flow."""

    operand_wait: int = 0
    load_use_wait: int = 0
    ecc_wait: int = 0
    memory_structural: int = 0
    dl1_miss: int = 0
    write_buffer_full: int = 0
    write_buffer_drain: int = 0
    branch_redirect: int = 0
    icache_miss: int = 0

    def total(self) -> int:
        return (
            self.operand_wait
            + self.load_use_wait
            + self.ecc_wait
            + self.memory_structural
            + self.dl1_miss
            + self.write_buffer_full
            + self.write_buffer_drain
            + self.branch_redirect
            + self.icache_miss
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "operand_wait": self.operand_wait,
            "load_use_wait": self.load_use_wait,
            "ecc_wait": self.ecc_wait,
            "memory_structural": self.memory_structural,
            "dl1_miss": self.dl1_miss,
            "write_buffer_full": self.write_buffer_full,
            "write_buffer_drain": self.write_buffer_drain,
            "branch_redirect": self.branch_redirect,
            "icache_miss": self.icache_miss,
        }


@dataclass
class PipelineStatistics:
    """Aggregate counters for one timing run."""

    instructions: int = 0
    cycles: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_branches: int = 0
    load_hits: int = 0
    load_misses: int = 0
    dependent_loads: int = 0
    dependent_load_distance_1: int = 0
    dependent_load_distance_2: int = 0
    stalls: StallBreakdown = field(default_factory=StallBreakdown)
    lookahead: LookaheadStatistics = field(default_factory=LookaheadStatistics)

    # ------------------------------------------------------------------ #
    # derived metrics                                                    #
    # ------------------------------------------------------------------ #
    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def load_fraction(self) -> float:
        """Loads as a fraction of all retired instructions (Table II row 3)."""
        return self.loads / self.instructions if self.instructions else 0.0

    @property
    def load_hit_rate(self) -> float:
        """DL1 hit rate of loads (Table II row 1)."""
        return self.load_hits / self.loads if self.loads else 0.0

    @property
    def dependent_load_fraction(self) -> float:
        """Loads with a consumer at distance 1-2 (Table II row 2)."""
        return self.dependent_loads / self.loads if self.loads else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "cpi": self.cpi,
            "loads": self.loads,
            "stores": self.stores,
            "branches": self.branches,
            "taken_branches": self.taken_branches,
            "load_hits": self.load_hits,
            "load_misses": self.load_misses,
            "load_fraction": self.load_fraction,
            "load_hit_rate": self.load_hit_rate,
            "dependent_load_fraction": self.dependent_load_fraction,
            "stall_cycles": self.stalls.total(),
            **{f"stall_{k}": v for k, v in self.stalls.as_dict().items()},
            **{f"lookahead_{k}": v for k, v in self.lookahead.as_dict().items()},
        }

    def table2_row(self) -> Dict[str, float]:
        """The three percentages reported per benchmark in Table II."""
        return {
            "pct_hit_loads": 100.0 * self.load_hit_rate,
            "pct_dependent_loads": 100.0 * self.dependent_load_fraction,
            "pct_loads": 100.0 * self.load_fraction,
        }
