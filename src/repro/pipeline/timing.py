"""The cycle-accurate timing engine.

The engine replays a functional trace through the in-order pipeline as a
*dependency-driven schedule*: instructions are processed in program order
and the cycle at which each one occupies each stage is derived from

* single-issue in-order flow (no stage may be occupied by instruction
  *i* before instruction *i-1* has left it),
* full bypassing (a value produced at the end of cycle *c* can be
  consumed by the Execute stage in cycle *c+1*),
* the Memory-stage behaviour of the active ECC policy (Section III of
  the paper): single or double-cycle DL1 hits, the optional ECC stage,
  and — for LAEC — the anticipated access when the look-ahead unit finds
  no hazard,
* the DL1/L2/bus miss latencies of the memory hierarchy,
* the write buffer rules of the NGMP (loads wait for an empty buffer;
  stores stall when it is full),
* taken-branch and instruction-cache-miss fetch bubbles.

Because the core is in order and single issue, this scheduling formulation
is cycle-equivalent to stepping stage registers one cycle at a time, but
it is far easier to instrument (every stall has an identifiable cause)
and to validate against the paper's chronograms.

This is the *fast-path* engine (see PERFORMANCE.md).  Every experiment
funnels through :meth:`TimingPipeline.run`, so the scheduling loop is
written for CPython throughput:

* register ready/producer state lives in three fixed-size lists indexed
  by architectural register number instead of a dict of status objects;
* per-stage end cycles are plain local integers instead of a
  ``Dict[Stage, int]``;
* the register def/use sets, instruction class and condition-code flags
  of each *static* instruction are computed once per run and memoised
  (the seed engine re-derived them — including a sort — per *dynamic*
  instruction);
* statistics accumulate in local counters and are written back once;
* chronogram entries (and their rendered labels) are only materialised
  inside the configured recording window.

The original loop is preserved verbatim as
:class:`repro.pipeline.reference_timing.ReferenceTimingPipeline`; the
regression suite proves both engines produce identical cycle counts,
stall breakdowns and chronograms on every kernel under every policy.

A third form, :meth:`TimingPipeline.step_instructions`, exposes the same
schedule as a per-instruction generator with cycle-stamped memory
accesses — the stepping hook the multicore co-simulation
(:mod:`repro.soc.cosim`) drives in lockstep against a shared round-robin
bus arbiter.  It too is proven cycle-identical to :meth:`run` for
private (arbiter-less) hierarchies.

Unlike the seed engine, :meth:`TimingPipeline.run` does not mutate the
shared :class:`~repro.memory.hierarchy.MemoryHierarchy`: the configured
write-buffer capacity is passed explicitly into every push instead of
being stored on the buffer object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.lookahead import LookaheadDecision, LookaheadUnit
from repro.core.policies import EccPolicy
from repro.functional.simulator import FunctionalTrace
from repro.isa.instructions import InstructionClass
from repro.isa.registers import REGISTER_COUNT
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.chronogram import Chronogram, ChronogramEntry
from repro.pipeline.config import PipelineConfig
from repro.pipeline.stages import Stage
from repro.pipeline.statistics import PipelineStatistics


@dataclass
class PipelineResult:
    """Outcome of one timing run."""

    policy: EccPolicy
    stats: PipelineStatistics
    chronogram: Chronogram = field(default_factory=Chronogram)
    dl1_stats: Dict[str, float] = field(default_factory=dict)
    bus_transactions: int = 0
    bus_contention_cycles: int = 0

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def instructions(self) -> int:
        return self.stats.instructions

    @property
    def cpi(self) -> float:
        return self.stats.cpi

    def execution_time_increase_over(self, baseline: "PipelineResult") -> float:
        """Relative execution-time increase versus ``baseline`` (Figure 8)."""
        if baseline.cycles == 0:
            return 0.0
        return self.cycles / baseline.cycles - 1.0


@dataclass
class _RegisterStatus:
    """Book-keeping for bypass/ready-time tracking of one register.

    The fast engine tracks the three fields in parallel lists; this class
    remains the per-register record used by the reference engine.
    """

    ready: int = 0
    produced_by_load: bool = False
    via_ecc_stage: bool = False


# Control-flow kinds precomputed per static instruction (see _instr_info).
_KIND_OTHER = 0
_KIND_BRANCH = 1
_KIND_CALL = 2
_KIND_JUMP = 3


class TimingPipeline:
    """Replays a functional trace under one ECC policy."""

    def __init__(
        self,
        policy: EccPolicy,
        hierarchy: MemoryHierarchy,
        config: Optional[PipelineConfig] = None,
    ) -> None:
        self.policy = policy
        self.hierarchy = hierarchy
        self.config = config or PipelineConfig()
        self.lookahead_unit = LookaheadUnit()

    # ------------------------------------------------------------------ #
    def _instr_info(self, instr, mul_extra: int, div_extra: int):
        """Flatten the per-instruction facts the scheduling loop needs.

        Computed once per *static* instruction and memoised by the run
        loop: ``source_registers()``/``destination_register()`` walk and
        sort operand lists on every call, which the seed engine paid for
        every dynamic instance.
        """
        klass = instr.klass
        if klass is InstructionClass.MUL:
            ex_extra = mul_extra
        elif klass is InstructionClass.DIV:
            ex_extra = div_extra
        else:
            ex_extra = 0
        if klass is InstructionClass.BRANCH:
            kind = _KIND_BRANCH
        elif klass is InstructionClass.CALL:
            kind = _KIND_CALL
        elif klass is InstructionClass.JUMP:
            kind = _KIND_JUMP
        else:
            kind = _KIND_OTHER
        return (
            instr.is_load,
            instr.is_store,
            instr.source_registers(),
            instr.destination_register(),
            instr.address_registers(),
            instr.reads_condition_codes,
            instr.sets_condition_codes,
            ex_extra,
            kind,
        )

    def _build_infos(self, stream):
        """Stream-aligned list of memoised per-static-instruction infos.

        Shared by :meth:`run` and :meth:`step_instructions`: one info
        tuple per static instruction, materialised per dynamic index so
        the dependent-load scan can look ahead without re-deriving
        operand sets.
        """
        config = self.config
        info_cache: Dict[int, tuple] = {}
        instr_info = self._instr_info
        mul_extra = config.mul_latency - 1
        div_extra = config.div_latency - 1
        infos = []
        infos_append = infos.append
        for dyn in stream:
            instr = dyn.instruction
            key = id(instr)
            info = info_cache.get(key)
            if info is None:
                info = instr_info(instr, mul_extra, div_extra)
                info_cache[key] = info
            infos_append(info)
        return infos

    @staticmethod
    def _write_back_stats(
        stats,
        instructions,
        cycles,
        n_loads,
        n_stores,
        n_branches,
        n_taken,
        n_load_hits,
        n_load_misses,
        n_dep_loads,
        n_dep1,
        n_dep2,
        st_operand,
        st_load_use,
        st_ecc_wait,
        st_mem_struct,
        st_dl1_miss,
        st_wb_full,
        st_wb_drain,
        st_redirect,
        st_icache,
    ) -> None:
        """Flush the scheduling loop's local accumulators into ``stats``.

        Shared by :meth:`run` and :meth:`step_instructions` so the two
        live engines cannot drift in what they report.
        """
        stats.instructions = instructions
        stats.cycles = cycles
        stats.loads = n_loads
        stats.stores = n_stores
        stats.branches = n_branches
        stats.taken_branches = n_taken
        stats.load_hits = n_load_hits
        stats.load_misses = n_load_misses
        stats.dependent_loads = n_dep_loads
        stats.dependent_load_distance_1 = n_dep1
        stats.dependent_load_distance_2 = n_dep2
        stalls = stats.stalls
        stalls.operand_wait = st_operand
        stalls.load_use_wait = st_load_use
        stalls.ecc_wait = st_ecc_wait
        stalls.memory_structural = st_mem_struct
        stalls.dl1_miss = st_dl1_miss
        stalls.write_buffer_full = st_wb_full
        stalls.write_buffer_drain = st_wb_drain
        stalls.branch_redirect = st_redirect
        stalls.icache_miss = st_icache

    def run(self, trace: FunctionalTrace) -> PipelineResult:
        """Time the whole ``trace`` and return the collected results."""
        policy = self.policy
        config = self.config
        hierarchy = self.hierarchy
        write_buffer = hierarchy.write_buffer
        wb_capacity = config.write_buffer_entries

        stats = PipelineStatistics()
        lookahead_stats = self.lookahead_unit.stats
        stats.lookahead = lookahead_stats
        chronogram = Chronogram()

        # Policy constants ---------------------------------------------- #
        has_ecc_stage = policy.has_ecc_stage
        supports_lookahead = policy.supports_lookahead
        load_hit_cycles = policy.load_hit_memory_cycles
        taken_branch_penalty = config.taken_branch_penalty
        indirect_branch_penalty = config.indirect_branch_penalty

        # Hoisted bound methods ----------------------------------------- #
        fetch_cycles = hierarchy.instruction_fetch_cycles
        load_access = hierarchy.load_access
        store_access = hierarchy.store_access
        wb_drain_complete = write_buffer.drain_complete_time
        wb_push = write_buffer.push
        wb_record_load_wait = write_buffer.record_load_wait
        record_lookahead = lookahead_stats.record
        chron_add = chronogram.add

        # Register scoreboard (index = architectural register number) --- #
        reg_ready = [0] * REGISTER_COUNT
        reg_by_load = [False] * REGISTER_COUNT
        reg_via_ecc = [False] * REGISTER_COUNT

        # Per-stage in-order trackers ----------------------------------- #
        pe_decode = pe_ra = pe_ex = pe_mem = pe_ecc = pe_xc = pe_wb = 0
        cc_ready = 0
        fetch_free = 0
        redirect_cycle = 1
        prev_is_load = False
        prev_dest: Optional[int] = None
        prev_lookahead = False
        last_retire = 0

        # Local statistic accumulators ---------------------------------- #
        n_loads = n_stores = n_branches = n_taken = 0
        n_load_hits = n_load_misses = 0
        n_dep_loads = n_dep1 = n_dep2 = 0
        st_operand = st_load_use = st_ecc_wait = st_mem_struct = 0
        st_dl1_miss = st_wb_full = st_wb_drain = st_redirect = st_icache = 0

        stream = trace.instructions
        n = len(stream)
        record_window = config.chronogram_window
        infos = self._build_infos(stream)

        for i in range(n):
            dyn = stream[i]
            (
                is_load,
                is_store,
                sources,
                destination,
                addr_regs,
                reads_cc,
                sets_cc,
                ex_extra,
                kind,
            ) = infos[i]

            # ---------------------------------------------------------- #
            # Fetch                                                      #
            # ---------------------------------------------------------- #
            sequential_start = fetch_free + 1
            if redirect_cycle > sequential_start:
                f_start = redirect_cycle
                st_redirect += redirect_cycle - sequential_start
            else:
                f_start = sequential_start
            icache_extra = fetch_cycles(dyn.pc)
            if icache_extra:
                st_icache += icache_extra
                f_end = f_start + icache_extra
            else:
                f_end = f_start
            fetch_free = f_end

            # ---------------------------------------------------------- #
            # Decode / Register access                                   #
            # ---------------------------------------------------------- #
            d_end = f_end + 1 if f_end >= pe_decode else pe_decode + 1
            pe_decode = d_end
            ra_end = d_end + 1 if d_end >= pe_ra else pe_ra + 1
            pe_ra = ra_end

            # ---------------------------------------------------------- #
            # Execute (operand wait happens here, matching the figures)  #
            # ---------------------------------------------------------- #
            ex_start = ra_end + 1 if ra_end >= pe_ex else pe_ex + 1
            source_ready = 0
            limiting = -1
            for reg in sources:
                ready = reg_ready[reg]
                if ready > source_ready:
                    source_ready = ready
                    limiting = reg
            if reads_cc and cc_ready > source_ready:
                source_ready = cc_ready
                limiting = -1
            if source_ready >= ex_start:
                exec_cycle = source_ready + 1
                wait = exec_cycle - ex_start
                if limiting >= 0 and reg_by_load[limiting]:
                    if reg_via_ecc[limiting]:
                        st_ecc_wait += 1
                        st_load_use += wait - 1
                    else:
                        st_load_use += wait
                else:
                    st_operand += wait
            else:
                exec_cycle = ex_start
            ex_end = exec_cycle + ex_extra
            pe_ex = ex_end

            # ---------------------------------------------------------- #
            # LAEC look-ahead evaluation                                 #
            # ---------------------------------------------------------- #
            # Anticipation moves the address add into the Register-Access
            # stage, i.e. one cycle before the load's Execute cycle, so
            # the address operands must be available one cycle earlier
            # than a normal execution would need them.  The structural
            # conditions (immediate predecessor producing an address
            # register, or being a non-anticipated load) are the two
            # hazards defined by the paper.
            lookahead_taken = False
            if supports_lookahead and is_load:
                address_ready = 0
                for reg in addr_regs:
                    ready = reg_ready[reg]
                    if ready > address_ready:
                        address_ready = ready
                data_hazard = prev_dest is not None and prev_dest in addr_regs
                resource_hazard = prev_is_load and not prev_lookahead
                operands_late = address_ready > exec_cycle - 2
                lookahead_taken = not (
                    data_hazard or resource_hazard or operands_late
                )
                record_lookahead(
                    LookaheadDecision(
                        taken=lookahead_taken,
                        data_hazard=data_hazard,
                        resource_hazard=resource_hazard,
                        operands_late=operands_late,
                    )
                )

            # ---------------------------------------------------------- #
            # Memory                                                     #
            # ---------------------------------------------------------- #
            unconstrained_m = ex_end + 1
            if pe_mem >= unconstrained_m:
                m_start = pe_mem + 1
                st_mem_struct += m_start - unconstrained_m
            else:
                m_start = unconstrained_m
            m_occupancy = 1
            load_hit = False
            if is_load:
                n_loads += 1
                drain_until = wb_drain_complete(m_start)
                if drain_until > m_start:
                    st_wb_drain += drain_until - m_start
                    wb_record_load_wait(drain_until - m_start)
                    m_start = drain_until
                outcome = load_access(dyn.address)
                if outcome.hit:
                    load_hit = True
                    n_load_hits += 1
                    m_occupancy = load_hit_cycles
                else:
                    n_load_misses += 1
                    extra = outcome.extra_cycles
                    m_occupancy = 1 + extra
                    st_dl1_miss += extra
            elif is_store:
                n_stores += 1
                outcome = store_access(dyn.address)
                stalled_until = wb_push(
                    m_start, outcome.store_drain_latency, wb_capacity
                )
                if stalled_until > m_start:
                    st_wb_full += stalled_until - m_start
                    m_start = stalled_until
            m_end = m_start + m_occupancy - 1
            pe_mem = m_end

            # ---------------------------------------------------------- #
            # ECC stage (only traversed when the policy requires it)     #
            # ---------------------------------------------------------- #
            if has_ecc_stage and (
                not supports_lookahead or (is_load and load_hit and not lookahead_taken)
            ):
                # LAEC: only non-anticipated DL1 load hits need the
                # dedicated check stage; anticipated loads complete
                # their check in Memory and everything else skips it.
                uses_ecc_stage = True
                ecc_end = m_end + 1 if m_end >= pe_ecc else pe_ecc + 1
                pe_ecc = ecc_end
                before_xc = ecc_end
            else:
                uses_ecc_stage = False
                ecc_end = 0
                before_xc = m_end

            # ---------------------------------------------------------- #
            # Exception / Write-back                                     #
            # ---------------------------------------------------------- #
            xc_end = before_xc + 1 if before_xc >= pe_xc else pe_xc + 1
            pe_xc = xc_end
            wb_end = xc_end + 1 if xc_end >= pe_wb else pe_wb + 1
            pe_wb = wb_end
            if wb_end > last_retire:
                last_retire = wb_end

            # ---------------------------------------------------------- #
            # Result availability / bypass updates                       #
            # ---------------------------------------------------------- #
            if destination is not None:
                if is_load:
                    if load_hit and uses_ecc_stage:
                        # Data leaves the dedicated check stage (the seed's
                        # DataReadyStage.ECC case); anticipated LAEC loads
                        # and miss data are ready at the end of Memory.
                        reg_ready[destination] = ecc_end
                        reg_via_ecc[destination] = True
                    else:
                        reg_ready[destination] = m_end
                        reg_via_ecc[destination] = False
                    reg_by_load[destination] = True
                else:
                    reg_ready[destination] = ex_end
                    reg_by_load[destination] = False
                    reg_via_ecc[destination] = False
            if sets_cc:
                cc_ready = ex_end

            # ---------------------------------------------------------- #
            # Control flow                                               #
            # ---------------------------------------------------------- #
            if kind:
                if kind == _KIND_BRANCH:
                    n_branches += 1
                    if dyn.branch_taken:
                        n_taken += 1
                        redirect_cycle = f_end + 1 + taken_branch_penalty
                    else:
                        redirect_cycle = f_end + 1
                elif kind == _KIND_CALL:
                    redirect_cycle = f_end + 1 + taken_branch_penalty
                else:  # _KIND_JUMP
                    redirect_cycle = f_end + 1 + indirect_branch_penalty
            else:
                redirect_cycle = f_end + 1

            # ---------------------------------------------------------- #
            # Table II: dependent-load accounting                        #
            # ---------------------------------------------------------- #
            if is_load and destination is not None:
                follower = i + 1
                if follower < n:
                    f_info = infos[follower]
                    if destination in f_info[2]:
                        n_dep_loads += 1
                        n_dep1 += 1
                    elif f_info[3] != destination:
                        follower += 1
                        if follower < n and destination in infos[follower][2]:
                            n_dep_loads += 1
                            n_dep2 += 1

            # ---------------------------------------------------------- #
            # Chronogram recording                                       #
            # ---------------------------------------------------------- #
            if i < record_window:
                entry = ChronogramEntry(index=i, label=dyn.instruction.render())
                occupancy = entry.occupancy
                occupancy[Stage.FETCH] = (f_start, f_end)
                occupancy[Stage.DECODE] = (d_end, d_end)
                occupancy[Stage.REGISTER_ACCESS] = (ra_end, ra_end)
                occupancy[Stage.EXECUTE] = (ex_start, ex_end)
                occupancy[Stage.MEMORY] = (m_start, m_end)
                if uses_ecc_stage:
                    occupancy[Stage.ECC] = (ecc_end, ecc_end)
                occupancy[Stage.EXCEPTION] = (xc_end, xc_end)
                occupancy[Stage.WRITE_BACK] = (wb_end, wb_end)
                chron_add(entry)

            prev_is_load = is_load
            prev_dest = destination
            prev_lookahead = lookahead_taken

        # Write the local accumulators back into the stats objects ------- #
        self._write_back_stats(
            stats,
            n,
            last_retire,
            n_loads,
            n_stores,
            n_branches,
            n_taken,
            n_load_hits,
            n_load_misses,
            n_dep_loads,
            n_dep1,
            n_dep2,
            st_operand,
            st_load_use,
            st_ecc_wait,
            st_mem_struct,
            st_dl1_miss,
            st_wb_full,
            st_wb_drain,
            st_redirect,
            st_icache,
        )
        dl1 = hierarchy.dl1_statistics()
        return PipelineResult(
            policy=policy,
            stats=stats,
            chronogram=chronogram,
            dl1_stats=dl1.as_dict(),
            bus_transactions=hierarchy.bus.stats.transactions,
            bus_contention_cycles=hierarchy.bus.stats.contention_cycles,
        )

    # ------------------------------------------------------------------ #
    # Per-instruction stepping (multicore co-simulation hook)            #
    # ------------------------------------------------------------------ #
    def step_instructions(self, trace: FunctionalTrace):
        """Generator form of :meth:`run` for lockstep co-simulation.

        Implements the same dependency-driven schedule, but

        * every memory-hierarchy access carries its issue *cycle*, so a
          bus backed by a shared :class:`~repro.memory.bus.RoundRobinArbiter`
          can charge the observed (rather than assumed) interference, and
        * the generator yields the pipeline's memory-stage frontier after
          scheduling each instruction, letting the co-simulation driver
          advance whichever core is earliest in simulated time.

        With a private (arbiter-less) hierarchy this produces cycle counts
        and stall breakdowns identical to :meth:`run` — the regression
        suite asserts it on every kernel under every policy.  The final
        :class:`PipelineResult` is the generator's return value
        (``StopIteration.value``).
        """
        policy = self.policy
        config = self.config
        hierarchy = self.hierarchy
        write_buffer = hierarchy.write_buffer
        wb_capacity = config.write_buffer_entries

        stats = PipelineStatistics()
        lookahead_stats = self.lookahead_unit.stats
        stats.lookahead = lookahead_stats
        chronogram = Chronogram()

        has_ecc_stage = policy.has_ecc_stage
        supports_lookahead = policy.supports_lookahead
        load_hit_cycles = policy.load_hit_memory_cycles
        taken_branch_penalty = config.taken_branch_penalty
        indirect_branch_penalty = config.indirect_branch_penalty

        reg_ready = [0] * REGISTER_COUNT
        reg_by_load = [False] * REGISTER_COUNT
        reg_via_ecc = [False] * REGISTER_COUNT

        pe_decode = pe_ra = pe_ex = pe_mem = pe_ecc = pe_xc = pe_wb = 0
        cc_ready = 0
        fetch_free = 0
        redirect_cycle = 1
        prev_is_load = False
        prev_dest: Optional[int] = None
        prev_lookahead = False
        last_retire = 0

        n_loads = n_stores = n_branches = n_taken = 0
        n_load_hits = n_load_misses = 0
        n_dep_loads = n_dep1 = n_dep2 = 0
        st_operand = st_load_use = st_ecc_wait = st_mem_struct = 0
        st_dl1_miss = st_wb_full = st_wb_drain = st_redirect = st_icache = 0

        stream = trace.instructions
        n = len(stream)
        record_window = config.chronogram_window
        infos = self._build_infos(stream)

        for i in range(n):
            dyn = stream[i]
            (
                is_load,
                is_store,
                sources,
                destination,
                addr_regs,
                reads_cc,
                sets_cc,
                ex_extra,
                kind,
            ) = infos[i]

            # Fetch ------------------------------------------------------ #
            sequential_start = fetch_free + 1
            if redirect_cycle > sequential_start:
                f_start = redirect_cycle
                st_redirect += redirect_cycle - sequential_start
            else:
                f_start = sequential_start
            icache_extra = hierarchy.instruction_fetch_cycles(dyn.pc, cycle=f_start)
            if icache_extra:
                st_icache += icache_extra
                f_end = f_start + icache_extra
            else:
                f_end = f_start
            fetch_free = f_end

            # Decode / Register access ----------------------------------- #
            d_end = f_end + 1 if f_end >= pe_decode else pe_decode + 1
            pe_decode = d_end
            ra_end = d_end + 1 if d_end >= pe_ra else pe_ra + 1
            pe_ra = ra_end

            # Execute ---------------------------------------------------- #
            ex_start = ra_end + 1 if ra_end >= pe_ex else pe_ex + 1
            source_ready = 0
            limiting = -1
            for reg in sources:
                ready = reg_ready[reg]
                if ready > source_ready:
                    source_ready = ready
                    limiting = reg
            if reads_cc and cc_ready > source_ready:
                source_ready = cc_ready
                limiting = -1
            if source_ready >= ex_start:
                exec_cycle = source_ready + 1
                wait = exec_cycle - ex_start
                if limiting >= 0 and reg_by_load[limiting]:
                    if reg_via_ecc[limiting]:
                        st_ecc_wait += 1
                        st_load_use += wait - 1
                    else:
                        st_load_use += wait
                else:
                    st_operand += wait
            else:
                exec_cycle = ex_start
            ex_end = exec_cycle + ex_extra
            pe_ex = ex_end

            # LAEC look-ahead -------------------------------------------- #
            lookahead_taken = False
            if supports_lookahead and is_load:
                address_ready = 0
                for reg in addr_regs:
                    ready = reg_ready[reg]
                    if ready > address_ready:
                        address_ready = ready
                data_hazard = prev_dest is not None and prev_dest in addr_regs
                resource_hazard = prev_is_load and not prev_lookahead
                operands_late = address_ready > exec_cycle - 2
                lookahead_taken = not (
                    data_hazard or resource_hazard or operands_late
                )
                lookahead_stats.record(
                    LookaheadDecision(
                        taken=lookahead_taken,
                        data_hazard=data_hazard,
                        resource_hazard=resource_hazard,
                        operands_late=operands_late,
                    )
                )

            # Memory ----------------------------------------------------- #
            unconstrained_m = ex_end + 1
            if pe_mem >= unconstrained_m:
                m_start = pe_mem + 1
                st_mem_struct += m_start - unconstrained_m
            else:
                m_start = unconstrained_m
            m_occupancy = 1
            load_hit = False
            if is_load:
                n_loads += 1
                drain_until = write_buffer.drain_complete_time(m_start)
                if drain_until > m_start:
                    st_wb_drain += drain_until - m_start
                    write_buffer.record_load_wait(drain_until - m_start)
                    m_start = drain_until
                outcome = hierarchy.load_access(dyn.address, cycle=m_start)
                if outcome.hit:
                    load_hit = True
                    n_load_hits += 1
                    m_occupancy = load_hit_cycles
                else:
                    n_load_misses += 1
                    extra = outcome.extra_cycles
                    m_occupancy = 1 + extra
                    st_dl1_miss += extra
            elif is_store:
                n_stores += 1
                outcome = hierarchy.store_access(dyn.address, cycle=m_start)
                stalled_until = write_buffer.push(
                    m_start, outcome.store_drain_latency, wb_capacity
                )
                if stalled_until > m_start:
                    st_wb_full += stalled_until - m_start
                    m_start = stalled_until
            m_end = m_start + m_occupancy - 1
            pe_mem = m_end

            # ECC stage -------------------------------------------------- #
            if has_ecc_stage and (
                not supports_lookahead or (is_load and load_hit and not lookahead_taken)
            ):
                uses_ecc_stage = True
                ecc_end = m_end + 1 if m_end >= pe_ecc else pe_ecc + 1
                pe_ecc = ecc_end
                before_xc = ecc_end
            else:
                uses_ecc_stage = False
                ecc_end = 0
                before_xc = m_end

            # Exception / Write-back ------------------------------------- #
            xc_end = before_xc + 1 if before_xc >= pe_xc else pe_xc + 1
            pe_xc = xc_end
            wb_end = xc_end + 1 if xc_end >= pe_wb else pe_wb + 1
            pe_wb = wb_end
            if wb_end > last_retire:
                last_retire = wb_end

            # Result availability ---------------------------------------- #
            if destination is not None:
                if is_load:
                    if load_hit and uses_ecc_stage:
                        reg_ready[destination] = ecc_end
                        reg_via_ecc[destination] = True
                    else:
                        reg_ready[destination] = m_end
                        reg_via_ecc[destination] = False
                    reg_by_load[destination] = True
                else:
                    reg_ready[destination] = ex_end
                    reg_by_load[destination] = False
                    reg_via_ecc[destination] = False
            if sets_cc:
                cc_ready = ex_end

            # Control flow ----------------------------------------------- #
            if kind:
                if kind == _KIND_BRANCH:
                    n_branches += 1
                    if dyn.branch_taken:
                        n_taken += 1
                        redirect_cycle = f_end + 1 + taken_branch_penalty
                    else:
                        redirect_cycle = f_end + 1
                elif kind == _KIND_CALL:
                    redirect_cycle = f_end + 1 + taken_branch_penalty
                else:  # _KIND_JUMP
                    redirect_cycle = f_end + 1 + indirect_branch_penalty
            else:
                redirect_cycle = f_end + 1

            # Table II accounting ---------------------------------------- #
            if is_load and destination is not None:
                follower = i + 1
                if follower < n:
                    f_info = infos[follower]
                    if destination in f_info[2]:
                        n_dep_loads += 1
                        n_dep1 += 1
                    elif f_info[3] != destination:
                        follower += 1
                        if follower < n and destination in infos[follower][2]:
                            n_dep_loads += 1
                            n_dep2 += 1

            # Chronogram recording --------------------------------------- #
            if i < record_window:
                entry = ChronogramEntry(index=i, label=dyn.instruction.render())
                occupancy = entry.occupancy
                occupancy[Stage.FETCH] = (f_start, f_end)
                occupancy[Stage.DECODE] = (d_end, d_end)
                occupancy[Stage.REGISTER_ACCESS] = (ra_end, ra_end)
                occupancy[Stage.EXECUTE] = (ex_start, ex_end)
                occupancy[Stage.MEMORY] = (m_start, m_end)
                if uses_ecc_stage:
                    occupancy[Stage.ECC] = (ecc_end, ecc_end)
                occupancy[Stage.EXCEPTION] = (xc_end, xc_end)
                occupancy[Stage.WRITE_BACK] = (wb_end, wb_end)
                chronogram.add(entry)

            prev_is_load = is_load
            prev_dest = destination
            prev_lookahead = lookahead_taken

            yield pe_mem

        self._write_back_stats(
            stats,
            n,
            last_retire,
            n_loads,
            n_stores,
            n_branches,
            n_taken,
            n_load_hits,
            n_load_misses,
            n_dep_loads,
            n_dep1,
            n_dep2,
            st_operand,
            st_load_use,
            st_ecc_wait,
            st_mem_struct,
            st_dl1_miss,
            st_wb_full,
            st_wb_drain,
            st_redirect,
            st_icache,
        )
        dl1 = hierarchy.dl1_statistics()
        return PipelineResult(
            policy=policy,
            stats=stats,
            chronogram=chronogram,
            dl1_stats=dl1.as_dict(),
            bus_transactions=hierarchy.bus.stats.transactions,
            bus_contention_cycles=hierarchy.bus.stats.contention_cycles,
        )
